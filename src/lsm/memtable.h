#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/random.h"
#include "lsm/arena.h"
#include "lsm/format.h"

/// \file memtable.h
/// In-memory write buffer: a skiplist ordered by user key.
///
/// Matches the paper's RocksDB configuration of fixed-size memtables that
/// are flushed to immutable SSTs. The store is single-writer within one
/// simulated operator instance, so no synchronization is needed; a repeated
/// Put to the same key updates the node in place (the newest sequence
/// number wins anyway).
///
/// Nodes and their key/value bytes live in an `Arena`: insertion is a
/// pointer bump instead of per-node `new` + two string allocations, and
/// dropping a flushed memtable frees a handful of 64 KiB blocks instead of
/// walking every node. Overwritten values leave their old bytes in the
/// arena until the flush (see `ArenaBytes`).

namespace rhino::lsm {

/// Skiplist-based sorted write buffer.
class MemTable {
 public:
  MemTable() : head_(NewNode("", kMaxHeight)) {}

  /// Inserts or overwrites `key`. `type` distinguishes values from
  /// tombstones.
  void Add(std::string_view key, uint64_t seq, ValueType type,
           std::string_view value);

  /// Point lookup. Returns true and fills `*entry` when the key is present
  /// (including as a tombstone).
  bool Get(std::string_view key, Entry* entry) const;

  /// Approximate logical footprint of stored entries (live keys + values),
  /// used to decide when to flush.
  uint64_t ApproximateBytes() const { return bytes_; }
  /// True resident arena footprint, including overwritten garbage.
  uint64_t ArenaBytes() const { return arena_.MemoryUsage(); }
  uint64_t NumEntries() const { return entries_; }
  bool Empty() const { return entries_ == 0; }

 private:
  static constexpr int kMaxHeight = 12;

  /// Arena-resident node: key/value views point at arena-copied bytes, so
  /// the node itself is trivially destructible and the whole skiplist is
  /// freed by dropping the arena.
  struct Node {
    std::string_view key;
    std::string_view value;
    uint64_t seq = 0;
    ValueType type = ValueType::kValue;
    int height = 1;
    Node* next[1];  // flexible tower; allocated with extra slots
  };

 public:
  /// Forward iterator over entries in key order. The views remain valid
  /// for the memtable's lifetime (arena bytes are never reclaimed early).
  class Iterator {
   public:
    explicit Iterator(const MemTable* table) : node_(table->head_->next[0]) {}
    bool Valid() const { return node_ != nullptr; }
    void Next() { node_ = node_->next[0]; }
    std::string_view key() const { return node_->key; }
    uint64_t seq() const { return node_->seq; }
    ValueType type() const { return node_->type; }
    std::string_view value() const { return node_->value; }

   private:
    const Node* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  Node* NewNode(std::string_view key, int height);
  int RandomHeight();
  /// First node with key >= `key`; fills `prev` per level when non-null.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;

  Arena arena_;
  Node* head_;
  int max_height_ = 1;
  Random rng_{0xdecafbadull};
  uint64_t bytes_ = 0;
  uint64_t entries_ = 0;

 public:
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;
};

}  // namespace rhino::lsm
