#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "lsm/arena.h"
#include "lsm/format.h"

/// \file memtable.h
/// In-memory write buffer: a skiplist ordered by user key.
///
/// Matches the paper's RocksDB configuration of fixed-size memtables that
/// are flushed to immutable SSTs. A single `MemTable` is unsynchronized;
/// concurrent writers go through `ShardedMemTable`, which hash-partitions
/// the keyspace over independent skiplists with one mutex each, so writers
/// on different shards append without colliding (DESIGN.md §14).
///
/// Nodes and their key/value bytes live in an `Arena`: insertion is a
/// pointer bump instead of per-node `new` + two string allocations, and
/// dropping a flushed memtable frees a handful of 64 KiB blocks instead of
/// walking every node. Overwritten values leave their old bytes in the
/// arena until the flush (see `ArenaBytes`).

namespace rhino::lsm {

/// Skiplist-based sorted write buffer.
class MemTable {
 public:
  MemTable() : head_(NewNode("", kMaxHeight)) {}

  /// Inserts or overwrites `key`. `type` distinguishes values from
  /// tombstones. On overwrite the highest sequence number wins, so two
  /// writers racing on the same key converge on the later commit
  /// regardless of which one reaches the shard lock first.
  void Add(std::string_view key, uint64_t seq, ValueType type,
           std::string_view value);

  /// Point lookup. Returns true and fills `*entry` when the key is present
  /// (including as a tombstone).
  bool Get(std::string_view key, Entry* entry) const;

  /// Approximate logical footprint of stored entries (live keys + values),
  /// used to decide when to flush.
  uint64_t ApproximateBytes() const { return bytes_; }
  /// True resident arena footprint, including overwritten garbage.
  uint64_t ArenaBytes() const { return arena_.MemoryUsage(); }
  uint64_t NumEntries() const { return entries_; }
  bool Empty() const { return entries_ == 0; }

 private:
  static constexpr int kMaxHeight = 12;

  /// Arena-resident node: key/value views point at arena-copied bytes, so
  /// the node itself is trivially destructible and the whole skiplist is
  /// freed by dropping the arena.
  struct Node {
    std::string_view key;
    std::string_view value;
    uint64_t seq = 0;
    ValueType type = ValueType::kValue;
    int height = 1;
    Node* next[1];  // flexible tower; allocated with extra slots
  };

 public:
  /// Forward iterator over entries in key order. The views remain valid
  /// for the memtable's lifetime (arena bytes are never reclaimed early).
  class Iterator {
   public:
    explicit Iterator(const MemTable* table) : node_(table->head_->next[0]) {}
    bool Valid() const { return node_ != nullptr; }
    void Next() { node_ = node_->next[0]; }
    std::string_view key() const { return node_->key; }
    uint64_t seq() const { return node_->seq; }
    ValueType type() const { return node_->type; }
    std::string_view value() const { return node_->value; }

   private:
    const Node* node_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  Node* NewNode(std::string_view key, int height);
  int RandomHeight();
  /// First node with key >= `key`; fills `prev` per level when non-null.
  Node* FindGreaterOrEqual(std::string_view key, Node** prev) const;

  Arena arena_;
  Node* head_;
  int max_height_ = 1;
  Random rng_{0xdecafbadull};
  uint64_t bytes_ = 0;
  uint64_t entries_ = 0;

 public:
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;
};

/// Hash-sharded write buffer: N independent skiplists, each behind its own
/// mutex, with keys routed by `std::hash` of the user key. Concurrent
/// writers only contend when they hit the same shard; size accounting is
/// kept in per-shard atomics so the flush-threshold check never takes a
/// lock. All versions of one key land in one shard, so merging the shards'
/// sorted runs yields exactly what a single skiplist would hold.
///
/// Once frozen (no further Add calls, publication ordered through the DB's
/// rotation lock) a ShardedMemTable may be read without the shard locks —
/// that is how background flushes stream it into an SST.
class ShardedMemTable {
 public:
  explicit ShardedMemTable(size_t num_shards);

  void Add(std::string_view key, uint64_t seq, ValueType type,
           std::string_view value);
  bool Get(std::string_view key, Entry* entry) const;

  /// Approximate logical footprint; a lock-free sum of per-shard atomics.
  uint64_t ApproximateBytes() const;
  uint64_t ArenaBytes() const;
  uint64_t NumEntries() const;
  bool Empty() const { return NumEntries() == 0; }
  size_t num_shards() const { return shards_.size(); }

  /// Copies entries in `[begin, end)` (empty `end` = unbounded) out of all
  /// shards, globally sorted by key. Takes each shard lock briefly, so it
  /// is safe against concurrent writers; the result is a point-in-time
  /// snapshot per shard.
  std::vector<Entry> SortedSnapshot(std::string_view begin = "",
                                    std::string_view end = "") const;

  /// Merging cursor over all shards in key order, without copies or locks.
  /// Only valid on a frozen table (no concurrent Add).
  class MergingIterator {
   public:
    explicit MergingIterator(const ShardedMemTable* table);
    bool Valid() const { return cur_ >= 0; }
    void Next();
    std::string_view key() const { return its_[size_t(cur_)].key(); }
    uint64_t seq() const { return its_[size_t(cur_)].seq(); }
    ValueType type() const { return its_[size_t(cur_)].type(); }
    std::string_view value() const { return its_[size_t(cur_)].value(); }

   private:
    void FindMin();
    std::vector<MemTable::Iterator> its_;
    int cur_ = -1;
  };

  MergingIterator NewMergingIterator() const { return MergingIterator(this); }

  ShardedMemTable(const ShardedMemTable&) = delete;
  ShardedMemTable& operator=(const ShardedMemTable&) = delete;

 private:
  friend class MergingIterator;

  struct Shard {
    mutable std::mutex mu;
    MemTable table;
    std::atomic<uint64_t> bytes{0};
    std::atomic<uint64_t> entries{0};
  };

  size_t ShardFor(std::string_view key) const {
    return std::hash<std::string_view>{}(key) % shards_.size();
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rhino::lsm
