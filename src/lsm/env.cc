#include "lsm/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_set>

namespace fs = std::filesystem;

namespace rhino::lsm {

namespace {

/// Parent directory of a path ("" for top-level names).
std::string DirName(const std::string& path) {
  auto pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

/// EOF-clamped copy of `[offset, offset+n)` out of an in-memory buffer.
void RangeFrom(const std::string& content, uint64_t offset, size_t n,
               std::string* out) {
  out->clear();
  if (offset >= content.size()) return;
  size_t len = std::min<uint64_t>(n, content.size() - offset);
  out->assign(content, static_cast<size_t>(offset), len);
}

/// RandomAccessFile over a shared in-memory content buffer. Holding the
/// shared_ptr pins the content exactly like an extra hard link would.
class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<const std::string> content)
      : content_(std::move(content)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    RangeFrom(*content_, offset, n, out);
    return Status::OK();
  }

  uint64_t Size() const override { return content_->size(); }

 private:
  std::shared_ptr<const std::string> content_;
};

/// RandomAccessFile over an open stdio stream. The open descriptor keeps
/// the inode alive after unlink/rename, matching MemRandomAccessFile.
class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::FILE* file, uint64_t size)
      : file_(file), size_(size) {}
  ~PosixRandomAccessFile() override { std::fclose(file_); }
  PosixRandomAccessFile(const PosixRandomAccessFile&) = delete;
  PosixRandomAccessFile& operator=(const PosixRandomAccessFile&) = delete;

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    if (offset >= size_) return Status::OK();
    size_t len = std::min<uint64_t>(n, size_ - offset);
    out->resize(len);
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek");
    }
    size_t got = std::fread(out->data(), 1, len, file_);
    out->resize(got);
    if (got < len && std::ferror(file_)) return Status::IOError("read");
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::FILE* file_;
  uint64_t size_;
};

/// Buffered appender over a shared in-memory content buffer. Like its
/// POSIX sibling, the handle keeps targeting the content it was opened on:
/// a concurrent WriteFile replacing the name writes fresh content, and this
/// handle's appends keep going to the old "inode".
class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::string> content)
      : content_(std::move(content)) {}
  ~MemWritableFile() override { (void)Flush(); }

  Status Append(std::string_view data) override {
    buffer_.append(data);
    if (buffer_.size() >= kBufferBytes) return Flush();
    return Status::OK();
  }

  Status Flush() override {
    if (!buffer_.empty()) {
      content_->append(buffer_);
      buffer_.clear();
    }
    return Status::OK();
  }

  Status Sync() override { return Flush(); }

  uint64_t Size() const override { return content_->size() + buffer_.size(); }

 private:
  static constexpr size_t kBufferBytes = 64 * 1024;
  std::shared_ptr<std::string> content_;
  std::string buffer_;
};

/// Buffered appender over a stdio stream (stdio provides the buffer;
/// Flush maps to fflush, Sync additionally fsyncs the descriptor).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path, uint64_t size)
      : file_(file), path_(std::move(path)), size_(size) {}
  ~PosixWritableFile() override { std::fclose(file_); }
  PosixWritableFile(const PosixWritableFile&) = delete;
  PosixWritableFile& operator=(const PosixWritableFile&) = delete;

  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("append " + path_);
    }
    size_ += data.size();
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) return Status::IOError("flush " + path_);
    return Status::OK();
  }

  Status Sync() override {
    // fflush pushes stdio's buffer to the kernel; page-cache durability is
    // sufficient for the simulated crash model (fail-stop of the process,
    // not the machine), so no fsync — matching WriteFile's semantics.
    return Flush();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::FILE* file_;
  std::string path_;
  uint64_t size_;
};

}  // namespace

// ---------------------------------------------------------------- MemEnv --

Status MemEnv::WriteFile(const std::string& path, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::make_shared<std::string>(data);
  return Status::OK();
}

Status MemEnv::AppendFile(const std::string& path, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    it = files_.emplace(path, std::make_shared<std::string>()).first;
  }
  it->second->append(data);
  return Status::OK();
}

Status MemEnv::ReadFile(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *out = *it->second;
  return Status::OK();
}

Status MemEnv::ReadFileRange(const std::string& path, uint64_t offset,
                             size_t n, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  RangeFrom(*it->second, offset, n, out);
  return Status::OK();
}

Result<std::unique_ptr<RandomAccessFile>> MemEnv::NewRandomAccessFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<MemRandomAccessFile>(it->second));
}

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || !append) {
    // Truncation creates fresh content (a new inode): hard links and open
    // handles keep the old bytes.
    it = files_.insert_or_assign(path, std::make_shared<std::string>()).first;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(it->second));
}

Result<uint64_t> MemEnv::GetFileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return static_cast<uint64_t>(it->second->size());
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound(path);
  return Status::OK();
}

Status MemEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  // Record the directory and all ancestors; files don't strictly need
  // them, but ListDir consults the set to distinguish "empty dir" from
  // "missing dir".
  std::string cur;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty()) dirs_.insert(cur);
    }
    if (i < path.size()) cur.push_back(path[i]);
  }
  dirs_.insert(path);
  return Status::OK();
}

Status MemEnv::LinkFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  if (files_.count(dst)) return Status::AlreadyExists(dst);
  files_[dst] = it->second;  // shares content: a true hard link
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[dst] = it->second;
  files_.erase(it);
  return Status::OK();
}

Result<std::vector<std::string>> MemEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirs_.count(dir)) {
    // A directory also "exists" if any file lives directly under it.
    bool found = false;
    for (const auto& [path, _] : files_) {
      if (DirName(path) == dir) {
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound(dir);
  }
  std::vector<std::string> names;
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [path, _] : files_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  return names;
}

uint64_t MemEnv::UniqueContentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<const std::string*> seen;
  uint64_t total = 0;
  for (const auto& [_, content] : files_) {
    if (seen.insert(content.get()).second) total += content->size();
  }
  return total;
}

// -------------------------------------------------------------- PosixEnv --

Status PosixEnv::WriteFile(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("write " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::AppendFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("open for append " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IOError("append " + path);
  return Status::OK();
}

Status PosixEnv::ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status PosixEnv::ReadFileRange(const std::string& path, uint64_t offset,
                               size_t n, std::string* out) {
  RHINO_ASSIGN_OR_RETURN(auto file, NewRandomAccessFile(path));
  return file->Read(offset, n, out);
}

Result<std::unique_ptr<RandomAccessFile>> PosixEnv::NewRandomAccessFile(
    const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound(path);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound(path);
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<PosixRandomAccessFile>(file, size));
}

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(
    const std::string& path, bool append) {
  uint64_t size = 0;
  if (append) {
    std::error_code ec;
    auto existing = fs::file_size(path, ec);
    if (!ec) size = existing;
  }
  std::FILE* file = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file == nullptr) return Status::IOError("open for write " + path);
  return std::unique_ptr<WritableFile>(
      std::make_unique<PosixWritableFile>(file, path, size));
}

Result<uint64_t> PosixEnv::GetFileSize(const std::string& path) {
  std::error_code ec;
  auto size = fs::file_size(path, ec);
  if (ec) return Status::NotFound(path);
  return static_cast<uint64_t>(size);
}

bool PosixEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status PosixEnv::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) return Status::NotFound(path);
  return Status::OK();
}

Status PosixEnv::CreateDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::LinkFile(const std::string& src, const std::string& dst) {
  std::error_code ec;
  fs::create_hard_link(src, dst, ec);
  if (ec) return Status::IOError("link " + src + " -> " + dst + ": " + ec.message());
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::error_code ec;
  fs::rename(src, dst, ec);
  if (ec) return Status::IOError("rename: " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = fs::directory_iterator(dir, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::NotFound(dir);
  return names;
}

}  // namespace rhino::lsm
