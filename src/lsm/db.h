#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/env.h"
#include "obs/observability.h"
#include "lsm/format.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"

/// \file db.h
/// Embedded LSM key-value store: the from-scratch RocksDB substitute that
/// backs every stateful operator instance (paper §3.4, R3).
///
/// Design mirrors the RocksDB configuration used in the paper's evaluation:
/// fixed-size memtables flushed to immutable SSTs, bloom filters for point
/// lookups, leveled compaction, and **checkpoints as hard links** of the
/// live SSTs — which is what makes Rhino's incremental checkpoints cheap
/// (only files new since the previous checkpoint are ever transferred).
///
/// The read path is streaming and block-granular: point lookups touch one
/// data block through a shared byte-budgeted BlockCache, range scans merge
/// memtable + per-table block iterators lazily through a k-way heap, and
/// open-table handles live in a capped per-DB LRU. Scans of arbitrarily
/// large state are O(block cache) resident memory.
///
/// The write path is streaming and batched to match: the WAL is one open
/// buffered append handle receiving framed (length + checksum) commit
/// records — a WriteBatch group-commits N mutations as a single append +
/// flush; the memtable allocates nodes from an arena freed wholesale at
/// flush; table builds stream finished blocks through a WritableFile so
/// flush/compaction buffer ~one block, not the whole table; and the
/// MANIFEST is an appended edit log rotated into fresh snapshots instead
/// of an O(tree) rewrite per flush.
///
/// Concurrency (DESIGN.md §14): there is no store-wide lock. Writers
/// commit under a shared rotation lock plus one memtable-shard mutex;
/// readers snapshot {active memtable, frozen memtable, pinned table
/// handles} under brief locks and then traverse lock-free; flushes and
/// compactions run serialized on a maintenance path that can be moved off
/// the caller's thread entirely (`Options::background_maintenance`).

namespace rhino::lsm {

/// Tuning knobs. Defaults are scaled-down versions of the paper's RocksDB
/// settings (64 MiB memtables / 64 MiB table blocks on NVMe) so tests
/// exercise flush/compaction quickly.
struct Options {
  uint64_t memtable_bytes = 4 * 1024 * 1024;
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;
  int l0_compaction_trigger = 4;
  uint64_t level_base_bytes = 16 * 1024 * 1024;
  double level_multiplier = 10.0;
  uint64_t target_file_bytes = 2 * 1024 * 1024;
  int num_levels = 7;
  /// When false, compaction only runs via CompactRange() (tests use this
  /// to pin the tree shape).
  bool auto_compact = true;
  /// Write-ahead logging: every commit (single mutation or WriteBatch) is
  /// appended to the WAL as one framed record before it is acknowledged,
  /// so an unflushed memtable survives a crash/reopen.
  bool enable_wal = true;
  /// MANIFEST edits appended before the log is rotated into a fresh
  /// snapshot record (bounds recovery replay and file growth).
  uint64_t manifest_rotate_edits = 64;
  /// Data-block cache shared across DBs. When null the process-wide
  /// BlockCache::Default() (64 MiB, `block_cache_bytes`) is used — one
  /// budget across the hundreds of DBs a simulation opens.
  std::shared_ptr<BlockCache> block_cache;
  /// Capacity of BlockCache::Default(), for reference/sizing; a custom
  /// budget is set by passing an explicit `block_cache`.
  uint64_t block_cache_bytes = 64 * 1024 * 1024;
  /// Cap on simultaneously open SSTable handles (footer + index + bloom
  /// each); least-recently-used handles are closed beyond it.
  size_t max_open_tables = 64;
  /// Memtable shard count: concurrent writers only contend when their keys
  /// hash to the same shard. 1 degenerates to a single skiplist; shard
  /// count does not change flushed SST bytes (merge order is by key).
  size_t memtable_shards = 8;
  /// When true, full memtables are frozen and flushed — and compactions
  /// run — on a background worker instead of the committing caller's
  /// thread; a writer only stalls when a second memtable fills before the
  /// previous flush finishes. Failures surface as the Status of the next
  /// write (and of Flush/CompactRange/WaitForBackgroundWork). Off by
  /// default: inline maintenance keeps the simulator deterministic.
  bool background_maintenance = false;
  /// Where background work runs. When set, each maintenance pass is handed
  /// to this callback (e.g. posting onto a runtime::Executor task queue —
  /// see runtime/background.h); the callback must execute it on a thread
  /// that is not blocked inside this DB, and queued work must either run
  /// or be dropped before the Env is destroyed. When null, the DB lazily
  /// starts one internal worker thread.
  std::function<void(std::function<void()>)> background_post;
};

/// One file captured by a checkpoint.
struct CheckpointFile {
  std::string name;
  uint64_t size = 0;
};

/// Result of CreateCheckpoint: where it lives and what it contains.
struct CheckpointInfo {
  std::string directory;
  std::vector<CheckpointFile> files;
  uint64_t total_bytes = 0;
};

/// Embedded LSM store, safe for concurrent use from multiple threads.
///
/// Lock hierarchy (acquire downward only; each is independent of the ones
/// below unless noted):
///
///   rotate_mu_   shared by every commit across {WAL append, memtable
///                apply}; exclusive to freeze/swap the active memtable —
///                so no acknowledged commit can straddle a rotation and
///                lose its WAL record.
///   mem_mu_      the active/frozen memtable pointers and the writer-stall
///                condition variable.
///   wal_mu_      the WAL append handle.
///   versions_mu_ the version set (levels), open-table LRU, and MANIFEST
///                appends. Readers collect file metadata AND open their
///                pinned table handles under it, so a concurrent
///                compaction can never delete a file a reader is about to
///                open; pinned handles keep content readable after the
///                name is gone.
///   maintenance_mu_  serializes flush/compaction bodies (one at a time),
///                whether inline or on the background worker.
///   (leaf) per-shard memtable mutexes, BlockCache's internal lock.
class DB {
 public:
  /// Opens (creating or recovering) a DB at `path`.
  static Result<std::unique_ptr<DB>> Open(Env* env, std::string path,
                                          Options options = Options());

  /// Materializes a checkpoint directory as a new DB at `path` by hard-
  /// linking its files, then opens it. This is the "state loading" step of
  /// a recovery (Table 1): only metadata work, no byte copies.
  static Result<std::unique_ptr<DB>> OpenFromCheckpoint(
      Env* env, const std::string& checkpoint_dir, std::string path,
      Options options = Options());

  /// Blocks until in-flight background work finishes, then joins the
  /// worker. Destroying a DB while other threads are still calling into it
  /// is undefined behavior (callers own that ordering), but a compaction
  /// in flight on the background worker is waited for cleanly.
  ~DB();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Group-commits a batch atomically: one framed WAL append (and one
  /// buffer flush) covers every entry, then the whole batch is applied to
  /// the memtable over a contiguous sequence range. After a crash either
  /// the entire batch is recovered or none of it is.
  Status Write(const WriteBatch& batch);

  /// Point lookup; NotFound when absent or deleted. Reads at most one
  /// data block per consulted table (bloom filters skip most tables).
  Status Get(std::string_view key, std::string* value);

  /// Flushes the memtable to a new L0 table (no-op when empty). In
  /// background mode this also waits for the resulting flush/compaction
  /// work to complete, so the call is synchronous in both modes.
  Status Flush();

  /// Fully compacts the tree into the deepest non-empty level. Also the
  /// manual trigger for tests running with background maintenance: it
  /// flushes, lets in-flight background work finish, and compacts inline.
  Status CompactRange();

  /// Blocks until no background maintenance is pending or running, then
  /// returns the sticky background error (OK when none). Immediate in
  /// inline mode.
  Status WaitForBackgroundWork();

  /// Creates a point-in-time checkpoint at `dir`: flush + hard links +
  /// manifest. The returned file list (names + sizes) is what Rhino's
  /// replication protocol ships around.
  Result<CheckpointInfo> CreateCheckpoint(const std::string& dir);

  /// Bytes across memtables + all table files.
  uint64_t ApproximateSize() const;
  uint64_t NumTableFiles() const {
    std::lock_guard<std::mutex> lock(versions_mu_);
    return static_cast<uint64_t>(versions_.NumFiles());
  }
  int NumLevelFiles(int level) const {
    std::lock_guard<std::mutex> lock(versions_mu_);
    return static_cast<int>(versions_.level(level).size());
  }
  /// Open SSTable handles currently held by the table LRU (bounded by
  /// Options::max_open_tables).
  size_t OpenTableCount() const {
    std::lock_guard<std::mutex> lock(versions_mu_);
    return table_cache_.size();
  }
  const std::string& path() const { return path_; }

  /// Streaming merging iterator over a snapshot of the live view
  /// (memtables + all levels): a heap-based k-way merge over per-source
  /// block iterators that yields each visible key once in order, dropping
  /// tombstones and shadowed versions on the fly. Resident memory is the
  /// (bounded) memtable snapshot plus one block per table — independent of
  /// the size of the scanned range. The snapshot is stable: later Put /
  /// Flush / CompactRange calls do not change what it yields.
  class Iterator {
   public:
    Iterator();
    ~Iterator();
    Iterator(Iterator&&) noexcept;
    Iterator& operator=(Iterator&&) noexcept;

    bool Valid() const;
    void Next();
    const std::string& key() const;
    const std::string& value() const;

   private:
    friend class DB;
    struct Rep;
    std::unique_ptr<Rep> rep_;
  };

  /// Snapshot iterator over `[begin, end)`; empty `end` means unbounded.
  Result<Iterator> NewIterator(std::string_view begin = "",
                               std::string_view end = "");

  /// Number of flushes and compactions performed (for tests/benchmarks).
  uint64_t flush_count() const { return Load(flush_count_); }
  uint64_t compaction_count() const { return Load(compaction_count_); }
  /// Entries recovered from the WAL at the last Open (diagnostics).
  uint64_t wal_entries_recovered() const { return Load(wal_recovered_); }
  /// WAL write-path diagnostics for this DB: framed appends (== commits),
  /// entries covered by them, and physical bytes written. One batched
  /// commit of N entries costs 1 append; N singleton commits cost N.
  uint64_t wal_appends() const { return Load(wal_appends_); }
  uint64_t wal_records() const { return Load(wal_records_); }
  uint64_t wal_bytes_written() const { return Load(wal_bytes_); }
  /// High-water mark of bytes buffered by any table build (flush or
  /// compaction output) — the streaming write path keeps this at ~one
  /// block + tail regardless of table size.
  uint64_t write_peak_buffer_bytes() const {
    return Load(write_peak_buffer_bytes_);
  }
  /// MANIFEST snapshot rewrites (at open and on edit-log rotation).
  uint64_t manifest_rotations() const { return Load(manifest_rotations_); }

  // ---- Amplification accounting (per DB; relaxed atomics) ----
  /// Logical payload bytes (key + value) accepted by Put/Delete/Write.
  uint64_t user_bytes_written() const { return Load(user_bytes_written_); }
  /// Value bytes returned to callers by successful Gets.
  uint64_t user_bytes_read() const { return Load(user_bytes_read_); }
  /// SST bytes written by memtable flushes.
  uint64_t flush_bytes_written() const { return Load(flush_bytes_); }
  /// SST bytes consumed / produced by compactions.
  uint64_t compaction_bytes_in() const { return Load(compaction_bytes_in_); }
  uint64_t compaction_bytes_out() const { return Load(compaction_bytes_out_); }
  /// Physical data-block bytes fetched from table files (cache misses).
  uint64_t sst_bytes_read() const {
    return read_stats_.bytes_read.load(std::memory_order_relaxed);
  }
  uint64_t sst_blocks_read() const {
    return read_stats_.blocks_read.load(std::memory_order_relaxed);
  }
  /// Time writers spent stalled waiting for a memtable flush to retire the
  /// frozen buffer (background mode only), and how often they stalled.
  uint64_t stall_micros() const { return Load(stall_micros_); }
  uint64_t write_stalls() const { return Load(write_stalls_); }
  /// Write amplification: physical bytes persisted (WAL + flush +
  /// compaction output) per logical byte accepted. 0 when nothing written.
  double write_amplification() const {
    uint64_t user = user_bytes_written();
    if (user == 0) return 0.0;
    return static_cast<double>(wal_bytes_written() + flush_bytes_written() +
                               compaction_bytes_out()) /
           static_cast<double>(user);
  }
  /// Read amplification: physical block bytes fetched per logical byte
  /// returned by Gets. 0 when nothing read.
  double read_amplification() const {
    uint64_t user = user_bytes_read();
    if (user == 0) return 0.0;
    return static_cast<double>(sst_bytes_read()) / static_cast<double>(user);
  }

  /// The shared data-block cache this DB reads through.
  BlockCache* block_cache() const { return block_cache_.get(); }

  /// Installs the observability context and re-binds the cached metric
  /// handles (defaults to the process-wide one; counters are store-wide,
  /// not per-DB — one simulation opens hundreds of DBs). Call before the
  /// DB is shared across threads: rebinding is not synchronized against
  /// concurrent operations.
  void SetObservability(obs::Observability* o) {
    BindMetrics(o);
    block_cache_->SetObservability(o);
  }

 private:
  DB(Env* env, std::string path, Options options)
      : env_(env),
        path_(std::move(path)),
        options_(std::move(options)),
        block_cache_(options_.block_cache ? options_.block_cache
                                          : BlockCache::Default()),
        mem_(std::make_shared<ShardedMemTable>(options_.memtable_shards)),
        versions_(options_.num_levels),
        bg_(std::make_shared<BgState>()) {
    bg_->db = this;
    BindMetrics(obs::Observability::Default());
  }

  void BindMetrics(obs::Observability* o);

  static uint64_t Load(const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  }

  std::string FilePath(const std::string& name) const { return path_ + "/" + name; }

  /// Rebuilds the MANIFEST log from versions_ (one snapshot record,
  /// written atomically via temp + rename) and reopens the append handle.
  /// Requires versions_mu_.
  Status RotateManifestLocked();
  /// Frames and appends one VersionEdit; rotates once enough accumulate.
  /// Requires versions_mu_.
  Status AppendManifestEditLocked(const VersionEdit& edit);
  /// Replays a MANIFEST log (snapshot record + edits) into versions_
  /// (open-time only, no concurrency yet).
  Status LoadManifest(std::string_view data);
  std::string WalPath() const { return FilePath("WAL"); }
  /// The frozen memtable's log: "WAL" is renamed here when the active
  /// memtable is frozen, and the file is deleted once the flush lands.
  std::string ImmWalPath() const { return FilePath("WAL.imm"); }
  /// Opens the WAL append handle lazily (first commit after a rotation).
  /// Requires wal_mu_.
  Status EnsureWalFileLocked();
  /// Appends one framed commit record covering `num_entries` mutations and
  /// flushes the handle (no-op when the WAL is disabled). Takes wal_mu_.
  Status CommitWal(std::string_view payload, uint64_t num_entries);
  /// Shared Put/Delete/Write tail: WAL commit + memtable apply under the
  /// shared rotation lock, then the flush-threshold check.
  Status CommitEntries(std::string_view payload, uint64_t num_entries);
  /// Replays surviving logs (WAL.imm first, then WAL) into the memtable at
  /// open. A torn final record (crash mid-append) is detected via the
  /// length+checksum framing and truncated away. When a frozen log
  /// survived (crash mid-flush), both logs are consolidated back into one
  /// fresh "WAL" so the next freeze cannot orphan acknowledged records.
  Status RecoverWal();
  /// Opens a streaming sink for new table `number`, writing to a temp
  /// name so a crash mid-build never leaves a partial table under a name
  /// the MANIFEST could reference.
  Result<std::unique_ptr<WritableFile>> NewTableSink(uint64_t number);
  /// Completes a streamed build: finalizes the builder, closes the sink,
  /// renames temp -> final, and fills `meta` from the builder.
  Status FinishTableSink(uint64_t number, SSTableBuilder* builder,
                         std::unique_ptr<WritableFile> sink,
                         FileMetaData* meta);
  /// Returns an open handle to table `number` through the LRU table cache.
  /// Requires versions_mu_.
  Result<std::shared_ptr<SSTableReader>> OpenTableLocked(uint64_t number);
  /// Drops `number` from the table cache (compaction removed the file).
  /// Requires versions_mu_.
  void EvictTableLocked(uint64_t number);

  // ---- Rotation / maintenance ----
  /// Swaps the active memtable into the frozen slot and rotates the WAL
  /// ("WAL" -> "WAL.imm"), stalling first if a frozen memtable is still
  /// being flushed. Returns whether a freeze happened (false when empty,
  /// or — with `only_if_over` — when a racing writer already rotated).
  Result<bool> FreezeActiveMemTable(bool only_if_over);
  /// Builds an L0 table from `imm`, installs it, deletes WAL.imm, and
  /// retires the frozen slot. Requires maintenance_mu_.
  Status FlushFrozenMemTable(const std::shared_ptr<ShardedMemTable>& imm);
  /// Streams `mem` into a new L0 table + manifest edit.
  Status WriteLevel0Table(const ShardedMemTable& mem);
  /// Runs one round of the leveling policy if a level is over its trigger;
  /// `*did_work` reports whether anything was compacted. Requires
  /// maintenance_mu_.
  Status CompactOnce(bool* did_work);
  /// Compacts `level` into `level + 1`. Requires maintenance_mu_.
  Status CompactLevel(int level);
  uint64_t MaxBytesForLevel(int level) const;
  /// Streams `inputs` through a k-way merge into files at `output_level`.
  /// Requires maintenance_mu_; takes versions_mu_ only to pick file
  /// numbers and to install the result.
  Status DoCompaction(const std::vector<std::pair<int, FileMetaData>>& inputs,
                      int output_level);
  /// Inline-mode maintenance: freeze (optional threshold check), flush,
  /// compact to quiescence — on the caller's thread. Requires
  /// maintenance_mu_.
  Status MaintainInline(bool only_if_over);
  /// Requests a background maintenance pass (coalesced while one is
  /// already queued).
  void ScheduleMaintenance();
  /// Background worker body: flush any frozen memtable, then compact until
  /// the leveling policy is satisfied. Errors become the sticky
  /// background error.
  void RunMaintenance();
  void BackgroundThreadLoop();
  void RecordBackgroundError(const Status& s);
  Status BackgroundError() const;

  Env* env_;
  std::string path_;
  Options options_;
  std::shared_ptr<BlockCache> block_cache_;

  /// Commits hold this shared across {WAL append + memtable apply};
  /// FreezeActiveMemTable holds it exclusive across {WAL rotation +
  /// memtable swap}. See the class comment for the full hierarchy.
  std::shared_mutex rotate_mu_;

  /// Guards the memtable pointers and the stall wait. Readers copy the two
  /// shared_ptrs under it and then probe without it.
  mutable std::mutex mem_mu_;
  std::condition_variable mem_cv_;
  std::shared_ptr<ShardedMemTable> mem_;  // active
  std::shared_ptr<ShardedMemTable> imm_;  // frozen, being flushed (or null)

  /// Guards the WAL append handle (created lazily, dropped at rotation).
  std::mutex wal_mu_;
  std::unique_ptr<WritableFile> wal_file_;

  /// Guards versions_, the open-table LRU, and the MANIFEST log.
  mutable std::mutex versions_mu_;
  VersionSet versions_;
  /// LRU of open table handles: `table_lru_` front is most recent; the
  /// map holds the handle plus its list position. Bounded by
  /// Options::max_open_tables — the fix for the unbounded growth the old
  /// per-DB map exhibited across long compaction histories.
  struct OpenTableEntry {
    std::shared_ptr<SSTableReader> table;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::list<uint64_t> table_lru_;
  std::unordered_map<uint64_t, OpenTableEntry> table_cache_;
  std::unique_ptr<WritableFile> manifest_file_;
  uint64_t manifest_edits_ = 0;  // edits appended since the last snapshot

  /// Serializes flush/compaction bodies regardless of which thread runs
  /// them; never held while blocking on another DB lock's condition.
  std::mutex maintenance_mu_;

  /// Global commit sequence; fetch_add gives each commit a contiguous
  /// range without holding any lock. Mirrored into versions_ at each
  /// manifest edit.
  std::atomic<uint64_t> last_seq_{0};

  std::atomic<bool> shutting_down_{false};

  /// Sticky background failure: checked (cheaply) at the top of every
  /// write, returned by the next one. `has_bg_error_` is the lock-free
  /// fast path; the Status itself lives under bg_error_mu_.
  std::atomic<bool> has_bg_error_{false};
  mutable std::mutex bg_error_mu_;
  Status bg_error_;

  /// Background scheduling state. Held in a shared_ptr so a closure posted
  /// to an external executor and then dropped (or run after this DB died)
  /// can notice `db_alive == false` and bail without touching freed
  /// memory; the destructor only waits for work that actually started.
  struct BgState {
    std::mutex mu;
    std::condition_variable cv;
    bool pending = false;  // a pass is requested but not yet started
    int inflight = 0;      // passes currently executing
    bool exit = false;     // internal worker: time to return
    bool db_alive = true;
    DB* db = nullptr;
  };
  std::shared_ptr<BgState> bg_;
  std::thread bg_thread_;  // lazily started when no background_post is set

  // ---- Statistics (relaxed atomics; exact totals, unordered) ----
  std::atomic<uint64_t> manifest_rotations_{0};
  std::atomic<uint64_t> flush_count_{0};
  std::atomic<uint64_t> compaction_count_{0};
  std::atomic<uint64_t> wal_recovered_{0};
  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> write_peak_buffer_bytes_{0};
  std::atomic<uint64_t> user_bytes_written_{0};
  std::atomic<uint64_t> user_bytes_read_{0};
  std::atomic<uint64_t> flush_bytes_{0};
  std::atomic<uint64_t> compaction_bytes_in_{0};
  std::atomic<uint64_t> compaction_bytes_out_{0};
  std::atomic<uint64_t> stall_micros_{0};
  std::atomic<uint64_t> write_stalls_{0};
  /// Physical block reads, charged by every SSTableReader this DB opens.
  mutable SSTableReader::ReadStats read_stats_;

  /// Hot-path metric handles (see BindMetrics).
  obs::Counter* puts_metric_ = nullptr;
  obs::Counter* deletes_metric_ = nullptr;
  obs::Counter* batch_commits_metric_ = nullptr;
  obs::Counter* wal_appends_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* gets_metric_ = nullptr;
  obs::Counter* flushes_metric_ = nullptr;
  obs::Counter* flush_bytes_metric_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* compaction_bytes_in_metric_ = nullptr;
  obs::Counter* compaction_bytes_out_metric_ = nullptr;
  obs::Counter* user_write_bytes_metric_ = nullptr;
  obs::Counter* user_read_bytes_metric_ = nullptr;
  obs::Counter* stall_micros_metric_ = nullptr;
  obs::Counter* stalls_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* checkpoint_bytes_metric_ = nullptr;
  obs::Counter* table_cache_hits_metric_ = nullptr;
  obs::Counter* table_cache_misses_metric_ = nullptr;
  obs::Counter* table_cache_evictions_metric_ = nullptr;
};

}  // namespace rhino::lsm
