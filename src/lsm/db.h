#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/env.h"
#include "obs/observability.h"
#include "lsm/format.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"

/// \file db.h
/// Embedded LSM key-value store: the from-scratch RocksDB substitute that
/// backs every stateful operator instance (paper §3.4, R3).
///
/// Design mirrors the RocksDB configuration used in the paper's evaluation:
/// fixed-size memtables flushed to immutable SSTs, bloom filters for point
/// lookups, leveled compaction, and **checkpoints as hard links** of the
/// live SSTs — which is what makes Rhino's incremental checkpoints cheap
/// (only files new since the previous checkpoint are ever transferred).
///
/// The read path is streaming and block-granular: point lookups touch one
/// data block through a shared byte-budgeted BlockCache, range scans merge
/// memtable + per-table block iterators lazily through a k-way heap, and
/// open-table handles live in a capped per-DB LRU. Scans of arbitrarily
/// large state are O(block cache) resident memory.
///
/// The write path is streaming and batched to match: the WAL is one open
/// buffered append handle receiving framed (length + checksum) commit
/// records — a WriteBatch group-commits N mutations as a single append +
/// flush; the memtable allocates nodes from an arena freed wholesale at
/// flush; table builds stream finished blocks through a WritableFile so
/// flush/compaction buffer ~one block, not the whole table; and the
/// MANIFEST is an appended edit log rotated into fresh snapshots instead
/// of an O(tree) rewrite per flush.

namespace rhino::lsm {

/// Tuning knobs. Defaults are scaled-down versions of the paper's RocksDB
/// settings (64 MiB memtables / 64 MiB table blocks on NVMe) so tests
/// exercise flush/compaction quickly.
struct Options {
  uint64_t memtable_bytes = 4 * 1024 * 1024;
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;
  int l0_compaction_trigger = 4;
  uint64_t level_base_bytes = 16 * 1024 * 1024;
  double level_multiplier = 10.0;
  uint64_t target_file_bytes = 2 * 1024 * 1024;
  int num_levels = 7;
  /// When false, compaction only runs via CompactRange() (tests use this
  /// to pin the tree shape).
  bool auto_compact = true;
  /// Write-ahead logging: every commit (single mutation or WriteBatch) is
  /// appended to the WAL as one framed record before it is acknowledged,
  /// so an unflushed memtable survives a crash/reopen.
  bool enable_wal = true;
  /// MANIFEST edits appended before the log is rotated into a fresh
  /// snapshot record (bounds recovery replay and file growth).
  uint64_t manifest_rotate_edits = 64;
  /// Data-block cache shared across DBs. When null the process-wide
  /// BlockCache::Default() (64 MiB, `block_cache_bytes`) is used — one
  /// budget across the hundreds of DBs a simulation opens.
  std::shared_ptr<BlockCache> block_cache;
  /// Capacity of BlockCache::Default(), for reference/sizing; a custom
  /// budget is set by passing an explicit `block_cache`.
  uint64_t block_cache_bytes = 64 * 1024 * 1024;
  /// Cap on simultaneously open SSTable handles (footer + index + bloom
  /// each); least-recently-used handles are closed beyond it.
  size_t max_open_tables = 64;
};

/// One file captured by a checkpoint.
struct CheckpointFile {
  std::string name;
  uint64_t size = 0;
};

/// Result of CreateCheckpoint: where it lives and what it contains.
struct CheckpointInfo {
  std::string directory;
  std::vector<CheckpointFile> files;
  uint64_t total_bytes = 0;
};

/// Embedded LSM store. Logically single-writer, but safe to call from
/// multiple threads: one store-wide recursive mutex serializes every
/// public entry point (reads included — point gets consult the memtable
/// and the open-table LRU, both of which writers mutate). A returned
/// Iterator snapshots its sources at creation and can then be consumed
/// without the DB lock; the shared BlockCache below it has its own lock.
class DB {
 public:
  /// Opens (creating or recovering) a DB at `path`.
  static Result<std::unique_ptr<DB>> Open(Env* env, std::string path,
                                          Options options = Options());

  /// Materializes a checkpoint directory as a new DB at `path` by hard-
  /// linking its files, then opens it. This is the "state loading" step of
  /// a recovery (Table 1): only metadata work, no byte copies.
  static Result<std::unique_ptr<DB>> OpenFromCheckpoint(
      Env* env, const std::string& checkpoint_dir, std::string path,
      Options options = Options());

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Group-commits a batch atomically: one framed WAL append (and one
  /// buffer flush) covers every entry, then the whole batch is applied to
  /// the memtable over a contiguous sequence range. After a crash either
  /// the entire batch is recovered or none of it is.
  Status Write(const WriteBatch& batch);

  /// Point lookup; NotFound when absent or deleted. Reads at most one
  /// data block per consulted table (bloom filters skip most tables).
  Status Get(std::string_view key, std::string* value);

  /// Flushes the memtable to a new L0 table (no-op when empty).
  Status Flush();

  /// Fully compacts the tree into the deepest non-empty level.
  Status CompactRange();

  /// Creates a point-in-time checkpoint at `dir`: flush + hard links +
  /// manifest. The returned file list (names + sizes) is what Rhino's
  /// replication protocol ships around.
  Result<CheckpointInfo> CreateCheckpoint(const std::string& dir);

  /// Bytes across memtable + all table files.
  uint64_t ApproximateSize() const;
  uint64_t NumTableFiles() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return static_cast<uint64_t>(versions_.NumFiles());
  }
  int NumLevelFiles(int level) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return static_cast<int>(versions_.level(level).size());
  }
  /// Open SSTable handles currently held by the table LRU (bounded by
  /// Options::max_open_tables).
  size_t OpenTableCount() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return table_cache_.size();
  }
  const std::string& path() const { return path_; }

  /// Streaming merging iterator over a snapshot of the live view
  /// (memtable + all levels): a heap-based k-way merge over per-source
  /// block iterators that yields each visible key once in order, dropping
  /// tombstones and shadowed versions on the fly. Resident memory is the
  /// (bounded) memtable snapshot plus one block per table — independent of
  /// the size of the scanned range. The snapshot is stable: later Put /
  /// Flush / CompactRange calls do not change what it yields.
  class Iterator {
   public:
    Iterator();
    ~Iterator();
    Iterator(Iterator&&) noexcept;
    Iterator& operator=(Iterator&&) noexcept;

    bool Valid() const;
    void Next();
    const std::string& key() const;
    const std::string& value() const;

   private:
    friend class DB;
    struct Rep;
    std::unique_ptr<Rep> rep_;
  };

  /// Snapshot iterator over `[begin, end)`; empty `end` means unbounded.
  Result<Iterator> NewIterator(std::string_view begin = "",
                               std::string_view end = "");

  /// Number of flushes and compactions performed (for tests/benchmarks).
  uint64_t flush_count() const { return Stat(flush_count_); }
  uint64_t compaction_count() const { return Stat(compaction_count_); }
  /// Entries recovered from the WAL at the last Open (diagnostics).
  uint64_t wal_entries_recovered() const { return Stat(wal_recovered_); }
  /// WAL write-path diagnostics for this DB: framed appends (== commits),
  /// entries covered by them, and physical bytes written. One batched
  /// commit of N entries costs 1 append; N singleton commits cost N.
  uint64_t wal_appends() const { return Stat(wal_appends_); }
  uint64_t wal_records() const { return Stat(wal_records_); }
  uint64_t wal_bytes_written() const { return Stat(wal_bytes_); }
  /// High-water mark of bytes buffered by any table build (flush or
  /// compaction output) — the streaming write path keeps this at ~one
  /// block + tail regardless of table size.
  uint64_t write_peak_buffer_bytes() const {
    return Stat(write_peak_buffer_bytes_);
  }
  /// MANIFEST snapshot rewrites (at open and on edit-log rotation).
  uint64_t manifest_rotations() const { return Stat(manifest_rotations_); }

  /// The shared data-block cache this DB reads through.
  BlockCache* block_cache() const { return block_cache_.get(); }

  /// Installs the observability context and re-binds the cached metric
  /// handles (defaults to the process-wide one; counters are store-wide,
  /// not per-DB — one simulation opens hundreds of DBs).
  void SetObservability(obs::Observability* o) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    BindMetrics(o);
    block_cache_->SetObservability(o);
  }

 private:
  DB(Env* env, std::string path, Options options)
      : env_(env),
        path_(std::move(path)),
        options_(options),
        block_cache_(options.block_cache ? options.block_cache
                                         : BlockCache::Default()),
        versions_(options.num_levels) {
    BindMetrics(obs::Observability::Default());
  }

  void BindMetrics(obs::Observability* o);

  uint64_t Stat(const uint64_t& field) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return field;
  }

  std::string FilePath(const std::string& name) const { return path_ + "/" + name; }

  /// Rebuilds the MANIFEST log from versions_ (one snapshot record,
  /// written atomically via temp + rename) and reopens the append handle.
  Status RotateManifest();
  /// Frames and appends one VersionEdit; rotates once enough accumulate.
  Status AppendManifestEdit(const VersionEdit& edit);
  /// Replays a MANIFEST log (snapshot record + edits) into versions_.
  Status LoadManifest(std::string_view data);
  std::string WalPath() const { return FilePath("WAL"); }
  /// Opens the WAL append handle lazily (first commit after open/flush).
  Status EnsureWalFile();
  /// Appends one framed commit record covering `num_entries` mutations and
  /// flushes the handle (no-op when the WAL is disabled).
  Status CommitWal(std::string_view payload, uint64_t num_entries);
  /// Shared Put/Delete/Write tail: WAL commit + memtable apply + flush
  /// check, over a contiguous sequence range.
  Status CommitEntries(std::string_view payload, uint64_t num_entries);
  /// Replays a surviving WAL into the memtable. A torn final record
  /// (crash mid-append) is detected via the length+checksum framing and
  /// truncated away; everything before it is intact.
  Status RecoverWal();
  /// Opens a streaming sink for new table `number`, writing to a temp
  /// name so a crash mid-build never leaves a partial table under a name
  /// the MANIFEST could reference.
  Result<std::unique_ptr<WritableFile>> NewTableSink(uint64_t number);
  /// Completes a streamed build: finalizes the builder, closes the sink,
  /// renames temp -> final, and fills `meta` from the builder.
  Status FinishTableSink(uint64_t number, SSTableBuilder* builder,
                         std::unique_ptr<WritableFile> sink,
                         FileMetaData* meta);
  /// Returns an open handle to table `number` through the LRU table cache.
  Result<std::shared_ptr<SSTableReader>> OpenTable(uint64_t number);
  /// Drops `number` from the table cache (compaction removed the file).
  void EvictTable(uint64_t number);
  Status WriteLevel0Table();
  Status MaybeCompact();
  Status CompactLevel(int level);
  uint64_t MaxBytesForLevel(int level) const;
  /// Streams `inputs` through a k-way merge into files at `output_level`.
  Status DoCompaction(const std::vector<std::pair<int, FileMetaData>>& inputs,
                      int output_level);

  Env* env_;
  std::string path_;
  Options options_;
  /// Store-wide lock taken at every public entry point. Recursive because
  /// the write path re-enters public methods internally (a commit whose
  /// memtable fills calls Flush; CompactRange and CreateCheckpoint call
  /// Flush too). Private helpers assume it is held.
  mutable std::recursive_mutex mu_;
  std::shared_ptr<BlockCache> block_cache_;
  std::unique_ptr<MemTable> memtable_ = std::make_unique<MemTable>();
  VersionSet versions_;
  /// LRU of open table handles: `table_lru_` front is most recent; the
  /// map holds the handle plus its list position. Bounded by
  /// Options::max_open_tables — the fix for the unbounded growth the old
  /// per-DB map exhibited across long compaction histories.
  struct OpenTableEntry {
    std::shared_ptr<SSTableReader> table;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::list<uint64_t> table_lru_;
  std::unordered_map<uint64_t, OpenTableEntry> table_cache_;
  /// Open append handles; the WAL one is created lazily on first commit
  /// and dropped (file deleted) by Flush, the MANIFEST one lives from
  /// Open until destruction (rotation swaps it).
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<WritableFile> manifest_file_;
  uint64_t manifest_edits_ = 0;  // edits appended since the last snapshot
  uint64_t manifest_rotations_ = 0;
  uint64_t flush_count_ = 0;
  uint64_t compaction_count_ = 0;
  uint64_t wal_recovered_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t write_peak_buffer_bytes_ = 0;

  /// Hot-path metric handles (see BindMetrics).
  obs::Counter* puts_metric_ = nullptr;
  obs::Counter* deletes_metric_ = nullptr;
  obs::Counter* batch_commits_metric_ = nullptr;
  obs::Counter* wal_appends_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* gets_metric_ = nullptr;
  obs::Counter* flushes_metric_ = nullptr;
  obs::Counter* flush_bytes_metric_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* checkpoint_bytes_metric_ = nullptr;
  obs::Counter* table_cache_hits_metric_ = nullptr;
  obs::Counter* table_cache_misses_metric_ = nullptr;
  obs::Counter* table_cache_evictions_metric_ = nullptr;
};

}  // namespace rhino::lsm
