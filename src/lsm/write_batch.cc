#include "lsm/write_batch.h"

#include "common/serde.h"

namespace rhino::lsm {

void WriteBatch::Put(std::string_view key, std::string_view value) {
  BinaryWriter w(&rep_);
  w.PutU8(static_cast<uint8_t>(ValueType::kValue));
  w.PutString(key);
  w.PutString(value);
  ++count_;
  ++puts_;
}

void WriteBatch::Delete(std::string_view key) {
  BinaryWriter w(&rep_);
  w.PutU8(static_cast<uint8_t>(ValueType::kDeletion));
  w.PutString(key);
  w.PutString("");
  ++count_;
}

void WriteBatch::Clear() {
  rep_.clear();
  count_ = 0;
  puts_ = 0;
}

std::string WriteBatch::EncodePayload() const {
  std::string payload;
  BinaryWriter w(&payload);
  w.PutVarint(count_);
  payload.append(rep_);
  return payload;
}

Status WriteBatch::DecodeEntries(std::string_view entries, const Handler& fn) {
  BinaryReader r(entries);
  while (!r.AtEnd()) {
    uint8_t type = 0;
    std::string_view key, value;
    RHINO_RETURN_NOT_OK(r.GetU8(&type));
    RHINO_RETURN_NOT_OK(r.GetString(&key));
    RHINO_RETURN_NOT_OK(r.GetString(&value));
    RHINO_RETURN_NOT_OK(fn(static_cast<ValueType>(type), key, value));
  }
  return Status::OK();
}

Status WriteBatch::DecodePayload(std::string_view payload, uint64_t* count,
                                 std::string_view* entries) {
  BinaryReader r(payload);
  RHINO_RETURN_NOT_OK(r.GetVarint(count));
  *entries = payload.substr(r.position());
  return Status::OK();
}

}  // namespace rhino::lsm
