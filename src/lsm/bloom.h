#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

/// \file bloom.h
/// Bloom filter for SSTable point lookups (configured as in the paper's
/// RocksDB setup: bloom filters enabled for point lookups, ~10 bits/key).

namespace rhino::lsm {

/// Builds a bloom filter over a set of keys and serializes it to a string
/// appended to the SSTable.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10)
      : bits_per_key_(bits_per_key) {}

  void AddKey(std::string_view key) { hashes_.push_back(Fnv1a64(key)); }

  /// Serializes the filter: [bits ... , num_probes u8].
  std::string Finish() const;

 private:
  int bits_per_key_;
  std::vector<uint64_t> hashes_;
};

/// Queries a serialized bloom filter. "May match" semantics: never a false
/// negative, occasionally a false positive.
class BloomFilter {
 public:
  /// `data` must outlive the filter (it views the SSTable buffer).
  explicit BloomFilter(std::string_view data) : data_(data) {}

  bool MayContain(std::string_view key) const;

 private:
  std::string_view data_;
};

}  // namespace rhino::lsm
