#include "lsm/bloom.h"

#include <algorithm>

namespace rhino::lsm {

namespace {

/// Derives the k probe positions from one 64-bit hash (double hashing,
/// Kirsch–Mitzenmacher).
inline uint32_t Probe(uint64_t h, int i, uint32_t bits) {
  uint64_t h1 = h;
  uint64_t h2 = Mix64(h);
  return static_cast<uint32_t>((h1 + static_cast<uint64_t>(i) * h2) % bits);
}

}  // namespace

std::string BloomFilterBuilder::Finish() const {
  // Probe count that minimizes the false-positive rate: k = b * ln 2.
  int k = std::clamp(static_cast<int>(bits_per_key_ * 0.69), 1, 30);
  size_t bits = std::max<size_t>(64, hashes_.size() * bits_per_key_);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string out(bytes, '\0');
  for (uint64_t h : hashes_) {
    for (int i = 0; i < k; ++i) {
      uint32_t bit = Probe(h, i, static_cast<uint32_t>(bits));
      out[bit / 8] = static_cast<char>(out[bit / 8] | (1 << (bit % 8)));
    }
  }
  out.push_back(static_cast<char>(k));
  return out;
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (data_.size() < 2) return true;  // degenerate filter: match everything
  int k = static_cast<uint8_t>(data_.back());
  size_t bits = (data_.size() - 1) * 8;
  uint64_t h = Fnv1a64(key);
  for (int i = 0; i < k; ++i) {
    uint32_t bit = Probe(h, i, static_cast<uint32_t>(bits));
    if (!(static_cast<uint8_t>(data_[bit / 8]) & (1 << (bit % 8)))) return false;
  }
  return true;
}

}  // namespace rhino::lsm
