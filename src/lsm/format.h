#pragma once

#include <cstdint>
#include <string>

/// \file format.h
/// Entry types and file naming shared by the memtable, SSTables, and the
/// version set.

namespace rhino::lsm {

/// Kind of a stored entry. Deletions are tombstones that shadow older
/// values until compaction into the bottom level drops them.
enum class ValueType : uint8_t { kValue = 0, kDeletion = 1 };

/// A fully decoded entry. `seq` is a database-wide monotonically
/// increasing sequence number; among entries with equal user keys the one
/// with the largest `seq` is visible.
struct Entry {
  std::string key;
  uint64_t seq = 0;
  ValueType type = ValueType::kValue;
  std::string value;
};

/// "000042.sst"-style name for table file `number`.
std::string TableFileName(uint64_t number);

/// Name of the manifest file inside a DB or checkpoint directory.
inline const char* kManifestName = "MANIFEST";

}  // namespace rhino::lsm
