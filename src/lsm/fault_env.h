#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/random.h"
#include "lsm/env.h"

/// \file fault_env.h
/// Fault-injecting decorator over any `Env` (MemEnv or PosixEnv).
///
/// Generalizes the test-local FailingEnv idiom into a reusable,
/// thread-safe wrapper: a crash-sweep budget (the Nth write-class
/// operation fails and every later one keeps failing — the machine
/// died), a seeded probabilistic fault rate for transient-I/O chaos, and
/// injected per-operation latency for slow-disk scenarios under real
/// threads. A failing handle append *tears*: half of the record's bytes
/// reach the file before the error — the torn-tail shape the WAL framing
/// exists to detect, now reproducible on a real filesystem too.
///
/// Thread safety: all mutable fault state sits behind one mutex, so DBs
/// on different realtime strands can share a FaultEnv. The wrapper must
/// outlive every handle it opened.

namespace rhino::lsm {

class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env* base, uint64_t seed = 42) : base_(base), rng_(seed) {}

  /// Crash sweep: the next `n` write-class operations (handle appends and
  /// flushes, whole-file writes, renames) succeed, then every later one
  /// fails. -1 disables the budget (heals a "crashed" Env).
  void SetWriteBudget(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = n;
  }

  /// Transient chaos: each write-class operation independently fails with
  /// probability `p` (seeded, deterministic sequence). 0 disables.
  void SetWriteFailProbability(double p) {
    std::lock_guard<std::mutex> lock(mu_);
    write_fail_prob_ = p;
  }

  /// Each read-class operation independently fails with probability `p`.
  void SetReadFailProbability(double p) {
    std::lock_guard<std::mutex> lock(mu_);
    read_fail_prob_ = p;
  }

  /// Busy-waits are wrong under TSan and sleeps are wall-clock: injected
  /// latency is applied with std::this_thread::sleep_for on every file
  /// operation. 0 disables. Only meaningful under RealtimeExecutor /
  /// plain tests — simulated time does not advance while sleeping.
  void SetLatencyUs(int64_t us) {
    std::lock_guard<std::mutex> lock(mu_);
    latency_us_ = us;
  }

  /// Whether a failing Append tears (default) or fails cleanly.
  void SetTornAppends(bool torn) {
    std::lock_guard<std::mutex> lock(mu_);
    torn_appends_ = torn;
  }

  /// Clears all fault state (budget, probabilities, latency).
  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = -1;
    write_fail_prob_ = 0;
    read_fail_prob_ = 0;
    latency_us_ = 0;
  }

  /// Total faults injected so far (reads + writes + tears).
  uint64_t injected_faults() const {
    return injected_faults_.load(std::memory_order_relaxed);
  }

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status ReadFileRange(const std::string& path, uint64_t offset, size_t n,
                       std::string* out) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status LinkFile(const std::string& src, const std::string& dst) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;

  /// Decides the fate of one write-class operation and decrements the
  /// budget. Returns true when the operation must fail.
  bool ShouldFailWrite();
  bool ShouldFailRead();
  /// True while torn appends are enabled (sampled under the lock).
  bool TornAppends();
  void MaybeDelay();

  Env* base_;
  mutable std::mutex mu_;
  Random rng_;
  int budget_ = -1;
  double write_fail_prob_ = 0;
  double read_fail_prob_ = 0;
  int64_t latency_us_ = 0;
  bool torn_appends_ = true;
  std::atomic<uint64_t> injected_faults_{0};
};

}  // namespace rhino::lsm
