#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

/// \file arena.h
/// Bump allocator backing one memtable's nodes and byte payloads.
///
/// All allocations live until the arena is destroyed — exactly the
/// memtable's lifecycle: entries accumulate until the flush threshold,
/// then the whole table (and this arena with it) is dropped at once. That
/// turns the write path's per-entry `new` + per-string heap traffic into a
/// pointer bump, and the flush-time teardown of a full memtable into a
/// handful of block frees instead of one `delete` per node.
///
/// Overwritten values are not reclaimed (the old bytes stay in their block
/// until the flush); `MemoryUsage()` reports the true resident footprint
/// including that garbage, which is what flush sizing should see.

namespace rhino::lsm {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized memory with no alignment guarantee
  /// (byte payloads).
  char* Allocate(size_t bytes) {
    if (bytes <= remaining_) {
      char* out = ptr_;
      ptr_ += bytes;
      remaining_ -= bytes;
      return out;
    }
    return AllocateFallback(bytes);
  }

  /// Returns `bytes` of memory aligned for any object type (node headers).
  char* AllocateAligned(size_t bytes) {
    constexpr size_t kAlign = alignof(std::max_align_t);
    size_t pad = (kAlign - reinterpret_cast<uintptr_t>(ptr_) % kAlign) % kAlign;
    if (bytes + pad <= remaining_) {
      char* out = ptr_ + pad;
      ptr_ += bytes + pad;
      remaining_ -= bytes + pad;
      return out;
    }
    // Fresh blocks come from operator new and are maximally aligned.
    return AllocateFallback(bytes);
  }

  /// Copies `data` into the arena and returns a view of the copy.
  std::string_view CopyString(std::string_view data) {
    if (data.empty()) return {};
    char* mem = Allocate(data.size());
    std::memcpy(mem, data.data(), data.size());
    return {mem, data.size()};
  }

  /// Bytes reserved from the heap (allocated blocks, including the unused
  /// tail of the current block and any overwritten garbage).
  uint64_t MemoryUsage() const { return usage_; }

 private:
  static constexpr size_t kBlockBytes = 64 * 1024;

  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockBytes / 4) {
      // Large payloads get their own block so the current block's tail is
      // not wasted.
      return NewBlock(bytes);
    }
    char* block = NewBlock(kBlockBytes);
    ptr_ = block + bytes;
    remaining_ = kBlockBytes - bytes;
    return block;
  }

  char* NewBlock(size_t bytes) {
    blocks_.push_back(std::make_unique<char[]>(bytes));
    usage_ += bytes;
    return blocks_.back().get();
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  uint64_t usage_ = 0;
};

}  // namespace rhino::lsm
