#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/serde.h"

namespace rhino::lsm {

namespace {

/// Appends one entry to a block buffer.
void EncodeEntry(std::string* out, std::string_view key, uint64_t seq,
                 ValueType type, std::string_view value) {
  BinaryWriter w(out);
  w.PutVarint(key.size());
  out->append(key.data(), key.size());
  w.PutVarint(seq);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutVarint(value.size());
  out->append(value.data(), value.size());
}

/// Decodes one entry starting at `*pos` in `data`; advances `*pos`.
Status DecodeEntry(std::string_view data, size_t* pos, Entry* entry) {
  BinaryReader r(data.substr(*pos));
  uint64_t klen = 0;
  RHINO_RETURN_NOT_OK(r.GetVarint(&klen));
  if (r.remaining() < klen) return Status::Corruption("sst entry key");
  entry->key.assign(data.substr(*pos + r.position(), klen));
  BinaryReader r2(data.substr(*pos + r.position() + klen));
  uint64_t seq = 0;
  uint8_t type = 0;
  uint64_t vlen = 0;
  RHINO_RETURN_NOT_OK(r2.GetVarint(&seq));
  RHINO_RETURN_NOT_OK(r2.GetU8(&type));
  RHINO_RETURN_NOT_OK(r2.GetVarint(&vlen));
  size_t voff = *pos + r.position() + klen + r2.position();
  if (voff + vlen > data.size()) return Status::Corruption("sst entry value");
  entry->seq = seq;
  entry->type = static_cast<ValueType>(type);
  entry->value.assign(data.substr(voff, vlen));
  *pos = voff + vlen;
  return Status::OK();
}

/// RandomAccessFile adapter over an owned in-memory buffer, for readers
/// opened on a byte string instead of an Env path.
class StringFile : public RandomAccessFile {
 public:
  explicit StringFile(std::shared_ptr<const std::string> content)
      : content_(std::move(content)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    if (offset >= content_->size()) return Status::OK();
    size_t len = std::min<uint64_t>(n, content_->size() - offset);
    out->assign(*content_, static_cast<size_t>(offset), len);
    return Status::OK();
  }

  uint64_t Size() const override { return content_->size(); }

 private:
  std::shared_ptr<const std::string> content_;
};

}  // namespace

// -------------------------------------------------------- SSTableBuilder --

void SSTableBuilder::Add(std::string_view key, uint64_t seq, ValueType type,
                         std::string_view value) {
  RHINO_DCHECK(num_entries_ == 0 || key > largest_)
      << "keys must be added in strictly increasing order";
  if (num_entries_ == 0) smallest_.assign(key);
  largest_.assign(key);
  bloom_.AddKey(key);
  EncodeEntry(&block_, key, seq, type, value);
  ++num_entries_;
  peak_buffer_bytes_ = std::max<uint64_t>(peak_buffer_bytes_, block_.size());
  if (block_.size() >= block_size_) FlushBlock();
}

void SSTableBuilder::FlushBlock() {
  if (block_.empty()) return;
  index_.push_back(IndexEntry{largest_, data_offset_, block_.size()});
  data_offset_ += block_.size();
  if (sink_ != nullptr) {
    if (sink_status_.ok()) sink_status_ = sink_->Append(block_);
  } else {
    file_ += block_;
  }
  block_.clear();
}

std::string SSTableBuilder::EncodeTail() {
  std::string tail;
  uint64_t index_off = data_offset_;
  {
    BinaryWriter w(&tail);
    w.PutVarint(index_.size());
    for (const auto& e : index_) {
      w.PutString(e.last_key);
      w.PutVarint(e.offset);
      w.PutVarint(e.size);
    }
  }
  uint64_t index_len = tail.size();
  uint64_t bloom_off = index_off + index_len;
  tail += bloom_.Finish();
  uint64_t bloom_len = index_off + tail.size() - bloom_off;
  BinaryWriter w(&tail);
  w.PutU64(index_off);
  w.PutU64(index_len);
  w.PutU64(bloom_off);
  w.PutU64(bloom_len);
  w.PutU64(num_entries_);
  w.PutU64(kSstMagic);
  return tail;
}

std::string SSTableBuilder::Finish() {
  RHINO_DCHECK(sink_ == nullptr) << "streaming builds finalize via FinishStream";
  FlushBlock();
  std::string tail = EncodeTail();
  peak_buffer_bytes_ = std::max<uint64_t>(peak_buffer_bytes_, tail.size());
  file_ += tail;
  file_size_ = file_.size();
  return std::move(file_);
}

Status SSTableBuilder::FinishStream() {
  RHINO_DCHECK(sink_ != nullptr) << "in-memory builds finalize via Finish";
  FlushBlock();
  RHINO_RETURN_NOT_OK(sink_status_);
  std::string tail = EncodeTail();
  peak_buffer_bytes_ = std::max<uint64_t>(peak_buffer_bytes_, tail.size());
  RHINO_RETURN_NOT_OK(sink_->Append(tail));
  RHINO_RETURN_NOT_OK(sink_->Flush());
  file_size_ = data_offset_ + tail.size();
  return Status::OK();
}

// --------------------------------------------------------- SSTableReader --

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    std::unique_ptr<RandomAccessFile> file, BlockCache* cache,
    ReadStats* stats) {
  constexpr size_t kFooter = 48;
  uint64_t file_size = file->Size();
  if (file_size < kFooter) return Status::Corruption("sst too small");
  std::string footer_data;
  RHINO_RETURN_NOT_OK(file->Read(file_size - kFooter, kFooter, &footer_data));
  if (footer_data.size() != kFooter) return Status::Corruption("sst footer");
  BinaryReader footer(footer_data);
  uint64_t index_off, index_len, bloom_off, bloom_len, num_entries, magic;
  RHINO_RETURN_NOT_OK(footer.GetU64(&index_off));
  RHINO_RETURN_NOT_OK(footer.GetU64(&index_len));
  RHINO_RETURN_NOT_OK(footer.GetU64(&bloom_off));
  RHINO_RETURN_NOT_OK(footer.GetU64(&bloom_len));
  RHINO_RETURN_NOT_OK(footer.GetU64(&num_entries));
  RHINO_RETURN_NOT_OK(footer.GetU64(&magic));
  if (magic != kSstMagic) return Status::Corruption("bad sst magic");
  if (index_off + index_len > file_size || bloom_off + bloom_len > file_size) {
    return Status::Corruption("bad sst footer offsets");
  }

  auto table = std::shared_ptr<SSTableReader>(new SSTableReader());
  table->file_ = std::move(file);
  table->cache_ = cache;
  table->stats_ = stats;
  if (cache != nullptr) table->cache_id_ = cache->NewTableId();
  table->num_entries_ = num_entries;
  RHINO_RETURN_NOT_OK(
      table->file_->Read(bloom_off, bloom_len, &table->bloom_));
  if (table->bloom_.size() != bloom_len) {
    return Status::Corruption("sst bloom truncated");
  }

  std::string index_data;
  RHINO_RETURN_NOT_OK(table->file_->Read(index_off, index_len, &index_data));
  if (index_data.size() != index_len) {
    return Status::Corruption("sst index truncated");
  }
  BinaryReader idx(index_data);
  uint64_t blocks;
  RHINO_RETURN_NOT_OK(idx.GetVarint(&blocks));
  table->index_.reserve(blocks);
  for (uint64_t i = 0; i < blocks; ++i) {
    IndexEntry e;
    RHINO_RETURN_NOT_OK(idx.GetString(&e.last_key));
    RHINO_RETURN_NOT_OK(idx.GetVarint(&e.offset));
    RHINO_RETURN_NOT_OK(idx.GetVarint(&e.size));
    if (e.offset + e.size > index_off) {
      return Status::Corruption("sst index entry out of bounds");
    }
    table->index_.push_back(std::move(e));
  }
  if (!table->index_.empty() && num_entries > 0) {
    // Recover smallest/largest from the first data block's first entry and
    // the last block's index key. This is the only data-block read at open.
    RHINO_ASSIGN_OR_RETURN(auto first_block, table->ReadBlock(0));
    Entry first;
    size_t pos = 0;
    RHINO_RETURN_NOT_OK(
        DecodeEntry(std::string_view(*first_block), &pos, &first));
    table->smallest_ = first.key;
    table->largest_ = table->index_.back().last_key;
  }
  return table;
}

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    std::shared_ptr<const std::string> contents) {
  return Open(std::make_unique<StringFile>(std::move(contents)), nullptr);
}

SSTableReader::~SSTableReader() {
  if (cache_ != nullptr) cache_->EraseTable(cache_id_);
}

Result<BlockCache::BlockHandle> SSTableReader::ReadBlock(size_t idx) const {
  const IndexEntry& e = index_[idx];
  if (cache_ != nullptr) {
    if (auto block = cache_->Lookup(cache_id_, static_cast<uint32_t>(idx))) {
      return block;
    }
  }
  auto block = std::make_shared<std::string>();
  RHINO_RETURN_NOT_OK(
      file_->Read(e.offset, static_cast<size_t>(e.size), block.get()));
  if (block->size() != e.size) return Status::Corruption("sst block truncated");
  if (stats_ != nullptr) {
    stats_->bytes_read.fetch_add(e.size, std::memory_order_relaxed);
    stats_->blocks_read.fetch_add(1, std::memory_order_relaxed);
    if (auto* metric = stats_->bytes_metric.load(std::memory_order_relaxed)) {
      metric->Increment(e.size);
    }
  }
  BlockCache::BlockHandle handle = std::move(block);
  if (cache_ != nullptr) {
    cache_->Insert(cache_id_, static_cast<uint32_t>(idx), handle);
  }
  return handle;
}

Status SSTableReader::Get(std::string_view key, Entry* entry) const {
  if (index_.empty()) return Status::NotFound("empty table");
  if (!BloomFilter(bloom_).MayContain(key)) {
    return Status::NotFound("bloom miss");
  }
  // First block whose last key is >= key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index_.end()) return Status::NotFound("past last block");
  RHINO_ASSIGN_OR_RETURN(
      auto block, ReadBlock(static_cast<size_t>(it - index_.begin())));
  std::string_view data(*block);
  size_t pos = 0;
  while (pos < data.size()) {
    RHINO_RETURN_NOT_OK(DecodeEntry(data, &pos, entry));
    if (entry->key == key) return Status::OK();
    if (entry->key > key) break;
  }
  return Status::NotFound("key not in block");
}

SSTableReader::Iterator::Iterator(const SSTableReader* table) : table_(table) {
  if (!table_->index_.empty()) {
    block_idx_ = 0;
    pos_ = 0;
    ParseCurrent();
  }
}

void SSTableReader::Iterator::Seek(std::string_view key) {
  const auto& index = table_->index_;
  auto it = std::lower_bound(
      index.begin(), index.end(), key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index.end()) {
    valid_ = false;
    block_ = nullptr;
    return;
  }
  block_idx_ = static_cast<size_t>(it - index.begin());
  block_ = nullptr;
  pos_ = 0;
  ParseCurrent();
  // The target lives in this block (its last key is >= key), so a linear
  // scan within it suffices.
  while (valid_ && entry_.key < key) ParseCurrent();
}

void SSTableReader::Iterator::ParseCurrent() {
  while (true) {
    if (block_idx_ >= table_->index_.size()) {
      valid_ = false;
      block_ = nullptr;
      return;
    }
    if (block_ == nullptr) {
      auto block = table_->ReadBlock(block_idx_);
      RHINO_CHECK_OK(block.status());
      block_ = *block;
      pos_ = 0;
    }
    if (pos_ < block_->size()) break;
    ++block_idx_;
    block_ = nullptr;
  }
  Status st = DecodeEntry(std::string_view(*block_), &pos_, &entry_);
  RHINO_CHECK_OK(st);
  valid_ = true;
}

void SSTableReader::Iterator::Next() {
  RHINO_DCHECK(valid_);
  ParseCurrent();
}

std::string TableFileName(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return buf;
}

}  // namespace rhino::lsm
