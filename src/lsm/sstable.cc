#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/serde.h"

namespace rhino::lsm {

namespace {

/// Appends one entry to a block buffer.
void EncodeEntry(std::string* out, std::string_view key, uint64_t seq,
                 ValueType type, std::string_view value) {
  BinaryWriter w(out);
  w.PutVarint(key.size());
  out->append(key.data(), key.size());
  w.PutVarint(seq);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutVarint(value.size());
  out->append(value.data(), value.size());
}

/// Decodes one entry starting at `*pos` in `data`; advances `*pos`.
Status DecodeEntry(std::string_view data, size_t* pos, Entry* entry) {
  BinaryReader r(data.substr(*pos));
  uint64_t klen = 0;
  RHINO_RETURN_NOT_OK(r.GetVarint(&klen));
  if (r.remaining() < klen) return Status::Corruption("sst entry key");
  entry->key.assign(data.substr(*pos + r.position(), klen));
  BinaryReader r2(data.substr(*pos + r.position() + klen));
  uint64_t seq = 0;
  uint8_t type = 0;
  uint64_t vlen = 0;
  RHINO_RETURN_NOT_OK(r2.GetVarint(&seq));
  RHINO_RETURN_NOT_OK(r2.GetU8(&type));
  RHINO_RETURN_NOT_OK(r2.GetVarint(&vlen));
  size_t voff = *pos + r.position() + klen + r2.position();
  if (voff + vlen > data.size()) return Status::Corruption("sst entry value");
  entry->seq = seq;
  entry->type = static_cast<ValueType>(type);
  entry->value.assign(data.substr(voff, vlen));
  *pos = voff + vlen;
  return Status::OK();
}

}  // namespace

// -------------------------------------------------------- SSTableBuilder --

void SSTableBuilder::Add(std::string_view key, uint64_t seq, ValueType type,
                         std::string_view value) {
  RHINO_DCHECK(num_entries_ == 0 || key > largest_)
      << "keys must be added in strictly increasing order";
  if (num_entries_ == 0) smallest_.assign(key);
  largest_.assign(key);
  bloom_.AddKey(key);
  EncodeEntry(&block_, key, seq, type, value);
  ++num_entries_;
  if (block_.size() >= block_size_) FlushBlock();
}

void SSTableBuilder::FlushBlock() {
  if (block_.empty()) return;
  index_.push_back(IndexEntry{largest_, file_.size(), block_.size()});
  file_ += block_;
  block_.clear();
}

std::string SSTableBuilder::Finish() {
  FlushBlock();
  uint64_t index_off = file_.size();
  {
    BinaryWriter w(&file_);
    w.PutVarint(index_.size());
    for (const auto& e : index_) {
      w.PutString(e.last_key);
      w.PutVarint(e.offset);
      w.PutVarint(e.size);
    }
  }
  uint64_t index_len = file_.size() - index_off;
  uint64_t bloom_off = file_.size();
  file_ += bloom_.Finish();
  uint64_t bloom_len = file_.size() - bloom_off;
  BinaryWriter w(&file_);
  w.PutU64(index_off);
  w.PutU64(index_len);
  w.PutU64(bloom_off);
  w.PutU64(bloom_len);
  w.PutU64(num_entries_);
  w.PutU64(kSstMagic);
  return std::move(file_);
}

// --------------------------------------------------------- SSTableReader --

Result<std::shared_ptr<SSTableReader>> SSTableReader::Open(
    std::shared_ptr<const std::string> contents) {
  constexpr size_t kFooter = 48;
  if (contents->size() < kFooter) return Status::Corruption("sst too small");
  BinaryReader footer(
      std::string_view(*contents).substr(contents->size() - kFooter));
  uint64_t index_off, index_len, bloom_off, bloom_len, num_entries, magic;
  RHINO_RETURN_NOT_OK(footer.GetU64(&index_off));
  RHINO_RETURN_NOT_OK(footer.GetU64(&index_len));
  RHINO_RETURN_NOT_OK(footer.GetU64(&bloom_off));
  RHINO_RETURN_NOT_OK(footer.GetU64(&bloom_len));
  RHINO_RETURN_NOT_OK(footer.GetU64(&num_entries));
  RHINO_RETURN_NOT_OK(footer.GetU64(&magic));
  if (magic != kSstMagic) return Status::Corruption("bad sst magic");
  if (index_off + index_len > contents->size() ||
      bloom_off + bloom_len > contents->size()) {
    return Status::Corruption("bad sst footer offsets");
  }

  auto table = std::shared_ptr<SSTableReader>(new SSTableReader());
  table->contents_ = std::move(contents);
  table->num_entries_ = num_entries;
  table->bloom_data_ =
      std::string_view(*table->contents_).substr(bloom_off, bloom_len);

  BinaryReader idx(std::string_view(*table->contents_).substr(index_off, index_len));
  uint64_t blocks;
  RHINO_RETURN_NOT_OK(idx.GetVarint(&blocks));
  table->index_.reserve(blocks);
  for (uint64_t i = 0; i < blocks; ++i) {
    IndexEntry e;
    RHINO_RETURN_NOT_OK(idx.GetString(&e.last_key));
    RHINO_RETURN_NOT_OK(idx.GetVarint(&e.offset));
    RHINO_RETURN_NOT_OK(idx.GetVarint(&e.size));
    table->index_.push_back(std::move(e));
  }
  if (!table->index_.empty() && num_entries > 0) {
    // Recover smallest/largest by decoding the first entry and using the
    // last block's index key.
    Entry first;
    size_t pos = static_cast<size_t>(table->index_.front().offset);
    RHINO_RETURN_NOT_OK(
        DecodeEntry(std::string_view(*table->contents_), &pos, &first));
    table->smallest_ = first.key;
    table->largest_ = table->index_.back().last_key;
  }
  return table;
}

Status SSTableReader::Get(std::string_view key, Entry* entry) const {
  if (index_.empty()) return Status::NotFound("empty table");
  if (!BloomFilter(bloom_data_).MayContain(key)) {
    return Status::NotFound("bloom miss");
  }
  // First block whose last key is >= key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, std::string_view k) { return e.last_key < k; });
  if (it == index_.end()) return Status::NotFound("past last block");
  size_t pos = static_cast<size_t>(it->offset);
  size_t end = pos + static_cast<size_t>(it->size);
  std::string_view data(*contents_);
  while (pos < end) {
    RHINO_RETURN_NOT_OK(DecodeEntry(data, &pos, entry));
    if (entry->key == key) return Status::OK();
    if (entry->key > key) break;
  }
  return Status::NotFound("key not in block");
}

SSTableReader::Iterator::Iterator(const SSTableReader* table) : table_(table) {
  if (!table_->index_.empty()) {
    block_idx_ = 0;
    pos_ = static_cast<size_t>(table_->index_[0].offset);
    block_end_ = pos_ + static_cast<size_t>(table_->index_[0].size);
    ParseCurrent();
  }
}

void SSTableReader::Iterator::ParseCurrent() {
  while (pos_ >= block_end_) {
    ++block_idx_;
    if (block_idx_ >= table_->index_.size()) {
      valid_ = false;
      return;
    }
    pos_ = static_cast<size_t>(table_->index_[block_idx_].offset);
    block_end_ = pos_ + static_cast<size_t>(table_->index_[block_idx_].size);
  }
  Status st = DecodeEntry(std::string_view(*table_->contents_), &pos_, &entry_);
  RHINO_CHECK_OK(st);
  valid_ = true;
}

void SSTableReader::Iterator::Next() {
  RHINO_DCHECK(valid_);
  ParseCurrent();
}

std::string TableFileName(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return buf;
}

}  // namespace rhino::lsm
