#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/env.h"
#include "lsm/format.h"

/// \file sstable.h
/// Immutable sorted string table.
///
/// Layout (little endian):
///
///     data block*   entries: varint klen | key | varint seq | u8 type
///                            | varint vlen | value
///     index block   per data block: varint last_key_len | last_key
///                            | varint offset | varint size
///     bloom block   serialized BloomFilter over user keys
///     footer        u64 index_off | u64 index_len | u64 bloom_off
///                   | u64 bloom_len | u64 num_entries | u64 magic
///
/// Builds are streaming: given a `WritableFile` sink, the builder appends
/// each data block as it completes and never holds more than one block
/// (plus the index under construction) in memory — the write-side mirror
/// of the reader's block-granular bound. Writers stream into a temp name
/// and rename on finish, so the immutable-SST model that makes checkpoint
/// hard-linking safe is preserved. A builder without a sink accumulates
/// the whole table in memory (tests, tools).
///
/// Readers are block-granular: Open() fetches only the footer, index, and
/// bloom filter; data blocks are read positionally on demand and cached in
/// a shared byte-budgeted BlockCache. A reader therefore costs O(index)
/// memory, not O(file), and a full-table scan costs O(one block) resident
/// bytes beyond the cache budget.

namespace rhino::lsm {

constexpr uint64_t kSstMagic = 0x52484e4f53535431ull;  // "RHNOSST1"

/// Accumulates sorted entries and serializes an SSTable, streaming
/// finished blocks into a `WritableFile` when one is attached.
class SSTableBuilder {
 public:
  /// In-memory builder: Finish() returns the whole file as a string.
  explicit SSTableBuilder(size_t block_size = 4096, int bloom_bits_per_key = 10)
      : block_size_(block_size), bloom_(bloom_bits_per_key) {}

  /// Streaming builder: completed data blocks are appended to `sink` as
  /// they fill, bounding the builder's resident memory at ~one block plus
  /// the index; finalize with FinishStream(). `sink` must outlive the
  /// builder and is not closed by it.
  SSTableBuilder(WritableFile* sink, size_t block_size, int bloom_bits_per_key)
      : block_size_(block_size), bloom_(bloom_bits_per_key), sink_(sink) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(std::string_view key, uint64_t seq, ValueType type,
           std::string_view value);

  /// Finalizes and returns the file contents (in-memory builders only).
  /// The builder is consumed.
  std::string Finish();

  /// Finalizes a streaming build: flushes the last data block, appends
  /// index + bloom + footer to the sink, and flushes it. The builder is
  /// consumed; the total file size is in file_size().
  Status FinishStream();

  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  /// Bytes of data blocks written so far (used to split compaction output).
  uint64_t data_bytes() const { return data_offset_ + block_.size(); }
  /// Total file size after Finish/FinishStream.
  uint64_t file_size() const { return file_size_; }
  /// High-water mark of bytes buffered in the builder (current block plus,
  /// at finish, the serialized index/bloom tail) — the write-side memory
  /// bound the streaming path guarantees.
  uint64_t peak_buffer_bytes() const { return peak_buffer_bytes_; }
  bool empty() const { return num_entries_ == 0; }

 private:
  void FlushBlock();
  /// Serializes index + bloom + footer (everything after the data blocks).
  std::string EncodeTail();

  size_t block_size_;
  BloomFilterBuilder bloom_;
  WritableFile* sink_ = nullptr;  // null: in-memory build into file_
  Status sink_status_;
  std::string file_;   // completed data blocks (in-memory mode only)
  std::string block_;  // block under construction
  uint64_t data_offset_ = 0;  // bytes of completed data blocks
  uint64_t file_size_ = 0;
  uint64_t peak_buffer_bytes_ = 0;
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<IndexEntry> index_;
  std::string smallest_;
  std::string largest_;
  uint64_t num_entries_ = 0;
};

/// Block-granular SSTable reader.
///
/// The RandomAccessFile pins the underlying content (an open fd / shared
/// buffer), so a reader — and any iterator holding one — keeps working
/// after the file name is deleted by a compaction. When a `cache` is
/// given, data blocks are shared through it under a reader-unique id and
/// erased again when the reader closes.
class SSTableReader {
 public:
  /// Physical-read accounting shared by every reader of one DB: bytes and
  /// blocks actually fetched from the file (block-cache misses), the "real
  /// reads" numerator of the store's read-amplification ratio. The owner
  /// (DB) must outlive the readers it hands the pointer to. `bytes_metric`
  /// mirrors the byte count into the obs registry when bound.
  struct ReadStats {
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> blocks_read{0};
    std::atomic<obs::Counter*> bytes_metric{nullptr};
  };

  /// Opens via positional reads: footer + index + bloom eagerly, data
  /// blocks on demand through `cache` (nullptr disables caching). When
  /// `stats` is non-null, every physical block fetch is charged to it.
  static Result<std::shared_ptr<SSTableReader>> Open(
      std::unique_ptr<RandomAccessFile> file, BlockCache* cache,
      ReadStats* stats = nullptr);

  /// Opens over an in-memory buffer without a cache (tests, tools).
  static Result<std::shared_ptr<SSTableReader>> Open(
      std::shared_ptr<const std::string> contents);

  ~SSTableReader();
  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  /// Point lookup through bloom filter + block binary search; reads at
  /// most one data block. Returns NotFound when absent; tombstones are
  /// returned as entries with `type == kDeletion` (the DB layer interprets
  /// them).
  Status Get(std::string_view key, Entry* entry) const;

  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  uint64_t file_size() const { return file_->Size(); }
  size_t num_blocks() const { return index_.size(); }

  /// Forward iterator over entries in key order. Holds one data block at a
  /// time; resident memory is O(block), not O(file).
  class Iterator {
   public:
    explicit Iterator(const SSTableReader* table);
    /// Repositions to the first entry with key >= `key`.
    void Seek(std::string_view key);
    bool Valid() const { return valid_; }
    void Next();
    const std::string& key() const { return entry_.key; }
    const Entry& entry() const { return entry_; }

   private:
    /// Loads block `block_idx_` and decodes the entry at `pos_`, walking
    /// into following blocks when the current one is exhausted.
    void ParseCurrent();

    const SSTableReader* table_;
    size_t block_idx_ = 0;
    BlockCache::BlockHandle block_;  // pinned current block
    size_t pos_ = 0;                 // offset within block_
    Entry entry_;
    bool valid_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  SSTableReader() = default;

  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };

  /// Fetches data block `idx`, via the cache when one is attached.
  Result<BlockCache::BlockHandle> ReadBlock(size_t idx) const;

  std::unique_ptr<RandomAccessFile> file_;
  BlockCache* cache_ = nullptr;
  ReadStats* stats_ = nullptr;
  uint64_t cache_id_ = 0;
  std::vector<IndexEntry> index_;
  std::string bloom_;
  uint64_t num_entries_ = 0;
  std::string smallest_;
  std::string largest_;
};

}  // namespace rhino::lsm
