#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "lsm/block_cache.h"
#include "lsm/bloom.h"
#include "lsm/env.h"
#include "lsm/format.h"

/// \file sstable.h
/// Immutable sorted string table.
///
/// Layout (little endian):
///
///     data block*   entries: varint klen | key | varint seq | u8 type
///                            | varint vlen | value
///     index block   per data block: varint last_key_len | last_key
///                            | varint offset | varint size
///     bloom block   serialized BloomFilter over user keys
///     footer        u64 index_off | u64 index_len | u64 bloom_off
///                   | u64 bloom_len | u64 num_entries | u64 magic
///
/// Tables are built entirely in memory (memtables are bounded) and written
/// with one atomic Env::WriteFile, mirroring RocksDB's immutable-SST
/// model that makes checkpoint hard-linking safe.
///
/// Readers are block-granular: Open() fetches only the footer, index, and
/// bloom filter; data blocks are read positionally on demand and cached in
/// a shared byte-budgeted BlockCache. A reader therefore costs O(index)
/// memory, not O(file), and a full-table scan costs O(one block) resident
/// bytes beyond the cache budget.

namespace rhino::lsm {

constexpr uint64_t kSstMagic = 0x52484e4f53535431ull;  // "RHNOSST1"

/// Accumulates sorted entries and serializes an SSTable.
class SSTableBuilder {
 public:
  explicit SSTableBuilder(size_t block_size = 4096, int bloom_bits_per_key = 10)
      : block_size_(block_size), bloom_(bloom_bits_per_key) {}

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(std::string_view key, uint64_t seq, ValueType type,
           std::string_view value);

  /// Finalizes and returns the file contents. The builder is consumed.
  std::string Finish();

  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  /// Bytes of data blocks written so far (used to split compaction output).
  uint64_t data_bytes() const { return file_.size() + block_.size(); }
  bool empty() const { return num_entries_ == 0; }

 private:
  void FlushBlock();

  size_t block_size_;
  BloomFilterBuilder bloom_;
  std::string file_;   // completed data blocks
  std::string block_;  // block under construction
  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<IndexEntry> index_;
  std::string smallest_;
  std::string largest_;
  uint64_t num_entries_ = 0;
};

/// Block-granular SSTable reader.
///
/// The RandomAccessFile pins the underlying content (an open fd / shared
/// buffer), so a reader — and any iterator holding one — keeps working
/// after the file name is deleted by a compaction. When a `cache` is
/// given, data blocks are shared through it under a reader-unique id and
/// erased again when the reader closes.
class SSTableReader {
 public:
  /// Opens via positional reads: footer + index + bloom eagerly, data
  /// blocks on demand through `cache` (nullptr disables caching).
  static Result<std::shared_ptr<SSTableReader>> Open(
      std::unique_ptr<RandomAccessFile> file, BlockCache* cache);

  /// Opens over an in-memory buffer without a cache (tests, tools).
  static Result<std::shared_ptr<SSTableReader>> Open(
      std::shared_ptr<const std::string> contents);

  ~SSTableReader();
  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  /// Point lookup through bloom filter + block binary search; reads at
  /// most one data block. Returns NotFound when absent; tombstones are
  /// returned as entries with `type == kDeletion` (the DB layer interprets
  /// them).
  Status Get(std::string_view key, Entry* entry) const;

  uint64_t num_entries() const { return num_entries_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  uint64_t file_size() const { return file_->Size(); }
  size_t num_blocks() const { return index_.size(); }

  /// Forward iterator over entries in key order. Holds one data block at a
  /// time; resident memory is O(block), not O(file).
  class Iterator {
   public:
    explicit Iterator(const SSTableReader* table);
    /// Repositions to the first entry with key >= `key`.
    void Seek(std::string_view key);
    bool Valid() const { return valid_; }
    void Next();
    const std::string& key() const { return entry_.key; }
    const Entry& entry() const { return entry_; }

   private:
    /// Loads block `block_idx_` and decodes the entry at `pos_`, walking
    /// into following blocks when the current one is exhausted.
    void ParseCurrent();

    const SSTableReader* table_;
    size_t block_idx_ = 0;
    BlockCache::BlockHandle block_;  // pinned current block
    size_t pos_ = 0;                 // offset within block_
    Entry entry_;
    bool valid_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  SSTableReader() = default;

  struct IndexEntry {
    std::string last_key;
    uint64_t offset;
    uint64_t size;
  };

  /// Fetches data block `idx`, via the cache when one is attached.
  Result<BlockCache::BlockHandle> ReadBlock(size_t idx) const;

  std::unique_ptr<RandomAccessFile> file_;
  BlockCache* cache_ = nullptr;
  uint64_t cache_id_ = 0;
  std::vector<IndexEntry> index_;
  std::string bloom_;
  uint64_t num_entries_ = 0;
  std::string smallest_;
  std::string largest_;
};

}  // namespace rhino::lsm
