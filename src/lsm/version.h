#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// \file version.h
/// The file-level metadata of an LSM tree: which SSTs live at which level,
/// persisted in a MANIFEST file so a DB (or a checkpoint of one) can be
/// reopened.
///
/// The MANIFEST is a log of framed records (log_format.h): a full
/// snapshot record first, then one `VersionEdit` per flush/compaction.
/// Appending an edit is O(edit); the old scheme rewrote the entire file
/// set on every flush, which is O(tree) per mutation and dominated
/// metadata cost for wide trees. The log is rotated (fresh snapshot)
/// when enough edits accumulate, bounding recovery replay.

namespace rhino::lsm {

/// Metadata for one table file.
struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;
  std::string largest;
  uint64_t num_entries = 0;
};

/// One atomic change to the tree shape: files added/removed by a flush or
/// compaction, plus the counter high-water marks at that point.
struct VersionEdit {
  uint64_t next_file_number = 0;  // applied as a max(); 0 = no change
  uint64_t last_seq = 0;          // applied as a max(); 0 = no change
  std::vector<std::pair<int, FileMetaData>> added;  // (level, file)
  std::vector<std::pair<int, uint64_t>> removed;    // (level, file number)

  std::string Encode() const;
  Status Decode(std::string_view data);
};

/// Mutable description of the current tree shape plus counters.
///
/// Level 0 holds possibly-overlapping memtable flushes ordered
/// newest-first; levels >= 1 hold key-disjoint files sorted by smallest
/// key. Serialized to / recovered from a MANIFEST via the methods below.
class VersionSet {
 public:
  explicit VersionSet(int num_levels) : levels_(num_levels) {}

  int num_levels() const { return static_cast<int>(levels_.size()); }
  std::vector<FileMetaData>& level(int l) { return levels_[l]; }
  const std::vector<FileMetaData>& level(int l) const { return levels_[l]; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  uint64_t next_file_number() const { return next_file_number_; }

  uint64_t last_seq() const { return last_seq_; }
  void set_last_seq(uint64_t s) { last_seq_ = s; }

  /// Total bytes of table files at `level`.
  uint64_t LevelBytes(int l) const;

  /// Total bytes across all levels.
  uint64_t TotalBytes() const;

  /// Total file count.
  int NumFiles() const;

  /// All live files across levels.
  std::vector<FileMetaData> AllFiles() const;

  /// True when no file at any level deeper than `level` overlaps
  /// [smallest, largest]; tombstones compacted into such a level can be
  /// dropped.
  bool IsBottomMostForRange(int level, const std::string& smallest,
                            const std::string& largest) const;

  /// Files at `level` overlapping the key range (inclusive bounds).
  std::vector<FileMetaData> Overlapping(int level, const std::string& smallest,
                                        const std::string& largest) const;

  /// Removes a file (by number) from `level`.
  void RemoveFile(int level, uint64_t number);

  /// Adds a file keeping the level's ordering invariant.
  void AddFile(int level, FileMetaData meta);

  /// Removals first, then additions, then counter high-water marks.
  void ApplyEdit(const VersionEdit& edit);

  std::string EncodeManifest() const;
  Status DecodeManifest(std::string_view data);

 private:
  std::vector<std::vector<FileMetaData>> levels_;
  uint64_t next_file_number_ = 1;
  uint64_t last_seq_ = 0;
};

}  // namespace rhino::lsm
