#include "lsm/db.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"

namespace rhino::lsm {

// ----------------------------------------------------------- k-way merge --

/// Internal (named, not anonymous, so DB::Iterator::Rep can hold these
/// without subobject-linkage warnings) machinery for merging sorted entry
/// sources. A source yields entries in strictly increasing key order; the
/// merge yields, for each distinct user key across all sources, the entry
/// with the largest sequence number — tombstones included, so callers
/// decide whether to drop or keep them.
namespace merge_detail {

class MergeSource {
 public:
  virtual ~MergeSource() = default;
  virtual bool Valid() const = 0;
  virtual const Entry& Current() const = 0;
  virtual void Advance() = 0;
};

/// Snapshot of the (bounded) memtable: entries are copied at iterator
/// creation so a later Flush cannot invalidate them.
class MemSource : public MergeSource {
 public:
  explicit MemSource(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  const Entry& Current() const override { return entries_[pos_]; }
  void Advance() override { ++pos_; }

 private:
  std::vector<Entry> entries_;
  size_t pos_ = 0;
};

/// One SSTable, streamed block by block. Holding the reader's shared_ptr
/// pins its RandomAccessFile, so a compaction deleting the file name does
/// not disturb the iteration.
class TableSource : public MergeSource {
 public:
  TableSource(std::shared_ptr<SSTableReader> table, std::string_view seek)
      : table_(std::move(table)), it_(table_->NewIterator()) {
    if (!seek.empty()) it_.Seek(seek);
  }
  bool Valid() const override { return it_.Valid(); }
  const Entry& Current() const override { return it_.entry(); }
  void Advance() override { it_.Next(); }

 private:
  std::shared_ptr<SSTableReader> table_;
  SSTableReader::Iterator it_;
};

/// Binary min-heap of sources ordered by (key asc, seq desc): the top is
/// the smallest pending key, newest version first.
class KWayMerge {
 public:
  void AddSource(std::unique_ptr<MergeSource> source) {
    if (source->Valid()) sources_.push_back(std::move(source));
  }

  /// Builds the heap; call once after the last AddSource.
  void Finish() {
    heap_.resize(sources_.size());
    for (size_t i = 0; i < heap_.size(); ++i) heap_[i] = i;
    std::make_heap(heap_.begin(), heap_.end(), Before());
  }

  /// Yields the newest version of the next distinct key (tombstones
  /// included); false when every source is exhausted.
  bool NextVersion(Entry* out) {
    if (heap_.empty()) return false;
    size_t top = PopTop();
    *out = sources_[top]->Current();
    AdvanceAndRestore(top);
    // Drop shadowed versions of the same key from other sources.
    while (!heap_.empty()) {
      size_t idx = heap_.front();
      if (sources_[idx]->Current().key != out->key) break;
      PopTop();
      AdvanceAndRestore(idx);
    }
    return true;
  }

 private:
  /// Heap comparator ("less"): a sorts below b when its key is larger, or
  /// equal with an older sequence number — making the heap top the
  /// smallest key / newest version.
  struct Less {
    const KWayMerge* merge;
    bool operator()(size_t a, size_t b) const {
      const Entry& ea = merge->sources_[a]->Current();
      const Entry& eb = merge->sources_[b]->Current();
      if (ea.key != eb.key) return ea.key > eb.key;
      return ea.seq < eb.seq;
    }
  };
  Less Before() const { return Less{this}; }

  size_t PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), Before());
    size_t idx = heap_.back();
    heap_.pop_back();
    return idx;
  }

  void AdvanceAndRestore(size_t idx) {
    sources_[idx]->Advance();
    if (!sources_[idx]->Valid()) return;
    heap_.push_back(idx);
    std::push_heap(heap_.begin(), heap_.end(), Before());
  }

  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::vector<size_t> heap_;
};

}  // namespace merge_detail

void DB::BindMetrics(obs::Observability* o) {
  obs::MetricsRegistry& m = o->metrics();
  puts_metric_ = m.GetCounter("rhino_lsm_puts_total");
  gets_metric_ = m.GetCounter("rhino_lsm_gets_total");
  flushes_metric_ = m.GetCounter("rhino_lsm_flushes_total");
  flush_bytes_metric_ = m.GetCounter("rhino_lsm_flush_bytes_total");
  compactions_metric_ = m.GetCounter("rhino_lsm_compactions_total");
  checkpoints_metric_ = m.GetCounter("rhino_lsm_checkpoints_total");
  checkpoint_bytes_metric_ = m.GetCounter("rhino_lsm_checkpoint_bytes_total");
  table_cache_hits_metric_ = m.GetCounter("rhino_lsm_table_cache_hits_total");
  table_cache_misses_metric_ =
      m.GetCounter("rhino_lsm_table_cache_misses_total");
  table_cache_evictions_metric_ =
      m.GetCounter("rhino_lsm_table_cache_evictions_total");
}

// ------------------------------------------------------------------ Open --

Result<std::unique_ptr<DB>> DB::Open(Env* env, std::string path,
                                     Options options) {
  auto db = std::unique_ptr<DB>(new DB(env, std::move(path), options));
  RHINO_RETURN_NOT_OK(env->CreateDir(db->path_));
  std::string manifest_path = db->FilePath(kManifestName);
  if (env->FileExists(manifest_path)) {
    std::string data;
    RHINO_RETURN_NOT_OK(env->ReadFile(manifest_path, &data));
    RHINO_RETURN_NOT_OK(db->versions_.DecodeManifest(data));
    // Validate footers/indexes so corruption surfaces at open, not first
    // read; the LRU cap keeps this from pinning every handle.
    for (const auto& f : db->versions_.AllFiles()) {
      RHINO_ASSIGN_OR_RETURN(auto table, db->OpenTable(f.number));
      (void)table;
    }
  } else {
    RHINO_RETURN_NOT_OK(db->PersistManifest());
  }
  if (options.enable_wal) {
    RHINO_RETURN_NOT_OK(db->RecoverWal());
  }
  return db;
}

Result<std::unique_ptr<DB>> DB::OpenFromCheckpoint(
    Env* env, const std::string& checkpoint_dir, std::string path,
    Options options) {
  RHINO_RETURN_NOT_OK(env->CreateDir(path));
  RHINO_ASSIGN_OR_RETURN(auto names, env->ListDir(checkpoint_dir));
  for (const auto& name : names) {
    std::string dst = path + "/" + name;
    if (env->FileExists(dst)) continue;
    if (name == kManifestName) {
      std::string data;
      RHINO_RETURN_NOT_OK(env->ReadFile(checkpoint_dir + "/" + name, &data));
      RHINO_RETURN_NOT_OK(env->WriteFile(dst, data));
    } else {
      RHINO_RETURN_NOT_OK(env->LinkFile(checkpoint_dir + "/" + name, dst));
    }
  }
  return Open(env, std::move(path), options);
}

// -------------------------------------------------------------- Mutation --

Status DB::Put(std::string_view key, std::string_view value) {
  puts_metric_->Increment();
  RHINO_RETURN_NOT_OK(AppendWal(ValueType::kValue, key, value));
  uint64_t seq = versions_.last_seq() + 1;
  versions_.set_last_seq(seq);
  memtable_->Add(key, seq, ValueType::kValue, value);
  if (memtable_->ApproximateBytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status DB::Delete(std::string_view key) {
  RHINO_RETURN_NOT_OK(AppendWal(ValueType::kDeletion, key, ""));
  uint64_t seq = versions_.last_seq() + 1;
  versions_.set_last_seq(seq);
  memtable_->Add(key, seq, ValueType::kDeletion, "");
  if (memtable_->ApproximateBytes() >= options_.memtable_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status DB::AppendWal(ValueType type, std::string_view key,
                     std::string_view value) {
  if (!options_.enable_wal) return Status::OK();
  std::string record;
  BinaryWriter w(&record);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutString(key);
  w.PutString(value);
  return env_->AppendFile(WalPath(), record);
}

Status DB::RecoverWal() {
  if (!env_->FileExists(WalPath())) return Status::OK();
  std::string data;
  RHINO_RETURN_NOT_OK(env_->ReadFile(WalPath(), &data));
  BinaryReader r(data);
  while (!r.AtEnd()) {
    uint8_t type = 0;
    std::string_view key, value;
    // A torn tail (crash mid-append) ends the replay; everything before
    // it is intact because records are appended atomically enough for
    // our single-writer usage.
    if (!r.GetU8(&type).ok() || !r.GetString(&key).ok() ||
        !r.GetString(&value).ok()) {
      break;
    }
    uint64_t seq = versions_.last_seq() + 1;
    versions_.set_last_seq(seq);
    memtable_->Add(key, seq, static_cast<ValueType>(type), value);
    ++wal_recovered_;
  }
  return Status::OK();
}

Status DB::Flush() {
  if (memtable_->Empty()) return Status::OK();
  RHINO_RETURN_NOT_OK(WriteLevel0Table());
  memtable_ = std::make_unique<MemTable>();
  ++flush_count_;
  // Everything in the WAL is now durable in an SST; start a fresh log.
  if (options_.enable_wal) {
    Status st = env_->DeleteFile(WalPath());
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  if (options_.auto_compact) return MaybeCompact();
  return Status::OK();
}

Status DB::WriteLevel0Table() {
  SSTableBuilder builder(options_.block_bytes, options_.bloom_bits_per_key);
  for (auto it = memtable_->NewIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), it.seq(), it.type(), it.value());
  }
  FileMetaData meta;
  meta.number = versions_.NewFileNumber();
  meta.smallest = builder.smallest();
  meta.largest = builder.largest();
  meta.num_entries = builder.num_entries();
  std::string contents = builder.Finish();
  meta.file_size = contents.size();
  flushes_metric_->Increment();
  flush_bytes_metric_->Increment(contents.size());
  RHINO_RETURN_NOT_OK(env_->WriteFile(FilePath(TableFileName(meta.number)), contents));
  versions_.AddFile(0, std::move(meta));
  return PersistManifest();
}

// ---------------------------------------------------------------- Lookup --

Status DB::Get(std::string_view key, std::string* value) {
  gets_metric_->Increment();
  Entry entry;
  if (memtable_->Get(key, &entry)) {
    if (entry.type == ValueType::kDeletion) return Status::NotFound("deleted");
    *value = std::move(entry.value);
    return Status::OK();
  }
  // L0: newest file first (AddFile keeps recency order).
  for (const auto& f : versions_.level(0)) {
    if (key < f.smallest || key > f.largest) continue;
    RHINO_ASSIGN_OR_RETURN(auto table, OpenTable(f.number));
    Status st = table->Get(key, &entry);
    if (st.ok()) {
      if (entry.type == ValueType::kDeletion) return Status::NotFound("deleted");
      *value = std::move(entry.value);
      return Status::OK();
    }
    if (!st.IsNotFound()) return st;
  }
  // Deeper levels: at most one candidate file per level.
  for (int l = 1; l < versions_.num_levels(); ++l) {
    for (const auto& f : versions_.Overlapping(l, std::string(key), std::string(key))) {
      RHINO_ASSIGN_OR_RETURN(auto table, OpenTable(f.number));
      Status st = table->Get(key, &entry);
      if (st.ok()) {
        if (entry.type == ValueType::kDeletion) return Status::NotFound("deleted");
        *value = std::move(entry.value);
        return Status::OK();
      }
      if (!st.IsNotFound()) return st;
    }
  }
  return Status::NotFound(std::string(key));
}

// ---------------------------------------------------------- DB::Iterator --

struct DB::Iterator::Rep {
  merge_detail::KWayMerge merge;
  std::string end;
  Entry current;
  bool valid = false;
  bool done = false;

  /// Pulls merged versions until a live entry inside the bound appears.
  void FindNext() {
    valid = false;
    if (done) return;
    Entry e;
    while (merge.NextVersion(&e)) {
      if (!end.empty() && e.key >= end) {
        // Sources yield in key order: nothing below `end` can follow.
        done = true;
        return;
      }
      if (e.type == ValueType::kDeletion) continue;  // dropped on the fly
      current = std::move(e);
      valid = true;
      return;
    }
    done = true;
  }
};

DB::Iterator::Iterator() = default;
DB::Iterator::~Iterator() = default;
DB::Iterator::Iterator(Iterator&&) noexcept = default;
DB::Iterator& DB::Iterator::operator=(Iterator&&) noexcept = default;

bool DB::Iterator::Valid() const { return rep_ != nullptr && rep_->valid; }

void DB::Iterator::Next() {
  RHINO_DCHECK(Valid());
  rep_->FindNext();
}

const std::string& DB::Iterator::key() const { return rep_->current.key; }

const std::string& DB::Iterator::value() const { return rep_->current.value; }

Result<DB::Iterator> DB::NewIterator(std::string_view begin,
                                     std::string_view end) {
  Iterator it;
  it.rep_ = std::make_unique<Iterator::Rep>();
  it.rep_->end.assign(end);

  // Memtable snapshot: bounded by Options::memtable_bytes, and immune to a
  // later Flush swapping the live memtable out underneath us.
  std::vector<Entry> mem;
  for (auto mit = memtable_->NewIterator(); mit.Valid(); mit.Next()) {
    if (mit.key() < begin) continue;
    if (!end.empty() && mit.key() >= end) break;
    mem.push_back(Entry{mit.key(), mit.seq(), mit.type(), mit.value()});
  }
  it.rep_->merge.AddSource(
      std::make_unique<merge_detail::MemSource>(std::move(mem)));

  // One block-streaming source per table overlapping the range. The
  // sources hold the reader handles, pinning file content for the life of
  // the iterator (compactions may delete the names meanwhile).
  for (const auto& f : versions_.AllFiles()) {
    if (!end.empty() && f.smallest >= end) continue;
    if (!begin.empty() && f.largest < begin) continue;
    RHINO_ASSIGN_OR_RETURN(auto table, OpenTable(f.number));
    it.rep_->merge.AddSource(
        std::make_unique<merge_detail::TableSource>(std::move(table), begin));
  }
  it.rep_->merge.Finish();
  it.rep_->FindNext();
  return it;
}

// ------------------------------------------------------------ Compaction --

uint64_t DB::MaxBytesForLevel(int level) const {
  double bytes = static_cast<double>(options_.level_base_bytes);
  for (int l = 1; l < level; ++l) bytes *= options_.level_multiplier;
  return static_cast<uint64_t>(bytes);
}

Status DB::MaybeCompact() {
  bool progress = true;
  while (progress) {
    progress = false;
    if (versions_.level(0).size() >=
        static_cast<size_t>(options_.l0_compaction_trigger)) {
      RHINO_RETURN_NOT_OK(CompactLevel(0));
      progress = true;
      continue;
    }
    for (int l = 1; l < versions_.num_levels() - 1; ++l) {
      if (versions_.LevelBytes(l) > MaxBytesForLevel(l)) {
        RHINO_RETURN_NOT_OK(CompactLevel(l));
        progress = true;
        break;
      }
    }
  }
  return Status::OK();
}

Status DB::CompactLevel(int level) {
  std::vector<std::pair<int, FileMetaData>> inputs;
  std::string smallest, largest;
  if (level == 0) {
    // All of L0 participates (files may overlap each other).
    for (const auto& f : versions_.level(0)) {
      if (inputs.empty() || f.smallest < smallest) smallest = f.smallest;
      if (inputs.empty() || f.largest > largest) largest = f.largest;
      inputs.emplace_back(0, f);
    }
  } else {
    // Pick the file after the last compacted key (round-robin cursor keeps
    // writes spread over the keyspace).
    const auto& files = versions_.level(level);
    RHINO_CHECK(!files.empty());
    const FileMetaData& f = files.front();
    smallest = f.smallest;
    largest = f.largest;
    inputs.emplace_back(level, f);
  }
  int output_level = level + 1;
  for (const auto& f : versions_.Overlapping(output_level, smallest, largest)) {
    inputs.emplace_back(output_level, f);
  }
  return DoCompaction(inputs, output_level);
}

Status DB::CompactRange() {
  RHINO_RETURN_NOT_OK(Flush());
  // Repeatedly push every populated level into the next one.
  for (int l = 0; l < versions_.num_levels() - 1; ++l) {
    while (!versions_.level(l).empty()) {
      RHINO_RETURN_NOT_OK(CompactLevel(l));
    }
  }
  return Status::OK();
}

Status DB::DoCompaction(const std::vector<std::pair<int, FileMetaData>>& inputs,
                        int output_level) {
  // Stream the inputs through a k-way merge; the largest sequence number
  // per user key wins (sequence numbers are global and monotone). Peak
  // memory is one block per input plus the output block under
  // construction — not the merged key range.
  merge_detail::KWayMerge merge;
  std::string smallest, largest;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const auto& f = inputs[i].second;
    if (i == 0 || f.smallest < smallest) smallest = f.smallest;
    if (i == 0 || f.largest > largest) largest = f.largest;
    RHINO_ASSIGN_OR_RETURN(auto table, OpenTable(f.number));
    merge.AddSource(
        std::make_unique<merge_detail::TableSource>(std::move(table), ""));
  }
  merge.Finish();
  bool drop_tombstones =
      versions_.IsBottomMostForRange(output_level, smallest, largest);

  // Write merged entries into output files split at target_file_bytes.
  std::vector<FileMetaData> outputs;
  std::unique_ptr<SSTableBuilder> builder;
  auto finish_output = [&]() -> Status {
    if (!builder || builder->empty()) {
      builder.reset();
      return Status::OK();
    }
    FileMetaData meta;
    meta.number = versions_.NewFileNumber();
    meta.smallest = builder->smallest();
    meta.largest = builder->largest();
    meta.num_entries = builder->num_entries();
    std::string contents = builder->Finish();
    meta.file_size = contents.size();
    RHINO_RETURN_NOT_OK(
        env_->WriteFile(FilePath(TableFileName(meta.number)), contents));
    outputs.push_back(std::move(meta));
    builder.reset();
    return Status::OK();
  };

  Entry entry;
  while (merge.NextVersion(&entry)) {
    if (drop_tombstones && entry.type == ValueType::kDeletion) continue;
    if (!builder) {
      builder = std::make_unique<SSTableBuilder>(options_.block_bytes,
                                                 options_.bloom_bits_per_key);
    }
    builder->Add(entry.key, entry.seq, entry.type, entry.value);
    if (builder->data_bytes() >= options_.target_file_bytes) {
      RHINO_RETURN_NOT_OK(finish_output());
    }
  }
  RHINO_RETURN_NOT_OK(finish_output());

  // Install outputs, drop inputs, delete obsolete files. Checkpoint hard
  // links keep any shared content alive.
  for (const auto& [lvl, f] : inputs) {
    versions_.RemoveFile(lvl, f.number);
    EvictTable(f.number);
    Status st = env_->DeleteFile(FilePath(TableFileName(f.number)));
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  for (auto& meta : outputs) {
    versions_.AddFile(output_level, std::move(meta));
  }
  ++compaction_count_;
  compactions_metric_->Increment();
  return PersistManifest();
}

// ----------------------------------------------------------- Checkpoints --

Result<CheckpointInfo> DB::CreateCheckpoint(const std::string& dir) {
  RHINO_RETURN_NOT_OK(Flush());
  RHINO_RETURN_NOT_OK(env_->CreateDir(dir));
  CheckpointInfo info;
  info.directory = dir;
  for (const auto& f : versions_.AllFiles()) {
    std::string name = TableFileName(f.number);
    Status st = env_->LinkFile(FilePath(name), dir + "/" + name);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    info.files.push_back(CheckpointFile{name, f.file_size});
    info.total_bytes += f.file_size;
  }
  RHINO_RETURN_NOT_OK(
      env_->WriteFile(dir + "/" + kManifestName, versions_.EncodeManifest()));
  checkpoints_metric_->Increment();
  checkpoint_bytes_metric_->Increment(info.total_bytes);
  return info;
}

// --------------------------------------------------------------- Support --

uint64_t DB::ApproximateSize() const {
  return memtable_->ApproximateBytes() + versions_.TotalBytes();
}

Status DB::PersistManifest() {
  return env_->WriteFile(FilePath(kManifestName), versions_.EncodeManifest());
}

Result<std::shared_ptr<SSTableReader>> DB::OpenTable(uint64_t number) {
  auto it = table_cache_.find(number);
  if (it != table_cache_.end()) {
    table_cache_hits_metric_->Increment();
    table_lru_.splice(table_lru_.begin(), table_lru_, it->second.lru_pos);
    return it->second.table;
  }
  table_cache_misses_metric_->Increment();
  RHINO_ASSIGN_OR_RETURN(
      auto file, env_->NewRandomAccessFile(FilePath(TableFileName(number))));
  RHINO_ASSIGN_OR_RETURN(
      auto table, SSTableReader::Open(std::move(file), block_cache_.get()));
  table_lru_.push_front(number);
  table_cache_[number] = OpenTableEntry{table, table_lru_.begin()};
  while (table_cache_.size() > options_.max_open_tables) {
    uint64_t victim = table_lru_.back();
    table_lru_.pop_back();
    table_cache_.erase(victim);
    table_cache_evictions_metric_->Increment();
  }
  return table;
}

void DB::EvictTable(uint64_t number) {
  auto it = table_cache_.find(number);
  if (it == table_cache_.end()) return;
  table_lru_.erase(it->second.lru_pos);
  table_cache_.erase(it);
}

}  // namespace rhino::lsm
