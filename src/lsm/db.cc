#include "lsm/db.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"
#include "lsm/log_format.h"

namespace rhino::lsm {

namespace {

/// MANIFEST record kinds (first payload byte of each framed record).
constexpr uint8_t kManifestSnapshot = 0;  // full VersionSet state
constexpr uint8_t kManifestEdit = 1;      // one VersionEdit

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t prev = slot->load(std::memory_order_relaxed);
  while (prev < value &&
         !slot->compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ----------------------------------------------------------- k-way merge --

/// Internal (named, not anonymous, so DB::Iterator::Rep can hold these
/// without subobject-linkage warnings) machinery for merging sorted entry
/// sources. A source yields entries in strictly increasing key order; the
/// merge yields, for each distinct user key across all sources, the entry
/// with the largest sequence number — tombstones included, so callers
/// decide whether to drop or keep them.
namespace merge_detail {

class MergeSource {
 public:
  virtual ~MergeSource() = default;
  virtual bool Valid() const = 0;
  virtual const Entry& Current() const = 0;
  virtual void Advance() = 0;
};

/// Snapshot of the (bounded) memtable: entries are copied at iterator
/// creation so a later Flush cannot invalidate them.
class MemSource : public MergeSource {
 public:
  explicit MemSource(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}
  bool Valid() const override { return pos_ < entries_.size(); }
  const Entry& Current() const override { return entries_[pos_]; }
  void Advance() override { ++pos_; }

 private:
  std::vector<Entry> entries_;
  size_t pos_ = 0;
};

/// One SSTable, streamed block by block. Holding the reader's shared_ptr
/// pins its RandomAccessFile, so a compaction deleting the file name does
/// not disturb the iteration.
class TableSource : public MergeSource {
 public:
  TableSource(std::shared_ptr<SSTableReader> table, std::string_view seek)
      : table_(std::move(table)), it_(table_->NewIterator()) {
    if (!seek.empty()) it_.Seek(seek);
  }
  bool Valid() const override { return it_.Valid(); }
  const Entry& Current() const override { return it_.entry(); }
  void Advance() override { it_.Next(); }

 private:
  std::shared_ptr<SSTableReader> table_;
  SSTableReader::Iterator it_;
};

/// Binary min-heap of sources ordered by (key asc, seq desc): the top is
/// the smallest pending key, newest version first.
class KWayMerge {
 public:
  void AddSource(std::unique_ptr<MergeSource> source) {
    if (source->Valid()) sources_.push_back(std::move(source));
  }

  /// Builds the heap; call once after the last AddSource.
  void Finish() {
    heap_.resize(sources_.size());
    for (size_t i = 0; i < heap_.size(); ++i) heap_[i] = i;
    std::make_heap(heap_.begin(), heap_.end(), Before());
  }

  /// Yields the newest version of the next distinct key (tombstones
  /// included); false when every source is exhausted.
  bool NextVersion(Entry* out) {
    if (heap_.empty()) return false;
    size_t top = PopTop();
    *out = sources_[top]->Current();
    AdvanceAndRestore(top);
    // Drop shadowed versions of the same key from other sources.
    while (!heap_.empty()) {
      size_t idx = heap_.front();
      if (sources_[idx]->Current().key != out->key) break;
      PopTop();
      AdvanceAndRestore(idx);
    }
    return true;
  }

 private:
  /// Heap comparator ("less"): a sorts below b when its key is larger, or
  /// equal with an older sequence number — making the heap top the
  /// smallest key / newest version.
  struct Less {
    const KWayMerge* merge;
    bool operator()(size_t a, size_t b) const {
      const Entry& ea = merge->sources_[a]->Current();
      const Entry& eb = merge->sources_[b]->Current();
      if (ea.key != eb.key) return ea.key > eb.key;
      return ea.seq < eb.seq;
    }
  };
  Less Before() const { return Less{this}; }

  size_t PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), Before());
    size_t idx = heap_.back();
    heap_.pop_back();
    return idx;
  }

  void AdvanceAndRestore(size_t idx) {
    sources_[idx]->Advance();
    if (!sources_[idx]->Valid()) return;
    heap_.push_back(idx);
    std::push_heap(heap_.begin(), heap_.end(), Before());
  }

  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::vector<size_t> heap_;
};

}  // namespace merge_detail

void DB::BindMetrics(obs::Observability* o) {
  obs::MetricsRegistry& m = o->metrics();
  puts_metric_ = m.GetCounter("rhino_lsm_puts_total");
  deletes_metric_ = m.GetCounter("rhino_lsm_deletes_total");
  batch_commits_metric_ = m.GetCounter("rhino_lsm_batch_commits_total");
  wal_appends_metric_ = m.GetCounter("rhino_lsm_wal_appends_total");
  wal_bytes_metric_ = m.GetCounter("rhino_lsm_wal_bytes_total");
  gets_metric_ = m.GetCounter("rhino_lsm_gets_total");
  flushes_metric_ = m.GetCounter("rhino_lsm_flushes_total");
  flush_bytes_metric_ = m.GetCounter("rhino_lsm_flush_bytes_total");
  compactions_metric_ = m.GetCounter("rhino_lsm_compactions_total");
  compaction_bytes_in_metric_ =
      m.GetCounter("rhino_lsm_compaction_bytes_in_total");
  compaction_bytes_out_metric_ =
      m.GetCounter("rhino_lsm_compaction_bytes_out_total");
  user_write_bytes_metric_ = m.GetCounter("rhino_lsm_user_write_bytes_total");
  user_read_bytes_metric_ = m.GetCounter("rhino_lsm_user_read_bytes_total");
  stall_micros_metric_ = m.GetCounter("rhino_lsm_write_stall_micros_total");
  stalls_metric_ = m.GetCounter("rhino_lsm_write_stalls_total");
  checkpoints_metric_ = m.GetCounter("rhino_lsm_checkpoints_total");
  checkpoint_bytes_metric_ = m.GetCounter("rhino_lsm_checkpoint_bytes_total");
  table_cache_hits_metric_ = m.GetCounter("rhino_lsm_table_cache_hits_total");
  table_cache_misses_metric_ =
      m.GetCounter("rhino_lsm_table_cache_misses_total");
  table_cache_evictions_metric_ =
      m.GetCounter("rhino_lsm_table_cache_evictions_total");
  read_stats_.bytes_metric.store(
      m.GetCounter("rhino_lsm_sst_read_bytes_total"),
      std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Open --

Result<std::unique_ptr<DB>> DB::Open(Env* env, std::string path,
                                     Options options) {
  auto db = std::unique_ptr<DB>(new DB(env, std::move(path), options));
  RHINO_RETURN_NOT_OK(env->CreateDir(db->path_));
  std::string manifest_path = db->FilePath(kManifestName);
  if (env->FileExists(manifest_path)) {
    std::string data;
    RHINO_RETURN_NOT_OK(env->ReadFile(manifest_path, &data));
    RHINO_RETURN_NOT_OK(db->LoadManifest(data));
    // Validate footers/indexes so corruption surfaces at open, not first
    // read; the LRU cap keeps this from pinning every handle.
    std::lock_guard<std::mutex> lock(db->versions_mu_);
    for (const auto& f : db->versions_.AllFiles()) {
      RHINO_ASSIGN_OR_RETURN(auto table, db->OpenTableLocked(f.number));
      (void)table;
    }
  }
  db->last_seq_.store(db->versions_.last_seq(), std::memory_order_relaxed);
  // Rotate at open: collapse any replayed edit log into one fresh
  // snapshot (bounding the next recovery) and leave an append handle
  // ready for edits.
  {
    std::lock_guard<std::mutex> lock(db->versions_mu_);
    RHINO_RETURN_NOT_OK(db->RotateManifestLocked());
  }
  if (db->options_.enable_wal) {
    RHINO_RETURN_NOT_OK(db->RecoverWal());
  }
  return db;
}

Result<std::unique_ptr<DB>> DB::OpenFromCheckpoint(
    Env* env, const std::string& checkpoint_dir, std::string path,
    Options options) {
  RHINO_RETURN_NOT_OK(env->CreateDir(path));
  RHINO_ASSIGN_OR_RETURN(auto names, env->ListDir(checkpoint_dir));
  for (const auto& name : names) {
    std::string dst = path + "/" + name;
    if (env->FileExists(dst)) continue;
    if (name == kManifestName) {
      std::string data;
      RHINO_RETURN_NOT_OK(env->ReadFile(checkpoint_dir + "/" + name, &data));
      RHINO_RETURN_NOT_OK(env->WriteFile(dst, data));
    } else {
      RHINO_RETURN_NOT_OK(env->LinkFile(checkpoint_dir + "/" + name, dst));
    }
  }
  return Open(env, std::move(path), std::move(options));
}

DB::~DB() {
  shutting_down_.store(true, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lock(bg_->mu);
    bg_->exit = true;
    bg_->db_alive = false;
    bg_->cv.notify_all();
    // Wait for maintenance passes that already started; a pass that is
    // merely queued on an external executor will see db_alive == false
    // when (if) it runs and bail without touching this object.
    bg_->cv.wait(lock, [this] { return bg_->inflight == 0; });
  }
  if (bg_thread_.joinable()) bg_thread_.join();
}

// -------------------------------------------------------------- Mutation --

Status DB::Put(std::string_view key, std::string_view value) {
  puts_metric_->Increment();
  std::string payload;
  BinaryWriter w(&payload);
  w.PutVarint(1);
  w.PutU8(static_cast<uint8_t>(ValueType::kValue));
  w.PutString(key);
  w.PutString(value);
  return CommitEntries(payload, 1);
}

Status DB::Delete(std::string_view key) {
  deletes_metric_->Increment();
  std::string payload;
  BinaryWriter w(&payload);
  w.PutVarint(1);
  w.PutU8(static_cast<uint8_t>(ValueType::kDeletion));
  w.PutString(key);
  w.PutString("");
  return CommitEntries(payload, 1);
}

Status DB::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  puts_metric_->Increment(batch.num_puts());
  deletes_metric_->Increment(batch.num_deletes());
  batch_commits_metric_->Increment();
  return CommitEntries(batch.EncodePayload(), batch.num_entries());
}

Status DB::CommitEntries(std::string_view payload, uint64_t num_entries) {
  if (has_bg_error_.load(std::memory_order_acquire)) return BackgroundError();
  uint64_t count = 0;
  std::string_view entries;
  RHINO_RETURN_NOT_OK(WriteBatch::DecodePayload(payload, &count, &entries));
  std::shared_ptr<ShardedMemTable> mem;
  uint64_t payload_bytes = 0;
  {
    // Shared rotation lock across {WAL append, memtable apply}: a freeze
    // (exclusive) can never interleave, so an acknowledged commit's WAL
    // record and memtable entries always rotate together.
    std::shared_lock<std::shared_mutex> rotate(rotate_mu_);
    RHINO_RETURN_NOT_OK(CommitWal(payload, num_entries));
    uint64_t seq = last_seq_.fetch_add(num_entries, std::memory_order_relaxed);
    mem = mem_;  // stable while the rotation lock is held shared
    RHINO_RETURN_NOT_OK(WriteBatch::DecodeEntries(
        entries,
        [&](ValueType type, std::string_view key, std::string_view value) {
          payload_bytes += key.size() + value.size();
          mem->Add(key, ++seq, type, value);
          return Status::OK();
        }));
  }
  user_bytes_written_.fetch_add(payload_bytes, std::memory_order_relaxed);
  user_write_bytes_metric_->Increment(payload_bytes);
  // Flush policy runs outside the commit critical section. `mem` may be a
  // just-frozen table by now; the freeze re-checks under its own locks.
  if (mem->ApproximateBytes() < options_.memtable_bytes) return Status::OK();
  if (options_.background_maintenance) {
    RHINO_ASSIGN_OR_RETURN(bool frozen, FreezeActiveMemTable(true));
    if (frozen) ScheduleMaintenance();
    return Status::OK();
  }
  std::lock_guard<std::mutex> maint(maintenance_mu_);
  return MaintainInline(true);
}

Status DB::EnsureWalFileLocked() {
  if (wal_file_ != nullptr) return Status::OK();
  RHINO_ASSIGN_OR_RETURN(wal_file_,
                         env_->NewWritableFile(WalPath(), /*append=*/true));
  return Status::OK();
}

Status DB::CommitWal(std::string_view payload, uint64_t num_entries) {
  if (!options_.enable_wal) return Status::OK();
  std::string record;
  record.reserve(payload.size() + 8);
  AppendLogRecord(&record, payload);
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    RHINO_RETURN_NOT_OK(EnsureWalFileLocked());
    RHINO_RETURN_NOT_OK(wal_file_->Append(record));
    // One flush per commit — regardless of how many entries it covers —
    // is the group-commit win over flushing per mutation.
    RHINO_RETURN_NOT_OK(wal_file_->Flush());
  }
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  wal_records_.fetch_add(num_entries, std::memory_order_relaxed);
  wal_bytes_.fetch_add(record.size(), std::memory_order_relaxed);
  wal_appends_metric_->Increment();
  wal_bytes_metric_->Increment(record.size());
  return Status::OK();
}

Status DB::RecoverWal() {
  // A surviving WAL.imm means the process died after freezing a memtable
  // but before its flush retired the log. Replay it first (its entries are
  // older), then the active WAL. When both exist they are consolidated
  // back into one fresh "WAL": the next freeze renames "WAL" over
  // "WAL.imm", and acknowledged records must not be orphaned under a name
  // that rename would clobber.
  bool had_imm = env_->FileExists(ImmWalPath());
  std::string consolidated;
  uint64_t seq = last_seq_.load(std::memory_order_relaxed);
  auto replay = [&](const std::string& wal_path,
                    bool truncate_tail) -> Status {
    if (!env_->FileExists(wal_path)) return Status::OK();
    std::string data;
    RHINO_RETURN_NOT_OK(env_->ReadFile(wal_path, &data));
    size_t pos = 0;
    std::string_view payload;
    while (true) {
      LogRead got = ReadLogRecord(data, &pos, &payload);
      if (got == LogRead::kEnd) break;
      if (got == LogRead::kTorn) {
        // Crash mid-append: the framing pinpoints the torn record.
        // Truncate it away so later appends land after a clean prefix
        // (consolidation rewrites the file anyway).
        if (truncate_tail && !had_imm) {
          RHINO_RETURN_NOT_OK(env_->WriteFile(
              wal_path, std::string_view(data).substr(0, pos)));
        }
        break;
      }
      // Inside a checksummed record, a decode failure is real corruption,
      // not a torn tail — surface it.
      uint64_t count = 0;
      std::string_view entries;
      RHINO_RETURN_NOT_OK(
          WriteBatch::DecodePayload(payload, &count, &entries));
      RHINO_RETURN_NOT_OK(WriteBatch::DecodeEntries(
          entries,
          [&](ValueType type, std::string_view key, std::string_view value) {
            mem_->Add(key, ++seq, type, value);
            wal_recovered_.fetch_add(1, std::memory_order_relaxed);
            return Status::OK();
          }));
      if (had_imm) AppendLogRecord(&consolidated, payload);
    }
    return Status::OK();
  };
  RHINO_RETURN_NOT_OK(replay(ImmWalPath(), /*truncate_tail=*/false));
  RHINO_RETURN_NOT_OK(replay(WalPath(), /*truncate_tail=*/true));
  last_seq_.store(seq, std::memory_order_relaxed);
  if (had_imm) {
    RHINO_RETURN_NOT_OK(env_->WriteFile(WalPath(), consolidated));
    Status st = env_->DeleteFile(ImmWalPath());
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  return Status::OK();
}

// ----------------------------------------------------- Flush / rotation --

Result<bool> DB::FreezeActiveMemTable(bool only_if_over) {
  // Exclusive rotation lock: no commit is mid-flight across the swap.
  std::unique_lock<std::shared_mutex> rotate(rotate_mu_);
  std::unique_lock<std::mutex> lock(mem_mu_);
  if (only_if_over &&
      mem_->ApproximateBytes() < options_.memtable_bytes) {
    return false;  // a racing writer already rotated
  }
  if (mem_->Empty()) return false;
  if (imm_ != nullptr) {
    // At most one frozen memtable: stall until the background flush
    // retires it (the classic write stall; accounted, and surfaced in the
    // micro bench as stall_ms).
    write_stalls_.fetch_add(1, std::memory_order_relaxed);
    stalls_metric_->Increment();
    auto start = std::chrono::steady_clock::now();
    mem_cv_.wait(lock, [this] {
      return imm_ == nullptr || has_bg_error_.load(std::memory_order_acquire);
    });
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    stall_micros_.fetch_add(static_cast<uint64_t>(micros),
                            std::memory_order_relaxed);
    stall_micros_metric_->Increment(static_cast<uint64_t>(micros));
    if (has_bg_error_.load(std::memory_order_acquire)) {
      return BackgroundError();
    }
  }
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    wal_file_.reset();
    if (options_.enable_wal && env_->FileExists(WalPath())) {
      RHINO_RETURN_NOT_OK(env_->RenameFile(WalPath(), ImmWalPath()));
    }
  }
  imm_ = std::move(mem_);
  mem_ = std::make_shared<ShardedMemTable>(options_.memtable_shards);
  return true;
}

Status DB::FlushFrozenMemTable(const std::shared_ptr<ShardedMemTable>& imm) {
  RHINO_RETURN_NOT_OK(WriteLevel0Table(*imm));
  flush_count_.fetch_add(1, std::memory_order_relaxed);
  // Everything in the frozen log is now durable in an SST; drop it before
  // retiring the frozen slot so `imm_ == null` implies no WAL.imm file.
  if (options_.enable_wal) {
    Status st = env_->DeleteFile(ImmWalPath());
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    imm_.reset();
  }
  mem_cv_.notify_all();
  return Status::OK();
}

Status DB::MaintainInline(bool only_if_over) {
  RHINO_ASSIGN_OR_RETURN(bool frozen, FreezeActiveMemTable(only_if_over));
  if (!frozen) return Status::OK();
  std::shared_ptr<ShardedMemTable> imm;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    imm = imm_;
  }
  RHINO_RETURN_NOT_OK(FlushFrozenMemTable(imm));
  if (!options_.auto_compact) return Status::OK();
  bool did_work = true;
  while (did_work) {
    RHINO_RETURN_NOT_OK(CompactOnce(&did_work));
  }
  return Status::OK();
}

Status DB::Flush() {
  if (has_bg_error_.load(std::memory_order_acquire)) return BackgroundError();
  if (options_.background_maintenance) {
    RHINO_ASSIGN_OR_RETURN(bool frozen, FreezeActiveMemTable(false));
    if (frozen) ScheduleMaintenance();
    return WaitForBackgroundWork();
  }
  std::lock_guard<std::mutex> maint(maintenance_mu_);
  return MaintainInline(false);
}

Result<std::unique_ptr<WritableFile>> DB::NewTableSink(uint64_t number) {
  return env_->NewWritableFile(FilePath(TableFileName(number)) + ".tmp",
                               /*append=*/false);
}

Status DB::FinishTableSink(uint64_t number, SSTableBuilder* builder,
                           std::unique_ptr<WritableFile> sink,
                           FileMetaData* meta) {
  RHINO_RETURN_NOT_OK(builder->FinishStream());
  sink.reset();  // close before rename
  std::string final_path = FilePath(TableFileName(number));
  RHINO_RETURN_NOT_OK(env_->RenameFile(final_path + ".tmp", final_path));
  meta->number = number;
  meta->smallest = builder->smallest();
  meta->largest = builder->largest();
  meta->num_entries = builder->num_entries();
  meta->file_size = builder->file_size();
  AtomicMax(&write_peak_buffer_bytes_, builder->peak_buffer_bytes());
  return Status::OK();
}

Status DB::WriteLevel0Table(const ShardedMemTable& mem) {
  uint64_t number;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    number = versions_.NewFileNumber();
  }
  RHINO_ASSIGN_OR_RETURN(auto sink, NewTableSink(number));
  SSTableBuilder builder(sink.get(), options_.block_bytes,
                         options_.bloom_bits_per_key);
  // The table is frozen (or the caller owns it exclusively), so the
  // merging cursor streams the shards lock-free in global key order —
  // identical bytes to what a single skiplist would have produced.
  for (auto it = mem.NewMergingIterator(); it.Valid(); it.Next()) {
    builder.Add(it.key(), it.seq(), it.type(), it.value());
  }
  FileMetaData meta;
  RHINO_RETURN_NOT_OK(
      FinishTableSink(number, &builder, std::move(sink), &meta));
  flushes_metric_->Increment();
  flush_bytes_metric_->Increment(meta.file_size);
  flush_bytes_.fetch_add(meta.file_size, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(versions_mu_);
  versions_.set_last_seq(last_seq_.load(std::memory_order_relaxed));
  VersionEdit edit;
  edit.next_file_number = versions_.next_file_number();
  edit.last_seq = versions_.last_seq();
  edit.added.emplace_back(0, meta);
  versions_.AddFile(0, std::move(meta));
  return AppendManifestEditLocked(edit);
}

// ---------------------------------------------------------------- Lookup --

Status DB::Get(std::string_view key, std::string* value) {
  gets_metric_->Increment();
  Entry entry;
  // Memtable snapshot: pin both buffers under a brief lock, probe without.
  std::shared_ptr<ShardedMemTable> mem, imm;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    mem = mem_;
    imm = imm_;
  }
  bool found = mem->Get(key, &entry);
  if (!found && imm != nullptr) found = imm->Get(key, &entry);
  if (found) {
    if (entry.type == ValueType::kDeletion) return Status::NotFound("deleted");
    user_bytes_read_.fetch_add(entry.value.size(), std::memory_order_relaxed);
    user_read_bytes_metric_->Increment(entry.value.size());
    *value = std::move(entry.value);
    return Status::OK();
  }
  // Version snapshot: candidate files AND their pinned handles are
  // collected under versions_mu_ (opens are usually LRU hits), then the
  // bloom probes and block reads below run without any DB lock. Search
  // order — L0 newest first, then deeper levels — is preserved in the
  // flat candidate list.
  std::vector<std::shared_ptr<SSTableReader>> tables;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    for (const auto& f : versions_.level(0)) {
      if (key < f.smallest || key > f.largest) continue;
      RHINO_ASSIGN_OR_RETURN(auto table, OpenTableLocked(f.number));
      tables.push_back(std::move(table));
    }
    for (int l = 1; l < versions_.num_levels(); ++l) {
      for (const auto& f :
           versions_.Overlapping(l, std::string(key), std::string(key))) {
        RHINO_ASSIGN_OR_RETURN(auto table, OpenTableLocked(f.number));
        tables.push_back(std::move(table));
      }
    }
  }
  for (const auto& table : tables) {
    Status st = table->Get(key, &entry);
    if (st.ok()) {
      if (entry.type == ValueType::kDeletion) {
        return Status::NotFound("deleted");
      }
      user_bytes_read_.fetch_add(entry.value.size(),
                                 std::memory_order_relaxed);
      user_read_bytes_metric_->Increment(entry.value.size());
      *value = std::move(entry.value);
      return Status::OK();
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound(std::string(key));
}

// ---------------------------------------------------------- DB::Iterator --

struct DB::Iterator::Rep {
  merge_detail::KWayMerge merge;
  std::string end;
  Entry current;
  bool valid = false;
  bool done = false;

  /// Pulls merged versions until a live entry inside the bound appears.
  void FindNext() {
    valid = false;
    if (done) return;
    Entry e;
    while (merge.NextVersion(&e)) {
      if (!end.empty() && e.key >= end) {
        // Sources yield in key order: nothing below `end` can follow.
        done = true;
        return;
      }
      if (e.type == ValueType::kDeletion) continue;  // dropped on the fly
      current = std::move(e);
      valid = true;
      return;
    }
    done = true;
  }
};

DB::Iterator::Iterator() = default;
DB::Iterator::~Iterator() = default;
DB::Iterator::Iterator(Iterator&&) noexcept = default;
DB::Iterator& DB::Iterator::operator=(Iterator&&) noexcept = default;

bool DB::Iterator::Valid() const { return rep_ != nullptr && rep_->valid; }

void DB::Iterator::Next() {
  RHINO_DCHECK(Valid());
  rep_->FindNext();
}

const std::string& DB::Iterator::key() const { return rep_->current.key; }

const std::string& DB::Iterator::value() const { return rep_->current.value; }

Result<DB::Iterator> DB::NewIterator(std::string_view begin,
                                     std::string_view end) {
  Iterator it;
  it.rep_ = std::make_unique<Iterator::Rep>();
  it.rep_->end.assign(end);

  // Memtable snapshots first, table list second: an entry a concurrent
  // flush moves from memtable to L0 in between appears in both sources
  // with the same sequence number, and the merge de-duplicates it. The
  // reverse order could lose it entirely.
  std::shared_ptr<ShardedMemTable> mem, imm;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    mem = mem_;
    imm = imm_;
  }
  it.rep_->merge.AddSource(std::make_unique<merge_detail::MemSource>(
      mem->SortedSnapshot(begin, end)));
  if (imm != nullptr) {
    it.rep_->merge.AddSource(std::make_unique<merge_detail::MemSource>(
        imm->SortedSnapshot(begin, end)));
  }

  // One block-streaming source per table overlapping the range. Handles
  // are opened under versions_mu_ (so a concurrent compaction cannot
  // delete a file before we pin it) but the sources — whose construction
  // reads blocks — are built after it is released. The sources hold the
  // reader handles, pinning file content for the life of the iterator.
  std::vector<std::shared_ptr<SSTableReader>> tables;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    for (const auto& f : versions_.AllFiles()) {
      if (!end.empty() && f.smallest >= end) continue;
      if (!begin.empty() && f.largest < begin) continue;
      RHINO_ASSIGN_OR_RETURN(auto table, OpenTableLocked(f.number));
      tables.push_back(std::move(table));
    }
  }
  for (auto& table : tables) {
    it.rep_->merge.AddSource(
        std::make_unique<merge_detail::TableSource>(std::move(table), begin));
  }
  it.rep_->merge.Finish();
  it.rep_->FindNext();
  return it;
}

// ------------------------------------------------------------ Compaction --

uint64_t DB::MaxBytesForLevel(int level) const {
  double bytes = static_cast<double>(options_.level_base_bytes);
  for (int l = 1; l < level; ++l) bytes *= options_.level_multiplier;
  return static_cast<uint64_t>(bytes);
}

Status DB::CompactOnce(bool* did_work) {
  *did_work = false;
  int level = -1;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    if (versions_.level(0).size() >=
        static_cast<size_t>(options_.l0_compaction_trigger)) {
      level = 0;
    } else {
      for (int l = 1; l < versions_.num_levels() - 1; ++l) {
        if (versions_.LevelBytes(l) > MaxBytesForLevel(l)) {
          level = l;
          break;
        }
      }
    }
  }
  if (level < 0) return Status::OK();
  *did_work = true;
  return CompactLevel(level);
}

Status DB::CompactLevel(int level) {
  std::vector<std::pair<int, FileMetaData>> inputs;
  int output_level = level + 1;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    std::string smallest, largest;
    if (level == 0) {
      // All of L0 participates (files may overlap each other).
      for (const auto& f : versions_.level(0)) {
        if (inputs.empty() || f.smallest < smallest) smallest = f.smallest;
        if (inputs.empty() || f.largest > largest) largest = f.largest;
        inputs.emplace_back(0, f);
      }
    } else {
      // Pick the file after the last compacted key (round-robin cursor
      // keeps writes spread over the keyspace).
      const auto& files = versions_.level(level);
      RHINO_CHECK(!files.empty());
      const FileMetaData& f = files.front();
      smallest = f.smallest;
      largest = f.largest;
      inputs.emplace_back(level, f);
    }
    for (const auto& f :
         versions_.Overlapping(output_level, smallest, largest)) {
      inputs.emplace_back(output_level, f);
    }
  }
  return DoCompaction(inputs, output_level);
}

Status DB::CompactRange() {
  RHINO_RETURN_NOT_OK(Flush());
  std::lock_guard<std::mutex> maint(maintenance_mu_);
  // A writer may have frozen a fresh memtable between the flush above and
  // this lock; retire it so its entries participate too.
  std::shared_ptr<ShardedMemTable> imm;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    imm = imm_;
  }
  if (imm != nullptr) RHINO_RETURN_NOT_OK(FlushFrozenMemTable(imm));
  // Repeatedly push every populated level into the next one.
  for (int l = 0; l < options_.num_levels - 1; ++l) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(versions_mu_);
        if (versions_.level(l).empty()) break;
      }
      RHINO_RETURN_NOT_OK(CompactLevel(l));
    }
  }
  return Status::OK();
}

Status DB::DoCompaction(const std::vector<std::pair<int, FileMetaData>>& inputs,
                        int output_level) {
  // Stream the inputs through a k-way merge; the largest sequence number
  // per user key wins (sequence numbers are global and monotone). Peak
  // memory is one block per input plus the output block under
  // construction — not the merged key range. Only the input pinning, file
  // numbering, and the final install touch versions_mu_; the merge itself
  // runs lock-free, so readers proceed while data is rewritten.
  std::string smallest, largest;
  uint64_t bytes_in = 0;
  std::vector<std::shared_ptr<SSTableReader>> input_tables;
  bool drop_tombstones;
  {
    std::lock_guard<std::mutex> lock(versions_mu_);
    for (size_t i = 0; i < inputs.size(); ++i) {
      const auto& f = inputs[i].second;
      if (i == 0 || f.smallest < smallest) smallest = f.smallest;
      if (i == 0 || f.largest > largest) largest = f.largest;
      bytes_in += f.file_size;
      RHINO_ASSIGN_OR_RETURN(auto table, OpenTableLocked(f.number));
      input_tables.push_back(std::move(table));
    }
    drop_tombstones =
        versions_.IsBottomMostForRange(output_level, smallest, largest);
  }
  merge_detail::KWayMerge merge;
  for (auto& table : input_tables) {
    merge.AddSource(
        std::make_unique<merge_detail::TableSource>(std::move(table), ""));
  }
  merge.Finish();

  // Stream merged entries into output files split at target_file_bytes;
  // each output buffers ~one block, never the whole table.
  std::vector<FileMetaData> outputs;
  std::unique_ptr<SSTableBuilder> builder;
  std::unique_ptr<WritableFile> sink;
  uint64_t output_number = 0;
  auto finish_output = [&]() -> Status {
    if (!builder || builder->empty()) {
      builder.reset();
      sink.reset();
      return Status::OK();
    }
    FileMetaData meta;
    RHINO_RETURN_NOT_OK(
        FinishTableSink(output_number, builder.get(), std::move(sink), &meta));
    outputs.push_back(std::move(meta));
    builder.reset();
    return Status::OK();
  };

  Entry entry;
  while (merge.NextVersion(&entry)) {
    if (drop_tombstones && entry.type == ValueType::kDeletion) continue;
    if (!builder) {
      {
        std::lock_guard<std::mutex> lock(versions_mu_);
        output_number = versions_.NewFileNumber();
      }
      RHINO_ASSIGN_OR_RETURN(sink, NewTableSink(output_number));
      builder = std::make_unique<SSTableBuilder>(
          sink.get(), options_.block_bytes, options_.bloom_bits_per_key);
    }
    builder->Add(entry.key, entry.seq, entry.type, entry.value);
    if (builder->data_bytes() >= options_.target_file_bytes) {
      RHINO_RETURN_NOT_OK(finish_output());
    }
  }
  RHINO_RETURN_NOT_OK(finish_output());

  uint64_t bytes_out = 0;
  for (const auto& meta : outputs) bytes_out += meta.file_size;

  // Install outputs, drop inputs, delete obsolete files — all under
  // versions_mu_, so a reader either pins a handle before the swap or
  // never sees the old files. Checkpoint hard links keep any shared
  // content alive. One edit records the whole swap.
  std::lock_guard<std::mutex> lock(versions_mu_);
  versions_.set_last_seq(last_seq_.load(std::memory_order_relaxed));
  VersionEdit edit;
  edit.next_file_number = versions_.next_file_number();
  edit.last_seq = versions_.last_seq();
  for (const auto& [lvl, f] : inputs) {
    edit.removed.emplace_back(lvl, f.number);
    versions_.RemoveFile(lvl, f.number);
    EvictTableLocked(f.number);
    Status st = env_->DeleteFile(FilePath(TableFileName(f.number)));
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  for (auto& meta : outputs) {
    edit.added.emplace_back(output_level, meta);
    versions_.AddFile(output_level, std::move(meta));
  }
  compaction_count_.fetch_add(1, std::memory_order_relaxed);
  compaction_bytes_in_.fetch_add(bytes_in, std::memory_order_relaxed);
  compaction_bytes_out_.fetch_add(bytes_out, std::memory_order_relaxed);
  compactions_metric_->Increment();
  compaction_bytes_in_metric_->Increment(bytes_in);
  compaction_bytes_out_metric_->Increment(bytes_out);
  return AppendManifestEditLocked(edit);
}

// ----------------------------------------------------- Background worker --

void DB::ScheduleMaintenance() {
  auto bg = bg_;
  std::unique_lock<std::mutex> lock(bg->mu);
  if (bg->exit || bg->pending) return;
  bg->pending = true;
  if (options_.background_post) {
    lock.unlock();
    // The closure owns only the shared BgState: if the DB dies first (or
    // the executor drops the task), nothing dangles.
    options_.background_post([bg] {
      std::unique_lock<std::mutex> task_lock(bg->mu);
      bg->pending = false;
      if (!bg->db_alive || bg->exit) {
        bg->cv.notify_all();
        return;
      }
      DB* db = bg->db;
      ++bg->inflight;
      task_lock.unlock();
      db->RunMaintenance();
      task_lock.lock();
      --bg->inflight;
      bg->cv.notify_all();
    });
  } else {
    if (!bg_thread_.joinable()) {
      bg_thread_ = std::thread([this] { BackgroundThreadLoop(); });
    }
    bg->cv.notify_all();
  }
}

void DB::BackgroundThreadLoop() {
  std::unique_lock<std::mutex> lock(bg_->mu);
  while (true) {
    bg_->cv.wait(lock, [this] { return bg_->pending || bg_->exit; });
    if (bg_->exit) return;
    bg_->pending = false;
    ++bg_->inflight;
    lock.unlock();
    RunMaintenance();
    lock.lock();
    --bg_->inflight;
    bg_->cv.notify_all();
  }
}

void DB::RunMaintenance() {
  std::lock_guard<std::mutex> maint(maintenance_mu_);
  while (true) {
    if (shutting_down_.load(std::memory_order_acquire)) return;
    std::shared_ptr<ShardedMemTable> imm;
    {
      std::lock_guard<std::mutex> lock(mem_mu_);
      imm = imm_;
    }
    if (imm != nullptr) {
      Status st = FlushFrozenMemTable(imm);
      if (!st.ok()) {
        RecordBackgroundError(st);
        return;
      }
      continue;
    }
    if (!options_.auto_compact) return;
    bool did_work = false;
    Status st = CompactOnce(&did_work);
    if (!st.ok()) {
      RecordBackgroundError(st);
      return;
    }
    if (!did_work) return;
  }
}

void DB::RecordBackgroundError(const Status& s) {
  {
    std::lock_guard<std::mutex> lock(bg_error_mu_);
    if (bg_error_.ok()) bg_error_ = s;
  }
  has_bg_error_.store(true, std::memory_order_release);
  // Wake stalled writers; they surface the error instead of the stall.
  mem_cv_.notify_all();
}

Status DB::BackgroundError() const {
  if (!has_bg_error_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(bg_error_mu_);
  return bg_error_;
}

Status DB::WaitForBackgroundWork() {
  if (options_.background_maintenance) {
    std::unique_lock<std::mutex> lock(bg_->mu);
    bg_->cv.wait(lock, [this] {
      return (!bg_->pending && bg_->inflight == 0) || bg_->exit;
    });
  }
  return BackgroundError();
}

// ----------------------------------------------------------- Checkpoints --

Result<CheckpointInfo> DB::CreateCheckpoint(const std::string& dir) {
  RHINO_RETURN_NOT_OK(Flush());
  RHINO_RETURN_NOT_OK(env_->CreateDir(dir));
  CheckpointInfo info;
  info.directory = dir;
  // Links and the manifest snapshot in one versions_mu_ hold: the captured
  // file set and the manifest describing it cannot diverge.
  std::lock_guard<std::mutex> lock(versions_mu_);
  for (const auto& f : versions_.AllFiles()) {
    std::string name = TableFileName(f.number);
    Status st = env_->LinkFile(FilePath(name), dir + "/" + name);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
    info.files.push_back(CheckpointFile{name, f.file_size});
    info.total_bytes += f.file_size;
  }
  // The checkpoint MANIFEST is a one-record log (a snapshot), the same
  // format Open's LoadManifest replays — no separate decode path.
  std::string snapshot;
  {
    std::string payload(1, static_cast<char>(kManifestSnapshot));
    payload += versions_.EncodeManifest();
    AppendLogRecord(&snapshot, payload);
  }
  RHINO_RETURN_NOT_OK(env_->WriteFile(dir + "/" + kManifestName, snapshot));
  checkpoints_metric_->Increment();
  checkpoint_bytes_metric_->Increment(info.total_bytes);
  return info;
}

// --------------------------------------------------------------- Support --

uint64_t DB::ApproximateSize() const {
  uint64_t mem_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mem_mu_);
    mem_bytes = mem_->ApproximateBytes();
    if (imm_ != nullptr) mem_bytes += imm_->ApproximateBytes();
  }
  std::lock_guard<std::mutex> lock(versions_mu_);
  return mem_bytes + versions_.TotalBytes();
}

Status DB::LoadManifest(std::string_view data) {
  size_t pos = 0;
  std::string_view payload;
  bool have_snapshot = false;
  while (true) {
    LogRead got = ReadLogRecord(data, &pos, &payload);
    if (got == LogRead::kEnd) break;
    if (got == LogRead::kTorn) {
      // A torn trailing edit is the un-acknowledged suffix of a crash:
      // the matching WAL entries were not yet deleted, so dropping it
      // loses nothing. A tear before any snapshot means no usable state.
      if (!have_snapshot) {
        return Status::Corruption("MANIFEST torn before snapshot record");
      }
      break;
    }
    BinaryReader r(payload);
    uint8_t kind = 0;
    RHINO_RETURN_NOT_OK(r.GetU8(&kind));
    std::string_view body = payload.substr(1);
    if (kind == kManifestSnapshot) {
      RHINO_RETURN_NOT_OK(versions_.DecodeManifest(body));
      have_snapshot = true;
    } else if (kind == kManifestEdit) {
      if (!have_snapshot) {
        return Status::Corruption("MANIFEST edit before snapshot record");
      }
      VersionEdit edit;
      RHINO_RETURN_NOT_OK(edit.Decode(body));
      versions_.ApplyEdit(edit);
    } else {
      return Status::Corruption("unknown MANIFEST record kind");
    }
  }
  if (!have_snapshot) {
    return Status::Corruption("MANIFEST missing snapshot record");
  }
  return Status::OK();
}

Status DB::RotateManifestLocked() {
  manifest_file_.reset();
  std::string payload(1, static_cast<char>(kManifestSnapshot));
  payload += versions_.EncodeManifest();
  std::string record;
  AppendLogRecord(&record, payload);
  // Temp + rename: a crash mid-rotation leaves the previous MANIFEST (or
  // an orphan .tmp) rather than a half-written snapshot.
  std::string path = FilePath(kManifestName);
  RHINO_RETURN_NOT_OK(env_->WriteFile(path + ".tmp", record));
  RHINO_RETURN_NOT_OK(env_->RenameFile(path + ".tmp", path));
  RHINO_ASSIGN_OR_RETURN(manifest_file_,
                         env_->NewWritableFile(path, /*append=*/true));
  manifest_edits_ = 0;
  manifest_rotations_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DB::AppendManifestEditLocked(const VersionEdit& edit) {
  RHINO_CHECK(manifest_file_ != nullptr);
  std::string payload(1, static_cast<char>(kManifestEdit));
  payload += edit.Encode();
  std::string record;
  AppendLogRecord(&record, payload);
  RHINO_RETURN_NOT_OK(manifest_file_->Append(record));
  RHINO_RETURN_NOT_OK(manifest_file_->Flush());
  ++manifest_edits_;
  if (manifest_edits_ >= options_.manifest_rotate_edits) {
    // versions_ already reflects the edit, so the fresh snapshot does too.
    return RotateManifestLocked();
  }
  return Status::OK();
}

Result<std::shared_ptr<SSTableReader>> DB::OpenTableLocked(uint64_t number) {
  auto it = table_cache_.find(number);
  if (it != table_cache_.end()) {
    table_cache_hits_metric_->Increment();
    table_lru_.splice(table_lru_.begin(), table_lru_, it->second.lru_pos);
    return it->second.table;
  }
  table_cache_misses_metric_->Increment();
  RHINO_ASSIGN_OR_RETURN(
      auto file, env_->NewRandomAccessFile(FilePath(TableFileName(number))));
  RHINO_ASSIGN_OR_RETURN(
      auto table,
      SSTableReader::Open(std::move(file), block_cache_.get(), &read_stats_));
  table_lru_.push_front(number);
  table_cache_[number] = OpenTableEntry{table, table_lru_.begin()};
  while (table_cache_.size() > options_.max_open_tables) {
    uint64_t victim = table_lru_.back();
    table_lru_.pop_back();
    table_cache_.erase(victim);
    table_cache_evictions_metric_->Increment();
  }
  return table;
}

void DB::EvictTableLocked(uint64_t number) {
  auto it = table_cache_.find(number);
  if (it == table_cache_.end()) return;
  table_lru_.erase(it->second.lru_pos);
  table_cache_.erase(it);
}

}  // namespace rhino::lsm
