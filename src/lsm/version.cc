#include "lsm/version.h"

#include <algorithm>

#include "common/serde.h"

namespace rhino::lsm {

uint64_t VersionSet::LevelBytes(int l) const {
  uint64_t total = 0;
  for (const auto& f : levels_[l]) total += f.file_size;
  return total;
}

uint64_t VersionSet::TotalBytes() const {
  uint64_t total = 0;
  for (int l = 0; l < num_levels(); ++l) total += LevelBytes(l);
  return total;
}

int VersionSet::NumFiles() const {
  int n = 0;
  for (const auto& level : levels_) n += static_cast<int>(level.size());
  return n;
}

std::vector<FileMetaData> VersionSet::AllFiles() const {
  std::vector<FileMetaData> out;
  for (const auto& level : levels_) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

bool VersionSet::IsBottomMostForRange(int level, const std::string& smallest,
                                      const std::string& largest) const {
  for (int l = level + 1; l < num_levels(); ++l) {
    if (!Overlapping(l, smallest, largest).empty()) return false;
  }
  return true;
}

std::vector<FileMetaData> VersionSet::Overlapping(
    int level, const std::string& smallest, const std::string& largest) const {
  std::vector<FileMetaData> out;
  for (const auto& f : levels_[level]) {
    if (f.largest < smallest || f.smallest > largest) continue;
    out.push_back(f);
  }
  return out;
}

void VersionSet::RemoveFile(int level, uint64_t number) {
  auto& files = levels_[level];
  files.erase(std::remove_if(files.begin(), files.end(),
                             [number](const FileMetaData& f) {
                               return f.number == number;
                             }),
              files.end());
}

void VersionSet::AddFile(int level, FileMetaData meta) {
  auto& files = levels_[level];
  if (level == 0) {
    // Newest first: L0 files are consulted in insertion (recency) order.
    files.insert(files.begin(), std::move(meta));
  } else {
    auto pos = std::lower_bound(files.begin(), files.end(), meta,
                                [](const FileMetaData& a, const FileMetaData& b) {
                                  return a.smallest < b.smallest;
                                });
    files.insert(pos, std::move(meta));
  }
}

namespace {

void EncodeFileMeta(BinaryWriter* w, const FileMetaData& f) {
  w->PutU64(f.number);
  w->PutU64(f.file_size);
  w->PutString(f.smallest);
  w->PutString(f.largest);
  w->PutU64(f.num_entries);
}

Status DecodeFileMeta(BinaryReader* r, FileMetaData* f) {
  RHINO_RETURN_NOT_OK(r->GetU64(&f->number));
  RHINO_RETURN_NOT_OK(r->GetU64(&f->file_size));
  RHINO_RETURN_NOT_OK(r->GetString(&f->smallest));
  RHINO_RETURN_NOT_OK(r->GetString(&f->largest));
  RHINO_RETURN_NOT_OK(r->GetU64(&f->num_entries));
  return Status::OK();
}

}  // namespace

std::string VersionEdit::Encode() const {
  std::string out;
  BinaryWriter w(&out);
  w.PutU64(next_file_number);
  w.PutU64(last_seq);
  w.PutU32(static_cast<uint32_t>(removed.size()));
  for (const auto& [level, number] : removed) {
    w.PutU32(static_cast<uint32_t>(level));
    w.PutU64(number);
  }
  w.PutU32(static_cast<uint32_t>(added.size()));
  for (const auto& [level, file] : added) {
    w.PutU32(static_cast<uint32_t>(level));
    EncodeFileMeta(&w, file);
  }
  return out;
}

Status VersionEdit::Decode(std::string_view data) {
  BinaryReader r(data);
  RHINO_RETURN_NOT_OK(r.GetU64(&next_file_number));
  RHINO_RETURN_NOT_OK(r.GetU64(&last_seq));
  uint32_t num_removed = 0;
  RHINO_RETURN_NOT_OK(r.GetU32(&num_removed));
  removed.clear();
  removed.reserve(num_removed);
  for (uint32_t i = 0; i < num_removed; ++i) {
    uint32_t level = 0;
    uint64_t number = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&level));
    RHINO_RETURN_NOT_OK(r.GetU64(&number));
    removed.emplace_back(static_cast<int>(level), number);
  }
  uint32_t num_added = 0;
  RHINO_RETURN_NOT_OK(r.GetU32(&num_added));
  added.clear();
  added.reserve(num_added);
  for (uint32_t i = 0; i < num_added; ++i) {
    uint32_t level = 0;
    FileMetaData f;
    RHINO_RETURN_NOT_OK(r.GetU32(&level));
    RHINO_RETURN_NOT_OK(DecodeFileMeta(&r, &f));
    added.emplace_back(static_cast<int>(level), std::move(f));
  }
  return Status::OK();
}

void VersionSet::ApplyEdit(const VersionEdit& edit) {
  for (const auto& [level, number] : edit.removed) {
    RemoveFile(level, number);
  }
  for (const auto& [level, file] : edit.added) {
    AddFile(level, file);
  }
  next_file_number_ = std::max(next_file_number_, edit.next_file_number);
  last_seq_ = std::max(last_seq_, edit.last_seq);
}

std::string VersionSet::EncodeManifest() const {
  std::string out;
  BinaryWriter w(&out);
  w.PutU64(next_file_number_);
  w.PutU64(last_seq_);
  w.PutU32(static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) {
    w.PutU32(static_cast<uint32_t>(level.size()));
    for (const auto& f : level) EncodeFileMeta(&w, f);
  }
  return out;
}

Status VersionSet::DecodeManifest(std::string_view data) {
  BinaryReader r(data);
  RHINO_RETURN_NOT_OK(r.GetU64(&next_file_number_));
  RHINO_RETURN_NOT_OK(r.GetU64(&last_seq_));
  uint32_t num_levels = 0;
  RHINO_RETURN_NOT_OK(r.GetU32(&num_levels));
  levels_.assign(num_levels, {});
  for (uint32_t l = 0; l < num_levels; ++l) {
    uint32_t count = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&count));
    levels_[l].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      FileMetaData f;
      RHINO_RETURN_NOT_OK(DecodeFileMeta(&r, &f));
      levels_[l].push_back(std::move(f));
    }
  }
  return Status::OK();
}

}  // namespace rhino::lsm
