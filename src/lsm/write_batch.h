#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "lsm/format.h"

/// \file write_batch.h
/// Group-committed mutation batch for the LSM store.
///
/// A batch accumulates Put/Delete operations in their final WAL encoding
/// and is applied atomically by `DB::Write`: one framed WAL append (and
/// one buffer flush) covers the whole batch, and the memtable receives a
/// single insert pass over a contiguous sequence-number range. Replicas
/// applying checkpoint deltas and handover targets ingesting vnode blobs
/// commit thousands of entries per WAL write instead of one.
///
/// Payload encoding (also the WAL commit-record payload, behind the
/// framing in log_format.h):
///
///     varint count, then per entry: u8 type | string key | string value
///
/// (tombstones carry an empty value).

namespace rhino::lsm {

class WriteBatch {
 public:
  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Clear();

  uint64_t num_entries() const { return count_; }
  uint64_t num_puts() const { return puts_; }
  uint64_t num_deletes() const { return count_ - puts_; }
  bool empty() const { return count_ == 0; }

  /// Bytes the batch currently pins (its encoded representation). Callers
  /// ingesting unbounded streams commit and Clear() when this grows past
  /// their budget.
  uint64_t ApproximateBytes() const { return rep_.size(); }

  /// The WAL commit-record payload for this batch.
  std::string EncodePayload() const;

  /// Per-entry callback; the views alias the batch (or decoded payload)
  /// and are only valid during the call.
  using Handler =
      std::function<Status(ValueType type, std::string_view key,
                           std::string_view value)>;

  /// Applies `fn` to each entry in insertion order.
  Status ForEach(const Handler& fn) const { return DecodeEntries(rep_, fn); }

  /// Decodes the entry section (no leading count) — shared by ForEach and
  /// WAL recovery, which walks a payload written by EncodePayload.
  static Status DecodeEntries(std::string_view entries, const Handler& fn);

  /// Splits a WAL commit payload into its count and entry section.
  static Status DecodePayload(std::string_view payload, uint64_t* count,
                              std::string_view* entries);

 private:
  std::string rep_;  // encoded entries, no count prefix
  uint64_t count_ = 0;
  uint64_t puts_ = 0;
};

}  // namespace rhino::lsm
