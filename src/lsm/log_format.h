#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/hash.h"

/// \file log_format.h
/// Length + checksum framing shared by the write-ahead log and the
/// manifest edit log.
///
/// A record is `u32 checksum | u32 length | payload`, little endian, with
/// the checksum taken over the payload bytes (FNV-1a folded to 32 bits).
/// Framing makes torn tails *explicit*: a crash mid-append leaves either a
/// short header, a short payload, or a checksum mismatch — all three are
/// reported as `kTorn` so recovery can discard exactly the un-committed
/// tail instead of relying on the payload parser to fail by luck.

namespace rhino::lsm {

inline uint32_t LogChecksum(std::string_view payload) {
  uint64_t h = Fnv1a64(payload);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

/// Frames `payload` into `out` (append).
inline void AppendLogRecord(std::string* out, std::string_view payload) {
  uint32_t crc = LogChecksum(payload);
  auto len = static_cast<uint32_t>(payload.size());
  char header[8];
  std::memcpy(header, &crc, 4);
  std::memcpy(header + 4, &len, 4);
  out->append(header, 8);
  out->append(payload.data(), payload.size());
}

enum class LogRead {
  kRecord,  // *payload holds the next record's payload
  kEnd,     // clean end of log
  kTorn,    // truncated or checksum-corrupt tail: discard from *pos on
};

/// Reads the framed record starting at `*pos` in `data`. On `kRecord`,
/// advances `*pos` past it; on `kTorn`, leaves `*pos` at the torn record's
/// first byte (the valid prefix is `data.substr(0, *pos)`).
inline LogRead ReadLogRecord(std::string_view data, size_t* pos,
                             std::string_view* payload) {
  if (*pos == data.size()) return LogRead::kEnd;
  if (data.size() - *pos < 8) return LogRead::kTorn;
  uint32_t crc = 0, len = 0;
  std::memcpy(&crc, data.data() + *pos, 4);
  std::memcpy(&len, data.data() + *pos + 4, 4);
  if (data.size() - *pos - 8 < len) return LogRead::kTorn;
  std::string_view body = data.substr(*pos + 8, len);
  if (LogChecksum(body) != crc) return LogRead::kTorn;
  *payload = body;
  *pos += 8 + static_cast<size_t>(len);
  return LogRead::kRecord;
}

}  // namespace rhino::lsm
