#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

/// \file env.h
/// Filesystem abstraction for the LSM store.
///
/// Two implementations: `MemEnv` (in-memory, content shared between hard
/// links — the default for tests and simulations) and `PosixEnv` (real
/// filesystem, for the examples). Hard links are first-class because
/// Rhino's incremental checkpoints hard-link immutable SSTs instead of
/// copying them (paper §5.2.1: "local state fetching, which involves
/// hard-linking instead of network transfer").

namespace rhino::lsm {

/// Read-only positional handle to one file's content. The handle pins the
/// content it was opened on: like a POSIX file descriptor, it keeps serving
/// the original bytes even after the name is deleted, renamed, or replaced
/// by a fresh WriteFile. This is what makes long-lived SSTable readers (and
/// the iterators holding them) immune to concurrent compaction deletes.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset` into `*out`. Reads that
  /// extend past EOF are clamped (short read); reads starting at or past
  /// EOF return OK with an empty `*out`.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  /// Size of the pinned content in bytes.
  virtual uint64_t Size() const = 0;
};

/// Buffered, append-only writable handle to one file. The handle is opened
/// once and appended to many times — the write-ahead log and streaming
/// SSTable builds hold one of these instead of re-resolving the path per
/// record. Appends accumulate in an internal buffer; `Flush` pushes them to
/// the file's content (where readers and other handles see them) and
/// `Sync` additionally asks the platform for durability. The destructor
/// flushes (normal close), so only a crash — modeled by a fault-injecting
/// Env — loses buffered bytes.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes into the file content.
  virtual Status Flush() = 0;

  /// Flush + durability barrier (fsync on real filesystems).
  virtual Status Sync() = 0;

  /// Total bytes appended through this handle plus the size the file had
  /// when the handle was opened (i.e. the file size once flushed).
  virtual uint64_t Size() const = 0;
};

/// Abstract filesystem. All paths are '/'-separated and absolute within
/// the Env's namespace.
class Env {
 public:
  virtual ~Env() = default;

  /// Atomically writes (creates or replaces) a whole file. Replacement
  /// creates fresh content (a new inode): existing hard links keep the old
  /// bytes, exactly like write-temp-then-rename on a POSIX filesystem.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  /// Appends to a file, creating it if absent. Appends go to the file's
  /// content (all hard links observe them) — used by the write-ahead log,
  /// which is never hard-linked.
  virtual Status AppendFile(const std::string& path, std::string_view data) = 0;

  /// Reads a whole file into `*out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// Positional partial read: up to `n` bytes of `path` starting at
  /// `offset`. Same EOF-clamping semantics as RandomAccessFile::Read. This
  /// is the one-shot form; block-granular readers that issue many reads
  /// against the same file should hold a NewRandomAccessFile handle.
  virtual Status ReadFileRange(const std::string& path, uint64_t offset,
                               size_t n, std::string* out) = 0;

  /// Opens a pinned positional-read handle on `path`.
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Opens a buffered append-only handle. `append == false` truncates
  /// (creating fresh content, like WriteFile); `append == true` keeps
  /// existing bytes and positions at the end, creating the file if absent.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) = 0;

  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates a directory (and parents). Succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Creates a hard link `dst` to existing file `src`: both names refer to
  /// the same immutable content, no bytes are copied.
  virtual Status LinkFile(const std::string& src, const std::string& dst) = 0;

  virtual Status RenameFile(const std::string& src, const std::string& dst) = 0;

  /// Lists file names (not paths) directly inside `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

/// In-memory Env. Hard links share the underlying `shared_ptr` content.
///
/// Thread safety: one internal mutex guards the name→content catalog, so
/// DBs on different threads can share an Env (as different nodes of a
/// realtime cluster do). Content buffers themselves are not locked: a
/// file's bytes mutate only through its owning DB's handles (serialized
/// by the DB's own lock), and cross-DB sharing via LinkFile only ever
/// covers immutable content (finished SSTs, checkpoint manifests).
class MemEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status ReadFileRange(const std::string& path, uint64_t offset, size_t n,
                       std::string* out) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status LinkFile(const std::string& src, const std::string& dst) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  /// Total bytes of unique content (hard links counted once). Used by
  /// tests to prove that checkpoints do not duplicate bytes.
  uint64_t UniqueContentBytes() const;

 private:
  struct Impl;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
  std::set<std::string> dirs_{"/"};
};

/// Real-filesystem Env rooted at a directory.
class PosixEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status ReadFileRange(const std::string& path, uint64_t offset, size_t n,
                       std::string* out) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status LinkFile(const std::string& src, const std::string& dst) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
};

}  // namespace rhino::lsm
