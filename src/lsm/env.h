#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

/// \file env.h
/// Filesystem abstraction for the LSM store.
///
/// Two implementations: `MemEnv` (in-memory, content shared between hard
/// links — the default for tests and simulations) and `PosixEnv` (real
/// filesystem, for the examples). Hard links are first-class because
/// Rhino's incremental checkpoints hard-link immutable SSTs instead of
/// copying them (paper §5.2.1: "local state fetching, which involves
/// hard-linking instead of network transfer").

namespace rhino::lsm {

/// Abstract filesystem. All paths are '/'-separated and absolute within
/// the Env's namespace.
class Env {
 public:
  virtual ~Env() = default;

  /// Atomically writes (creates or replaces) a whole file. Replacement
  /// creates fresh content (a new inode): existing hard links keep the old
  /// bytes, exactly like write-temp-then-rename on a POSIX filesystem.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  /// Appends to a file, creating it if absent. Appends go to the file's
  /// content (all hard links observe them) — used by the write-ahead log,
  /// which is never hard-linked.
  virtual Status AppendFile(const std::string& path, std::string_view data) = 0;

  /// Reads a whole file into `*out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates a directory (and parents). Succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Creates a hard link `dst` to existing file `src`: both names refer to
  /// the same immutable content, no bytes are copied.
  virtual Status LinkFile(const std::string& src, const std::string& dst) = 0;

  virtual Status RenameFile(const std::string& src, const std::string& dst) = 0;

  /// Lists file names (not paths) directly inside `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
};

/// In-memory Env. Hard links share the underlying `shared_ptr` content.
class MemEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status LinkFile(const std::string& src, const std::string& dst) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;

  /// Total bytes of unique content (hard links counted once). Used by
  /// tests to prove that checkpoints do not duplicate bytes.
  uint64_t UniqueContentBytes() const;

 private:
  struct Impl;
  std::map<std::string, std::shared_ptr<std::string>> files_;
  std::set<std::string> dirs_{"/"};
};

/// Real-filesystem Env rooted at a directory.
class PosixEnv : public Env {
 public:
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status LinkFile(const std::string& src, const std::string& dst) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
};

}  // namespace rhino::lsm
