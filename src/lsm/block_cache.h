#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/observability.h"

/// \file block_cache.h
/// Shared, byte-budgeted LRU cache of SSTable data blocks.
///
/// One simulation opens hundreds of DBs (one per stateful operator
/// instance); a single process-wide cache bounds the total memory spent on
/// hot blocks regardless of how many stores exist, the same role RocksDB's
/// shared block cache plays in the paper's deployment. Blocks are keyed by
/// (table id, block index), where table ids are unique per open
/// SSTableReader — a reader erases its blocks on close so a recycled id
/// can never alias stale bytes.
///
/// Thread-safe: the cache is shared by every DB in the process, and under
/// the realtime executor those DBs are driven from different node strands.
/// One internal mutex covers the LRU list, the map, and the stats — the
/// O(1) critical sections are short enough that sharding has not been
/// needed. Table ids come from an atomic counter.

namespace rhino::lsm {

class BlockCache {
 public:
  using BlockHandle = std::shared_ptr<const std::string>;

  explicit BlockCache(uint64_t capacity_bytes);

  /// Returns the cached block or nullptr, promoting hits to MRU.
  BlockHandle Lookup(uint64_t table_id, uint32_t block_idx);

  /// Inserts a block, evicting LRU entries until the budget holds. Blocks
  /// larger than the whole budget are not cached (the caller still owns
  /// the returned handle and can use it for the current operation).
  void Insert(uint64_t table_id, uint32_t block_idx, BlockHandle block);

  /// Drops every block of `table_id` (called when a reader closes).
  void EraseTable(uint64_t table_id);

  /// Drops everything (benchmarks use this to measure cold reads).
  void Clear();

  /// Allocates a process-unique id for a new reader.
  uint64_t NewTableId() {
    return next_table_id_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t usage_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }
  /// High-water mark of usage_bytes() since construction/ResetStats.
  uint64_t peak_usage_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_usage_;
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }
  size_t num_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  void ResetStats();

  /// Re-binds the hit/miss/eviction counters and usage gauge onto `o`
  /// (defaults to the process-wide context at construction).
  void SetObservability(obs::Observability* o);

  /// Process-wide cache used by DBs whose Options carry no explicit cache.
  /// Sized from Options{}.block_cache_bytes at first use.
  static const std::shared_ptr<BlockCache>& Default();

 private:
  struct Key {
    uint64_t table_id;
    uint32_t block_idx;
    bool operator==(const Key& o) const {
      return table_id == o.table_id && block_idx == o.block_idx;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.table_id * 0x9e3779b97f4a7c15ull ^
                                   k.block_idx);
    }
  };
  struct Entry {
    BlockHandle block;
    std::list<Key>::iterator lru_pos;
  };

  /// Requires mu_ held.
  void EvictUntil(uint64_t target_bytes);

  uint64_t capacity_;
  mutable std::mutex mu_;
  uint64_t usage_ = 0;
  uint64_t peak_usage_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::atomic<uint64_t> next_table_id_{1};
  std::list<Key> lru_;  // front = MRU, back = LRU
  std::unordered_map<Key, Entry, KeyHash> entries_;

  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
  obs::Gauge* usage_metric_ = nullptr;
};

}  // namespace rhino::lsm
