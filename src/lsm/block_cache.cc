#include "lsm/block_cache.h"

#include <algorithm>

namespace rhino::lsm {

BlockCache::BlockCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {
  SetObservability(obs::Observability::Default());
}

void BlockCache::SetObservability(obs::Observability* o) {
  obs::MetricsRegistry& m = o->metrics();
  hits_metric_ = m.GetCounter("rhino_lsm_block_cache_hits_total");
  misses_metric_ = m.GetCounter("rhino_lsm_block_cache_misses_total");
  evictions_metric_ = m.GetCounter("rhino_lsm_block_cache_evictions_total");
  usage_metric_ = m.GetGauge("rhino_lsm_block_cache_bytes");
}

BlockCache::BlockHandle BlockCache::Lookup(uint64_t table_id,
                                           uint32_t block_idx) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{table_id, block_idx});
  if (it == entries_.end()) {
    ++misses_;
    misses_metric_->Increment();
    return nullptr;
  }
  ++hits_;
  hits_metric_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.block;
}

void BlockCache::Insert(uint64_t table_id, uint32_t block_idx,
                        BlockHandle block) {
  uint64_t bytes = block->size();
  if (bytes > capacity_) return;  // would evict everything for one block
  std::lock_guard<std::mutex> lock(mu_);
  Key key{table_id, block_idx};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    usage_ -= it->second.block->size();
    it->second.block = std::move(block);
    usage_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    EvictUntil(capacity_ - bytes);
    lru_.push_front(key);
    entries_[key] = Entry{std::move(block), lru_.begin()};
    usage_ += bytes;
  }
  peak_usage_ = std::max(peak_usage_, usage_);
  usage_metric_->Set(static_cast<double>(usage_));
}

void BlockCache::EvictUntil(uint64_t target_bytes) {
  while (usage_ > target_bytes && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    usage_ -= it->second.block->size();
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    evictions_metric_->Increment();
  }
}

void BlockCache::EraseTable(uint64_t table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->table_id != table_id) {
      ++it;
      continue;
    }
    auto entry = entries_.find(*it);
    usage_ -= entry->second.block->size();
    entries_.erase(entry);
    it = lru_.erase(it);
  }
  usage_metric_->Set(static_cast<double>(usage_));
}

void BlockCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  usage_ = 0;
  usage_metric_->Set(0);
}

void BlockCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = misses_ = evictions_ = 0;
  peak_usage_ = usage_;
}

const std::shared_ptr<BlockCache>& BlockCache::Default() {
  // Sized here rather than from lsm::Options to avoid a header cycle; the
  // value is mirrored by Options{}.block_cache_bytes.
  static const uint64_t kDefaultCapacityBytes = 64ull * 1024 * 1024;
  static std::shared_ptr<BlockCache> cache =
      std::make_shared<BlockCache>(kDefaultCapacityBytes);
  return cache;
}

}  // namespace rhino::lsm
