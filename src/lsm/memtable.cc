#include "lsm/memtable.h"

namespace rhino::lsm {

MemTable::Node* MemTable::NewNode(std::string_view key, int height) {
  // Tower slots beyond the first are allocated inline after the struct;
  // the key bytes are copied into the arena alongside.
  size_t size = sizeof(Node) + sizeof(Node*) * static_cast<size_t>(height - 1);
  Node* node = reinterpret_cast<Node*>(arena_.AllocateAligned(size));
  node->key = arena_.CopyString(key);
  node->value = {};
  node->seq = 0;
  node->type = ValueType::kValue;
  node->height = height;
  for (int i = 0; i < height; ++i) node->next[i] = nullptr;
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rng_.OneIn(4)) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_ - 1;
  while (true) {
    Node* next = x->next[level];
    if (next != nullptr && next->key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Add(std::string_view key, uint64_t seq, ValueType type,
                   std::string_view value) {
  Node* prev[kMaxHeight];
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    // In-place overwrite: the newest sequence number shadows the old entry,
    // so keeping only the newest is equivalent and cheaper. The old value
    // bytes stay behind in the arena until the flush drops it wholesale.
    // Concurrent commits can reach the shard lock out of sequence order;
    // an older version arriving late must not clobber a newer one.
    if (node->seq > seq) return;
    bytes_ += value.size() - node->value.size();
    node->seq = seq;
    node->type = type;
    node->value = arena_.CopyString(value);
    return;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int i = max_height_; i < height; ++i) prev[i] = head_;
    max_height_ = height;
  }
  Node* n = NewNode(key, height);
  n->seq = seq;
  n->type = type;
  n->value = arena_.CopyString(value);
  for (int i = 0; i < height; ++i) {
    n->next[i] = prev[i]->next[i];
    prev[i]->next[i] = n;
  }
  bytes_ += key.size() + value.size() + 32;  // 32 ~ node overhead
  ++entries_;
}

bool MemTable::Get(std::string_view key, Entry* entry) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) return false;
  entry->key.assign(node->key);
  entry->seq = node->seq;
  entry->type = node->type;
  entry->value.assign(node->value);
  return true;
}

// ------------------------------------------------------- ShardedMemTable --

ShardedMemTable::ShardedMemTable(size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ShardedMemTable::Add(std::string_view key, uint64_t seq, ValueType type,
                          std::string_view value) {
  Shard& shard = *shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.table.Add(key, seq, type, value);
  // Mirror the (single-writer-per-shard-at-a-time) counters into atomics so
  // the flush-threshold check and ApproximateSize stay lock-free.
  shard.bytes.store(shard.table.ApproximateBytes(), std::memory_order_relaxed);
  shard.entries.store(shard.table.NumEntries(), std::memory_order_relaxed);
}

bool ShardedMemTable::Get(std::string_view key, Entry* entry) const {
  const Shard& shard = *shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.table.Get(key, entry);
}

uint64_t ShardedMemTable::ApproximateBytes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->bytes.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ShardedMemTable::ArenaBytes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->table.ArenaBytes();
  }
  return total;
}

uint64_t ShardedMemTable::NumEntries() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->entries.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Entry> ShardedMemTable::SortedSnapshot(std::string_view begin,
                                                   std::string_view end) const {
  // Per-shard sorted runs, copied under the shard lock...
  std::vector<std::vector<Entry>> runs(shards_.size());
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    for (auto it = shards_[i]->table.NewIterator(); it.Valid(); it.Next()) {
      if (it.key() < begin) continue;
      if (!end.empty() && it.key() >= end) break;
      runs[i].push_back(Entry{std::string(it.key()), it.seq(), it.type(),
                              std::string(it.value())});
    }
    total += runs[i].size();
  }
  // ...then merged: keys are unique across shards (one shard owns a key),
  // so a linear-scan min over <= num_shards cursors suffices.
  std::vector<Entry> out;
  out.reserve(total);
  std::vector<size_t> pos(runs.size(), 0);
  while (out.size() < total) {
    int min = -1;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (pos[i] >= runs[i].size()) continue;
      if (min < 0 || runs[i][pos[i]].key < runs[size_t(min)][pos[size_t(min)]].key) {
        min = static_cast<int>(i);
      }
    }
    out.push_back(std::move(runs[size_t(min)][pos[size_t(min)]]));
    ++pos[size_t(min)];
  }
  return out;
}

ShardedMemTable::MergingIterator::MergingIterator(
    const ShardedMemTable* table) {
  its_.reserve(table->shards_.size());
  for (const auto& s : table->shards_) {
    its_.push_back(s->table.NewIterator());
  }
  FindMin();
}

void ShardedMemTable::MergingIterator::FindMin() {
  cur_ = -1;
  for (size_t i = 0; i < its_.size(); ++i) {
    if (!its_[i].Valid()) continue;
    if (cur_ < 0 || its_[i].key() < its_[size_t(cur_)].key()) {
      cur_ = static_cast<int>(i);
    }
  }
}

void ShardedMemTable::MergingIterator::Next() {
  its_[size_t(cur_)].Next();
  FindMin();
}

}  // namespace rhino::lsm
