#include "lsm/memtable.h"

namespace rhino::lsm {

MemTable::Node* MemTable::NewNode(std::string_view key, int height) {
  // Tower slots beyond the first are allocated inline after the struct;
  // the key bytes are copied into the arena alongside.
  size_t size = sizeof(Node) + sizeof(Node*) * static_cast<size_t>(height - 1);
  Node* node = reinterpret_cast<Node*>(arena_.AllocateAligned(size));
  node->key = arena_.CopyString(key);
  node->value = {};
  node->seq = 0;
  node->type = ValueType::kValue;
  node->height = height;
  for (int i = 0; i < height; ++i) node->next[i] = nullptr;
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rng_.OneIn(4)) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_ - 1;
  while (true) {
    Node* next = x->next[level];
    if (next != nullptr && next->key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Add(std::string_view key, uint64_t seq, ValueType type,
                   std::string_view value) {
  Node* prev[kMaxHeight];
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    // In-place overwrite: the newest sequence number shadows the old entry,
    // so keeping only the newest is equivalent and cheaper. The old value
    // bytes stay behind in the arena until the flush drops it wholesale.
    bytes_ += value.size() - node->value.size();
    node->seq = seq;
    node->type = type;
    node->value = arena_.CopyString(value);
    return;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int i = max_height_; i < height; ++i) prev[i] = head_;
    max_height_ = height;
  }
  Node* n = NewNode(key, height);
  n->seq = seq;
  n->type = type;
  n->value = arena_.CopyString(value);
  for (int i = 0; i < height; ++i) {
    n->next[i] = prev[i]->next[i];
    prev[i]->next[i] = n;
  }
  bytes_ += key.size() + value.size() + 32;  // 32 ~ node overhead
  ++entries_;
}

bool MemTable::Get(std::string_view key, Entry* entry) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) return false;
  entry->key.assign(node->key);
  entry->seq = node->seq;
  entry->type = node->type;
  entry->value.assign(node->value);
  return true;
}

}  // namespace rhino::lsm
