#include "lsm/memtable.h"

#include <cstdlib>
#include <new>

namespace rhino::lsm {

MemTable::Node* MemTable::NewNode(std::string_view key, int height) {
  // Tower slots beyond the first are allocated inline after the struct.
  size_t size = sizeof(Node) + sizeof(Node*) * static_cast<size_t>(height - 1);
  void* mem = ::operator new(size);
  Node* node = new (mem) Node{std::string(key), 0, ValueType::kValue, "", height, {nullptr}};
  for (int i = 0; i < height; ++i) node->next[i] = nullptr;
  return node;
}

MemTable::~MemTable() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    n->~Node();
    ::operator delete(n);
    n = next;
  }
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && rng_.OneIn(4)) ++height;
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view key,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_ - 1;
  while (true) {
    Node* next = x->next[level];
    if (next != nullptr && next->key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void MemTable::Add(std::string_view key, uint64_t seq, ValueType type,
                   std::string_view value) {
  Node* prev[kMaxHeight];
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    // In-place overwrite: the newest sequence number shadows the old entry,
    // so keeping only the newest is equivalent and cheaper.
    bytes_ += value.size() - node->value.size();
    node->seq = seq;
    node->type = type;
    node->value.assign(value);
    return;
  }
  int height = RandomHeight();
  if (height > max_height_) {
    for (int i = max_height_; i < height; ++i) prev[i] = head_;
    max_height_ = height;
  }
  Node* n = NewNode(key, height);
  n->seq = seq;
  n->type = type;
  n->value.assign(value);
  for (int i = 0; i < height; ++i) {
    n->next[i] = prev[i]->next[i];
    prev[i]->next[i] = n;
  }
  bytes_ += key.size() + value.size() + 32;  // 32 ~ node overhead
  ++entries_;
}

bool MemTable::Get(std::string_view key, Entry* entry) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) return false;
  entry->key = node->key;
  entry->seq = node->seq;
  entry->type = node->type;
  entry->value = node->value;
  return true;
}

}  // namespace rhino::lsm
