#include "lsm/fault_env.h"

#include <chrono>
#include <thread>

namespace rhino::lsm {

/// Write handle that consults the owning FaultEnv on every mutation. A
/// failing Append tears when the env says so: half the bytes land and are
/// flushed before the error surfaces.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::unique_ptr<WritableFile> inner)
      : env_(env), inner_(std::move(inner)) {}

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Sync() override;
  uint64_t Size() const override { return inner_->Size(); }

 private:
  FaultEnv* env_;
  std::unique_ptr<WritableFile> inner_;
};

bool FaultEnv::ShouldFailWrite() {
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ == 0) {
      fail = true;  // crashed: the machine stays down until healed
    } else {
      if (budget_ > 0) --budget_;
      if (write_fail_prob_ > 0 &&
          rng_.NextDouble() < write_fail_prob_) {
        fail = true;
      }
    }
  }
  if (fail) injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

bool FaultEnv::ShouldFailRead() {
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fail = read_fail_prob_ > 0 && rng_.NextDouble() < read_fail_prob_;
  }
  if (fail) injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

bool FaultEnv::TornAppends() {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_appends_;
}

void FaultEnv::MaybeDelay() {
  int64_t us;
  {
    std::lock_guard<std::mutex> lock(mu_);
    us = latency_us_;
  }
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

Status FaultWritableFile::Append(std::string_view data) {
  env_->MaybeDelay();
  if (env_->ShouldFailWrite()) {
    if (env_->TornAppends()) {
      // Torn write: half the record lands, then the "machine dies".
      (void)inner_->Append(data.substr(0, data.size() / 2));
      (void)inner_->Flush();
      return Status::IOError("injected torn append");
    }
    return Status::IOError("injected append failure");
  }
  return inner_->Append(data);
}

Status FaultWritableFile::Flush() {
  env_->MaybeDelay();
  if (env_->ShouldFailWrite()) return Status::IOError("injected flush failure");
  return inner_->Flush();
}

Status FaultWritableFile::Sync() {
  env_->MaybeDelay();
  if (env_->ShouldFailWrite()) return Status::IOError("injected sync failure");
  return inner_->Sync();
}

Status FaultEnv::WriteFile(const std::string& path, std::string_view data) {
  MaybeDelay();
  if (ShouldFailWrite()) return Status::IOError("injected WriteFile failure");
  return base_->WriteFile(path, data);
}

Status FaultEnv::AppendFile(const std::string& path, std::string_view data) {
  MaybeDelay();
  if (ShouldFailWrite()) return Status::IOError("injected AppendFile failure");
  return base_->AppendFile(path, data);
}

Status FaultEnv::ReadFile(const std::string& path, std::string* out) {
  MaybeDelay();
  if (ShouldFailRead()) return Status::IOError("injected ReadFile failure");
  return base_->ReadFile(path, out);
}

Status FaultEnv::ReadFileRange(const std::string& path, uint64_t offset,
                               size_t n, std::string* out) {
  MaybeDelay();
  if (ShouldFailRead()) {
    return Status::IOError("injected ReadFileRange failure");
  }
  return base_->ReadFileRange(path, offset, n, out);
}

Result<std::unique_ptr<RandomAccessFile>> FaultEnv::NewRandomAccessFile(
    const std::string& path) {
  MaybeDelay();
  if (ShouldFailRead()) return Status::IOError("injected open failure");
  return base_->NewRandomAccessFile(path);
}

Result<std::unique_ptr<WritableFile>> FaultEnv::NewWritableFile(
    const std::string& path, bool append) {
  MaybeDelay();
  RHINO_ASSIGN_OR_RETURN(auto inner, base_->NewWritableFile(path, append));
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(inner)));
}

Result<uint64_t> FaultEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

bool FaultEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultEnv::DeleteFile(const std::string& path) {
  MaybeDelay();
  if (ShouldFailWrite()) return Status::IOError("injected delete failure");
  return base_->DeleteFile(path);
}

Status FaultEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultEnv::LinkFile(const std::string& src, const std::string& dst) {
  MaybeDelay();
  if (ShouldFailWrite()) return Status::IOError("injected link failure");
  return base_->LinkFile(src, dst);
}

Status FaultEnv::RenameFile(const std::string& src, const std::string& dst) {
  MaybeDelay();
  if (ShouldFailWrite()) return Status::IOError("injected rename failure");
  return base_->RenameFile(src, dst);
}

Result<std::vector<std::string>> FaultEnv::ListDir(const std::string& dir) {
  return base_->ListDir(dir);
}

}  // namespace rhino::lsm
