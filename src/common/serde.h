#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file serde.h
/// Little-endian binary encoding used by the LSM on-disk formats and the
/// wire formats of the broker/replication runtimes.

namespace rhino {

/// Appends fixed-width and length-prefixed values to a byte buffer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void PutU64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// Variable-length unsigned integer (LEB128-style).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  /// Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

/// Reads values written by `BinaryWriter`. All accessors fail with
/// `Corruption` on truncation rather than reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

  Status GetU8(uint8_t* v) {
    if (remaining() < 1) return Truncated();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status GetU32(uint32_t* v) {
    if (remaining() < 4) return Truncated();
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(uint64_t* v) {
    if (remaining() < 8) return Truncated();
    std::memcpy(v, data_.data() + pos_, 8);
    pos_ += 8;
    return Status::OK();
  }

  Status GetI64(int64_t* v) {
    uint64_t u;
    RHINO_RETURN_NOT_OK(GetU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetVarint(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (remaining() < 1) return Truncated();
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
      if (shift > 63) return Status::Corruption("varint too long");
    }
    *v = result;
    return Status::OK();
  }

  /// Reads a length-prefixed string as a view into the underlying buffer.
  Status GetString(std::string_view* s) {
    uint64_t len = 0;
    RHINO_RETURN_NOT_OK(GetVarint(&len));
    if (remaining() < len) return Truncated();
    *s = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status GetString(std::string* s) {
    std::string_view v;
    RHINO_RETURN_NOT_OK(GetString(&v));
    s->assign(v);
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::Corruption("truncated binary input");
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace rhino
