#pragma once

#include <cstdint>

#include "common/hash.h"

/// \file random.h
/// Deterministic pseudo-random generator (xoshiro256**) for workload
/// generation and simulations. Deterministic seeding keeps every experiment
/// reproducible run-to-run.

namespace rhino {

/// Small, fast, seedable PRNG. Not cryptographic.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    // splitmix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ull;
      lane = Mix64(x);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool OneIn(uint32_t n) { return n != 0 && Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace rhino
