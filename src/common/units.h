#pragma once

#include <cstdint>
#include <string>

/// \file units.h
/// Byte-size and simulated-time units shared across the codebase.
///
/// Simulated time is an `int64_t` count of **microseconds** since the start
/// of a simulation. All modeled bandwidths are expressed in bytes/second and
/// converted with these helpers.

namespace rhino {

/// Simulated time in microseconds.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;
constexpr uint64_t kTiB = 1024ull * kGiB;

/// Duration of transferring `bytes` at `bytes_per_sec`, rounded up to 1 us.
SimTime TransferTime(uint64_t bytes, double bytes_per_sec);

/// Formats a byte count with a binary suffix, e.g. "1.5 GiB".
std::string FormatBytes(uint64_t bytes);

/// Formats a simulated duration, e.g. "2.50 s" or "130 ms".
std::string FormatDuration(SimTime t);

/// Converts simulated time to fractional seconds.
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace rhino
