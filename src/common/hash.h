#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

/// \file hash.h
/// Hash functions used for key partitioning and bloom filters.

namespace rhino {

/// 64-bit FNV-1a over an arbitrary byte string.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

/// Strong 64-bit integer mixer (splitmix64 finalizer). Used to spread keys
/// uniformly over key groups regardless of input distribution.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hashes a 64-bit key (e.g. NEXMark auction/person id).
inline uint64_t HashKey(uint64_t key) { return Mix64(key); }

}  // namespace rhino
