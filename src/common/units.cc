#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace rhino {

SimTime TransferTime(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  if (bytes_per_sec <= 0) return kHour * 24 * 365;  // effectively never
  double secs = static_cast<double>(bytes) / bytes_per_sec;
  auto t = static_cast<SimTime>(std::ceil(secs * static_cast<double>(kSecond)));
  return t < 1 ? 1 : t;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB",
                  static_cast<double>(bytes) / static_cast<double>(kTiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(SimTime t) {
  char buf[64];
  if (t >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f min", static_cast<double>(t) / kMinute);
  } else if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(t) / kSecond);
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace rhino
