#include "common/status.h"

namespace rhino {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rhino
