#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

/// \file logging.h
/// Minimal glog-style logging and assertion macros.
///
/// Severity is filtered by `Logger::SetLevel`. `RHINO_CHECK*` macros abort
/// on violation and are kept enabled in release builds: in a storage system,
/// continuing after a broken invariant risks corrupting persistent state.

namespace rhino {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Process-wide logging configuration and sink.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  /// Writes one formatted line to stderr if `level` passes the filter.
  static void Log(LogLevel level, const char* file, int line,
                  const std::string& msg);
};

namespace internal {

/// Stream-collecting helper behind the RHINO_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Log(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rhino

#define RHINO_LOG(level)                                              \
  ::rhino::internal::LogMessage(::rhino::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

#define RHINO_CHECK(cond)                                      \
  if (!(cond))                                                 \
  RHINO_LOG(Fatal) << "Check failed: " #cond " "

#define RHINO_CHECK_OK(expr)                                   \
  do {                                                         \
    ::rhino::Status _st = (expr);                              \
    if (!_st.ok())                                             \
      RHINO_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (0)

#define RHINO_CHECK_EQ(a, b) RHINO_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RHINO_CHECK_NE(a, b) RHINO_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define RHINO_CHECK_LT(a, b) RHINO_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RHINO_CHECK_LE(a, b) RHINO_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RHINO_CHECK_GT(a, b) RHINO_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RHINO_CHECK_GE(a, b) RHINO_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define RHINO_DCHECK(cond) RHINO_CHECK(cond)
