#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace rhino {

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t Histogram::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

int64_t Histogram::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

int64_t Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

}  // namespace rhino
