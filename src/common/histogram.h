#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file histogram.h
/// Latency statistics with percentile queries, used by the metrics module
/// and the benchmark harness.

namespace rhino {

/// Collects int64 samples (e.g. latency in microseconds) and answers
/// mean/min/max/percentile queries. Percentiles sort lazily.
class Histogram {
 public:
  void Add(int64_t v) {
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const {
    return samples_.empty()
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }

  int64_t Min() const;
  int64_t Max() const;

  /// Percentile in [0, 100], nearest-rank. Returns 0 when empty.
  int64_t Percentile(double p) const;

  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = false;
  }

  const std::vector<int64_t>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
  int64_t sum_ = 0;
};

}  // namespace rhino
