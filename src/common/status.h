#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Error handling primitives used across the Rhino codebase.
///
/// We follow the Arrow/RocksDB convention of returning a `Status` (or a
/// `Result<T>` for value-producing functions) instead of throwing
/// exceptions. Exceptions are disabled by convention in hot paths.

namespace rhino {

/// Machine-readable error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kIOError,
  kCorruption,
  kNotSupported,
  kFailedPrecondition,
  kAborted,
  kTimedOut,
  kUnknown,
};

/// Returns a human-readable name for a status code (e.g. "IOError").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// heap-allocated message only on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error holder, analogous to `arrow::Result`.
///
/// Either holds a `T` (when `ok()`) or a non-OK `Status`. Accessing the
/// value of a failed result aborts the process; callers must check first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a failed status.
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// Returns the status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out; undefined if `!ok()`.
  T MoveValue() { return std::get<T>(std::move(var_)); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK status out of the current function.
#define RHINO_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::rhino::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Assigns the value of a `Result<T>` expression or propagates its error.
#define RHINO_ASSIGN_OR_RETURN(lhs, expr)         \
  RHINO_ASSIGN_OR_RETURN_IMPL(                    \
      RHINO_CONCAT(_result_, __LINE__), lhs, expr)

#define RHINO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).MoveValue();

#define RHINO_CONCAT_IMPL(a, b) a##b
#define RHINO_CONCAT(a, b) RHINO_CONCAT_IMPL(a, b)

}  // namespace rhino
