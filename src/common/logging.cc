#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace rhino {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(level); }

LogLevel Logger::GetLevel() { return g_level.load(); }

void Logger::Log(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  if (level < g_level.load() && level != LogLevel::kFatal) return;
  // Strip directories from the file path for terseness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

}  // namespace rhino
