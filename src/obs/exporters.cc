#include "obs/exporters.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>

namespace rhino::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// `name{a="x"}` with an extra label spliced in: `name{a="x",le="p99"}`.
std::string KeyWith(const std::string& name, const Labels& labels,
                    const std::string& extra_key,
                    const std::string& extra_value) {
  Labels all = labels;
  all[extra_key] = extra_value;
  return MetricsRegistry::KeyOf(name, all);
}

}  // namespace

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [key, inst] : registry.counters()) {
    out += key + " " + FormatU64(inst.metric.value()) + "\n";
  }
  for (const auto& [key, inst] : registry.gauges()) {
    out += key + " " + FormatDouble(inst.metric.value()) + "\n";
  }
  for (const auto& [key, inst] : registry.histograms()) {
    (void)key;
    const Histogram& h = inst.metric.histogram();
    out += MetricsRegistry::KeyOf(inst.name + "_count", inst.labels) + " " +
           FormatU64(h.count()) + "\n";
    out += MetricsRegistry::KeyOf(inst.name + "_sum", inst.labels) + " " +
           FormatDouble(h.Mean() * static_cast<double>(h.count())) + "\n";
    out += KeyWith(inst.name, inst.labels, "quantile", "0.5") + " " +
           FormatI64(h.Percentile(50)) + "\n";
    out += KeyWith(inst.name, inst.labels, "quantile", "0.99") + " " +
           FormatI64(h.Percentile(99)) + "\n";
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string out = "{";
  bool first = true;
  auto add = [&](const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\n  \"" + EscapeJson(key) + "\": " + value;
  };
  for (const auto& [key, inst] : registry.counters()) {
    add(key, FormatU64(inst.metric.value()));
  }
  for (const auto& [key, inst] : registry.gauges()) {
    add(key, FormatDouble(inst.metric.value()));
  }
  for (const auto& [key, inst] : registry.histograms()) {
    (void)key;
    const Histogram& h = inst.metric.histogram();
    add(MetricsRegistry::KeyOf(inst.name + "_count", inst.labels),
        FormatU64(h.count()));
    add(MetricsRegistry::KeyOf(inst.name + "_mean", inst.labels),
        FormatDouble(h.Mean()));
    add(KeyWith(inst.name, inst.labels, "quantile", "0.5"),
        FormatI64(h.Percentile(50)));
    add(KeyWith(inst.name, inst.labels, "quantile", "0.99"),
        FormatI64(h.Percentile(99)));
  }
  out += "\n}\n";
  return out;
}

std::string TraceToChromeJson(const TraceLog& trace) {
  // Stable scope -> tid mapping, in first-seen order.
  std::map<std::string, int> tids;
  for (const TraceEvent& ev : trace.events()) {
    if (!tids.count(ev.scope)) {
      int tid = static_cast<int>(tids.size()) + 1;
      tids[ev.scope] = tid;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& obj) {
    if (!first) out += ",";
    first = false;
    out += "\n" + obj;
  };
  for (const auto& [scope, tid] : tids) {
    append("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           EscapeJson(scope) + "\"}}");
  }
  for (const TraceEvent& ev : trace.events()) {
    std::string obj = "{\"name\":\"" + EscapeJson(ev.name) + "\",\"cat\":\"" +
                      EscapeJson(ev.category) +
                      "\",\"pid\":1,\"tid\":" + std::to_string(tids[ev.scope]) +
                      ",\"ts\":" + FormatI64(ev.time_us);
    if (ev.is_span()) {
      // Open spans (aborted protocols) render with zero duration.
      SimTime dur = ev.duration_us >= 0 ? ev.duration_us : 0;
      obj += ",\"ph\":\"X\",\"dur\":" + FormatI64(dur);
    } else {
      obj += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    obj += ",\"args\":{\"id\":" + FormatU64(ev.id);
    for (const auto& [k, v] : ev.args) {
      obj += ",\"" + EscapeJson(k) + "\":" + FormatI64(v);
    }
    obj += "}}";
    append(obj);
  }
  out += "\n]}\n";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  file << content;
  file.close();
  if (!file.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace rhino::obs
