#pragma once

#include <string>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/trace_log.h"

/// \file exporters.h
/// Serialization of the observability state:
///
///  * `ToPrometheusText` — the text exposition format, one line per
///    sample (counters, gauges, histogram count/sum/p50/p99);
///  * `MetricsToJson`    — the same data as a flat JSON object keyed by
///    `name{label="v"}`, for the machine-readable bench artifacts;
///  * `TraceToChromeJson` — Chrome `trace_event` JSON (load it at
///    chrome://tracing or https://ui.perfetto.dev): spans become complete
///    ("X") events, instants become instant ("i") events, and each scope
///    gets its own named track.

namespace rhino::obs {

std::string ToPrometheusText(const MetricsRegistry& registry);

std::string MetricsToJson(const MetricsRegistry& registry);

std::string TraceToChromeJson(const TraceLog& trace);

/// JSON string escaping (shared with the bench artifact writer).
std::string EscapeJson(const std::string& s);

/// Writes `content` to `path` (parent directory must exist).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace rhino::obs
