#include "obs/observability.h"

namespace rhino::obs {

Observability* Observability::Default() {
  static Observability instance;
  return &instance;
}

}  // namespace rhino::obs
