#include "obs/trace_log.h"

namespace rhino::obs {

void TraceLog::Emit(std::string category, std::string name, std::string scope,
                    uint64_t id, std::map<std::string, int64_t> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.time_us = Now();
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.scope = std::move(scope);
  ev.id = id;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

uint64_t TraceLog::BeginSpan(std::string category, std::string name,
                             std::string scope, uint64_t id,
                             std::map<std::string, int64_t> args) {
  if (!enabled()) return 0;
  TraceEvent ev;
  ev.time_us = Now();
  ev.duration_us = TraceEvent::kOpenSpan;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.scope = std::move(scope);
  ev.id = id;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
  uint64_t handle = next_span_++;
  open_spans_[handle] = events_.size() - 1;
  return handle;
}

void TraceLog::EndSpan(uint64_t span, std::map<std::string, int64_t> extra_args) {
  if (span == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_spans_.find(span);
  if (it == open_spans_.end()) return;
  TraceEvent& ev = events_[it->second];
  ev.duration_us = Now() - ev.time_us;
  for (auto& [k, v] : extra_args) ev.args[k] = v;
  open_spans_.erase(it);
}

void TraceLog::EmitSpan(std::string category, std::string name,
                        std::string scope, SimTime start_us, SimTime end_us,
                        uint64_t id, std::map<std::string, int64_t> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.time_us = start_us;
  ev.duration_us = end_us - start_us;
  ev.category = std::move(category);
  ev.name = std::move(name);
  ev.scope = std::move(scope);
  ev.id = id;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_spans_.clear();
}

std::vector<const TraceEvent*> TraceLog::Select(const std::string& category,
                                                const std::string& name) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& ev : events_) {
    if (ev.category != category) continue;
    if (!name.empty() && ev.name != name) continue;
    out.push_back(&ev);
  }
  return out;
}

std::vector<const TraceEvent*> TraceLog::Spans(const std::string& category,
                                               const std::string& name) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent* ev : Select(category, name)) {
    if (ev->is_span()) out.push_back(ev);
  }
  return out;
}

}  // namespace rhino::obs
