#pragma once

#include <functional>

#include "obs/metrics_registry.h"
#include "obs/trace_log.h"

/// \file observability.h
/// The observability context: one metrics registry + one trace log,
/// shared by every protocol component of a simulation.
///
/// Components default to the process-wide `Observability::Default()`
/// instance, so instrumentation works without wiring; testbeds that run
/// several systems in one process (the fig/tab benches, parameterized
/// tests) create their own instance and install it on the engine and the
/// out-of-engine components (replication runtime, fault injector, ...) so
/// runs do not bleed into each other.

namespace rhino::obs {

class Observability {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }

  /// Wires trace timestamps to a simulated clock.
  void SetClock(std::function<SimTime()> clock) {
    trace_.SetClock(std::move(clock));
  }

  /// Master runtime toggle for the allocating parts (trace events). Metric
  /// handles keep working either way — a counter increment is cheaper than
  /// the branch that would guard it.
  void set_enabled(bool on) { trace_.set_enabled(on); }
  bool enabled() const { return trace_.enabled(); }

  /// Process-wide fallback instance.
  static Observability* Default();

 private:
  MetricsRegistry metrics_;
  TraceLog trace_;
};

}  // namespace rhino::obs
