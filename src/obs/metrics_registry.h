#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/histogram.h"

/// \file metrics_registry.h
/// Lock-cheap metrics registry: counters, gauges, and histograms with
/// label sets.
///
/// Protocol code registers an instrument **once** (paying a name lookup
/// and a possible allocation) and keeps the returned pointer; the hot-path
/// update through that pointer is a plain arithmetic store — no lookup, no
/// allocation, no branch on a registry lock. Counters and gauges are
/// relaxed atomics so node threads under `RealtimeExecutor` update them
/// without coordination; histograms take a short internal lock (they
/// allocate). Registration itself is serialized by a registry mutex; the
/// handle discipline is what keeps instrumentation off the hot path.
///
/// Naming convention (see DESIGN.md "Observability"):
///   rhino_<subsystem>_<quantity>_<unit|total>
/// e.g. `rhino_replication_bytes_total`, `rhino_handover_state_fetch_us`.

namespace rhino::obs {

/// Sorted label set; part of an instrument's identity.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing counter (relaxed atomic: totals are exact,
/// cross-counter ordering is not promised under real threads).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins point-in-time value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Sample distribution with percentile queries (wraps rhino::Histogram).
/// Observations lock internally; `histogram()` hands out the unlocked
/// sample set and must only be read when writers are quiescent (after the
/// executor drained) — which is when exporters and tests run.
class HistogramMetric {
 public:
  void Observe(int64_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(v);
  }
  const Histogram& histogram() const { return hist_; }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Clear();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Registry of named instruments. Instruments live as long as the
/// registry; returned pointers are stable (node-based storage).
class MetricsRegistry {
 public:
  /// Idempotent: the same (name, labels) always returns the same handle.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name,
                                const Labels& labels = {});

  /// One registered instrument of type T, for exporter enumeration.
  template <typename T>
  struct Instrument {
    std::string name;
    Labels labels;
    T metric;
  };

  /// Instruments in registration-key order (name, then serialized labels).
  /// Enumeration is unlocked: export/assert after the executor drained.
  const std::map<std::string, Instrument<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Instrument<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Instrument<HistogramMetric>>& histograms() const {
    return histograms_;
  }

  /// The identity key of (name, labels), e.g. `foo{op="join",sut="Rhino"}`.
  static std::string KeyOf(const std::string& name, const Labels& labels);

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <typename T>
  T* GetOrCreate(std::map<std::string, Instrument<T>>* family,
                 const std::string& name, const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Instrument<Counter>> counters_;
  std::map<std::string, Instrument<Gauge>> gauges_;
  std::map<std::string, Instrument<HistogramMetric>> histograms_;
};

}  // namespace rhino::obs
