#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.h"

/// \file trace_log.h
/// Structured log of protocol events on the simulated clock.
///
/// Every interesting protocol transition — handover phases (marker
/// injection, alignment, buffering hold/release, state fetch/load, gate
/// rewires), chain replication (transfer start/ack/abort, catch-up),
/// checkpoints (trigger/ship/complete/abort), and fault-injector crashes —
/// is recorded as a `TraceEvent` with the simulated-time stamp and, for
/// spans, a duration. Tests query the log to assert protocol *shape*
/// ("no record delivered inside a buffering hold") instead of only end
/// state; exporters turn it into Chrome `trace_event` JSON for visual
/// timeline debugging (see exporters.h).
///
/// Thread safety: recording (Emit/BeginSpan/EndSpan/EmitSpan) serializes
/// on an internal mutex so node threads under `RealtimeExecutor` can
/// trace concurrently; the enabled flags are lock-free so a disabled log
/// costs one relaxed load. Queries (`events`, `Select`, `Spans`) read
/// without the lock and are only valid once writers are quiescent (after
/// the executor drained) — which is when tests and exporters run.

namespace rhino::obs {

/// One protocol event. `duration_us < 0` means an instant event; open
/// spans carry `duration_us == kOpenSpan` until ended.
struct TraceEvent {
  static constexpr SimTime kInstant = -1;
  static constexpr SimTime kOpenSpan = -2;

  SimTime time_us = 0;
  SimTime duration_us = kInstant;
  std::string category;  ///< "handover" | "checkpoint" | "replication" | ...
  std::string name;      ///< "buffering_hold", "transfer", "crash", ...
  std::string scope;     ///< instance key "op#subtask", "node3", or "engine"
  uint64_t id = 0;       ///< correlation id (handover id, checkpoint id, ...)
  std::map<std::string, int64_t> args;

  bool is_span() const { return duration_us >= 0 || duration_us == kOpenSpan; }
  bool is_open() const { return duration_us == kOpenSpan; }
  SimTime end_us() const { return time_us + (duration_us > 0 ? duration_us : 0); }
};

/// Append-only event log with span bookkeeping and query helpers.
class TraceLog {
 public:
  /// Timestamps come from this clock (wire it to `sim::Simulation::Now`).
  /// Without a clock every event is stamped 0.
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Runtime toggle: when disabled, Emit/BeginSpan/EndSpan are no-ops
  /// (one branch on the hot path, no allocation).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opt-in firehose: per-batch data events (used by protocol-shape tests;
  /// too hot for TB-scale benches). Off by default.
  void set_data_events(bool on) {
    data_events_.store(on, std::memory_order_relaxed);
  }
  bool data_events() const {
    return enabled() && data_events_.load(std::memory_order_relaxed);
  }

  /// Records an instant event.
  void Emit(std::string category, std::string name, std::string scope,
            uint64_t id = 0, std::map<std::string, int64_t> args = {});

  /// Opens a span; returns a handle for EndSpan (0 when disabled).
  uint64_t BeginSpan(std::string category, std::string name, std::string scope,
                     uint64_t id = 0, std::map<std::string, int64_t> args = {});

  /// Closes a span: duration = now - begin. Extra args are merged in.
  /// Unknown/zero handles are ignored (the log may have been disabled or
  /// cleared mid-span).
  void EndSpan(uint64_t span, std::map<std::string, int64_t> extra_args = {});

  /// Records a completed span in one call (for code that already knows the
  /// start time, e.g. the engine completing a handover it triggered).
  void EmitSpan(std::string category, std::string name, std::string scope,
                SimTime start_us, SimTime end_us, uint64_t id = 0,
                std::map<std::string, int64_t> args = {});

  // ------------------------------------------------------------- queries --

  const std::deque<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear();

  /// Events matching category (and name, unless empty), in time order.
  std::vector<const TraceEvent*> Select(const std::string& category,
                                        const std::string& name = "") const;

  /// Completed + still-open spans matching category/name.
  std::vector<const TraceEvent*> Spans(const std::string& category,
                                       const std::string& name = "") const;

  size_t Count(const std::string& category, const std::string& name = "") const {
    return Select(category, name).size();
  }

 private:
  SimTime Now() const { return clock_ ? clock_() : 0; }

  std::atomic<bool> enabled_{true};
  std::atomic<bool> data_events_{false};
  std::function<SimTime()> clock_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  uint64_t next_span_ = 1;
  std::map<uint64_t, size_t> open_spans_;  ///< handle -> index into events_
};

}  // namespace rhino::obs
