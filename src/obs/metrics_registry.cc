#include "obs/metrics_registry.h"

namespace rhino::obs {

std::string MetricsRegistry::KeyOf(const std::string& name,
                                   const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ",";
    first = false;
    key += k + "=\"" + v + "\"";
  }
  key += "}";
  return key;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::map<std::string, Instrument<T>>* family,
                                const std::string& name, const Labels& labels) {
  std::string key = KeyOf(name, labels);
  auto it = family->find(key);
  if (it == family->end()) {
    it = family->emplace(std::move(key), Instrument<T>{name, labels, T()}).first;
  }
  return &it->second.metric;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return GetOrCreate(&counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(&gauges_, name, labels);
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const Labels& labels) {
  return GetOrCreate(&histograms_, name, labels);
}

}  // namespace rhino::obs
