#include "obs/metrics_registry.h"

namespace rhino::obs {

std::string MetricsRegistry::KeyOf(const std::string& name,
                                   const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ",";
    first = false;
    key += k + "=\"" + v + "\"";
  }
  key += "}";
  return key;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(std::map<std::string, Instrument<T>>* family,
                                const std::string& name, const Labels& labels) {
  std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  // try_emplace default-constructs in place: instruments hold atomics and
  // mutexes, which cannot be copied into the map.
  auto [it, inserted] = family->try_emplace(std::move(key));
  if (inserted) {
    it->second.name = name;
    it->second.labels = labels;
  }
  return &it->second.metric;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  return GetOrCreate(&counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(&gauges_, name, labels);
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const Labels& labels) {
  return GetOrCreate(&histograms_, name, labels);
}

}  // namespace rhino::obs
