#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

/// \file key_groups.h
/// Consistent hashing with virtual nodes (paper §3.2, requirement R2).
///
/// The key space is hashed into a fixed number of *key groups* (the paper
/// uses 2^15). Contiguous key-group ranges are grouped into *virtual
/// nodes*, the finest granularity of a reconfiguration: a handover moves
/// one or more virtual nodes from an origin instance to a target instance
/// by editing the routing table; keys never move between key groups.

namespace rhino::hashring {

/// Half-open range [begin, end) of key groups.
struct KeyGroupRange {
  uint32_t begin = 0;
  uint32_t end = 0;

  uint32_t size() const { return end - begin; }
  bool Contains(uint32_t kg) const { return kg >= begin && kg < end; }
  bool operator==(const KeyGroupRange&) const = default;
};

/// Maps a record key to its key group. Stable for the lifetime of a query.
inline uint32_t KeyGroupFor(uint64_t key, uint32_t num_key_groups) {
  return static_cast<uint32_t>(HashKey(key) % num_key_groups);
}

/// Static partitioning of key groups into virtual nodes.
///
/// With parallelism `p` and `v` virtual nodes per instance there are
/// `p * v` virtual nodes, each covering a contiguous range of key groups
/// (ranges differ by at most one key group when the division is not exact).
class VirtualNodeMap {
 public:
  VirtualNodeMap(uint32_t num_key_groups, uint32_t parallelism,
                 uint32_t vnodes_per_instance)
      : num_key_groups_(num_key_groups),
        num_vnodes_(parallelism * vnodes_per_instance),
        vnodes_per_instance_(vnodes_per_instance) {
    RHINO_CHECK_GT(num_key_groups, 0u);
    RHINO_CHECK_GT(num_vnodes_, 0u);
    RHINO_CHECK_GE(num_key_groups, num_vnodes_);
    // Spread key groups as evenly as possible over virtual nodes.
    ranges_.reserve(num_vnodes_);
    uint32_t base = num_key_groups / num_vnodes_;
    uint32_t extra = num_key_groups % num_vnodes_;
    uint32_t cursor = 0;
    for (uint32_t v = 0; v < num_vnodes_; ++v) {
      uint32_t len = base + (v < extra ? 1 : 0);
      ranges_.push_back(KeyGroupRange{cursor, cursor + len});
      cursor += len;
    }
    RHINO_CHECK_EQ(cursor, num_key_groups);
  }

  uint32_t num_key_groups() const { return num_key_groups_; }
  uint32_t num_vnodes() const { return num_vnodes_; }
  uint32_t vnodes_per_instance() const { return vnodes_per_instance_; }

  const KeyGroupRange& range(uint32_t vnode) const {
    return ranges_[vnode];
  }

  /// Virtual node owning a key group (binary search over ranges).
  uint32_t VnodeForKeyGroup(uint32_t kg) const {
    RHINO_CHECK_LT(kg, num_key_groups_);
    uint32_t lo = 0, hi = num_vnodes_ - 1;
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (ranges_[mid].end <= kg) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint32_t VnodeForKey(uint64_t key) const {
    return VnodeForKeyGroup(KeyGroupFor(key, num_key_groups_));
  }

 private:
  uint32_t num_key_groups_;
  uint32_t num_vnodes_;
  uint32_t vnodes_per_instance_;
  std::vector<KeyGroupRange> ranges_;
};

/// Mutable virtual-node → operator-instance routing table.
///
/// A handover (or failure recovery) edits only this table; upstream
/// instances consult it to route records, and its version number lets
/// components detect configuration epochs (paper §4.1.1).
///
/// Entries are relaxed atomics: routing lookups stay lock-free on the hot
/// path while the coordinator reassigns vnodes from another thread. A
/// reader may briefly see the old owner during a reassignment — exactly
/// the window the handover protocol's markers are designed to close.
class RoutingTable {
 public:
  explicit RoutingTable(const VirtualNodeMap* map)
      : map_(map),
        num_vnodes_(map->num_vnodes()),
        owner_(std::make_unique<std::atomic<uint32_t>[]>(map->num_vnodes())) {
    // Default assignment: virtual node v belongs to instance
    // v / vnodes_per_instance (contiguous blocks, as in Flink key groups).
    for (uint32_t v = 0; v < num_vnodes_; ++v) {
      owner_[v].store(v / map->vnodes_per_instance(),
                      std::memory_order_relaxed);
    }
  }

  const VirtualNodeMap& map() const { return *map_; }

  uint32_t InstanceForVnode(uint32_t vnode) const {
    return owner_[vnode].load(std::memory_order_relaxed);
  }

  uint32_t InstanceForKey(uint64_t key) const {
    return InstanceForVnode(map_->VnodeForKey(key));
  }

  uint32_t InstanceForKeyGroup(uint32_t kg) const {
    return InstanceForVnode(map_->VnodeForKeyGroup(kg));
  }

  /// Reassigns a virtual node to a new owner and bumps the version.
  void Assign(uint32_t vnode, uint32_t instance) {
    owner_[vnode].store(instance, std::memory_order_relaxed);
    version_.fetch_add(1, std::memory_order_relaxed);
  }

  /// All virtual nodes currently owned by `instance`.
  std::vector<uint32_t> VnodesOfInstance(uint32_t instance) const {
    std::vector<uint32_t> out;
    for (uint32_t v = 0; v < num_vnodes_; ++v) {
      if (InstanceForVnode(v) == instance) out.push_back(v);
    }
    return out;
  }

  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

 private:
  const VirtualNodeMap* map_;
  uint32_t num_vnodes_;
  std::unique_ptr<std::atomic<uint32_t>[]> owner_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace rhino::hashring
