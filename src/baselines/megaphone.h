#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sim/cluster.h"

/// \file megaphone.h
/// Megaphone baseline (paper §2.2.2, §3.1).
///
/// Megaphone performs fine-grained state migration on Timely Dataflow:
/// state is kept **entirely in memory**, and a planned migration moves
/// key bins in batches — serialize into buffers, write to the network,
/// deserialize, restore. Two properties drive its behaviour in the
/// paper's evaluation and are reproduced mechanistically here:
///
///  1. migration throughput is bounded by per-node serialization plus the
///     network, so migration time grows linearly with state size;
///  2. there is no out-of-core state and no memory management for
///     migration buffers, so a workload whose state (plus in-flight
///     migration buffers) exceeds the cluster's memory dies with
///     out-of-memory — the paper observes this for > 500 GB on
///     8 x 64 GB workers.

namespace rhino::baselines {

struct MegaphoneOptions {
  /// Per-node serialization/deserialization throughput. Timely's Rust
  /// pipelines serialize at several hundred MB/s per worker.
  double serialize_bytes_per_sec = 900e6;
  /// Migration buffers: bytes resident per byte being migrated (source
  /// buffer + wire copy + target buffer, amortized by batching).
  double buffer_overhead = 0.10;
  /// Per-bin scheduling overhead (Megaphone plans per-bin moves).
  SimTime per_bin_overhead_us = 50;
  /// Chunk used to pipeline serialize -> network -> deserialize.
  uint64_t chunk_bytes = 64 * kMiB;
};

/// Outcome of one planned migration.
struct MegaphoneResult {
  bool oom = false;
  SimTime duration_us = 0;
  uint64_t bytes_moved = 0;
};

/// Analytic-plus-simulated model of Megaphone's migration path.
class MegaphoneModel {
 public:
  MegaphoneModel(sim::Cluster* cluster, std::vector<int> workers,
                 MegaphoneOptions options = MegaphoneOptions())
      : cluster_(cluster), workers_(std::move(workers)), options_(options) {}

  /// Can a workload with this much operator state run at all? Timely
  /// keeps all state on the heap, so it must fit the aggregate memory.
  bool FitsMemory(uint64_t total_state_bytes) const;

  /// Migrates `bytes_per_origin[node]` away from each origin node, spread
  /// over the other workers; `num_bins` bins are moved (2^15 in the
  /// paper's setup). Fails fast with OOM when state + buffers exceed
  /// memory. `done` fires at completion with the result.
  void Migrate(const std::map<int, uint64_t>& bytes_per_origin,
               uint64_t total_state_bytes, int num_bins,
               std::function<void(MegaphoneResult)> done);

 private:
  sim::Cluster* cluster_;
  std::vector<int> workers_;
  MegaphoneOptions options_;
};

}  // namespace rhino::baselines
