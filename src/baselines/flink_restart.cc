#include "baselines/flink_restart.h"

#include <memory>
#include <set>

#include "common/logging.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"
#include "dfs/dfs.h"

namespace rhino::baselines {

using dataflow::SinkInstance;
using dataflow::SourceInstance;
using dataflow::StatefulInstance;

void FlinkRestartController::RestartFromLastCheckpoint(
    int failed_node, std::function<void(RestartBreakdown)> done) {
  runtime::Executor* sim = engine_->executor();
  const auto* ckpt = engine_->LastCompletedCheckpoint();
  SimTime start = sim->Now();

  // 1. Cancel the job: every instance stops and drops its queues.
  int instances = 0;
  for (SourceInstance* s : engine_->sources()) {
    s->Halt();
    ++instances;
  }
  for (StatefulInstance* s : engine_->stateful()) {
    s->Halt();
    ++instances;
  }
  for (SinkInstance* s : engine_->sinks()) {
    s->Halt();
    ++instances;
  }

  // 2. Redeploy. Flink's scheduler offers no state locality on restart:
  //    tasks land wherever slots are free, so restored state is mostly
  //    remote in the DFS (this drives the fetch times of Table 1).
  if (failed_node >= 0) {
    // Live worker slots = the nodes the job currently occupies, minus the
    // failed one (broker/coordinator nodes never run tasks).
    std::set<int> worker_set;
    for (StatefulInstance* s : engine_->stateful()) worker_set.insert(s->node_id());
    for (SourceInstance* s : engine_->sources()) worker_set.insert(s->node_id());
    std::vector<int> live;
    for (int n : worker_set) {
      if (n != failed_node && engine_->cluster()->node(n).alive()) {
        live.push_back(n);
      }
    }
    RHINO_CHECK(!live.empty());
    size_t cursor = 1;  // offset shuffles every task off its old slot
    auto reassign = [&](dataflow::OperatorInstance* inst) {
      inst->set_node_id(live[(inst->node_id() + cursor++) % live.size()]);
    };
    for (SourceInstance* s : engine_->sources()) reassign(s);
    for (StatefulInstance* s : engine_->stateful()) reassign(s);
    for (SinkInstance* s : engine_->sinks()) reassign(s);
  }

  SimTime scheduling =
      options_.scheduling_fixed_us +
      options_.scheduling_per_instance_us * static_cast<SimTime>(instances);

  sim->Schedule(scheduling, [this, sim, ckpt, start, scheduling,
                             done = std::move(done)] {
    // 3. State fetching: every stateful instance pulls its full state
    //    image out of the DFS in parallel.
    SimTime fetch_start = sim->Now();
    auto pending = std::make_shared<size_t>(0);
    auto after_fetch = std::make_shared<std::function<void()>>();
    for (StatefulInstance* inst : engine_->stateful()) {
      auto paths = storage_->PathsFor(inst->op_name(),
                                      static_cast<uint32_t>(inst->subtask()));
      for (const auto& path : paths) {
        ++*pending;
        storage_->dfs()->ReadFile(path, inst->node_id(),
                                  [pending, after_fetch](Status st) {
                                    RHINO_CHECK(st.ok()) << st.ToString();
                                    if (--*pending == 0) (*after_fetch)();
                                  });
      }
    }

    *after_fetch = [this, sim, ckpt, start, scheduling, fetch_start,
                    done = std::move(done)] {
      SimTime fetch = sim->Now() - fetch_start;
      // 4. State loading: open the materialized files.
      SimTime load = options_.load_fixed_us;
      for (StatefulInstance* inst : engine_->stateful()) {
        const rhino::ReplicaState* latest = storage_->LatestFor(
            inst->op_name(), static_cast<uint32_t>(inst->subtask()));
        if (latest != nullptr) {
          load += options_.load_per_file_us *
                  static_cast<SimTime>(
                      latest->latest_descriptor.files.size()) /
                  std::max<SimTime>(
                      1, static_cast<SimTime>(engine_->stateful().size()));
        }
      }
      sim->Schedule(load, [this, sim, start, scheduling, fetch, load,
                           ckpt, done = std::move(done)] {
        RestoreStateAndResume([sim, start, scheduling, fetch, load, done] {
          RestartBreakdown breakdown;
          breakdown.scheduling_us = scheduling;
          breakdown.state_fetch_us = fetch;
          breakdown.state_load_us = load;
          (void)start;
          done(breakdown);
        });
        (void)ckpt;
      });
    };

    if (*pending == 0) (*after_fetch)();
  });
}

void FlinkRestartController::RestoreStateAndResume(
    std::function<void()> resumed) {
  const auto* ckpt = engine_->LastCompletedCheckpoint();

  // Rebuild every stateful instance's backend from the checkpoint content.
  for (StatefulInstance* inst : engine_->stateful()) {
    auto subtask = static_cast<uint32_t>(inst->subtask());
    inst->ReplaceBackend(backend_factory_(inst->op_name(), subtask));
    const rhino::ReplicaState* latest =
        storage_->LatestFor(inst->op_name(), subtask);
    dataflow::StatefulInstance::WatermarkMap marks;
    if (latest != nullptr) {
      for (uint32_t v : inst->owned_vnodes()) {
        auto bit = latest->vnode_blobs.find(v);
        if (bit != latest->vnode_blobs.end()) {
          RHINO_CHECK_OK(
              inst->backend()->IngestVnodes(bit->second, /*durable=*/true));
        }
        auto wit = latest->latest_descriptor.vnode_watermarks.find(v);
        if (wit != latest->latest_descriptor.vnode_watermarks.end()) {
          marks[v] = wit->second;
        }
      }
    }
    // The whole job rolled back to the checkpoint: dedup positions roll
    // back with it so the replay is re-processed.
    inst->ResetWatermarks(std::move(marks));
    inst->Resume();
  }
  for (dataflow::SinkInstance* sink : engine_->sinks()) sink->Resume();

  // Sources rewind to the checkpointed offsets and replay the backlog.
  for (SourceInstance* src : engine_->sources()) {
    uint64_t offset = 0;
    if (ckpt != nullptr) {
      auto it = ckpt->descriptors.find(src->op_name() + "#" +
                                       std::to_string(src->subtask()));
      if (it != ckpt->descriptors.end()) {
        auto oit = it->second.source_offsets.find(src->subtask());
        if (oit != it->second.source_offsets.end()) offset = oit->second;
      }
    }
    src->ResetOffset(offset);
    src->Resume();
    src->Start();
  }
  resumed();
}

}  // namespace rhino::baselines
