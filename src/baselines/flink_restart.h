#pragma once

#include <functional>
#include <memory>
#include <string>

#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "rhino/checkpoint_storage.h"

/// \file flink_restart.h
/// The Flink baseline: restart-based reconfiguration (paper §2.2.1, §3.1).
///
/// Flink reconfigures (after a failure or for rescaling) by cancelling the
/// whole job, redeploying every task, materializing each instance's state
/// from the last global checkpoint in the DFS — local blocks off disk,
/// remote blocks over the network — and resuming from the checkpointed
/// source offsets, replaying the backlog from the upstream backup. The
/// latency spikes of Figures 1/4/6 and the Flink rows of Table 1 come
/// from exactly this path.

namespace rhino::baselines {

struct FlinkOptions {
  /// Cancel + redeploy bookkeeping (paper Table 1: ~2.2-2.6 s).
  SimTime scheduling_fixed_us = 2200 * kMillisecond;
  SimTime scheduling_per_instance_us = 2 * kMillisecond;
  /// RocksDB open after materialization (paper: ~1.3-1.8 s).
  SimTime load_fixed_us = 1300 * kMillisecond;
  SimTime load_per_file_us = 2 * kMillisecond;
};

/// Builds a fresh state backend for an instance during restore.
using BackendFactory = std::function<std::unique_ptr<state::StateBackend>(
    const std::string& op, uint32_t subtask)>;

/// Time breakdown of one restart (Table 1 columns).
struct RestartBreakdown {
  SimTime scheduling_us = 0;
  SimTime state_fetch_us = 0;
  SimTime state_load_us = 0;
  SimTime Total() const {
    return scheduling_us + state_fetch_us + state_load_us;
  }
};

/// Stop-the-world restart controller.
class FlinkRestartController {
 public:
  FlinkRestartController(dataflow::Engine* engine,
                         rhino::DfsCheckpointStorage* storage,
                         BackendFactory backend_factory,
                         FlinkOptions options = FlinkOptions())
      : engine_(engine),
        storage_(storage),
        backend_factory_(std::move(backend_factory)),
        options_(options) {}

  /// Full restart from the last completed checkpoint. `failed_node >= 0`
  /// reassigns that node's instances to live workers first. `done`
  /// receives the per-phase breakdown once processing has resumed.
  void RestartFromLastCheckpoint(int failed_node,
                                 std::function<void(RestartBreakdown)> done);

 private:
  void RestoreStateAndResume(std::function<void()> resumed);

  dataflow::Engine* engine_;
  rhino::DfsCheckpointStorage* storage_;
  BackendFactory backend_factory_;
  FlinkOptions options_;
};

}  // namespace rhino::baselines
