#include "baselines/megaphone.h"

#include <memory>

#include "common/logging.h"
#include "sim/resource.h"

namespace rhino::baselines {

bool MegaphoneModel::FitsMemory(uint64_t total_state_bytes) const {
  uint64_t memory = 0;
  for (int w : workers_) memory += cluster_->node(w).spec().memory_bytes;
  // All state lives on the heap; the runtime needs a small headroom for
  // channels and migration buffers. On the paper's 8 x 64 GB workers this
  // puts the ceiling between 500 GB (fits) and 750 GB (OOM), matching the
  // observed failures (§3.1, Table 1).
  return static_cast<double>(total_state_bytes) <=
         static_cast<double>(memory) * 0.98;
}

void MegaphoneModel::Migrate(const std::map<int, uint64_t>& bytes_per_origin,
                             uint64_t total_state_bytes, int num_bins,
                             std::function<void(MegaphoneResult)> done) {
  runtime::Executor* sim = cluster_->executor();
  if (!FitsMemory(total_state_bytes)) {
    sim->Schedule(0, [done] {
      MegaphoneResult result;
      result.oom = true;
      done(result);
    });
    return;
  }

  // Each origin streams its bins to the other workers: chunks go through
  // a per-origin serialization stage (CPU bound), the NICs, and a
  // per-target deserialization stage. All origins run concurrently; the
  // migration completes when the slowest origin drains.
  auto pending = std::make_shared<int>(0);
  auto result = std::make_shared<MegaphoneResult>();
  SimTime start = sim->Now();
  auto finish = [sim, pending, result, start, done] {
    if (--*pending == 0) {
      result->duration_us = sim->Now() - start;
      done(*result);
    }
  };

  // Scheduling overhead: Megaphone plans each bin's move.
  SimTime plan = options_.per_bin_overhead_us * static_cast<SimTime>(num_bins) /
                 std::max<SimTime>(1, static_cast<SimTime>(workers_.size()));

  auto serializers = std::make_shared<std::vector<std::unique_ptr<sim::QueueResource>>>();
  auto deserializers = std::make_shared<std::map<int, std::unique_ptr<sim::QueueResource>>>();
  for (int w : workers_) {
    (*deserializers)[w] = std::make_unique<sim::QueueResource>(
        sim, "megaphone-deser", options_.serialize_bytes_per_sec);
  }

  for (const auto& [origin, bytes] : bytes_per_origin) {
    if (bytes == 0) continue;
    result->bytes_moved += bytes;
    ++*pending;
    auto serializer = std::make_unique<sim::QueueResource>(
        sim, "megaphone-ser", options_.serialize_bytes_per_sec);
    sim::QueueResource* ser = serializer.get();
    serializers->push_back(std::move(serializer));

    uint64_t chunks = (bytes + options_.chunk_bytes - 1) / options_.chunk_bytes;
    auto remaining = std::make_shared<uint64_t>(chunks);
    for (uint64_t c = 0; c < chunks; ++c) {
      uint64_t chunk = std::min(options_.chunk_bytes,
                                bytes - c * options_.chunk_bytes);
      int target = workers_[(static_cast<size_t>(origin) + 1 + c) %
                            workers_.size()];
      if (target == origin) target = workers_[(c + 1) % workers_.size()];
      // serialize -> network -> deserialize, pipelined per chunk.
      int origin_node = origin;
      sim->ScheduleAt(sim->Now() + plan, [this, sim, ser, deserializers,
                                          origin_node, target, chunk,
                                          remaining, finish, serializers] {
        ser->Submit(chunk, [this, sim, deserializers, origin_node, target,
                            chunk, remaining, finish] {
          cluster_->Transfer(origin_node, target, chunk, [deserializers,
                                                          target, chunk,
                                                          remaining, finish] {
            (*deserializers)[target]->Submit(chunk, [remaining, finish] {
              if (--*remaining == 0) finish();
            });
          });
        });
      });
    }
  }

  if (*pending == 0) {
    sim->Schedule(plan, [result, done, sim, start] {
      result->duration_us = sim->Now() - start;
      done(*result);
    });
  }
}

}  // namespace rhino::baselines
