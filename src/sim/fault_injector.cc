#include "sim/fault_injector.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace rhino::sim {

std::string FaultScheduleRecipe(uint64_t seed,
                                const std::vector<CrashEvent>& crashes,
                                const std::vector<TransientFault>& transients) {
  std::ostringstream out;
  out << "seed=" << seed << " schedule=[";
  bool first = true;
  for (const CrashEvent& ev : crashes) {
    if (!first) out << "; ";
    first = false;
    out << "crash node" << ev.node << " @" << ev.time << "us (" << ev.cause
        << (ev.fired ? "" : ", pending") << ")";
  }
  for (const TransientFault& f : transients) {
    if (!first) out << "; ";
    first = false;
    switch (f.type) {
      case TransientFault::Type::kPartition:
        out << "partition node" << f.a;
        if (f.b >= 0) {
          out << "<->node" << f.b;
        } else {
          out << "<->*";
        }
        break;
      case TransientFault::Type::kLinkDelay:
        out << "delay ";
        if (f.a >= 0) {
          out << "node" << f.a;
        } else {
          out << "*";
        }
        out << " +" << f.extra_us << "us";
        break;
      case TransientFault::Type::kSlowDisk:
        out << "slowdisk node" << f.a << " +" << f.extra_us << "us";
        break;
    }
    out << " @[" << f.start << "," << (f.start + f.duration) << ")us";
  }
  out << "]";
  return out.str();
}

void FaultInjector::CrashAt(SimTime when, int node, std::string cause) {
  executor_->ScheduleAt(when, [this, node, cause = std::move(cause)] {
    Fire(node, cause);
  });
}

void FaultInjector::CrashOnEvent(const std::string& event, uint64_t nth,
                                 int node, SimTime delay) {
  RHINO_CHECK_GE(nth, 1u) << "event occurrences are 1-based";
  std::lock_guard<std::mutex> lock(mu_);
  event_triggers_[event].push_back(EventTrigger{nth, node, delay});
}

void FaultInjector::Notify(const std::string& event) {
  struct Pending {
    int node;
    SimTime delay;
    std::string cause;
  };
  std::vector<Pending> to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t count = ++event_counts_[event];
    auto it = event_triggers_.find(event);
    if (it == event_triggers_.end()) return;
    std::vector<EventTrigger>& armed = it->second;
    for (auto t = armed.begin(); t != armed.end();) {
      if (t->nth != count) {
        ++t;
        continue;
      }
      to_fire.push_back(Pending{
          t->node, t->delay, "event:" + event + "#" + std::to_string(count)});
      t = armed.erase(t);
    }
  }
  // Always bounce through the event queue, even at delay 0: firing
  // synchronously would re-enter the protocol code that called the probe.
  for (Pending& p : to_fire) {
    executor_->Schedule(
        p.delay, [this, node = p.node, cause = std::move(p.cause)] {
          Fire(node, cause);
        });
  }
}

std::vector<CrashEvent> FaultInjector::ScheduleRandomCrashes(
    int count, std::vector<int> candidates, SimTime window_start,
    SimTime window_end, SimTime min_gap) {
  RHINO_CHECK_GE(window_end, window_start);
  std::vector<CrashEvent> schedule;
  for (int i = 0; i < count && !candidates.empty(); ++i) {
    size_t pick = static_cast<size_t>(rng_.Uniform(candidates.size()));
    CrashEvent ev;
    ev.node = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<long>(pick));
    ev.time = window_start +
              static_cast<SimTime>(rng_.Uniform(
                  static_cast<uint64_t>(window_end - window_start) + 1));
    ev.cause = "random";
    schedule.push_back(ev);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.time != b.time ? a.time < b.time : a.node < b.node;
            });
  for (size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].time < schedule[i - 1].time + min_gap) {
      schedule[i].time = schedule[i - 1].time + min_gap;
    }
  }
  for (const CrashEvent& ev : schedule) CrashAt(ev.time, ev.node, ev.cause);
  return schedule;
}

void FaultInjector::AddTransient(const TransientFault& fault) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    transients_.push_back(fault);
    if (fault.type != TransientFault::Type::kSlowDisk) {
      link_windows_.push_back(LinkWindow{fault});
    }
  }
  obs_->metrics().GetCounter("rhino_fault_transients_total")->Increment();
  obs_->trace().Emit("fault", "transient", "scheduler",
                     static_cast<uint64_t>(fault.start));
}

void FaultInjector::PartitionNodes(int a, int b, SimTime start,
                                   SimTime duration) {
  TransientFault f;
  f.type = TransientFault::Type::kPartition;
  f.a = a;
  f.b = b;
  f.start = start;
  f.duration = duration;
  AddTransient(f);
}

void FaultInjector::IsolateNode(int node, SimTime start, SimTime duration) {
  TransientFault f;
  f.type = TransientFault::Type::kPartition;
  f.a = node;
  f.b = -1;
  f.start = start;
  f.duration = duration;
  AddTransient(f);
}

void FaultInjector::DelayLinks(int node, SimTime extra_us, SimTime start,
                               SimTime duration) {
  TransientFault f;
  f.type = TransientFault::Type::kLinkDelay;
  f.a = node;
  f.b = -1;
  f.start = start;
  f.duration = duration;
  f.extra_us = extra_us;
  AddTransient(f);
}

void FaultInjector::SlowDisk(int node, SimTime extra_us, SimTime start,
                             SimTime duration) {
  TransientFault f;
  f.type = TransientFault::Type::kSlowDisk;
  f.a = node;
  f.start = start;
  f.duration = duration;
  f.extra_us = extra_us;
  AddTransient(f);
  // The start/heal callbacks both run on the executor's default queue, so
  // overlapping windows accumulate without racing on the penalty atomic.
  executor_->ScheduleAt(start, [this, node, extra_us] {
    Node& n = cluster_->node(node);
    n.set_disk_penalty_us(n.disk_penalty_us() + extra_us);
    RHINO_LOG(Info) << "fault-injector: slow disk on node " << node << " (+"
                    << extra_us << "us) at t=" << executor_->Now() << "us";
  });
  executor_->ScheduleAt(start + duration, [this, node, extra_us] {
    Node& n = cluster_->node(node);
    SimTime cur = n.disk_penalty_us();
    n.set_disk_penalty_us(cur > extra_us ? cur - extra_us : 0);
  });
}

std::vector<TransientFault> FaultInjector::ScheduleRandomTransients(
    int count, std::vector<int> candidates, SimTime window_start,
    SimTime window_end, SimTime min_duration, SimTime max_duration) {
  RHINO_CHECK_GE(window_end, window_start);
  RHINO_CHECK_GE(max_duration, min_duration);
  RHINO_CHECK_GE(candidates.size(), 1u);
  std::vector<TransientFault> schedule;
  for (int i = 0; i < count; ++i) {
    TransientFault f;
    f.start = window_start +
              static_cast<SimTime>(rng_.Uniform(
                  static_cast<uint64_t>(window_end - window_start) + 1));
    f.duration = min_duration +
                 static_cast<SimTime>(rng_.Uniform(
                     static_cast<uint64_t>(max_duration - min_duration) + 1));
    f.a = candidates[rng_.Uniform(candidates.size())];
    switch (rng_.Uniform(3)) {
      case 0: {
        f.type = TransientFault::Type::kPartition;
        if (candidates.size() < 2) {
          f.b = -1;  // lone candidate: isolate it instead
          break;
        }
        do {
          f.b = candidates[rng_.Uniform(candidates.size())];
        } while (f.b == f.a);
        break;
      }
      case 1:
        f.type = TransientFault::Type::kLinkDelay;
        f.extra_us = 500 + static_cast<SimTime>(rng_.Uniform(2000));
        break;
      default:
        f.type = TransientFault::Type::kSlowDisk;
        f.extra_us = 500 + static_cast<SimTime>(rng_.Uniform(2000));
        break;
    }
    schedule.push_back(f);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const TransientFault& a, const TransientFault& b) {
              return a.start < b.start;
            });
  for (const TransientFault& f : schedule) {
    switch (f.type) {
      case TransientFault::Type::kPartition:
        if (f.b >= 0) {
          PartitionNodes(f.a, f.b, f.start, f.duration);
        } else {
          IsolateNode(f.a, f.start, f.duration);
        }
        break;
      case TransientFault::Type::kLinkDelay:
        DelayLinks(f.a, f.extra_us, f.start, f.duration);
        break;
      case TransientFault::Type::kSlowDisk:
        SlowDisk(f.a, f.extra_us, f.start, f.duration);
        break;
    }
  }
  return schedule;
}

LinkFault FaultInjector::OnTransfer(int src, int dst, uint64_t /*bytes*/,
                                    TransferKind kind) {
  LinkFault verdict;
  SimTime now = executor_->Now();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LinkWindow& w : link_windows_) {
      const TransientFault& f = w.fault;
      if (now < f.start || now >= f.start + f.duration) continue;
      if (!w.Matches(src, dst)) continue;
      if (f.type == TransientFault::Type::kPartition) {
        if (kind == TransferKind::kState) {
          dropped = true;
          verdict.drop = true;
        } else {
          // Reliable-transport semantics for the data plane: delivery is
          // deferred until just after the partition heals, never lost.
          SimTime until_heal = f.start + f.duration - now + 1000;
          verdict.extra_latency = std::max(verdict.extra_latency, until_heal);
        }
      } else {  // kLinkDelay
        verdict.extra_latency += f.extra_us;
      }
    }
  }
  if (dropped) {
    obs_->metrics().GetCounter("rhino_fault_dropped_transfers_total")
        ->Increment();
  }
  return verdict;
}

void FaultInjector::Fire(int node, const std::string& cause) {
  size_t crash_index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.count(node)) return;  // at most one fail-stop per node
    crashed_.insert(node);
    if (!cluster_->node(node).alive()) {
      return;  // someone else already killed it
    }
    CrashEvent ev;
    ev.time = executor_->Now();
    ev.node = node;
    ev.cause = cause;
    ev.fired = true;
    crashes_.push_back(ev);
    crash_index = crashes_.size();
  }
  obs_->metrics().GetCounter("rhino_fault_crashes_total")->Increment();
  obs_->trace().Emit("fault", "crash", "node" + std::to_string(node),
                     static_cast<uint64_t>(crash_index));
  RHINO_LOG(Info) << "fault-injector: crashing node " << node << " at t="
                  << executor_->Now() << "us (" << cause << ")";
  // The handler re-enters the engine's failure path; the injector lock is
  // released so probe callbacks from that path cannot deadlock.
  if (crash_handler_) {
    crash_handler_(node);
  } else {
    cluster_->FailNode(node);
  }
}

}  // namespace rhino::sim
