#include "sim/fault_injector.h"

#include <algorithm>

#include "common/logging.h"

namespace rhino::sim {

void FaultInjector::CrashAt(SimTime when, int node, std::string cause) {
  executor_->ScheduleAt(when, [this, node, cause = std::move(cause)] {
    Fire(node, cause);
  });
}

void FaultInjector::CrashOnEvent(const std::string& event, uint64_t nth,
                                 int node, SimTime delay) {
  RHINO_CHECK_GE(nth, 1u) << "event occurrences are 1-based";
  std::lock_guard<std::mutex> lock(mu_);
  event_triggers_[event].push_back(EventTrigger{nth, node, delay});
}

void FaultInjector::Notify(const std::string& event) {
  struct Pending {
    int node;
    SimTime delay;
    std::string cause;
  };
  std::vector<Pending> to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t count = ++event_counts_[event];
    auto it = event_triggers_.find(event);
    if (it == event_triggers_.end()) return;
    std::vector<EventTrigger>& armed = it->second;
    for (auto t = armed.begin(); t != armed.end();) {
      if (t->nth != count) {
        ++t;
        continue;
      }
      to_fire.push_back(Pending{
          t->node, t->delay, "event:" + event + "#" + std::to_string(count)});
      t = armed.erase(t);
    }
  }
  // Always bounce through the event queue, even at delay 0: firing
  // synchronously would re-enter the protocol code that called the probe.
  for (Pending& p : to_fire) {
    executor_->Schedule(
        p.delay, [this, node = p.node, cause = std::move(p.cause)] {
          Fire(node, cause);
        });
  }
}

std::vector<CrashEvent> FaultInjector::ScheduleRandomCrashes(
    int count, std::vector<int> candidates, SimTime window_start,
    SimTime window_end, SimTime min_gap) {
  RHINO_CHECK_GE(window_end, window_start);
  std::vector<CrashEvent> schedule;
  for (int i = 0; i < count && !candidates.empty(); ++i) {
    size_t pick = static_cast<size_t>(rng_.Uniform(candidates.size()));
    CrashEvent ev;
    ev.node = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<long>(pick));
    ev.time = window_start +
              static_cast<SimTime>(rng_.Uniform(
                  static_cast<uint64_t>(window_end - window_start) + 1));
    ev.cause = "random";
    schedule.push_back(ev);
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.time != b.time ? a.time < b.time : a.node < b.node;
            });
  for (size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].time < schedule[i - 1].time + min_gap) {
      schedule[i].time = schedule[i - 1].time + min_gap;
    }
  }
  for (const CrashEvent& ev : schedule) CrashAt(ev.time, ev.node, ev.cause);
  return schedule;
}

void FaultInjector::Fire(int node, const std::string& cause) {
  size_t crash_index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_.count(node)) return;  // at most one fail-stop per node
    crashed_.insert(node);
    if (!cluster_->node(node).alive()) {
      return;  // someone else already killed it
    }
    CrashEvent ev;
    ev.time = executor_->Now();
    ev.node = node;
    ev.cause = cause;
    ev.fired = true;
    crashes_.push_back(ev);
    crash_index = crashes_.size();
  }
  obs_->metrics().GetCounter("rhino_fault_crashes_total")->Increment();
  obs_->trace().Emit("fault", "crash", "node" + std::to_string(node),
                     static_cast<uint64_t>(crash_index));
  RHINO_LOG(Info) << "fault-injector: crashing node " << node << " at t="
                  << executor_->Now() << "us (" << cause << ")";
  // The handler re-enters the engine's failure path; the injector lock is
  // released so probe callbacks from that path cannot deadlock.
  if (crash_handler_) {
    crash_handler_(node);
  } else {
    cluster_->FailNode(node);
  }
}

}  // namespace rhino::sim
