#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "obs/observability.h"
#include "runtime/executor.h"
#include "sim/cluster.h"

/// \file fault_injector.h
/// Seeded fault-injection framework (paper §4.2.3 fail-stop model, plus
/// the transient faults realtime hardening needs).
///
/// Crashes can be pinned to an absolute time, to the k-th occurrence of a
/// named protocol event (k-th checkpoint trigger, k-th replication chunk,
/// k-th handover marker, ...), or drawn from a seeded random schedule —
/// including multi-node and cascading schedules. All scheduling goes
/// through the executor's event queue: on `SimExecutor` a fault run with
/// the same seed is exactly reproducible; on `RealtimeExecutor` the same
/// schedule executes against wall-clock timers, so the *schedule* is
/// reproducible while thread interleavings vary run to run (that is the
/// point of the realtime chaos lane).
///
/// Besides fail-stop crashes the injector schedules transient faults
/// through the `Cluster`'s `FaultPolicy` seam (install with
/// `InstallNetworkFaults`): network partitions that drop state transfers
/// and delay data delivery until the partition heals, uniform link
/// delays, and slow-disk windows that inflate a node's disk service
/// times. Transients exercise the retry/backoff and deadline policies of
/// the replication, catch-up, and handover paths.
///
/// Protocol components expose *probes*: they call `Notify("event")` at
/// interesting instants, and the injector fires any crash armed on that
/// event's k-th occurrence. The injector itself only flips liveness (via
/// `Cluster::FailNode` by default); wiring the full engine-level failure
/// path (halting instances, aborting checkpoints) is done by installing a
/// crash handler, keeping src/sim free of dataflow dependencies.

namespace rhino::sim {

/// One injected (or pending) fail-stop crash.
struct CrashEvent {
  SimTime time = 0;     ///< when it fired (or is scheduled to fire)
  int node = -1;
  std::string cause;    ///< "timed", "event:<name>#<k>", "random", ...
  bool fired = false;
};

/// One scheduled transient (self-healing) fault.
struct TransientFault {
  enum class Type { kPartition, kLinkDelay, kSlowDisk };
  Type type = Type::kPartition;
  int a = -1;               ///< partition endpoint / slow-disk node
  int b = -1;               ///< partition peer; -1 = every other node
  SimTime start = 0;        ///< absolute activation time
  SimTime duration = 0;     ///< window length; heals at start + duration
  SimTime extra_us = 0;     ///< injected latency (kLinkDelay / kSlowDisk)
};

/// One-line reproduction recipe: the seed plus every scheduled fault, in
/// a form that can be pasted into a bug report or compared across runs.
std::string FaultScheduleRecipe(uint64_t seed,
                                const std::vector<CrashEvent>& crashes,
                                const std::vector<TransientFault>& transients);

/// Deterministic crash + transient-fault scheduler over a cluster.
class FaultInjector : public FaultPolicy {
 public:
  FaultInjector(runtime::Executor* executor, Cluster* cluster,
                uint64_t seed = 42)
      : executor_(executor), cluster_(cluster), seed_(seed), rng_(seed) {}

  /// Replaces the default crash action (`Cluster::FailNode`). Engines
  /// install their own handler so a crash also halts instances, aborts
  /// in-flight checkpoints, etc.
  void SetCrashHandler(std::function<void(int node)> handler) {
    crash_handler_ = std::move(handler);
  }

  // ------------------------------------------------- timed schedules ------

  /// Fail-stops `node` at absolute simulation time `when`.
  void CrashAt(SimTime when, int node, std::string cause = "timed");

  /// Fail-stops `node` `delay` microseconds from now.
  void CrashAfter(SimTime delay, int node, std::string cause = "timed") {
    CrashAt(executor_->Now() + delay, node, std::move(cause));
  }

  // ------------------------------------------------- event schedules ------

  /// Arms a crash of `node` on the `nth` occurrence (1-based) of `event`,
  /// `delay` microseconds after the probe observes it. Several crashes may
  /// be armed on the same event (cascading schedules).
  void CrashOnEvent(const std::string& event, uint64_t nth, int node,
                    SimTime delay = 0);

  /// Probe: protocol code reports an occurrence of `event`. Fires any
  /// armed crash whose count is reached.
  void Notify(const std::string& event);

  /// Occurrences of `event` observed so far.
  uint64_t EventCount(const std::string& event) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = event_counts_.find(event);
    return it == event_counts_.end() ? 0 : it->second;
  }

  // ------------------------------------------------ random schedules ------

  /// Draws `count` crashes over distinct nodes from `candidates`, at times
  /// uniform in [window_start, window_end], sorted ascending and spaced at
  /// least `min_gap` apart, and schedules them. Returns the schedule (for
  /// logging / replay). Deterministic in the injector's seed.
  std::vector<CrashEvent> ScheduleRandomCrashes(int count,
                                                std::vector<int> candidates,
                                                SimTime window_start,
                                                SimTime window_end,
                                                SimTime min_gap = 0);

  // ----------------------------------------------- transient schedules ----

  /// Routes the cluster's network transfers through this injector. Call
  /// once before scheduling partitions / link delays; the injector must
  /// outlive the cluster's last transfer (tests: clear with
  /// `cluster->SetFaultPolicy(nullptr)` or destroy the cluster first).
  void InstallNetworkFaults() { cluster_->SetFaultPolicy(this); }

  /// Partitions nodes `a` and `b` for [start, start+duration): state
  /// transfers between them are dropped, data transfers are delayed until
  /// just after the partition heals.
  void PartitionNodes(int a, int b, SimTime start, SimTime duration);

  /// Partitions `node` from every other node for [start, start+duration).
  void IsolateNode(int node, SimTime start, SimTime duration);

  /// Adds `extra_us` to every transfer touching `node` (or all transfers,
  /// with node = -1) for [start, start+duration).
  void DelayLinks(int node, SimTime extra_us, SimTime start,
                  SimTime duration);

  /// Inflates every disk op on `node` by `extra_us` for
  /// [start, start+duration) (scheduled through the executor).
  void SlowDisk(int node, SimTime extra_us, SimTime start, SimTime duration);

  /// Draws `count` transient faults (partitions, slow disks, link delays)
  /// over `candidates`, starting at times uniform in
  /// [window_start, window_end] with durations uniform in
  /// [min_duration, max_duration], and schedules them. Returns the
  /// schedule for logging / replay. Deterministic in the injector's seed.
  std::vector<TransientFault> ScheduleRandomTransients(
      int count, std::vector<int> candidates, SimTime window_start,
      SimTime window_end, SimTime min_duration, SimTime max_duration);

  // ------------------------------------------------------ FaultPolicy ----

  /// Applies the active partition / link-delay windows to one transfer.
  /// Thread-safe; called from any node strand.
  LinkFault OnTransfer(int src, int dst, uint64_t bytes,
                       TransferKind kind) override;

  // ----------------------------------------------------- diagnostics ------

  bool crashed(int node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_.count(node) > 0;
  }
  /// Every crash that actually fired, in firing order. Read after the
  /// executor has drained (the vector grows while crashes fire).
  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  /// Thread-safe snapshot of the fired crashes — safe to read while the
  /// realtime executor is still running faults.
  std::vector<CrashEvent> CrashLog() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashes_;
  }
  /// Every transient fault scheduled so far, in scheduling order.
  std::vector<TransientFault> TransientLog() const {
    std::lock_guard<std::mutex> lock(mu_);
    return transients_;
  }
  /// One-line reproduction recipe (seed + full schedule) for failure
  /// messages. Thread-safe.
  std::string Recipe() const {
    std::lock_guard<std::mutex> lock(mu_);
    return FaultScheduleRecipe(seed_, crashes_, transients_);
  }
  uint64_t seed() const { return seed_; }
  Random& random() { return rng_; }

  /// Installs the observability context (defaults to the process-wide one).
  void SetObservability(obs::Observability* o) { obs_ = o; }

 private:
  struct EventTrigger {
    uint64_t nth = 0;
    int node = -1;
    SimTime delay = 0;
  };

  /// An active (or pending) partition / link-delay window, matched
  /// against transfers by OnTransfer. Slow-disk windows act through the
  /// node's disk-penalty atomic instead and never appear here.
  struct LinkWindow {
    TransientFault fault;
    bool Matches(int src, int dst) const {
      if (fault.a == -1) return true;  // global
      bool hits_a = src == fault.a || dst == fault.a;
      if (fault.b == -1) return hits_a;  // isolate / per-node delay
      return hits_a && (src == fault.b || dst == fault.b);
    }
  };

  /// Executes the crash now (idempotent per node).
  void Fire(int node, const std::string& cause);

  /// Records the fault in the transient log and, for link faults, the
  /// active-window list.
  void AddTransient(const TransientFault& fault);

  runtime::Executor* executor_;
  Cluster* cluster_;
  uint64_t seed_;
  Random rng_;
  std::function<void(int)> crash_handler_;
  obs::Observability* obs_ = obs::Observability::Default();

  /// Guards the schedules and counts; never held while calling the crash
  /// handler (which re-enters engine code).
  mutable std::mutex mu_;
  std::set<int> crashed_;
  std::vector<CrashEvent> crashes_;
  std::vector<TransientFault> transients_;
  std::vector<LinkWindow> link_windows_;
  std::map<std::string, uint64_t> event_counts_;
  std::map<std::string, std::vector<EventTrigger>> event_triggers_;
};

}  // namespace rhino::sim
