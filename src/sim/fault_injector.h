#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "obs/observability.h"
#include "runtime/executor.h"
#include "sim/cluster.h"

/// \file fault_injector.h
/// Seeded, deterministic fault-injection framework (paper §4.2.3 fail-stop
/// model).
///
/// Crashes can be pinned to an absolute simulation time, to the k-th
/// occurrence of a named protocol event (k-th checkpoint trigger, k-th
/// replication chunk, k-th handover marker, ...), or drawn from a seeded
/// random schedule — including multi-node and cascading schedules. All
/// scheduling goes through the executor's event queue, so a fault run
/// with the same seed is exactly reproducible.
///
/// Protocol components expose *probes*: they call `Notify("event")` at
/// interesting instants, and the injector fires any crash armed on that
/// event's k-th occurrence. The injector itself only flips liveness (via
/// `Cluster::FailNode` by default); wiring the full engine-level failure
/// path (halting instances, aborting checkpoints) is done by installing a
/// crash handler, keeping src/sim free of dataflow dependencies.

namespace rhino::sim {

/// One injected (or pending) fail-stop crash.
struct CrashEvent {
  SimTime time = 0;     ///< when it fired (or is scheduled to fire)
  int node = -1;
  std::string cause;    ///< "timed", "event:<name>#<k>", "random", ...
  bool fired = false;
};

/// Deterministic crash scheduler over a simulated cluster.
class FaultInjector {
 public:
  FaultInjector(runtime::Executor* executor, Cluster* cluster,
                uint64_t seed = 42)
      : executor_(executor), cluster_(cluster), rng_(seed) {}

  /// Replaces the default crash action (`Cluster::FailNode`). Engines
  /// install their own handler so a crash also halts instances, aborts
  /// in-flight checkpoints, etc.
  void SetCrashHandler(std::function<void(int node)> handler) {
    crash_handler_ = std::move(handler);
  }

  // ------------------------------------------------- timed schedules ------

  /// Fail-stops `node` at absolute simulation time `when`.
  void CrashAt(SimTime when, int node, std::string cause = "timed");

  /// Fail-stops `node` `delay` microseconds from now.
  void CrashAfter(SimTime delay, int node, std::string cause = "timed") {
    CrashAt(executor_->Now() + delay, node, std::move(cause));
  }

  // ------------------------------------------------- event schedules ------

  /// Arms a crash of `node` on the `nth` occurrence (1-based) of `event`,
  /// `delay` microseconds after the probe observes it. Several crashes may
  /// be armed on the same event (cascading schedules).
  void CrashOnEvent(const std::string& event, uint64_t nth, int node,
                    SimTime delay = 0);

  /// Probe: protocol code reports an occurrence of `event`. Fires any
  /// armed crash whose count is reached.
  void Notify(const std::string& event);

  /// Occurrences of `event` observed so far.
  uint64_t EventCount(const std::string& event) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = event_counts_.find(event);
    return it == event_counts_.end() ? 0 : it->second;
  }

  // ------------------------------------------------ random schedules ------

  /// Draws `count` crashes over distinct nodes from `candidates`, at times
  /// uniform in [window_start, window_end], sorted ascending and spaced at
  /// least `min_gap` apart, and schedules them. Returns the schedule (for
  /// logging / replay). Deterministic in the injector's seed.
  std::vector<CrashEvent> ScheduleRandomCrashes(int count,
                                                std::vector<int> candidates,
                                                SimTime window_start,
                                                SimTime window_end,
                                                SimTime min_gap = 0);

  // ----------------------------------------------------- diagnostics ------

  bool crashed(int node) const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_.count(node) > 0;
  }
  /// Every crash that actually fired, in firing order. Read after the
  /// executor has drained (the vector grows while crashes fire).
  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  Random& random() { return rng_; }

  /// Installs the observability context (defaults to the process-wide one).
  void SetObservability(obs::Observability* o) { obs_ = o; }

 private:
  struct EventTrigger {
    uint64_t nth = 0;
    int node = -1;
    SimTime delay = 0;
  };

  /// Executes the crash now (idempotent per node).
  void Fire(int node, const std::string& cause);

  runtime::Executor* executor_;
  Cluster* cluster_;
  Random rng_;
  std::function<void(int)> crash_handler_;
  obs::Observability* obs_ = obs::Observability::Default();

  /// Guards the schedules and counts; never held while calling the crash
  /// handler (which re-enters engine code).
  mutable std::mutex mu_;
  std::set<int> crashed_;
  std::vector<CrashEvent> crashes_;
  std::map<std::string, uint64_t> event_counts_;
  std::map<std::string, std::vector<EventTrigger>> event_triggers_;
};

}  // namespace rhino::sim
