#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.h"
#include "sim/simulation.h"

/// \file resource.h
/// Modeled bandwidth resources (NIC queues, disks, per-instance CPU).
///
/// A `QueueResource` is a FIFO serialization point with a fixed service
/// bandwidth: a request of `bytes` occupies the resource for
/// `bytes / bandwidth` starting when all earlier requests finished. This is
/// the standard M/G/1-style model for links and disks in cluster
/// simulators; it preserves the transfer-time ratios the paper's evaluation
/// depends on. Busy time is accumulated for utilization reporting (Fig. 5).

namespace rhino::sim {

/// FIFO bandwidth resource.
class QueueResource {
 public:
  QueueResource(Simulation* sim, std::string name, double bytes_per_sec)
      : sim_(sim), name_(std::move(name)), bytes_per_sec_(bytes_per_sec) {}

  /// Earliest time a new request could start service.
  SimTime FreeAt() const { return free_at_ < sim_->Now() ? sim_->Now() : free_at_; }

  /// Enqueues a request of `bytes`; invokes `done` (if set) at completion.
  /// Returns the completion time.
  SimTime Submit(uint64_t bytes, std::function<void()> done = nullptr) {
    SimTime start = FreeAt();
    SimTime duration = TransferTime(bytes, bytes_per_sec_);
    SimTime end = start + duration;
    free_at_ = end;
    busy_us_ += duration;
    bytes_served_ += bytes;
    if (done) sim_->ScheduleAt(end, std::move(done));
    return end;
  }

  /// Reserves the interval [start, start+duration) without a callback.
  /// Used by coupled transfers that compute their own completion time.
  void Occupy(SimTime start, SimTime duration, uint64_t bytes) {
    if (start < FreeAt()) start = FreeAt();
    free_at_ = start + duration;
    busy_us_ += duration;
    bytes_served_ += bytes;
  }

  double bytes_per_sec() const { return bytes_per_sec_; }
  const std::string& name() const { return name_; }

  /// Cumulative busy time, for utilization sampling.
  SimTime busy_us() const { return busy_us_; }
  uint64_t bytes_served() const { return bytes_served_; }

 private:
  Simulation* sim_;
  std::string name_;
  double bytes_per_sec_;
  SimTime free_at_ = 0;
  SimTime busy_us_ = 0;
  uint64_t bytes_served_ = 0;
};

/// Transfers `bytes` from a sender TX queue to a receiver RX queue.
///
/// The transfer starts when both queues are free and occupies both for the
/// full duration (full-duplex NIC model); `latency` is added once at the
/// end (propagation + protocol overhead). Invokes `done` at completion and
/// returns the completion time.
inline SimTime NetworkTransfer(Simulation* sim, QueueResource* tx,
                               QueueResource* rx, uint64_t bytes,
                               SimTime latency,
                               std::function<void()> done = nullptr) {
  SimTime start = std::max(tx->FreeAt(), rx->FreeAt());
  SimTime duration =
      TransferTime(bytes, std::min(tx->bytes_per_sec(), rx->bytes_per_sec()));
  tx->Occupy(start, duration, bytes);
  rx->Occupy(start, duration, bytes);
  SimTime end = start + duration + latency;
  if (done) sim->ScheduleAt(end, std::move(done));
  return end;
}

}  // namespace rhino::sim
