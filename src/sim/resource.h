#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/units.h"
#include "runtime/executor.h"

/// \file resource.h
/// Modeled bandwidth resources (NIC queues, disks, per-instance CPU).
///
/// A `QueueResource` is a FIFO serialization point with a fixed service
/// bandwidth: a request of `bytes` occupies the resource for
/// `bytes / bandwidth` starting when all earlier requests finished. This is
/// the standard M/G/1-style model for links and disks in cluster
/// simulators; it preserves the transfer-time ratios the paper's evaluation
/// depends on. Busy time is accumulated for utilization reporting (Fig. 5).
///
/// Thread safety: the reservation state (`free_at_`, busy/bytes counters)
/// is guarded by an internal mutex so multiple node threads can share a
/// resource under `RealtimeExecutor`. Coupled transfers that must reserve
/// two resources atomically (`NetworkTransfer`) take both mutexes via
/// `std::scoped_lock` and use the `*Locked` accessors.

namespace rhino::sim {

/// FIFO bandwidth resource.
class QueueResource {
 public:
  /// `completions` (optional) is the serial queue completion callbacks are
  /// posted to — typically the owning node's queue, so a disk or NIC
  /// completion runs on its node's strand. Defaults to the executor's
  /// default queue.
  QueueResource(runtime::Executor* executor, std::string name,
                double bytes_per_sec,
                runtime::TaskQueue* completions = nullptr)
      : executor_(executor),
        name_(std::move(name)),
        bytes_per_sec_(bytes_per_sec),
        completions_(completions) {}

  /// Earliest time a new request could start service.
  SimTime FreeAt() const {
    std::lock_guard<std::mutex> lock(mu_);
    return FreeAtLocked();
  }

  /// Enqueues a request of `bytes`; invokes `done` (if set) at completion.
  /// Returns the completion time. `extra_latency` inflates this request's
  /// service time (slow-device fault injection) — it occupies the resource
  /// like real service, so utilization accounting reflects the slowdown.
  SimTime Submit(uint64_t bytes, std::function<void()> done = nullptr,
                 SimTime extra_latency = 0) {
    SimTime end;
    {
      std::lock_guard<std::mutex> lock(mu_);
      SimTime start = FreeAtLocked();
      SimTime duration = TransferTime(bytes, bytes_per_sec_) + extra_latency;
      end = start + duration;
      free_at_ = end;
      busy_us_ += duration;
      bytes_served_ += bytes;
    }
    if (done) PostCompletion(end, std::move(done));
    return end;
  }

  /// Reserves the interval [start, start+duration) without a callback.
  /// Used by coupled transfers that compute their own completion time.
  void Occupy(SimTime start, SimTime duration, uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    OccupyLocked(start, duration, bytes);
  }

  double bytes_per_sec() const { return bytes_per_sec_; }
  const std::string& name() const { return name_; }
  runtime::Executor* executor() const { return executor_; }
  runtime::TaskQueue* completion_queue() const { return completions_; }
  void set_completion_queue(runtime::TaskQueue* queue) {
    completions_ = queue;
  }

  /// Cumulative busy time, for utilization sampling.
  SimTime busy_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_us_;
  }
  uint64_t bytes_served() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_served_;
  }

  // ---- coupled two-resource reservations (NetworkTransfer) ----
  std::mutex& mu() const { return mu_; }
  /// Caller holds mu().
  SimTime FreeAtLocked() const {
    SimTime now = executor_->Now();
    return free_at_ < now ? now : free_at_;
  }
  /// Caller holds mu().
  void OccupyLocked(SimTime start, SimTime duration, uint64_t bytes) {
    if (start < FreeAtLocked()) start = FreeAtLocked();
    free_at_ = start + duration;
    busy_us_ += duration;
    bytes_served_ += bytes;
  }
  /// Posts `done` at `end` on the completion queue (or the executor's
  /// default queue).
  void PostCompletion(SimTime end, std::function<void()> done) {
    if (completions_ != nullptr) {
      completions_->PostAt(end, std::move(done));
    } else {
      executor_->ScheduleAt(end, std::move(done));
    }
  }

 private:
  runtime::Executor* executor_;
  std::string name_;
  double bytes_per_sec_;
  runtime::TaskQueue* completions_;
  mutable std::mutex mu_;
  SimTime free_at_ = 0;
  SimTime busy_us_ = 0;
  uint64_t bytes_served_ = 0;
};

/// Transfers `bytes` from a sender TX queue to a receiver RX queue.
///
/// The transfer starts when both queues are free and occupies both for the
/// full duration (full-duplex NIC model); `latency` is added once at the
/// end (propagation + protocol overhead). Invokes `done` at completion (on
/// the *receiver's* completion queue) and returns the completion time.
inline SimTime NetworkTransfer(runtime::Executor* /*executor*/,
                               QueueResource* tx, QueueResource* rx,
                               uint64_t bytes, SimTime latency,
                               std::function<void()> done = nullptr) {
  SimTime end;
  {
    // Both reservations must see a consistent (free_at) snapshot or two
    // concurrent transfers could overlap on one NIC; scoped_lock orders
    // the two mutexes internally, so no lock-order cycle is possible.
    std::unique_lock<std::mutex> tx_lock(tx->mu(), std::defer_lock);
    std::unique_lock<std::mutex> rx_lock(rx->mu(), std::defer_lock);
    if (tx == rx) {
      tx_lock.lock();
    } else {
      std::lock(tx_lock, rx_lock);
    }
    SimTime start = std::max(tx->FreeAtLocked(), rx->FreeAtLocked());
    SimTime duration = TransferTime(
        bytes, std::min(tx->bytes_per_sec(), rx->bytes_per_sec()));
    tx->OccupyLocked(start, duration, bytes);
    if (tx != rx) rx->OccupyLocked(start, duration, bytes);
    end = start + duration + latency;
  }
  if (done) rx->PostCompletion(end, std::move(done));
  return end;
}

}  // namespace rhino::sim
