#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

/// \file simulation.h
/// Deterministic discrete-event simulation kernel.
///
/// The kernel substitutes for the paper's physical 16-VM cluster: all
/// runtime components (channels, disks, replication chains, operators) are
/// driven by events on a single simulated clock. Determinism comes from a
/// strict (time, sequence-number) ordering of events, so every experiment
/// is exactly reproducible.

namespace rhino::sim {

/// Event-driven scheduler with a simulated microsecond clock.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  void Schedule(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `t` (clamped to now).
  void ScheduleAt(SimTime t, Callback fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  /// Runs one event; returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    // std::priority_queue::top returns const&; the callback must be moved
    // out before pop, so we const_cast the (about to be destroyed) node.
    Event& ev = const_cast<Event&>(queue_.top());
    now_ = ev.time;
    Callback fn = std::move(ev.fn);
    queue_.pop();
    fn();
    return true;
  }

  /// Runs until the event queue drains.
  void Run() {
    while (Step()) {
    }
  }

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) Step();
    if (now_ < t) now_ = t;
  }

  /// Number of pending events.
  size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace rhino::sim
