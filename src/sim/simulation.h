#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

/// \file simulation.h
/// Deterministic discrete-event simulation kernel.
///
/// The kernel substitutes for the paper's physical 16-VM cluster: all
/// runtime components (channels, disks, replication chains, operators) are
/// driven by events on a single simulated clock. Determinism comes from a
/// strict (time, sequence-number) ordering of events, so every experiment
/// is exactly reproducible.

namespace rhino::sim {

/// Event-driven scheduler with a simulated microsecond clock.
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0).
  void Schedule(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` at absolute time `t`. A deadline already in the past is
  /// clamped to now — that is almost always a caller bug (e.g. computing a
  /// completion time from stale state), so clamps are logged at debug level
  /// and counted in `clamped_schedules()`.
  void ScheduleAt(SimTime t, Callback fn) {
    if (t < now_) {
      ++clamped_schedules_;
      RHINO_LOG(Debug) << "ScheduleAt clamped past deadline " << t
                       << "us to now=" << now_ << "us (clamp #"
                       << clamped_schedules_ << ")";
      t = now_;
    }
    queue_.push_back(Event{t, next_seq_++, std::move(fn)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
  }

  /// Runs one event; returns false when the queue is empty.
  bool Step() {
    if (queue_.empty()) return false;
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    now_ = ev.time;
    Callback fn = std::move(ev.fn);
    fn();
    return true;
  }

  /// Runs until the event queue drains.
  void Run() {
    while (Step()) {
    }
  }

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.front().time <= t) Step();
    if (now_ < t) now_ = t;
  }

  /// Number of pending events.
  size_t PendingEvents() const { return queue_.size(); }

  /// Number of ScheduleAt calls whose deadline was in the past.
  uint64_t clamped_schedules() const { return clamped_schedules_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  /// Heap comparator: the max-heap algorithms + `Later` yield a min-heap on
  /// (time, seq), i.e. the front is the earliest event, FIFO within a tick.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> queue_;  // binary heap via std::push_heap/std::pop_heap
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t clamped_schedules_ = 0;
};

}  // namespace rhino::sim
