#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "runtime/executor.h"
#include "sim/resource.h"

/// \file cluster.h
/// Modeled cluster of worker nodes.
///
/// Node parameters default to the paper's testbed: GCP `n1-standard-16`
/// VMs with 16 vcores, 64 GiB RAM, two local NVMe SSDs, and a
/// 2 Gbps-per-vcore virtual network (= 4 GB/s full duplex per VM).
///
/// Each node owns a serial `TaskQueue` ("node<i>"): channel deliveries,
/// disk completions, and operator processing for that node are posted
/// there, so under `RealtimeExecutor` every node is a genuinely parallel
/// strand while intra-node callback order matches the simulator's.
/// Liveness, memory, and CPU accounting are atomics so protocol threads
/// can read them without taking a node lock.

namespace rhino::sim {

/// What a network transfer carries. Fault policies distinguish the data
/// plane (record batches: reliable-transport semantics, delayable but
/// never silently lost) from state movement (replication chunks, catch-up
/// copies, handover tails: droppable, because the protocols above carry
/// their own retry/timeout machinery and surface permanent loss as an
/// error Status).
enum class TransferKind { kData, kState };

/// Verdict of a fault policy on one network transfer.
struct LinkFault {
  bool drop = false;          ///< swallow the transfer: `done` never fires
  SimTime extra_latency = 0;  ///< added one-way latency (microseconds)
};

/// Seam for injected network faults: consulted by `Cluster::Transfer` on
/// every send. Implementations must be thread-safe — under
/// `RealtimeExecutor`, transfers originate on many node strands at once.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;
  virtual LinkFault OnTransfer(int src, int dst, uint64_t bytes,
                               TransferKind kind) = 0;
};

/// Hardware description of one node.
struct NodeSpec {
  int cores = 16;
  uint64_t memory_bytes = 64 * kGiB;
  double net_bytes_per_sec = 4.0e9;   // 32 Gbps full duplex
  SimTime net_latency = 200;          // us, propagation + framing
  int num_disks = 2;
  double disk_write_bytes_per_sec = 1.0e9;  // NVMe SSD
  double disk_read_bytes_per_sec = 2.0e9;
};

/// One local NVMe SSD with independent read and write service queues.
/// `penalty` (optional) is the owning node's injected per-op latency — a
/// fault injector models a degraded device by raising it for a while.
class Disk {
 public:
  Disk(runtime::Executor* executor, const std::string& name,
       const NodeSpec& spec, runtime::TaskQueue* completions = nullptr,
       const std::atomic<SimTime>* penalty = nullptr)
      : read_(executor, name + "/read", spec.disk_read_bytes_per_sec,
              completions),
        write_(executor, name + "/write", spec.disk_write_bytes_per_sec,
               completions),
        penalty_(penalty) {}

  SimTime Read(uint64_t bytes, std::function<void()> done = nullptr) {
    return read_.Submit(bytes, std::move(done), PenaltyNow());
  }
  SimTime Write(uint64_t bytes, std::function<void()> done = nullptr) {
    return write_.Submit(bytes, std::move(done), PenaltyNow());
  }

  QueueResource& read_queue() { return read_; }
  QueueResource& write_queue() { return write_; }

 private:
  SimTime PenaltyNow() const {
    return penalty_ == nullptr ? 0
                               : penalty_->load(std::memory_order_relaxed);
  }

  QueueResource read_;
  QueueResource write_;
  const std::atomic<SimTime>* penalty_;
};

/// One modeled VM: full-duplex NIC, disks, memory budget, liveness flag.
class Node {
 public:
  Node(runtime::Executor* executor, int id, const NodeSpec& spec)
      : id_(id),
        spec_(spec),
        queue_(executor->CreateQueue("node" + std::to_string(id))),
        tx_(executor, "node" + std::to_string(id) + "/tx",
            spec.net_bytes_per_sec, queue_),
        rx_(executor, "node" + std::to_string(id) + "/rx",
            spec.net_bytes_per_sec, queue_) {
    for (int d = 0; d < spec.num_disks; ++d) {
      disks_.push_back(std::make_unique<Disk>(
          executor, "node" + std::to_string(id) + "/disk" + std::to_string(d),
          spec, queue_, &disk_penalty_us_));
    }
  }

  int id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }
  void set_alive(bool alive) {
    alive_.store(alive, std::memory_order_release);
  }

  /// The node's serial strand: all callbacks of this node's components.
  runtime::TaskQueue* queue() const { return queue_; }

  QueueResource& tx() { return tx_; }
  QueueResource& rx() { return rx_; }
  Disk& disk(int i) { return *disks_[static_cast<size_t>(i) % disks_.size()]; }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  /// Injected per-operation latency on this node's disks (slow-disk
  /// faults). 0 = healthy.
  void set_disk_penalty_us(SimTime penalty) {
    disk_penalty_us_.store(penalty, std::memory_order_relaxed);
  }
  SimTime disk_penalty_us() const {
    return disk_penalty_us_.load(std::memory_order_relaxed);
  }

  /// Tracks modeled heap usage (Megaphone's in-memory state lives here).
  /// Returns false when the allocation would exceed the node's memory.
  bool AllocateMemory(uint64_t bytes) {
    uint64_t used = memory_used_.load(std::memory_order_relaxed);
    do {
      if (used + bytes > spec_.memory_bytes) return false;
    } while (!memory_used_.compare_exchange_weak(used, used + bytes,
                                                 std::memory_order_relaxed));
    return true;
  }
  void FreeMemory(uint64_t bytes) {
    uint64_t used = memory_used_.load(std::memory_order_relaxed);
    while (!memory_used_.compare_exchange_weak(
        used, bytes > used ? 0 : used - bytes, std::memory_order_relaxed)) {
    }
  }
  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }

  /// Cumulative modeled CPU busy time across all operator instances pinned
  /// to this node (filled in by the dataflow runtime).
  void AddCpuBusy(SimTime us) {
    cpu_busy_us_.fetch_add(us, std::memory_order_relaxed);
  }
  SimTime cpu_busy_us() const {
    return cpu_busy_us_.load(std::memory_order_relaxed);
  }

 private:
  int id_;
  NodeSpec spec_;
  runtime::TaskQueue* queue_;
  QueueResource tx_;
  QueueResource rx_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::atomic<SimTime> disk_penalty_us_{0};
  std::atomic<bool> alive_{true};
  std::atomic<uint64_t> memory_used_{0};
  std::atomic<SimTime> cpu_busy_us_{0};
};

/// The modeled cluster: a set of nodes sharing one executor.
class Cluster {
 public:
  Cluster(runtime::Executor* executor, int num_nodes,
          const NodeSpec& spec = NodeSpec())
      : executor_(executor) {
    for (int i = 0; i < num_nodes; ++i) {
      nodes_.push_back(std::make_unique<Node>(executor, i, spec));
    }
  }

  runtime::Executor* executor() { return executor_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id) { return *nodes_[static_cast<size_t>(id)]; }

  /// Fail-stop failure of a node (paper §4.2.3 fault model).
  void FailNode(int id) { node(id).set_alive(false); }

  /// Installs (or clears, with nullptr) the fault policy consulted on
  /// every transfer. The policy must outlive the cluster or be cleared
  /// before destruction.
  void SetFaultPolicy(FaultPolicy* policy) {
    fault_policy_.store(policy, std::memory_order_release);
  }

  /// Transfers dropped by the fault policy (the `done` callback was
  /// swallowed; upper layers recover via their timeout/retry machinery).
  uint64_t dropped_transfers() const {
    return dropped_transfers_.load(std::memory_order_relaxed);
  }

  /// Transfers `bytes` between two nodes (or hands it to the local
  /// loopback, which is free, when src == dst). `done` runs on the
  /// destination node's strand. `kind` tags the payload for the fault
  /// policy: kState transfers may be dropped (their protocols retry),
  /// kData transfers are at most delayed (reliable-transport semantics).
  SimTime Transfer(int src, int dst, uint64_t bytes,
                   std::function<void()> done = nullptr,
                   TransferKind kind = TransferKind::kData) {
    SimTime extra = 0;
    if (FaultPolicy* policy = fault_policy_.load(std::memory_order_acquire)) {
      LinkFault fault = policy->OnTransfer(src, dst, bytes, kind);
      if (fault.drop) {
        dropped_transfers_.fetch_add(1, std::memory_order_relaxed);
        return executor_->Now();
      }
      extra = fault.extra_latency;
    }
    if (src == dst) {
      SimTime end = executor_->Now() + extra;
      if (done) node(dst).queue()->PostAt(end, std::move(done));
      return end;
    }
    Node& s = node(src);
    Node& d = node(dst);
    return NetworkTransfer(executor_, &s.tx(), &d.rx(), bytes,
                           s.spec().net_latency + extra, std::move(done));
  }

 private:
  runtime::Executor* executor_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<FaultPolicy*> fault_policy_{nullptr};
  std::atomic<uint64_t> dropped_transfers_{0};
};

}  // namespace rhino::sim
