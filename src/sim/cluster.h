#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "sim/resource.h"
#include "sim/simulation.h"

/// \file cluster.h
/// Modeled cluster of worker nodes.
///
/// Node parameters default to the paper's testbed: GCP `n1-standard-16`
/// VMs with 16 vcores, 64 GiB RAM, two local NVMe SSDs, and a
/// 2 Gbps-per-vcore virtual network (= 4 GB/s full duplex per VM).

namespace rhino::sim {

/// Hardware description of one node.
struct NodeSpec {
  int cores = 16;
  uint64_t memory_bytes = 64 * kGiB;
  double net_bytes_per_sec = 4.0e9;   // 32 Gbps full duplex
  SimTime net_latency = 200;          // us, propagation + framing
  int num_disks = 2;
  double disk_write_bytes_per_sec = 1.0e9;  // NVMe SSD
  double disk_read_bytes_per_sec = 2.0e9;
};

/// One local NVMe SSD with independent read and write service queues.
class Disk {
 public:
  Disk(Simulation* sim, const std::string& name, const NodeSpec& spec)
      : read_(sim, name + "/read", spec.disk_read_bytes_per_sec),
        write_(sim, name + "/write", spec.disk_write_bytes_per_sec) {}

  SimTime Read(uint64_t bytes, std::function<void()> done = nullptr) {
    return read_.Submit(bytes, std::move(done));
  }
  SimTime Write(uint64_t bytes, std::function<void()> done = nullptr) {
    return write_.Submit(bytes, std::move(done));
  }

  QueueResource& read_queue() { return read_; }
  QueueResource& write_queue() { return write_; }

 private:
  QueueResource read_;
  QueueResource write_;
};

/// One modeled VM: full-duplex NIC, disks, memory budget, liveness flag.
class Node {
 public:
  Node(Simulation* sim, int id, const NodeSpec& spec)
      : id_(id),
        spec_(spec),
        tx_(sim, "node" + std::to_string(id) + "/tx", spec.net_bytes_per_sec),
        rx_(sim, "node" + std::to_string(id) + "/rx", spec.net_bytes_per_sec) {
    for (int d = 0; d < spec.num_disks; ++d) {
      disks_.push_back(std::make_unique<Disk>(
          sim, "node" + std::to_string(id) + "/disk" + std::to_string(d), spec));
    }
  }

  int id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  QueueResource& tx() { return tx_; }
  QueueResource& rx() { return rx_; }
  Disk& disk(int i) { return *disks_[static_cast<size_t>(i) % disks_.size()]; }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  /// Tracks modeled heap usage (Megaphone's in-memory state lives here).
  /// Returns false when the allocation would exceed the node's memory.
  bool AllocateMemory(uint64_t bytes) {
    if (memory_used_ + bytes > spec_.memory_bytes) return false;
    memory_used_ += bytes;
    return true;
  }
  void FreeMemory(uint64_t bytes) {
    memory_used_ = bytes > memory_used_ ? 0 : memory_used_ - bytes;
  }
  uint64_t memory_used() const { return memory_used_; }

  /// Cumulative modeled CPU busy time across all operator instances pinned
  /// to this node (filled in by the dataflow runtime).
  void AddCpuBusy(SimTime us) { cpu_busy_us_ += us; }
  SimTime cpu_busy_us() const { return cpu_busy_us_; }

 private:
  int id_;
  NodeSpec spec_;
  QueueResource tx_;
  QueueResource rx_;
  std::vector<std::unique_ptr<Disk>> disks_;
  bool alive_ = true;
  uint64_t memory_used_ = 0;
  SimTime cpu_busy_us_ = 0;
};

/// The modeled cluster: a set of nodes sharing one simulation clock.
class Cluster {
 public:
  Cluster(Simulation* sim, int num_nodes, const NodeSpec& spec = NodeSpec())
      : sim_(sim) {
    for (int i = 0; i < num_nodes; ++i) {
      nodes_.push_back(std::make_unique<Node>(sim, i, spec));
    }
  }

  Simulation* sim() { return sim_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id) { return *nodes_[static_cast<size_t>(id)]; }

  /// Fail-stop failure of a node (paper §4.2.3 fault model).
  void FailNode(int id) { node(id).set_alive(false); }

  /// Transfers `bytes` between two nodes (or hands it to the local
  /// loopback, which is free, when src == dst).
  SimTime Transfer(int src, int dst, uint64_t bytes,
                   std::function<void()> done = nullptr) {
    if (src == dst) {
      SimTime end = sim_->Now();
      if (done) sim_->ScheduleAt(end, std::move(done));
      return end;
    }
    Node& s = node(src);
    Node& d = node(dst);
    return NetworkTransfer(sim_, &s.tx(), &d.rx(), bytes, s.spec().net_latency,
                           std::move(done));
  }

 private:
  Simulation* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace rhino::sim
