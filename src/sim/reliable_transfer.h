#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/units.h"
#include "runtime/retry.h"
#include "sim/cluster.h"

/// \file reliable_transfer.h
/// A network transfer with an arrival timeout and seeded backoff retries.
///
/// `Cluster::Transfer` models a raw send: an installed fault policy may
/// swallow a `kState` transfer outright (network partition), in which case
/// the completion callback simply never fires. `ReliableTransfer` is the
/// protocol-side answer: it re-sends when the transfer has not arrived
/// within a generous multiple of its fault-free duration, with jittered
/// exponential backoff between attempts, and it guarantees exactly one of
/// `deliver` (first arrival) or `give_up` (an endpoint fail-stopped, or
/// the retry budget ran out) fires — duplicate deliveries from a late
/// attempt racing a retry are absorbed.

namespace rhino::sim {

namespace detail {

struct ReliableTransferState {
  Cluster* cluster = nullptr;
  int src = -1;
  int dst = -1;
  uint64_t bytes = 0;
  std::function<void()> deliver;
  std::function<void(Status)> give_up;
  std::shared_ptr<runtime::Retrier> retrier;
  std::atomic<bool> settled{false};

  bool Settle() { return !settled.exchange(true); }

  static void Attempt(std::shared_ptr<ReliableTransferState> t) {
    if (t->settled.load(std::memory_order_acquire)) return;
    // Fail-stops are permanent: no resend reaches a dead endpoint.
    if (!t->cluster->node(t->src).alive() ||
        !t->cluster->node(t->dst).alive()) {
      int dead = t->cluster->node(t->src).alive() ? t->dst : t->src;
      if (t->Settle()) {
        t->give_up(Status::Aborted("transfer endpoint node " +
                                   std::to_string(dead) + " fail-stopped"));
      }
      return;
    }
    SimTime projected = t->cluster->Transfer(
        t->src, t->dst, t->bytes,
        [t] {
          if (t->Settle()) t->deliver();
        },
        TransferKind::kState);
    runtime::Executor* executor = t->cluster->executor();
    // `projected` is the cluster's own delivery estimate, NIC queue
    // backlog included; a dropped transfer projects "now". Waiting out
    // the projection (plus slack for the fault-free duration and
    // realtime scheduling jitter) keeps the watchdog from mistaking
    // congestion for a drop — a fan-in of bulk reads can queue a block
    // far beyond any multiple of its uncontended transfer time, and a
    // retry storm there only deepens the backlog.
    SimTime now = executor->Now();
    SimTime queue_wait = projected > now ? projected - now : 0;
    const NodeSpec& spec = t->cluster->node(t->dst).spec();
    SimTime expected =
        TransferTime(t->bytes, spec.net_bytes_per_sec) + spec.net_latency;
    SimTime timeout = queue_wait + expected * 3 + 50 * kMillisecond;
    executor->Schedule(timeout, [t, executor] {
      if (t->settled.load(std::memory_order_acquire)) return;
      SimTime backoff = 0;
      if (!t->retrier->NextBackoff(&backoff)) {
        if (t->Settle()) {
          t->give_up(t->retrier->Exhausted(Status::TimedOut(
              "transfer to node " + std::to_string(t->dst) +
              " not delivered in time")));
        }
        return;
      }
      executor->Schedule(backoff, [t] { Attempt(t); });
    });
  }
};

}  // namespace detail

/// Sends `bytes` from `src` to `dst` with retries per `retry`. Exactly one
/// of `deliver` (runs on the destination's strand, first arrival) or
/// `give_up` fires. `what` labels the `rhino_retry_attempts_total` counter.
inline void ReliableTransfer(Cluster* cluster, int src, int dst,
                             uint64_t bytes, runtime::RetryOptions retry,
                             uint64_t seed, const std::string& what,
                             std::function<void()> deliver,
                             std::function<void(Status)> give_up,
                             obs::Observability* obs = nullptr) {
  auto t = std::make_shared<detail::ReliableTransferState>();
  t->cluster = cluster;
  t->src = src;
  t->dst = dst;
  t->bytes = bytes;
  t->deliver = std::move(deliver);
  t->give_up = std::move(give_up);
  t->retrier = std::make_shared<runtime::Retrier>(cluster->executor(), retry,
                                                  seed, what, obs);
  detail::ReliableTransferState::Attempt(std::move(t));
}

}  // namespace rhino::sim
