#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "lsm/db.h"
#include "lsm/env.h"
#include "state/state_backend.h"

/// \file lsm_state_backend.h
/// Real state backend over the embedded LSM store (the RocksDB role).
///
/// Keys are prefixed with a fixed-width big-endian virtual-node id so each
/// virtual node occupies a contiguous key range — vnode extraction is a
/// range scan and vnode drop is a range delete, exactly how Flink scopes
/// RocksDB state by key group.

namespace rhino::state {

/// LSM-backed implementation of StateBackend.
///
/// Thread safety: a backend-level recursive mutex guards the nominal byte
/// accounting and checkpoint bookkeeping (the DB underneath has its own
/// store-wide lock). The protocols already serialize writes to one
/// instance's state on its node strand; the lock covers the cross-strand
/// readers — checkpoint persistence and handover extraction reading sizes
/// while the owner keeps processing.
class LsmStateBackend : public StateBackend {
 public:
  /// Opens (or creates) the backing DB under `dir`. Checkpoints are placed
  /// in sibling directories `dir-chk-<id>`.
  static Result<std::unique_ptr<LsmStateBackend>> Open(
      lsm::Env* env, std::string dir, std::string operator_name,
      uint32_t instance_id, lsm::Options options = lsm::Options());

  Status Put(uint32_t vnode, std::string_view key, std::string_view value,
             uint64_t nominal_bytes) override;
  Status Get(uint32_t vnode, std::string_view key, std::string* value) override;
  Status Delete(uint32_t vnode, std::string_view key,
                uint64_t nominal_bytes) override;
  /// Group-commits the run as one lsm::WriteBatch — a single WAL append
  /// covers every entry.
  Status ApplyBatch(const std::vector<StateWrite>& writes) override;
  Result<std::vector<std::pair<std::string, std::string>>> ScanVnode(
      uint32_t vnode) override;
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      uint32_t vnode, std::string_view prefix) override;
  Status VisitVnode(uint32_t vnode, const EntryVisitor& fn) override;
  uint64_t SizeBytes() const override;
  uint64_t VnodeBytes(uint32_t vnode) const override;
  Result<CheckpointDescriptor> Checkpoint(uint64_t checkpoint_id) override;
  Result<std::string> ExtractVnodes(const std::vector<uint32_t>& vnodes) override;
  /// All requested blobs out of ONE streaming scan over the store (the
  /// vnode prefix routes each entry), instead of one full extraction pass
  /// per vnode.
  Result<std::map<uint32_t, std::string>> ExtractVnodeBlobs(
      const std::vector<uint32_t>& vnodes) override;
  Status IngestVnodes(std::string_view blob, bool already_durable) override;
  Status DropVnodes(const std::vector<uint32_t>& vnodes) override;

  /// The backing DB (exposed for tests).
  lsm::DB* db() { return db_.get(); }

 private:
  LsmStateBackend(lsm::Env* env, std::string dir, std::string operator_name,
                  uint32_t instance_id)
      : env_(env),
        dir_(std::move(dir)),
        operator_name_(std::move(operator_name)),
        instance_id_(instance_id) {}

  static std::string EncodeKey(uint32_t vnode, std::string_view key);

  /// Subtracts nominal bytes from a vnode's accounting, clamping at zero.
  void DiscountBytes(uint32_t vnode, uint64_t nominal_bytes);

  lsm::Env* env_;
  std::string dir_;
  std::string operator_name_;
  uint32_t instance_id_;
  std::unique_ptr<lsm::DB> db_;
  /// Recursive: public methods re-enter each other (ScanVnode ->
  /// VisitVnode, ExtractVnodes -> VnodeBytes).
  mutable std::recursive_mutex mu_;
  /// Nominal byte accounting per vnode (adds minus deletes). Values are
  /// the caller-declared payload sizes, which is what the migration
  /// protocols budget with.
  std::map<uint32_t, uint64_t> vnode_bytes_;
  std::vector<StateFile> last_checkpoint_files_;
};

}  // namespace rhino::state
