#include "state/lsm_state_backend.h"

#include <cstring>

#include "common/serde.h"

namespace rhino::state {

Result<std::unique_ptr<LsmStateBackend>> LsmStateBackend::Open(
    lsm::Env* env, std::string dir, std::string operator_name,
    uint32_t instance_id, lsm::Options options) {
  auto backend = std::unique_ptr<LsmStateBackend>(new LsmStateBackend(
      env, std::move(dir), std::move(operator_name), instance_id));
  RHINO_ASSIGN_OR_RETURN(backend->db_,
                         lsm::DB::Open(env, backend->dir_, options));
  return backend;
}

std::string LsmStateBackend::EncodeKey(uint32_t vnode, std::string_view key) {
  // Big-endian vnode prefix keeps each vnode's keys contiguous and sorted.
  std::string out;
  out.reserve(4 + key.size());
  out.push_back(static_cast<char>(vnode >> 24));
  out.push_back(static_cast<char>(vnode >> 16));
  out.push_back(static_cast<char>(vnode >> 8));
  out.push_back(static_cast<char>(vnode));
  out.append(key);
  return out;
}

Status LsmStateBackend::Put(uint32_t vnode, std::string_view key,
                            std::string_view value, uint64_t nominal_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  RHINO_RETURN_NOT_OK(db_->Put(EncodeKey(vnode, key), value));
  vnode_bytes_[vnode] += nominal_bytes;
  return Status::OK();
}

Status LsmStateBackend::Get(uint32_t vnode, std::string_view key,
                            std::string* value) {
  return db_->Get(EncodeKey(vnode, key), value);
}

Status LsmStateBackend::Delete(uint32_t vnode, std::string_view key,
                               uint64_t nominal_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  RHINO_RETURN_NOT_OK(db_->Delete(EncodeKey(vnode, key)));
  DiscountBytes(vnode, nominal_bytes);
  return Status::OK();
}

void LsmStateBackend::DiscountBytes(uint32_t vnode, uint64_t nominal_bytes) {
  auto it = vnode_bytes_.find(vnode);
  if (it != vnode_bytes_.end()) {
    it->second = nominal_bytes > it->second ? 0 : it->second - nominal_bytes;
  }
}

Status LsmStateBackend::ApplyBatch(const std::vector<StateWrite>& writes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  lsm::WriteBatch batch;
  for (const auto& w : writes) {
    if (w.is_delete) {
      batch.Delete(EncodeKey(w.vnode, w.key));
    } else {
      batch.Put(EncodeKey(w.vnode, w.key), w.value);
    }
  }
  RHINO_RETURN_NOT_OK(db_->Write(batch));
  // Accounting only after the whole run committed.
  for (const auto& w : writes) {
    if (w.is_delete) {
      DiscountBytes(w.vnode, w.nominal_bytes);
    } else {
      vnode_bytes_[w.vnode] += w.nominal_bytes;
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>>
LsmStateBackend::ScanVnode(uint32_t vnode) {
  std::vector<std::pair<std::string, std::string>> out;
  RHINO_RETURN_NOT_OK(
      VisitVnode(vnode, [&](std::string_view key, std::string_view value) {
        out.emplace_back(key, value);
        return Status::OK();
      }));
  return out;
}

Status LsmStateBackend::VisitVnode(uint32_t vnode, const EntryVisitor& fn) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // The DB iterator streams block by block; only the entries the visitor
  // chooses to keep are ever materialized.
  RHINO_ASSIGN_OR_RETURN(
      auto it, db_->NewIterator(EncodeKey(vnode, ""), EncodeKey(vnode + 1, "")));
  for (; it.Valid(); it.Next()) {
    RHINO_RETURN_NOT_OK(
        fn(std::string_view(it.key()).substr(4), it.value()));
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>>
LsmStateBackend::ScanPrefix(uint32_t vnode, std::string_view prefix) {
  // Upper bound: the prefix with its last byte incremented (carrying over
  // 0xff bytes). An all-0xff prefix falls back to the vnode end.
  std::string begin = EncodeKey(vnode, prefix);
  std::string end = begin;
  while (!end.empty() && static_cast<uint8_t>(end.back()) == 0xff) end.pop_back();
  if (end.empty()) {
    end = EncodeKey(vnode + 1, "");
  } else {
    end.back() = static_cast<char>(static_cast<uint8_t>(end.back()) + 1);
  }
  RHINO_ASSIGN_OR_RETURN(auto it, db_->NewIterator(begin, end));
  std::vector<std::pair<std::string, std::string>> out;
  for (; it.Valid(); it.Next()) {
    out.emplace_back(it.key().substr(4), it.value());
  }
  return out;
}

uint64_t LsmStateBackend::SizeBytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, bytes] : vnode_bytes_) total += bytes;
  return total;
}

uint64_t LsmStateBackend::VnodeBytes(uint32_t vnode) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = vnode_bytes_.find(vnode);
  return it == vnode_bytes_.end() ? 0 : it->second;
}

Result<CheckpointDescriptor> LsmStateBackend::Checkpoint(
    uint64_t checkpoint_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string ckpt_dir = dir_ + "-chk-" + std::to_string(checkpoint_id);
  RHINO_ASSIGN_OR_RETURN(auto info, db_->CreateCheckpoint(ckpt_dir));

  CheckpointDescriptor desc;
  desc.checkpoint_id = checkpoint_id;
  desc.operator_name = operator_name_;
  desc.instance_id = instance_id_;
  for (const auto& f : info.files) {
    desc.files.push_back(StateFile{f.name, f.size});
  }
  desc.delta_files = DeltaFiles(last_checkpoint_files_, desc.files);
  desc.vnode_bytes = vnode_bytes_;
  last_checkpoint_files_ = desc.files;
  return desc;
}

Result<std::string> LsmStateBackend::ExtractVnodes(
    const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Entries stream straight from the DB iterator into the blob; the only
  // intermediate state per vnode is the fixed-width entry count, written
  // as a placeholder and patched once the vnode is done.
  std::string blob;
  BinaryWriter w(&blob);
  w.PutU32(static_cast<uint32_t>(vnodes.size()));
  for (uint32_t v : vnodes) {
    w.PutU32(v);
    w.PutU64(VnodeBytes(v));
    size_t count_offset = blob.size();
    w.PutU64(0);
    uint64_t count = 0;
    RHINO_RETURN_NOT_OK(
        VisitVnode(v, [&](std::string_view key, std::string_view value) {
          w.PutString(key);
          w.PutString(value);
          ++count;
          return Status::OK();
        }));
    std::memcpy(blob.data() + count_offset, &count, sizeof(count));
  }
  return blob;
}

Result<std::map<uint32_t, std::string>> LsmStateBackend::ExtractVnodeBlobs(
    const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // One streaming pass over the whole store; the big-endian vnode prefix
  // routes each entry to its blob. Every blob is wire-identical to
  // ExtractVnodes({v}), whose per-vnode header is fixed-width — so the
  // entry-count placeholder always sits at the same offset.
  constexpr size_t kCountOffset = 4 + 4 + 8;  // nvnodes | vnode | nominal
  std::map<uint32_t, std::string> blobs;
  std::map<uint32_t, uint64_t> counts;
  for (uint32_t v : vnodes) {
    std::string& blob = blobs[v];
    BinaryWriter w(&blob);
    w.PutU32(1);
    w.PutU32(v);
    w.PutU64(VnodeBytes(v));
    w.PutU64(0);  // patched below
    counts[v] = 0;
  }
  RHINO_ASSIGN_OR_RETURN(auto it, db_->NewIterator());
  for (; it.Valid(); it.Next()) {
    std::string_view key = it.key();
    if (key.size() < 4) continue;
    uint32_t v = (static_cast<uint32_t>(static_cast<uint8_t>(key[0])) << 24) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(key[1])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(key[2])) << 8) |
                 static_cast<uint32_t>(static_cast<uint8_t>(key[3]));
    auto bit = blobs.find(v);
    if (bit == blobs.end()) continue;  // not a requested vnode
    BinaryWriter w(&bit->second);
    w.PutString(key.substr(4));
    w.PutString(it.value());
    ++counts[v];
  }
  for (auto& [v, blob] : blobs) {
    uint64_t count = counts[v];
    std::memcpy(blob.data() + kCountOffset, &count, sizeof(count));
  }
  return blobs;
}

Status LsmStateBackend::IngestVnodes(std::string_view blob, bool) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Entries are replayed through group-committed batches: one WAL append
  // per ~kIngestCommitBytes of entries rather than one per entry, which
  // is where vnode-restore ingest throughput comes from.
  constexpr uint64_t kIngestCommitBytes = 1 << 20;
  BinaryReader r(blob);
  uint32_t num_vnodes = 0;
  RHINO_RETURN_NOT_OK(r.GetU32(&num_vnodes));
  lsm::WriteBatch batch;
  for (uint32_t i = 0; i < num_vnodes; ++i) {
    uint32_t vnode = 0;
    uint64_t nominal = 0, count = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&vnode));
    RHINO_RETURN_NOT_OK(r.GetU64(&nominal));
    RHINO_RETURN_NOT_OK(r.GetU64(&count));
    for (uint64_t e = 0; e < count; ++e) {
      std::string_view key, value;
      RHINO_RETURN_NOT_OK(r.GetString(&key));
      RHINO_RETURN_NOT_OK(r.GetString(&value));
      batch.Put(EncodeKey(vnode, key), value);
      if (batch.ApproximateBytes() >= kIngestCommitBytes) {
        RHINO_RETURN_NOT_OK(db_->Write(batch));
        batch.Clear();
      }
    }
    vnode_bytes_[vnode] += nominal;
  }
  return db_->Write(batch);
}

Status LsmStateBackend::DropVnodes(const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  constexpr uint64_t kDropCommitBytes = 1 << 20;
  for (uint32_t v : vnodes) {
    // Deleting while iterating is safe: the iterator is a snapshot, so
    // the tombstones it writes (and any flush/compaction they trigger) do
    // not perturb the visit. Tombstones are group-committed in runs.
    RHINO_ASSIGN_OR_RETURN(
        auto it, db_->NewIterator(EncodeKey(v, ""), EncodeKey(v + 1, "")));
    lsm::WriteBatch batch;
    for (; it.Valid(); it.Next()) {
      batch.Delete(it.key());
      if (batch.ApproximateBytes() >= kDropCommitBytes) {
        RHINO_RETURN_NOT_OK(db_->Write(batch));
        batch.Clear();
      }
    }
    RHINO_RETURN_NOT_OK(db_->Write(batch));
    vnode_bytes_.erase(v);
  }
  return Status::OK();
}

}  // namespace rhino::state
