#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "state/checkpoint.h"

/// \file state_backend.h
/// Mutable keyed operator state (paper §3.4, R3).
///
/// State is partitioned by virtual node so that a handover can extract and
/// ingest exactly the virtual nodes being migrated. Two implementations:
///
///  * `LsmStateBackend`  — real bytes in the embedded LSM store; used by
///    correctness tests, the examples, and small-scale benchmarks.
///  * `ModeledStateBackend` — per-vnode byte accounting without values;
///    used by the TB-scale simulation benches where materializing state
///    is impossible. Produces the same `CheckpointDescriptor`s, so every
///    protocol above this interface is identical code in both modes.

namespace rhino::state {

/// One buffered mutation for StateBackend::ApplyBatch.
struct StateWrite {
  uint32_t vnode = 0;
  bool is_delete = false;
  std::string key;
  std::string value;          // ignored for deletes
  uint64_t nominal_bytes = 0;
};

/// Abstract keyed state store scoped to one operator instance.
class StateBackend {
 public:
  virtual ~StateBackend() = default;

  /// Inserts/overwrites a key in `vnode`. `nominal_bytes` is the modeled
  /// payload size (real backends may additionally store the value bytes).
  virtual Status Put(uint32_t vnode, std::string_view key,
                     std::string_view value, uint64_t nominal_bytes) = 0;

  /// Point lookup; NotFound when absent.
  virtual Status Get(uint32_t vnode, std::string_view key,
                     std::string* value) = 0;

  virtual Status Delete(uint32_t vnode, std::string_view key,
                        uint64_t nominal_bytes) = 0;

  /// Applies a buffered run of mutations. The default loops Put/Delete;
  /// LSM-backed stores override it to group-commit the run as one WAL
  /// append instead of one per entry. No atomicity beyond what the
  /// backend's override provides is implied — this is a throughput hint.
  virtual Status ApplyBatch(const std::vector<StateWrite>& writes) {
    for (const auto& w : writes) {
      if (w.is_delete) {
        RHINO_RETURN_NOT_OK(Delete(w.vnode, w.key, w.nominal_bytes));
      } else {
        RHINO_RETURN_NOT_OK(Put(w.vnode, w.key, w.value, w.nominal_bytes));
      }
    }
    return Status::OK();
  }

  /// All live key-value pairs of a vnode, in key order. Only meaningful
  /// for real backends (modeled backends return empty).
  virtual Result<std::vector<std::pair<std::string, std::string>>> ScanVnode(
      uint32_t vnode) = 0;

  /// Live pairs of `vnode` whose key starts with `prefix`, in key order.
  virtual Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      uint32_t vnode, std::string_view prefix) = 0;

  /// Per-entry callback for VisitVnode; a non-OK return aborts the visit
  /// and propagates. The views are only valid during the call.
  using EntryVisitor =
      std::function<Status(std::string_view key, std::string_view value)>;

  /// Streams the live entries of `vnode` into `fn` in key order without
  /// materializing the range. The default adapts ScanVnode; real backends
  /// override it to keep resident memory at O(one block).
  virtual Status VisitVnode(uint32_t vnode, const EntryVisitor& fn) {
    RHINO_ASSIGN_OR_RETURN(auto entries, ScanVnode(vnode));
    for (const auto& [key, value] : entries) {
      RHINO_RETURN_NOT_OK(fn(key, value));
    }
    return Status::OK();
  }

  /// Current state footprint in (nominal) bytes.
  virtual uint64_t SizeBytes() const = 0;
  virtual uint64_t VnodeBytes(uint32_t vnode) const = 0;

  /// Takes an incremental checkpoint: flush, persist immutable files, and
  /// describe them. `delta_files` is relative to the previous checkpoint
  /// taken through this backend.
  virtual Result<CheckpointDescriptor> Checkpoint(uint64_t checkpoint_id) = 0;

  /// Serializes the live contents of `vnodes` for a handover transfer.
  /// Real backends emit the actual entries; modeled backends emit a
  /// size-only placeholder. Returns the blob (wire format is backend-
  /// internal; pass to IngestVnodes of a backend of the same kind).
  virtual Result<std::string> ExtractVnodes(
      const std::vector<uint32_t>& vnodes) = 0;

  /// Serializes each of `vnodes` into its own blob (each the same wire
  /// format as ExtractVnodes({v})) keyed by vnode id. The default loops
  /// ExtractVnodes one vnode at a time — one full extraction pass per
  /// vnode; backends with sorted storage override it to produce every
  /// blob in a single scan.
  virtual Result<std::map<uint32_t, std::string>> ExtractVnodeBlobs(
      const std::vector<uint32_t>& vnodes) {
    std::map<uint32_t, std::string> blobs;
    for (uint32_t v : vnodes) {
      RHINO_ASSIGN_OR_RETURN(auto blob, ExtractVnodes({v}));
      blobs.emplace(v, std::move(blob));
    }
    return blobs;
  }

  /// Ingests a blob produced by ExtractVnodes on the origin instance.
  /// `already_durable` marks bytes that came out of a replicated/persisted
  /// checkpoint: they must not surface in this backend's next incremental
  /// delta (they are on disk already); a live migration tail is not
  /// durable and becomes part of the next delta.
  virtual Status IngestVnodes(std::string_view blob,
                              bool already_durable = false) = 0;

  /// Drops all state of `vnodes` (origin side after a successful handover).
  virtual Status DropVnodes(const std::vector<uint32_t>& vnodes) = 0;
};

}  // namespace rhino::state
