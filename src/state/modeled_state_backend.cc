#include "state/modeled_state_backend.h"

#include "common/serde.h"

namespace rhino::state {

void ModeledStateBackend::AddBytes(uint32_t vnode, uint64_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  vnode_bytes_[vnode] += bytes;
  uncheckpointed_bytes_ += bytes;
}

void ModeledStateBackend::RemoveBytes(uint32_t vnode, uint64_t bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = vnode_bytes_.find(vnode);
  if (it == vnode_bytes_.end()) return;
  it->second = bytes > it->second ? 0 : it->second - bytes;
}

void ModeledStateBackend::AdoptCheckpointVnodes(
    const CheckpointDescriptor& desc, const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t adopted = 0;
  for (uint32_t v : vnodes) {
    auto it = desc.vnode_bytes.find(v);
    if (it == desc.vnode_bytes.end()) continue;
    vnode_bytes_[v] += it->second;
    adopted += it->second;
  }
  if (adopted > 0) {
    StateFile file{operator_name_ + "-" + std::to_string(instance_id_) +
                       "-adopted-" + std::to_string(next_file_id_++),
                   adopted};
    files_.push_back(file);
    // Already durable on this worker (it came out of a replicated
    // checkpoint), so it must not surface as a delta to replicate again.
    last_checkpoint_files_.push_back(file);
  }
}

Status ModeledStateBackend::Put(uint32_t vnode, std::string_view,
                                std::string_view, uint64_t nominal_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  AddBytes(vnode, nominal_bytes);
  return Status::OK();
}

Status ModeledStateBackend::Get(uint32_t, std::string_view, std::string*) {
  return Status::NotSupported("modeled backend stores no values");
}

Status ModeledStateBackend::Delete(uint32_t vnode, std::string_view,
                                   uint64_t nominal_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  RemoveBytes(vnode, nominal_bytes);
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>>
ModeledStateBackend::ScanVnode(uint32_t) {
  return std::vector<std::pair<std::string, std::string>>{};
}

Result<std::vector<std::pair<std::string, std::string>>>
ModeledStateBackend::ScanPrefix(uint32_t, std::string_view) {
  return std::vector<std::pair<std::string, std::string>>{};
}

uint64_t ModeledStateBackend::SizeBytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, bytes] : vnode_bytes_) total += bytes;
  return total;
}

uint64_t ModeledStateBackend::VnodeBytes(uint32_t vnode) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = vnode_bytes_.find(vnode);
  return it == vnode_bytes_.end() ? 0 : it->second;
}

Result<CheckpointDescriptor> ModeledStateBackend::Checkpoint(
    uint64_t checkpoint_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (uncheckpointed_bytes_ > 0) {
    StateFile delta;
    delta.name = operator_name_ + "-" + std::to_string(instance_id_) +
                 "-delta-" + std::to_string(next_file_id_++);
    delta.bytes = uncheckpointed_bytes_;
    files_.push_back(delta);
    uncheckpointed_bytes_ = 0;
  }
  CheckpointDescriptor desc;
  desc.checkpoint_id = checkpoint_id;
  desc.operator_name = operator_name_;
  desc.instance_id = instance_id_;
  desc.files = files_;
  desc.delta_files = DeltaFiles(last_checkpoint_files_, files_);
  desc.vnode_bytes = vnode_bytes_;
  last_checkpoint_files_ = files_;
  return desc;
}

Result<std::string> ModeledStateBackend::ExtractVnodes(
    const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string blob;
  BinaryWriter w(&blob);
  w.PutU32(static_cast<uint32_t>(vnodes.size()));
  for (uint32_t v : vnodes) {
    w.PutU32(v);
    w.PutU64(VnodeBytes(v));
  }
  return blob;
}

Result<std::map<uint32_t, std::string>> ModeledStateBackend::ExtractVnodeBlobs(
    const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Size-only blobs are a counter lookup each; emit them directly rather
  // than through the one-ExtractVnodes-per-vnode default.
  std::map<uint32_t, std::string> blobs;
  for (uint32_t v : vnodes) {
    std::string blob;
    BinaryWriter w(&blob);
    w.PutU32(1);
    w.PutU32(v);
    w.PutU64(VnodeBytes(v));
    blobs.emplace(v, std::move(blob));
  }
  return blobs;
}

Status ModeledStateBackend::IngestVnodes(std::string_view blob,
                                         bool already_durable) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  BinaryReader r(blob);
  uint32_t num_vnodes = 0;
  uint64_t durable_ingested = 0;
  RHINO_RETURN_NOT_OK(r.GetU32(&num_vnodes));
  for (uint32_t i = 0; i < num_vnodes; ++i) {
    uint32_t vnode = 0;
    uint64_t bytes = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&vnode));
    RHINO_RETURN_NOT_OK(r.GetU64(&bytes));
    vnode_bytes_[vnode] += bytes;
    if (already_durable) {
      durable_ingested += bytes;
    } else {
      // A live-migration tail has not been checkpointed by *this* backend
      // yet; it becomes part of the next delta.
      uncheckpointed_bytes_ += bytes;
    }
  }
  if (durable_ingested > 0) {
    StateFile file{operator_name_ + "-" + std::to_string(instance_id_) +
                       "-restored-" + std::to_string(next_file_id_++),
                   durable_ingested};
    files_.push_back(file);
    last_checkpoint_files_.push_back(file);
  }
  return Status::OK();
}

Status ModeledStateBackend::DropVnodes(const std::vector<uint32_t>& vnodes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (uint32_t v : vnodes) vnode_bytes_.erase(v);
  return Status::OK();
}

}  // namespace rhino::state
