#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "state/state_backend.h"

/// \file modeled_state_backend.h
/// Byte-accounting state backend for TB-scale simulation.
///
/// Stores no values — only nominal byte counts per virtual node — so a
/// simulated run can carry a terabyte of operator state in a handful of
/// counters. Checkpoints follow the RocksDB incremental model: each
/// checkpoint contributes one immutable "delta file" holding the bytes
/// added since the previous checkpoint; the full file set is the union of
/// all deltas. The descriptors are indistinguishable (to the protocols)
/// from those of the real LSM backend.

namespace rhino::state {

/// Size-only implementation of StateBackend.
///
/// Thread safety: every method locks one internal recursive mutex (the
/// counters are cheap; contention is not a concern for a size-only
/// backend). Recursive because ExtractVnodes/ExtractVnodeBlobs re-enter
/// VnodeBytes.
class ModeledStateBackend : public StateBackend {
 public:
  ModeledStateBackend(std::string operator_name, uint32_t instance_id)
      : operator_name_(std::move(operator_name)), instance_id_(instance_id) {}

  Status Put(uint32_t vnode, std::string_view key, std::string_view value,
             uint64_t nominal_bytes) override;
  Status Get(uint32_t vnode, std::string_view key, std::string* value) override;
  Status Delete(uint32_t vnode, std::string_view key,
                uint64_t nominal_bytes) override;
  Result<std::vector<std::pair<std::string, std::string>>> ScanVnode(
      uint32_t vnode) override;
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      uint32_t vnode, std::string_view prefix) override;
  uint64_t SizeBytes() const override;
  uint64_t VnodeBytes(uint32_t vnode) const override;
  Result<CheckpointDescriptor> Checkpoint(uint64_t checkpoint_id) override;
  Result<std::string> ExtractVnodes(const std::vector<uint32_t>& vnodes) override;
  Result<std::map<uint32_t, std::string>> ExtractVnodeBlobs(
      const std::vector<uint32_t>& vnodes) override;
  Status IngestVnodes(std::string_view blob, bool already_durable) override;
  Status DropVnodes(const std::vector<uint32_t>& vnodes) override;

  /// Adds `bytes` of modeled state to `vnode` without a key (bulk path used
  /// by modeled operators processing batch descriptors).
  void AddBytes(uint32_t vnode, uint64_t bytes);
  /// Removes `bytes` of modeled state (session-window eviction etc.).
  void RemoveBytes(uint32_t vnode, uint64_t bytes);

  /// Adopts already-checkpointed state for `vnodes` out of a replicated
  /// checkpoint (the local-fetch path of a handover): the bytes join this
  /// backend's file set directly instead of the next delta, because the
  /// target's worker already holds the files on disk.
  void AdoptCheckpointVnodes(const CheckpointDescriptor& desc,
                             const std::vector<uint32_t>& vnodes);

 private:
  mutable std::recursive_mutex mu_;
  std::string operator_name_;
  uint32_t instance_id_;
  std::map<uint32_t, uint64_t> vnode_bytes_;
  /// Net bytes accumulated since the last checkpoint (the next delta).
  uint64_t uncheckpointed_bytes_ = 0;
  std::vector<StateFile> files_;
  std::vector<StateFile> last_checkpoint_files_;
  uint64_t next_file_id_ = 1;
};

}  // namespace rhino::state
