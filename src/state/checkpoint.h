#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

/// \file checkpoint.h
/// Checkpoint descriptors: the currency of Rhino's protocols.
///
/// Replication, DFS upload, recovery, and handover never interpret state
/// *values* — they move immutable checkpoint *files* described by name and
/// size. This is what lets one protocol implementation serve both the
/// real (LSM-backed) and the modeled (byte-accounted) state backends.

namespace rhino::state {

/// One immutable file captured by a checkpoint.
struct StateFile {
  std::string name;
  uint64_t bytes = 0;
  bool operator==(const StateFile&) const = default;
};

/// Point-in-time description of one operator instance's state.
struct CheckpointDescriptor {
  uint64_t checkpoint_id = 0;
  std::string operator_name;
  uint32_t instance_id = 0;

  /// Every live file (the full state).
  std::vector<StateFile> files;
  /// Files new since the previous checkpoint of this instance — the only
  /// bytes Rhino's incremental replication ships.
  std::vector<StateFile> delta_files;

  /// State size per virtual node, the granularity of a handover.
  std::map<uint32_t, uint64_t> vnode_bytes;

  /// Offset bookkeeping for sources (exactly-once replay).
  std::map<int, uint64_t> source_offsets;

  /// Per-(vnode, source) replay watermarks captured with the snapshot: the
  /// next source offset whose records are NOT yet reflected in this state.
  /// A target restoring the snapshot resumes deduplication from here.
  std::map<uint32_t, std::map<int, uint64_t>> vnode_watermarks;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& f : files) total += f.bytes;
    return total;
  }

  uint64_t DeltaBytes() const {
    uint64_t total = 0;
    for (const auto& f : delta_files) total += f.bytes;
    return total;
  }
};

/// Computes `current - previous` at file granularity: which files of
/// `current` did not exist in `previous`.
inline std::vector<StateFile> DeltaFiles(const std::vector<StateFile>& previous,
                                         const std::vector<StateFile>& current) {
  std::set<std::string> old_names;
  for (const auto& f : previous) old_names.insert(f.name);
  std::vector<StateFile> delta;
  for (const auto& f : current) {
    if (!old_names.count(f.name)) delta.push_back(f);
  }
  return delta;
}

}  // namespace rhino::state
