#include "nexmark/nexmark.h"

#include "common/logging.h"
#include "dataflow/stateful.h"

namespace rhino::nexmark {

using dataflow::ModeledStatefulOperator;
using dataflow::ProcessingProfile;
using dataflow::QueryDef;
using dataflow::StateModelConfig;

// ------------------------------------------------------ NexmarkGenerator --

void NexmarkGenerator::Start() {
  running_ = true;
  Tick();
}

void NexmarkGenerator::Tick() {
  if (!running_) return;
  executor_->Schedule(options_.tick, [this] {
    if (!running_) return;
    double factor =
        options_.rate_factor ? options_.rate_factor(executor_->Now()) : 1.0;
    auto bytes = static_cast<uint64_t>(options_.bytes_per_sec * factor *
                                       ToSeconds(options_.tick));
    uint64_t count = std::max<uint64_t>(1, bytes / options_.record_bytes);
    for (int p = 0; p < topic_->num_partitions(); ++p) {
      dataflow::Batch batch;
      batch.create_time = executor_->Now();
      batch.count = count;
      batch.bytes = bytes;
      if (options_.real_records) {
        batch.records.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          dataflow::Record r;
          r.key = rng_.Uniform(options_.key_space);
          r.event_time = executor_->Now();
          r.size = options_.record_bytes;
          batch.records.push_back(std::move(r));
        }
      }
      bytes_generated_ += bytes;
      records_generated_ += count;
      topic_->partition(p).Append(std::move(batch));
    }
    Tick();
  });
}

// --------------------------------------------------------- query builders --

namespace {

dataflow::StatefulFactory ModeledFactory(const std::string& op_name,
                                         const QueryConfig& config,
                                         StateModelConfig model) {
  return [op_name, config, model](dataflow::Engine* engine, int subtask,
                                  int node) {
    return std::make_unique<ModeledStatefulOperator>(
        engine, op_name, subtask, node, config.stateful_profile, model);
  };
}

}  // namespace

QueryDef BuildNBQ5(const QueryConfig& config) {
  // 60 s sliding window aggregation on bids: per-key running aggregates
  // saturate quickly (paper: ~26 MB total), the classic RMW pattern.
  StateModelConfig model;
  model.pattern = StateModelConfig::Pattern::kReadModifyWrite;
  model.state_bytes_per_input_byte = 0.5;
  // ~26 MB over parallelism * 4 vnodes.
  model.rmw_cap_bytes_per_vnode =
      26 * kMiB / (static_cast<uint64_t>(config.stateful_parallelism) * 4);
  model.output_selectivity = 0.02;

  QueryDef def;
  def.name = "NBQ5";
  def.AddSource("bids-src", "bids", config.source_parallelism,
                config.source_profile)
      .AddStateful("nbq5-agg", config.stateful_parallelism, {"bids-src"},
                   ModeledFactory("nbq5-agg", config, model),
                   config.stateful_profile)
      .AddSink("nbq5-sink", config.sink_parallelism, {"nbq5-agg"});
  return def;
}

QueryDef BuildNBQ8(const QueryConfig& config) {
  // 12 h tumbling join: every auction/person record is retained for the
  // whole window -> pure append, state grows with the input volume.
  StateModelConfig model;
  model.pattern = StateModelConfig::Pattern::kAppend;
  model.state_bytes_per_input_byte = 1.0;
  model.output_selectivity = 0.02;

  QueryDef def;
  def.name = "NBQ8";
  def.AddSource("auctions-src", "auctions", config.source_parallelism,
                config.source_profile)
      .AddSource("persons-src", "persons", config.source_parallelism,
                 config.source_profile)
      .AddStateful("nbq8-join", config.stateful_parallelism,
                   {"auctions-src", "persons-src"},
                   ModeledFactory("nbq8-join", config, model),
                   config.stateful_profile)
      .AddSink("nbq8-sink", config.sink_parallelism, {"nbq8-join"});
  return def;
}

QueryDef BuildNBQX(const QueryConfig& config) {
  QueryDef def;
  def.name = "NBQX";
  def.AddSource("auctions-src", "auctions", config.source_parallelism,
                config.source_profile)
      .AddSource("bids-src", "bids", config.source_parallelism,
                 config.source_profile);

  // Four session-window joins with increasing gaps: state is appended and
  // evicted when sessions close (append + deletion patterns).
  const SimTime gaps[] = {30 * kMinute, 60 * kMinute, 90 * kMinute,
                          120 * kMinute};
  for (int i = 0; i < 4; ++i) {
    StateModelConfig model;
    model.pattern = StateModelConfig::Pattern::kSession;
    model.state_bytes_per_input_byte = 1.0;
    model.retention_us = gaps[i];
    model.output_selectivity = 0.01;
    std::string name = "nbqx-session" + std::to_string(i + 1);
    def.AddStateful(name, config.stateful_parallelism,
                    {"auctions-src", "bids-src"},
                    ModeledFactory(name, config, model),
                    config.stateful_profile);
    def.AddSink(name + "-sink", config.sink_parallelism, {name});
  }

  // One 4 h tumbling join.
  StateModelConfig tumbling;
  tumbling.pattern = StateModelConfig::Pattern::kSession;
  tumbling.state_bytes_per_input_byte = 1.0;
  tumbling.retention_us = 4 * kHour;
  tumbling.output_selectivity = 0.01;
  def.AddStateful("nbqx-tumbling", config.stateful_parallelism,
                  {"auctions-src", "bids-src"},
                  ModeledFactory("nbqx-tumbling", config, tumbling),
                  config.stateful_profile);
  def.AddSink("nbqx-tumbling-sink", config.sink_parallelism,
              {"nbqx-tumbling"});
  return def;
}

std::vector<std::string> StatefulOpsOf(const std::string& query) {
  if (query == "NBQ5") return {"nbq5-agg"};
  if (query == "NBQ8") return {"nbq8-join"};
  if (query == "NBQX") {
    return {"nbqx-session1", "nbqx-session2", "nbqx-session3", "nbqx-session4",
            "nbqx-tumbling"};
  }
  RHINO_LOG(Fatal) << "unknown query " << query;
  return {};
}

}  // namespace rhino::nexmark
