#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "broker/broker.h"
#include "common/random.h"
#include "dataflow/graph.h"
#include "runtime/executor.h"

/// \file nexmark.h
/// NEXMark workload (paper §5.1.2): the event model, a rate-controlled
/// stream generator, and builders for the three benchmark queries:
///
///  * **NBQ5**  — sliding-window aggregation on bids (60 s window, 10 s
///    slide): small state, read-modify-write updates;
///  * **NBQ8**  — 12 h tumbling-window join of auctions and new persons:
///    large state, append-only updates;
///  * **NBQX**  — four session-window joins (30/60/90/120 min gaps) plus a
///    4 h tumbling join on auctions and bids: several mid-size states that
///    are large in aggregate, with append and deletion patterns.

namespace rhino::nexmark {

/// NEXMark record sizes (bytes), paper §5.1.2.
constexpr uint32_t kPersonBytes = 206;
constexpr uint32_t kAuctionBytes = 269;
constexpr uint32_t kBidBytes = 32;

/// Rate-controlled generator for one topic: every `tick`, each partition
/// receives one batch of `bytes_per_sec * tick * rate_factor(now)` bytes.
struct GeneratorOptions {
  SimTime tick = 500 * kMillisecond;
  /// Steady per-partition rate.
  double bytes_per_sec = 1e6;
  uint32_t record_bytes = kBidBytes;
  /// Time-varying multiplier (Figure 6 uses a triangle wave). Default 1.
  std::function<double(SimTime)> rate_factor;
  /// When set, batches carry `records_per_batch` materialized records with
  /// uniformly random keys (real mode; tests/examples only).
  bool real_records = false;
  uint64_t key_space = 1000000;
};

/// Drives a broker topic with modeled (or real) NEXMark traffic.
class NexmarkGenerator {
 public:
  NexmarkGenerator(runtime::Executor* executor, broker::Topic* topic,
                   GeneratorOptions options, uint64_t seed = 42)
      : executor_(executor),
        topic_(topic),
        options_(std::move(options)),
        rng_(seed) {}

  void Start();
  void Stop() { running_ = false; }

  uint64_t bytes_generated() const { return bytes_generated_; }
  uint64_t records_generated() const { return records_generated_; }

 private:
  void Tick();

  runtime::Executor* executor_;
  broker::Topic* topic_;
  GeneratorOptions options_;
  Random rng_;
  bool running_ = false;
  uint64_t bytes_generated_ = 0;
  uint64_t records_generated_ = 0;
};

/// Knobs shared by the query builders.
struct QueryConfig {
  int source_parallelism = 32;   // one per Kafka partition (§5.1.5)
  int stateful_parallelism = 64; // paper's join/aggregation DOP
  int sink_parallelism = 8;
  dataflow::ProcessingProfile source_profile;
  dataflow::ProcessingProfile stateful_profile;
};

/// NBQ5: bids -> sliding-window aggregation (modeled RMW state).
dataflow::QueryDef BuildNBQ5(const QueryConfig& config);

/// NBQ8: auctions + persons -> 12 h tumbling-window join (modeled
/// append-only state).
dataflow::QueryDef BuildNBQ8(const QueryConfig& config);

/// NBQX: auctions + bids -> four session joins + one 4 h tumbling join.
dataflow::QueryDef BuildNBQX(const QueryConfig& config);

/// The stateful operator names of each query (the reconfiguration
/// targets).
std::vector<std::string> StatefulOpsOf(const std::string& query);

}  // namespace rhino::nexmark
