#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/pipeline.h"
#include "net/rpc.h"
#include "net/wire.h"

/// \file transport.h
/// The transport seam between cluster logic and the wire.
///
/// `ClusterDriver` and `NodeServer` address peers by endpoint string and
/// never touch sockets directly; the `Transport` implementation decides
/// what an endpoint means:
///
///  * `TcpTransport`      — "host:port" over real sockets via `RpcClient`
///    (multi-process clusters);
///  * `LoopbackTransport` — a name registered in an in-process table
///    (deterministic single-process tests of the same protocol logic,
///    including simulated node death by unregistering).
///
/// Both carry the exact same encoded bodies, so a protocol exercised over
/// loopback is byte-for-byte the protocol on the wire.

namespace rhino::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Completion of one asynchronous call: transport or application
  /// status plus the reply body.
  using AsyncCallback = std::function<void(Status, std::string)>;

  /// Issues one RPC to `endpoint`. Application errors come back from the
  /// remote handler; unreachable/dead endpoints surface as transient
  /// transport errors (`IOError`/`TimedOut`).
  virtual Status Call(const std::string& endpoint, MessageType type,
                      std::string_view body, std::string* reply_body) = 0;

  /// Pipelined variant: submits the request and completes through `cb`
  /// (possibly on another thread, possibly out of submission order
  /// across endpoints). Per endpoint, requests are DELIVERED in
  /// submission order — callers rely on that for replay-watermark
  /// correctness. May block for backpressure (bounded in-flight window);
  /// a non-OK return means the request was never submitted and `cb` will
  /// not run.
  ///
  /// The default implementation completes synchronously on the calling
  /// thread via `Call` — loopback transports inherit it, keeping
  /// in-process tests deterministic while exercising the same call
  /// sites.
  virtual Status CallAsync(const std::string& endpoint, MessageType type,
                           std::string body, AsyncCallback cb) {
    std::string reply;
    Status st = Call(endpoint, type, body, &reply);
    cb(st, std::move(reply));
    return Status::OK();
  }

  /// Drops any cached connection to `endpoint` (after a peer restart).
  /// Pending pipelined requests to it fail with `Aborted`.
  virtual void Forget(const std::string& /*endpoint*/) {}
};

/// Real sockets. Caches one `RpcClient` (blocking calls) and one
/// `PipelinedChannel` (async calls) per endpoint; both reconnect with
/// backoff internally, so `Call`/`CallAsync` here are thin lookups.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(RpcClientOptions options = {})
      : options_(options) {}

  Status Call(const std::string& endpoint, MessageType type,
              std::string_view body, std::string* reply_body) override;
  Status CallAsync(const std::string& endpoint, MessageType type,
                   std::string body, AsyncCallback cb) override;
  void Forget(const std::string& endpoint) override;

 private:
  RpcClientOptions options_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<RpcClient>> clients_;
  std::map<std::string, std::unique_ptr<PipelinedChannel>> channels_;
};

/// In-process table of endpoint -> handler. `Call` invokes the handler on
/// the calling thread with the same encoded bodies that would cross a
/// socket.
class LoopbackTransport : public Transport {
 public:
  /// Registers `endpoint`; replaces any previous registration.
  void Register(const std::string& endpoint, RpcServer::Handler handler);

  /// Unregisters `endpoint`: subsequent calls fail with `IOError`, which
  /// is how tests simulate a fail-stopped node.
  void Kill(const std::string& endpoint);

  Status Call(const std::string& endpoint, MessageType type,
              std::string_view body, std::string* reply_body) override;

 private:
  std::mutex mu_;
  std::map<std::string, RpcServer::Handler> handlers_;
};

}  // namespace rhino::net
