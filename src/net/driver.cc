#include "net/driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <utility>

#include "common/logging.h"
#include "rhino/replication_runtime.h"

namespace rhino::net {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ClusterDriver::ClusterDriver(Transport* transport,
                             std::vector<std::string> endpoints,
                             obs::Observability* obs, DriverOptions options)
    : transport_(transport),
      endpoints_(std::move(endpoints)),
      alive_(endpoints_.size(), true),
      obs_(obs != nullptr ? obs : obs::Observability::Default()),
      options_(options) {
  RHINO_CHECK(!endpoints_.empty());
}

Status ClusterDriver::Call(uint32_t node, MessageType type,
                           std::string_view body, std::string* reply) {
  if (node >= endpoints_.size() || !alive_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is not alive");
  }
  return transport_->Call(endpoints_[node], type, body, reply);
}

Result<uint32_t> ClusterDriver::NextAlive(uint32_t node) const {
  for (uint32_t step = 1; step < endpoints_.size(); ++step) {
    uint32_t candidate =
        (node + step) % static_cast<uint32_t>(endpoints_.size());
    if (alive_[candidate]) return candidate;
  }
  return Status::FailedPrecondition("no surviving node on the ring");
}

Status ClusterDriver::ConnectAll() { return ReformRing(); }

Status ClusterDriver::ReformRing() {
  uint32_t live = 0;
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (alive_[node]) ++live;
  }
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    HelloRequest hello;
    hello.node_id = node;
    if (live > 1) {
      RHINO_ASSIGN_OR_RETURN(uint32_t successor, NextAlive(node));
      hello.successor = endpoints_[successor];
    }
    std::string body;
    hello.EncodeTo(&body);
    RHINO_RETURN_NOT_OK(Call(node, MessageType::kHello, body, nullptr));
  }
  return Status::OK();
}

Status ClusterDriver::AddOperator(const dataflow::OperatorSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("operator needs a name");
  }
  if (spec.num_vnodes == 0) {
    return Status::InvalidArgument("num_vnodes must be > 0");
  }
  if (routing_.count(spec.name)) {
    return Status::AlreadyExists("operator already routed: " + spec.name);
  }
  OpRouting routing;
  routing.spec = spec;
  routing.owner.resize(spec.num_vnodes);
  std::vector<std::vector<uint32_t>> owned(endpoints_.size());
  uint32_t next = 0;
  for (uint32_t vnode = 0; vnode < spec.num_vnodes; ++vnode) {
    while (!alive_[next]) next = (next + 1) % endpoints_.size();
    routing.owner[vnode] = next;
    owned[next].push_back(vnode);
    next = (next + 1) % endpoints_.size();
  }
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    AddOperatorRequest req;
    req.spec = spec;
    req.owned_vnodes = owned[node];
    std::string body;
    req.EncodeTo(&body);
    RHINO_RETURN_NOT_OK(Call(node, MessageType::kAddOperator, body, nullptr));
  }
  routing_.emplace(spec.name, std::move(routing));
  op_order_.push_back(spec.name);
  return Status::OK();
}

Status ClusterDriver::AddOperator(const std::string& op, uint32_t num_vnodes) {
  dataflow::OperatorSpec spec;
  spec.kind = dataflow::OperatorKind::kKeyedCounter;
  spec.name = op;
  spec.num_vnodes = num_vnodes;
  spec.input_arity = 1;
  return AddOperator(spec);
}

void ClusterDriver::AddPartition(const broker::PartitionSource* partition) {
  partitions_.push_back(partition);
}

Status ClusterDriver::ConnectPartition(const std::string& op, size_t partition,
                                       uint32_t side) {
  auto it = routing_.find(op);
  if (it == routing_.end()) return Status::NotFound("no operator: " + op);
  if (partition >= partitions_.size()) {
    return Status::InvalidArgument("no partition " + std::to_string(partition));
  }
  if (side >= it->second.spec.input_arity) {
    return Status::InvalidArgument("input side " + std::to_string(side) +
                                   " out of range for " + op);
  }
  OpInput input;
  input.from_partition = true;
  input.partition = partition;
  input.side = side;
  // Partitions keep their index as the source id (the watermark maps are
  // per operator shard, so sharing a partition across operators is fine).
  input.source_id = static_cast<int>(partition);
  it->second.inputs.push_back(std::move(input));
  return Status::OK();
}

Status ClusterDriver::ConnectOperators(const std::string& upstream,
                                       const std::string& downstream,
                                       uint32_t side) {
  auto uit = routing_.find(upstream);
  if (uit == routing_.end()) {
    return Status::NotFound("no operator: " + upstream);
  }
  auto dit = routing_.find(downstream);
  if (dit == routing_.end()) {
    return Status::NotFound("no operator: " + downstream);
  }
  if (side >= dit->second.spec.input_arity) {
    return Status::InvalidArgument("input side " + std::to_string(side) +
                                   " out of range for " + downstream);
  }
  auto pos = [&](const std::string& op) {
    return std::find(op_order_.begin(), op_order_.end(), op) -
           op_order_.begin();
  };
  if (pos(upstream) >= pos(downstream)) {
    return Status::InvalidArgument(
        "edges must point from an earlier operator to a later one: " +
        upstream + " -> " + downstream);
  }
  uit->second.track_outputs = true;
  OpInput input;
  input.from_partition = false;
  input.upstream = upstream;
  input.side = side;
  input.source_id = AllocateSourceId();
  dit->second.inputs.push_back(std::move(input));
  return Status::OK();
}

Status ClusterDriver::CollectOutputs(const std::string& op) {
  auto it = routing_.find(op);
  if (it == routing_.end()) return Status::NotFound("no operator: " + op);
  it->second.track_outputs = true;
  return Status::OK();
}

uint64_t ClusterDriver::CompletePrefix(const OpRouting& routing) {
  uint64_t end = 0;
  while (end < routing.entries.size() && routing.entries[end].complete) {
    ++end;
  }
  return end;
}

Status ClusterDriver::RecordOutputs(OpRouting& routing, size_t input_idx,
                                    uint64_t offset, SimTime create_time,
                                    const ProcessBatchReply& reply) {
  auto key = std::make_pair(input_idx, offset);
  auto [it, inserted] = routing.entry_index.try_emplace(key,
                                                        routing.entries.size());
  if (inserted) routing.entries.emplace_back();
  EdgeEntry& entry = routing.entries[it->second];
  entry.create_time = std::max(entry.create_time, create_time);
  // Replace exactly the slots of vnodes this reply applied: an applied
  // vnode with no output clears to empty; a deduplicated vnode (absent
  // from the set) keeps the outputs retained from its original apply.
  std::set<uint32_t> applied(reply.applied_vnodes.begin(),
                             reply.applied_vnodes.end());
  for (uint32_t vnode : applied) entry.slots[vnode].clear();
  if (!reply.outputs.empty()) {
    RHINO_ASSIGN_OR_RETURN(dataflow::Batch out, DecodeBatch(reply.outputs));
    for (auto& rec : out.records) {
      uint32_t vnode = VnodeForKey(rec.key, routing.spec.num_vnodes);
      if (applied.count(vnode)) {
        entry.slots[vnode].push_back(std::move(rec));
      }
    }
  }
  return Status::OK();
}

Result<PumpStats> ClusterDriver::Pump() {
  auto start = std::chrono::steady_clock::now();
  PumpStats stats;
  if (!options_.pipelined) {
    stats.max_inflight = 1;  // one request at a time, by construction
  }
  // Topological passes: an operator drains its inputs before anything
  // downstream of it pumps, and the loop repeats until a full pass moves
  // no cursor — so one Pump() pushes source data through the whole graph.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::string& op : op_order_) {
      bool advanced = false;
      RHINO_RETURN_NOT_OK(
          PumpOperator(op, routing_.at(op), &stats, &advanced));
      progress = progress || advanced;
    }
  }
  stats.wall_s = SecondsSince(start);
  return stats;
}

Status ClusterDriver::PumpOperator(const std::string& op, OpRouting& routing,
                                   PumpStats* stats, bool* advanced) {
  for (size_t input_idx = 0; input_idx < routing.inputs.size(); ++input_idx) {
    OpInput& input = routing.inputs[input_idx];
    const OpRouting* upstream = nullptr;
    uint64_t end;
    if (input.from_partition) {
      end = partitions_[input.partition]->end_offset();
    } else {
      upstream = &routing_.at(input.upstream);
      end = CompletePrefix(*upstream);
    }
    if (input.cursor >= end) continue;
    *advanced = true;

    // Scratch shared with completion callbacks (pipelined mode; they run
    // on transport reader threads). The pump drains to zero in flight
    // before reading it single-threaded, so callbacks never outlive this
    // frame. Blocking mode fills the same reply map synchronously so the
    // cursor-advance walk below is one implementation.
    struct Shared {
      std::mutex mu;
      std::condition_variable cv;
      std::map<uint32_t, uint32_t> credits;
      std::map<uint32_t, uint32_t> inflight;
      std::map<uint32_t, uint32_t> hwm;
      uint32_t total_inflight = 0;
      uint32_t max_total_inflight = 0;
      uint64_t credit_stalls = 0;
      Status first_error;
      /// (offset, node) -> decoded reply or per-call failure.
      std::map<std::pair<uint64_t, uint32_t>, Result<ProcessBatchReply>>
          replies;
    } shared;
    std::map<uint32_t, obs::Gauge*> credit_gauges;
    if (options_.pipelined) {
      for (uint32_t node = 0; node < endpoints_.size(); ++node) {
        if (!alive_[node]) continue;
        shared.credits[node] = options_.credit_window;
        credit_gauges[node] = obs_->metrics().GetGauge(
            "rhino_net_credits", {{"node", std::to_string(node)}});
        credit_gauges[node]->Set(options_.credit_window);
      }
    }

    struct OffsetWork {
      uint64_t offset = 0;
      SimTime create_time = 0;
      std::vector<uint32_t> nodes;  ///< routed sub-batch targets, ascending
    };
    std::vector<OffsetWork> works;
    bool aborted = false;

    for (uint64_t off = input.cursor; off < end && !aborted; ++off) {
      // Materialize this offset's records: a broker log entry, or one
      // complete edge-log entry of the upstream operator.
      std::vector<dataflow::Record> edge_records;
      const std::vector<dataflow::Record>* records = nullptr;
      OffsetWork work;
      work.offset = off;
      if (input.from_partition) {
        const broker::LogEntry* entry = partitions_[input.partition]->Fetch(off);
        RHINO_CHECK(entry != nullptr);
        records = &entry->batch.records;
        work.create_time = entry->batch.create_time;
      } else {
        const EdgeEntry& entry = upstream->entries[off];
        for (const auto& [vnode, recs] : entry.slots) {
          edge_records.insert(edge_records.end(), recs.begin(), recs.end());
        }
        records = &edge_records;
        work.create_time = entry.create_time;
      }

      // Split into one sub-batch per owning node; provenance (source_id,
      // source_offset) is preserved so nodes can dedup replays.
      std::map<uint32_t, dataflow::Batch> per_node;
      for (const auto& rec : *records) {
        uint32_t vnode = VnodeForKey(rec.key, routing.spec.num_vnodes);
        uint32_t node = routing.owner[vnode];
        auto& sub = per_node[node];
        sub.create_time = work.create_time;
        sub.source_id = input.source_id;
        sub.source_offset = off;
        sub.records.push_back(rec);
        sub.count += 1;
        sub.bytes += rec.size;
      }

      for (auto& [node, sub] : per_node) {
        if (node >= endpoints_.size() || !alive_[node]) {
          if (shared.first_error.ok()) {
            shared.first_error = Status::FailedPrecondition(
                "node " + std::to_string(node) + " is not alive");
          }
          aborted = true;
          break;
        }
        work.nodes.push_back(node);
        ProcessBatchRequest req;
        req.op = op;
        req.side = input.side;
        req.return_outputs = routing.track_outputs ? 1 : 0;
        req.batch = std::move(sub);
        std::string body;
        req.EncodeTo(&body);
        stats->batches_sent += 1;
        stats->records_sent += req.batch.records.size();

        if (!options_.pipelined) {
          std::string reply_body;
          Status st = Call(node, MessageType::kProcessBatch, body,
                           &reply_body);
          Result<ProcessBatchReply> decoded =
              st.ok() ? ProcessBatchReply::Decode(reply_body)
                      : Result<ProcessBatchReply>(st);
          const bool failed = !decoded.ok();
          shared.replies.insert_or_assign(std::make_pair(off, node),
                                          std::move(decoded));
          if (failed) {
            aborted = true;  // blocking mode stops at the first failure
            break;
          }
          continue;
        }

        // Acquire one credit for this node — the backpressure point.
        {
          std::unique_lock<std::mutex> lock(shared.mu);
          if (!shared.first_error.ok()) {
            aborted = true;
            break;
          }
          if (shared.credits[node] == 0) {
            ++shared.credit_stalls;
            shared.cv.wait(lock, [&] {
              return shared.credits[node] > 0 || !shared.first_error.ok();
            });
            if (!shared.first_error.ok()) {
              aborted = true;
              break;
            }
          }
          --shared.credits[node];
          credit_gauges[node]->Set(shared.credits[node]);
          uint32_t in = ++shared.inflight[node];
          shared.hwm[node] = std::max(shared.hwm[node], in);
          ++shared.total_inflight;
          shared.max_total_inflight =
              std::max(shared.max_total_inflight, shared.total_inflight);
        }
        auto* gauge = credit_gauges[node];
        Status submitted = transport_->CallAsync(
            endpoints_[node], MessageType::kProcessBatch, std::move(body),
            [&shared, gauge, node, off](Status st, std::string reply_body) {
              std::lock_guard<std::mutex> lock(shared.mu);
              ++shared.credits[node];
              gauge->Set(shared.credits[node]);
              --shared.inflight[node];
              --shared.total_inflight;
              Result<ProcessBatchReply> decoded =
                  st.ok() ? ProcessBatchReply::Decode(reply_body)
                          : Result<ProcessBatchReply>(st);
              if (!decoded.ok() && shared.first_error.ok()) {
                shared.first_error = decoded.status();
              }
              shared.replies.insert_or_assign(std::make_pair(off, node),
                                              std::move(decoded));
              shared.cv.notify_all();
            });
        if (!submitted.ok()) {
          // Never submitted: the callback will not run, so the credit
          // comes back here.
          std::lock_guard<std::mutex> lock(shared.mu);
          ++shared.credits[node];
          --shared.inflight[node];
          --shared.total_inflight;
          if (shared.first_error.ok()) shared.first_error = submitted;
          aborted = true;
          break;
        }
      }
      works.push_back(std::move(work));
    }

    if (options_.pipelined) {
      // Drain: all acks in (or failed) before touching cursors/edge log.
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&] { return shared.total_inflight == 0; });
      stats->credit_stalls += shared.credit_stalls;
      stats->max_inflight =
          std::max(stats->max_inflight, shared.max_total_inflight);
      for (const auto& [node, hwm] : shared.hwm) {
        auto& slot = stats->node_inflight_hwm[node];
        slot = std::max(slot, hwm);
      }
    }

    // Single-threaded from here. Fold EVERY successful reply into stats
    // and the edge log — even past a failed sibling, since a replay of
    // that offset will dedup the successful sub-batch and return no
    // outputs — then advance the cursor over the contiguous prefix of
    // fully-acked offsets and mark those edge entries complete.
    Status failure = shared.first_error;
    bool prefix_intact = true;
    for (const OffsetWork& work : works) {
      bool all_ok = true;
      for (uint32_t node : work.nodes) {
        auto rit = shared.replies.find({work.offset, node});
        if (rit == shared.replies.end() || !rit->second.ok()) {
          all_ok = false;
          if (failure.ok()) {
            failure = rit == shared.replies.end()
                          ? Status::Aborted("batch was never acknowledged")
                          : rit->second.status();
          }
          continue;
        }
        const ProcessBatchReply& reply = rit->second.value();
        stats->applied += reply.applied;
        stats->deduped += reply.deduped;
        if (routing.track_outputs) {
          Status recorded = RecordOutputs(routing, input_idx, work.offset,
                                          work.create_time, reply);
          if (!recorded.ok()) {
            all_ok = false;
            if (failure.ok()) failure = recorded;
          }
        }
      }
      if (all_ok && prefix_intact) {
        if (routing.track_outputs) {
          auto key = std::make_pair(input_idx, work.offset);
          auto [eit, inserted] = routing.entry_index.try_emplace(
              key, routing.entries.size());
          if (inserted) routing.entries.emplace_back();
          EdgeEntry& entry = routing.entries[eit->second];
          entry.create_time = std::max(entry.create_time, work.create_time);
          entry.complete = true;
        }
        input.cursor = work.offset + 1;
      } else {
        prefix_intact = false;
      }
    }
    RHINO_RETURN_NOT_OK(failure);
  }
  return Status::OK();
}

std::vector<dataflow::Record> ClusterDriver::OutputRecords(
    const std::string& op) const {
  std::vector<dataflow::Record> records;
  auto it = routing_.find(op);
  if (it == routing_.end()) return records;
  uint64_t end = CompletePrefix(it->second);
  for (uint64_t e = 0; e < end; ++e) {
    for (const auto& [vnode, recs] : it->second.entries[e].slots) {
      records.insert(records.end(), recs.begin(), recs.end());
    }
  }
  return records;
}

Result<CheckpointStats> ClusterDriver::Checkpoint() {
  CheckpointStats stats;
  stats.checkpoint_id = ++last_checkpoint_id_;
  dataflow::ControlEvent barrier;
  barrier.type = dataflow::ControlEvent::Type::kCheckpointBarrier;
  barrier.id = stats.checkpoint_id;
  std::string body;
  EncodeControlEvent(barrier, &body);

  if (options_.pipelined) {
    // Concurrent barrier broadcast: every node persists (and drains its
    // replication stream) in parallel, so the cluster-wide checkpoint
    // costs one slowest-node barrier, not the sum.
    struct Shared {
      std::mutex mu;
      std::condition_variable cv;
      uint32_t outstanding = 0;
      uint64_t bytes = 0;
      uint32_t replicated = 0;
      Status first_error;
    } shared;
    for (uint32_t node = 0; node < endpoints_.size(); ++node) {
      if (!alive_[node]) continue;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.outstanding;
      }
      stats.nodes += 1;
      Status submitted = transport_->CallAsync(
          endpoints_[node], MessageType::kCheckpoint, body,
          [&shared](Status st, std::string reply_body) {
            std::lock_guard<std::mutex> lock(shared.mu);
            if (st.ok()) {
              auto reply = CheckpointReply::Decode(reply_body);
              if (reply.ok()) {
                shared.bytes += reply->bytes;
                shared.replicated += reply->replicated;
              } else if (shared.first_error.ok()) {
                shared.first_error = reply.status();
              }
            } else if (shared.first_error.ok()) {
              shared.first_error = st;
            }
            --shared.outstanding;
            shared.cv.notify_all();
          });
      if (!submitted.ok()) {
        std::lock_guard<std::mutex> lock(shared.mu);
        --shared.outstanding;
        if (shared.first_error.ok()) shared.first_error = submitted;
      }
    }
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&] { return shared.outstanding == 0; });
    }
    RHINO_RETURN_NOT_OK(shared.first_error);
    stats.bytes = shared.bytes;
    stats.replicated_nodes = shared.replicated;
  } else {
    for (uint32_t node = 0; node < endpoints_.size(); ++node) {
      if (!alive_[node]) continue;
      std::string reply_body;
      RHINO_RETURN_NOT_OK(
          Call(node, MessageType::kCheckpoint, body, &reply_body));
      RHINO_ASSIGN_OR_RETURN(CheckpointReply reply,
                             CheckpointReply::Decode(reply_body));
      stats.bytes += reply.bytes;
      stats.nodes += 1;
      stats.replicated_nodes += reply.replicated;
    }
  }
  obs_->trace().Emit("net", "cluster_checkpoint", "driver",
                     stats.checkpoint_id,
                     {{"bytes", static_cast<int64_t>(stats.bytes)},
                      {"nodes", static_cast<int64_t>(stats.nodes)}});
  return stats;
}

Status ClusterDriver::TriggerHandover(const std::string& op, uint32_t origin,
                                      uint32_t target,
                                      const std::vector<uint32_t>& vnodes) {
  auto rit = routing_.find(op);
  if (rit == routing_.end()) return Status::NotFound("no operator: " + op);
  for (uint32_t vnode : vnodes) {
    if (vnode >= rit->second.spec.num_vnodes ||
        rit->second.owner[vnode] != origin) {
      return Status::FailedPrecondition(
          "vnode " + std::to_string(vnode) + " not owned by node " +
          std::to_string(origin));
    }
  }
  auto spec = std::make_shared<dataflow::HandoverSpec>();
  spec->id = ++last_handover_id_;
  spec->operator_name = op;
  spec->moves.push_back(dataflow::HandoverMove{origin, target, vnodes});
  dataflow::ControlEvent marker;
  marker.type = dataflow::ControlEvent::Type::kHandoverMarker;
  marker.id = spec->id;
  marker.handover = spec;

  // Step 1: origin serializes the moved vnodes (state + watermarks).
  HandoverStateRequest extract;
  extract.control = marker;
  extract.move_index = 0;
  std::string body;
  extract.EncodeTo(&body);
  std::string replica;
  RHINO_RETURN_NOT_OK(Call(origin, MessageType::kExtractVnodes, body, &replica));

  // Step 2: target ingests them (a live migration tail, not yet durable).
  HandoverStateRequest ingest;
  ingest.control = marker;
  ingest.move_index = 0;
  ingest.replica = std::move(replica);
  ingest.durable = 0;
  body.clear();
  ingest.EncodeTo(&body);
  RHINO_RETURN_NOT_OK(Call(target, MessageType::kIngestVnodes, body, nullptr));

  // Step 3: origin releases the migrated state ("release unneeded
  // resources"), and routing flips — later batches go to the target.
  VnodeSetRequest drop;
  drop.op = op;
  drop.vnodes = vnodes;
  body.clear();
  drop.EncodeTo(&body);
  RHINO_RETURN_NOT_OK(Call(origin, MessageType::kDropVnodes, body, nullptr));

  for (uint32_t vnode : vnodes) rit->second.owner[vnode] = target;
  obs_->trace().Emit("net", "cluster_handover", "driver", spec->id,
                     {{"origin", origin},
                      {"target", target},
                      {"vnodes", static_cast<int64_t>(vnodes.size())}});
  return Status::OK();
}

Status ClusterDriver::RecoverNodes(const std::vector<uint32_t>& dead_nodes) {
  // Declare every death FIRST: the re-formed ring and the recovery RPCs
  // below must only touch true survivors, even when several nodes (e.g.
  // one VM's worth) failed together.
  std::vector<uint32_t> newly_dead;
  for (uint32_t dead : dead_nodes) {
    if (dead >= endpoints_.size()) {
      return Status::InvalidArgument("no such node");
    }
    if (!alive_[dead]) continue;  // already recovered
    alive_[dead] = false;
    transport_->Forget(endpoints_[dead]);
    newly_dead.push_back(dead);
  }
  if (newly_dead.empty()) return Status::OK();
  // Survivors re-form the ring around the holes, so the checkpoint a
  // caller takes right after recovery replicates (and doesn't hang trying
  // to reach a dead successor).
  RHINO_RETURN_NOT_OK(ReformRing());
  for (uint32_t dead : newly_dead) {
    RHINO_RETURN_NOT_OK(RecoverOne(dead));
  }
  return Status::OK();
}

Status ClusterDriver::RecoverOne(uint32_t dead_node) {
  RHINO_ASSIGN_OR_RETURN(uint32_t target, NextAlive(dead_node));

  for (auto& [op, routing] : routing_) {
    std::vector<uint32_t> lost;
    for (uint32_t vnode = 0; vnode < routing.spec.num_vnodes; ++vnode) {
      if (routing.owner[vnode] == dead_node) lost.push_back(vnode);
    }
    if (lost.empty()) continue;

    ReplicaFetchRequest fetch;
    fetch.origin_node = dead_node;
    fetch.op = op;
    fetch.vnodes = lost;
    std::string body;
    fetch.EncodeTo(&body);
    std::string reply_body;
    // Rhino path: the ring successor already holds the replica in memory.
    Status st =
        Call(target, MessageType::kPromoteReplica, body, &reply_body);
    bool promoted = st.ok();
    if (st.code() == StatusCode::kNotFound) {
      // Fallback: no replica survived (replication off, or the holder died
      // too) — restore the durable checkpoint image from shared storage.
      st = Call(target, MessageType::kRestoreFromCheckpoint, body,
                &reply_body);
    }
    RHINO_RETURN_NOT_OK(st);
    RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                           rhino::DecodeReplicaState(reply_body));

    for (uint32_t vnode : lost) routing.owner[vnode] = target;

    // Rewind each of THIS operator's input cursors to the earliest offset
    // any restored vnode still needs; surviving vnodes dedup the replayed
    // overlap. A restored vnode with no watermark for an input replays
    // that input from the start (it may have applied records that were
    // never checkpointed). Edge inputs rewind into the driver-resident
    // edge log — the upstream backup of the edge.
    for (OpInput& input : routing.inputs) {
      uint64_t low = input.cursor;
      for (uint32_t vnode : lost) {
        uint64_t mark = 0;
        auto vit = rs.latest_descriptor.vnode_watermarks.find(vnode);
        if (vit != rs.latest_descriptor.vnode_watermarks.end()) {
          auto sit = vit->second.find(input.source_id);
          if (sit != vit->second.end()) mark = sit->second;
        }
        low = std::min(low, mark);
      }
      input.cursor = low;
    }
    obs_->trace().Emit("net", "cluster_recovery", "driver",
                       rs.latest_checkpoint_id,
                       {{"dead", dead_node},
                        {"target", target},
                        {"vnodes", static_cast<int64_t>(lost.size())},
                        {"promoted", promoted ? 1 : 0}});
  }
  return Status::OK();
}

std::vector<uint32_t> ClusterDriver::ProbeFailures() {
  std::vector<uint32_t> dead;
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    std::string reply_body;
    if (!Call(node, MessageType::kStats, {}, &reply_body).ok()) {
      dead.push_back(node);
    }
  }
  return dead;
}

Result<uint64_t> ClusterDriver::QueryCount(const std::string& op,
                                           uint64_t key) {
  RHINO_ASSIGN_OR_RETURN(QueryCountReply reply, QueryState(op, key));
  return reply.count;
}

Result<QueryCountReply> ClusterDriver::QueryState(const std::string& op,
                                                  uint64_t key) {
  RHINO_ASSIGN_OR_RETURN(uint32_t node, RouteKey(op, key));
  QueryCountRequest req;
  req.op = op;
  req.key = key;
  std::string body;
  req.EncodeTo(&body);
  std::string reply_body;
  RHINO_RETURN_NOT_OK(Call(node, MessageType::kQueryCount, body, &reply_body));
  return QueryCountReply::Decode(reply_body);
}

Result<StatsReply> ClusterDriver::NodeStats(uint32_t node) {
  std::string reply_body;
  RHINO_RETURN_NOT_OK(Call(node, MessageType::kStats, {}, &reply_body));
  return StatsReply::Decode(reply_body);
}

void ClusterDriver::Shutdown() {
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    Call(node, MessageType::kShutdown, {}, nullptr);  // best-effort
  }
}

Result<uint32_t> ClusterDriver::RouteKey(const std::string& op,
                                         uint64_t key) const {
  auto it = routing_.find(op);
  if (it == routing_.end()) return Status::NotFound("no operator: " + op);
  return it->second.owner[VnodeForKey(key, it->second.spec.num_vnodes)];
}

std::vector<uint32_t> ClusterDriver::VnodesOwnedBy(const std::string& op,
                                                   uint32_t node) const {
  std::vector<uint32_t> vnodes;
  auto it = routing_.find(op);
  if (it == routing_.end()) return vnodes;
  for (uint32_t vnode = 0; vnode < it->second.spec.num_vnodes; ++vnode) {
    if (it->second.owner[vnode] == node) vnodes.push_back(vnode);
  }
  return vnodes;
}

uint64_t ClusterDriver::cursor(size_t partition) const {
  uint64_t low = 0;
  bool found = false;
  for (const auto& [op, routing] : routing_) {
    for (const OpInput& input : routing.inputs) {
      if (!input.from_partition || input.partition != partition) continue;
      low = found ? std::min(low, input.cursor) : input.cursor;
      found = true;
    }
  }
  return low;
}

}  // namespace rhino::net
