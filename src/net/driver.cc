#include "net/driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "rhino/replication_runtime.h"

namespace rhino::net {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ClusterDriver::ClusterDriver(Transport* transport,
                             std::vector<std::string> endpoints,
                             obs::Observability* obs, DriverOptions options)
    : transport_(transport),
      endpoints_(std::move(endpoints)),
      alive_(endpoints_.size(), true),
      obs_(obs != nullptr ? obs : obs::Observability::Default()),
      options_(options) {
  RHINO_CHECK(!endpoints_.empty());
}

Status ClusterDriver::Call(uint32_t node, MessageType type,
                           std::string_view body, std::string* reply) {
  if (node >= endpoints_.size() || !alive_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is not alive");
  }
  return transport_->Call(endpoints_[node], type, body, reply);
}

Result<uint32_t> ClusterDriver::NextAlive(uint32_t node) const {
  for (uint32_t step = 1; step < endpoints_.size(); ++step) {
    uint32_t candidate =
        (node + step) % static_cast<uint32_t>(endpoints_.size());
    if (alive_[candidate]) return candidate;
  }
  return Status::FailedPrecondition("no surviving node on the ring");
}

Status ClusterDriver::ConnectAll() { return ReformRing(); }

Status ClusterDriver::ReformRing() {
  uint32_t live = 0;
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (alive_[node]) ++live;
  }
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    HelloRequest hello;
    hello.node_id = node;
    if (live > 1) {
      RHINO_ASSIGN_OR_RETURN(uint32_t successor, NextAlive(node));
      hello.successor = endpoints_[successor];
    }
    std::string body;
    hello.EncodeTo(&body);
    RHINO_RETURN_NOT_OK(Call(node, MessageType::kHello, body, nullptr));
  }
  return Status::OK();
}

Status ClusterDriver::AddOperator(const std::string& op, uint32_t num_vnodes) {
  if (routing_.count(op)) {
    return Status::AlreadyExists("operator already routed: " + op);
  }
  OpRouting routing;
  routing.num_vnodes = num_vnodes;
  routing.owner.resize(num_vnodes);
  std::vector<std::vector<uint32_t>> owned(endpoints_.size());
  uint32_t next = 0;
  for (uint32_t vnode = 0; vnode < num_vnodes; ++vnode) {
    while (!alive_[next]) next = (next + 1) % endpoints_.size();
    routing.owner[vnode] = next;
    owned[next].push_back(vnode);
    next = (next + 1) % endpoints_.size();
  }
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    AddOperatorRequest req;
    req.name = op;
    req.num_vnodes = num_vnodes;
    req.owned_vnodes = owned[node];
    std::string body;
    req.EncodeTo(&body);
    RHINO_RETURN_NOT_OK(Call(node, MessageType::kAddOperator, body, nullptr));
  }
  routing_.emplace(op, std::move(routing));
  return Status::OK();
}

void ClusterDriver::AddPartition(const broker::PartitionSource* partition) {
  partitions_.push_back(partition);
  cursors_.push_back(0);
}

Result<PumpStats> ClusterDriver::Pump() {
  return options_.pipelined ? PumpPipelined() : PumpBlocking();
}

Result<PumpStats> ClusterDriver::PumpBlocking() {
  auto start = std::chrono::steady_clock::now();
  PumpStats stats;
  stats.max_inflight = 1;  // one request at a time, by construction
  // The networked runtime routes a single stateful operator graph; every
  // partition feeds every operator (currently one) through key routing.
  for (size_t p = 0; p < partitions_.size(); ++p) {
    while (cursors_[p] < partitions_[p]->end_offset()) {
      const broker::LogEntry* entry = partitions_[p]->Fetch(cursors_[p]);
      RHINO_CHECK(entry != nullptr);
      for (auto& [op, routing] : routing_) {
        // Split the batch into one sub-batch per owning node; provenance
        // (source_id, source_offset) is preserved so nodes can dedup.
        std::map<uint32_t, dataflow::Batch> per_node;
        for (const auto& rec : entry->batch.records) {
          uint32_t vnode = VnodeForKey(rec.key, routing.num_vnodes);
          uint32_t node = routing.owner[vnode];
          auto& sub = per_node[node];
          sub.create_time = entry->batch.create_time;
          sub.source_id = static_cast<int>(p);
          sub.source_offset = entry->offset;
          sub.records.push_back(rec);
          sub.count += 1;
          sub.bytes += rec.size;
        }
        for (auto& [node, sub] : per_node) {
          ProcessBatchRequest req;
          req.op = op;
          req.batch = std::move(sub);
          std::string body;
          req.EncodeTo(&body);
          std::string reply_body;
          // A failure here leaves the cursor unchanged: after recovery the
          // whole offset is re-pumped and surviving nodes dedup their
          // already-applied sub-batches.
          RHINO_RETURN_NOT_OK(
              Call(node, MessageType::kProcessBatch, body, &reply_body));
          RHINO_ASSIGN_OR_RETURN(ProcessBatchReply reply,
                                 ProcessBatchReply::Decode(reply_body));
          stats.batches_sent += 1;
          stats.records_sent += req.batch.records.size();
          stats.applied += reply.applied;
          stats.deduped += reply.deduped;
        }
      }
      ++cursors_[p];
    }
  }
  stats.wall_s = SecondsSince(start);
  return stats;
}

Result<PumpStats> ClusterDriver::PumpPipelined() {
  auto start = std::chrono::steady_clock::now();
  PumpStats stats;

  // Scratch state shared with completion callbacks (which run on
  // transport reader threads). Everything under one mutex; the pump
  // drains to zero in flight before returning, so callbacks never
  // outlive this frame.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::map<uint32_t, uint32_t> credits;
    std::map<uint32_t, uint32_t> inflight;
    std::map<uint32_t, uint32_t> hwm;
    uint32_t total_inflight = 0;
    uint32_t max_total_inflight = 0;
    uint64_t applied = 0;
    uint64_t deduped = 0;
    uint64_t credit_stalls = 0;
    Status first_error;
  } shared;
  std::map<uint32_t, obs::Gauge*> credit_gauges;
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    shared.credits[node] = options_.credit_window;
    credit_gauges[node] = obs_->metrics().GetGauge(
        "rhino_net_credits", {{"node", std::to_string(node)}});
    credit_gauges[node]->Set(options_.credit_window);
  }

  // Only pump offsets that exist NOW; appends racing the pump belong to
  // the next one (and cursor advancement below must match this bound).
  std::vector<uint64_t> ends(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    ends[p] = partitions_[p]->end_offset();
  }

  bool aborted = false;
  for (size_t p = 0; p < partitions_.size() && !aborted; ++p) {
    for (uint64_t off = cursors_[p]; off < ends[p] && !aborted; ++off) {
      const broker::LogEntry* entry = partitions_[p]->Fetch(off);
      RHINO_CHECK(entry != nullptr);
      for (auto& [op, routing] : routing_) {
        std::map<uint32_t, dataflow::Batch> per_node;
        for (const auto& rec : entry->batch.records) {
          uint32_t vnode = VnodeForKey(rec.key, routing.num_vnodes);
          uint32_t node = routing.owner[vnode];
          auto& sub = per_node[node];
          sub.create_time = entry->batch.create_time;
          sub.source_id = static_cast<int>(p);
          sub.source_offset = entry->offset;
          sub.records.push_back(rec);
          sub.count += 1;
          sub.bytes += rec.size;
        }
        for (auto& [node, sub] : per_node) {
          if (node >= endpoints_.size() || !alive_[node]) {
            std::lock_guard<std::mutex> lock(shared.mu);
            if (shared.first_error.ok()) {
              shared.first_error = Status::FailedPrecondition(
                  "node " + std::to_string(node) + " is not alive");
            }
            aborted = true;
            break;
          }
          // Acquire one credit for this node — the backpressure point.
          {
            std::unique_lock<std::mutex> lock(shared.mu);
            if (!shared.first_error.ok()) {
              aborted = true;
              break;
            }
            if (shared.credits[node] == 0) {
              ++shared.credit_stalls;
              shared.cv.wait(lock, [&] {
                return shared.credits[node] > 0 || !shared.first_error.ok();
              });
              if (!shared.first_error.ok()) {
                aborted = true;
                break;
              }
            }
            --shared.credits[node];
            credit_gauges[node]->Set(shared.credits[node]);
            uint32_t in = ++shared.inflight[node];
            shared.hwm[node] = std::max(shared.hwm[node], in);
            ++shared.total_inflight;
            shared.max_total_inflight =
                std::max(shared.max_total_inflight, shared.total_inflight);
          }
          ProcessBatchRequest req;
          req.op = op;
          req.batch = std::move(sub);
          std::string body;
          req.EncodeTo(&body);
          stats.batches_sent += 1;
          stats.records_sent += req.batch.records.size();
          auto* gauge = credit_gauges[node];
          Status submitted = transport_->CallAsync(
              endpoints_[node], MessageType::kProcessBatch, std::move(body),
              [&shared, gauge, node](Status st, std::string reply_body) {
                std::lock_guard<std::mutex> lock(shared.mu);
                ++shared.credits[node];
                gauge->Set(shared.credits[node]);
                --shared.inflight[node];
                --shared.total_inflight;
                if (st.ok()) {
                  auto reply = ProcessBatchReply::Decode(reply_body);
                  if (reply.ok()) {
                    shared.applied += reply->applied;
                    shared.deduped += reply->deduped;
                  } else if (shared.first_error.ok()) {
                    shared.first_error = reply.status();
                  }
                } else if (shared.first_error.ok()) {
                  shared.first_error = st;
                }
                shared.cv.notify_all();
              });
          if (!submitted.ok()) {
            // Never submitted: the callback will not run, so the credit
            // comes back here.
            std::lock_guard<std::mutex> lock(shared.mu);
            ++shared.credits[node];
            --shared.inflight[node];
            --shared.total_inflight;
            if (shared.first_error.ok()) shared.first_error = submitted;
            aborted = true;
            break;
          }
        }
        if (aborted) break;
      }
    }
  }

  // Drain: all acks in (or failed) before touching cursors or returning.
  {
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.cv.wait(lock, [&] { return shared.total_inflight == 0; });
  }
  stats.applied = shared.applied;
  stats.deduped = shared.deduped;
  stats.credit_stalls = shared.credit_stalls;
  stats.max_inflight = shared.max_total_inflight;
  stats.node_inflight_hwm = shared.hwm;
  if (!shared.first_error.ok()) {
    // Cursors untouched: the next pump replays the whole range and nodes
    // dedup whatever did land — same exactly-once story as the blocking
    // path, batched across the window.
    return shared.first_error;
  }
  for (size_t p = 0; p < partitions_.size(); ++p) {
    cursors_[p] = std::max(cursors_[p], ends[p]);
  }
  stats.wall_s = SecondsSince(start);
  return stats;
}

Result<CheckpointStats> ClusterDriver::Checkpoint() {
  CheckpointStats stats;
  stats.checkpoint_id = ++last_checkpoint_id_;
  dataflow::ControlEvent barrier;
  barrier.type = dataflow::ControlEvent::Type::kCheckpointBarrier;
  barrier.id = stats.checkpoint_id;
  std::string body;
  EncodeControlEvent(barrier, &body);

  if (options_.pipelined) {
    // Concurrent barrier broadcast: every node persists (and drains its
    // replication stream) in parallel, so the cluster-wide checkpoint
    // costs one slowest-node barrier, not the sum.
    struct Shared {
      std::mutex mu;
      std::condition_variable cv;
      uint32_t outstanding = 0;
      uint64_t bytes = 0;
      uint32_t replicated = 0;
      Status first_error;
    } shared;
    for (uint32_t node = 0; node < endpoints_.size(); ++node) {
      if (!alive_[node]) continue;
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.outstanding;
      }
      stats.nodes += 1;
      Status submitted = transport_->CallAsync(
          endpoints_[node], MessageType::kCheckpoint, body,
          [&shared](Status st, std::string reply_body) {
            std::lock_guard<std::mutex> lock(shared.mu);
            if (st.ok()) {
              auto reply = CheckpointReply::Decode(reply_body);
              if (reply.ok()) {
                shared.bytes += reply->bytes;
                shared.replicated += reply->replicated;
              } else if (shared.first_error.ok()) {
                shared.first_error = reply.status();
              }
            } else if (shared.first_error.ok()) {
              shared.first_error = st;
            }
            --shared.outstanding;
            shared.cv.notify_all();
          });
      if (!submitted.ok()) {
        std::lock_guard<std::mutex> lock(shared.mu);
        --shared.outstanding;
        if (shared.first_error.ok()) shared.first_error = submitted;
      }
    }
    {
      std::unique_lock<std::mutex> lock(shared.mu);
      shared.cv.wait(lock, [&] { return shared.outstanding == 0; });
    }
    RHINO_RETURN_NOT_OK(shared.first_error);
    stats.bytes = shared.bytes;
    stats.replicated_nodes = shared.replicated;
  } else {
    for (uint32_t node = 0; node < endpoints_.size(); ++node) {
      if (!alive_[node]) continue;
      std::string reply_body;
      RHINO_RETURN_NOT_OK(
          Call(node, MessageType::kCheckpoint, body, &reply_body));
      RHINO_ASSIGN_OR_RETURN(CheckpointReply reply,
                             CheckpointReply::Decode(reply_body));
      stats.bytes += reply.bytes;
      stats.nodes += 1;
      stats.replicated_nodes += reply.replicated;
    }
  }
  obs_->trace().Emit("net", "cluster_checkpoint", "driver",
                     stats.checkpoint_id,
                     {{"bytes", static_cast<int64_t>(stats.bytes)},
                      {"nodes", static_cast<int64_t>(stats.nodes)}});
  return stats;
}

Status ClusterDriver::TriggerHandover(const std::string& op, uint32_t origin,
                                      uint32_t target,
                                      const std::vector<uint32_t>& vnodes) {
  auto rit = routing_.find(op);
  if (rit == routing_.end()) return Status::NotFound("no operator: " + op);
  for (uint32_t vnode : vnodes) {
    if (vnode >= rit->second.num_vnodes ||
        rit->second.owner[vnode] != origin) {
      return Status::FailedPrecondition(
          "vnode " + std::to_string(vnode) + " not owned by node " +
          std::to_string(origin));
    }
  }
  auto spec = std::make_shared<dataflow::HandoverSpec>();
  spec->id = ++last_handover_id_;
  spec->operator_name = op;
  spec->moves.push_back(dataflow::HandoverMove{origin, target, vnodes});
  dataflow::ControlEvent marker;
  marker.type = dataflow::ControlEvent::Type::kHandoverMarker;
  marker.id = spec->id;
  marker.handover = spec;

  // Step 1: origin serializes the moved vnodes (state + watermarks).
  HandoverStateRequest extract;
  extract.control = marker;
  extract.move_index = 0;
  std::string body;
  extract.EncodeTo(&body);
  std::string replica;
  RHINO_RETURN_NOT_OK(Call(origin, MessageType::kExtractVnodes, body, &replica));

  // Step 2: target ingests them (a live migration tail, not yet durable).
  HandoverStateRequest ingest;
  ingest.control = marker;
  ingest.move_index = 0;
  ingest.replica = std::move(replica);
  ingest.durable = 0;
  body.clear();
  ingest.EncodeTo(&body);
  RHINO_RETURN_NOT_OK(Call(target, MessageType::kIngestVnodes, body, nullptr));

  // Step 3: origin releases the migrated state ("release unneeded
  // resources"), and routing flips — later batches go to the target.
  VnodeSetRequest drop;
  drop.op = op;
  drop.vnodes = vnodes;
  body.clear();
  drop.EncodeTo(&body);
  RHINO_RETURN_NOT_OK(Call(origin, MessageType::kDropVnodes, body, nullptr));

  for (uint32_t vnode : vnodes) rit->second.owner[vnode] = target;
  obs_->trace().Emit("net", "cluster_handover", "driver", spec->id,
                     {{"origin", origin},
                      {"target", target},
                      {"vnodes", static_cast<int64_t>(vnodes.size())}});
  return Status::OK();
}

Status ClusterDriver::RecoverNodes(const std::vector<uint32_t>& dead_nodes) {
  // Declare every death FIRST: the re-formed ring and the recovery RPCs
  // below must only touch true survivors, even when several nodes (e.g.
  // one VM's worth) failed together.
  std::vector<uint32_t> newly_dead;
  for (uint32_t dead : dead_nodes) {
    if (dead >= endpoints_.size()) {
      return Status::InvalidArgument("no such node");
    }
    if (!alive_[dead]) continue;  // already recovered
    alive_[dead] = false;
    transport_->Forget(endpoints_[dead]);
    newly_dead.push_back(dead);
  }
  if (newly_dead.empty()) return Status::OK();
  // Survivors re-form the ring around the holes, so the checkpoint a
  // caller takes right after recovery replicates (and doesn't hang trying
  // to reach a dead successor).
  RHINO_RETURN_NOT_OK(ReformRing());
  for (uint32_t dead : newly_dead) {
    RHINO_RETURN_NOT_OK(RecoverOne(dead));
  }
  return Status::OK();
}

Status ClusterDriver::RecoverOne(uint32_t dead_node) {
  RHINO_ASSIGN_OR_RETURN(uint32_t target, NextAlive(dead_node));

  for (auto& [op, routing] : routing_) {
    std::vector<uint32_t> lost;
    for (uint32_t vnode = 0; vnode < routing.num_vnodes; ++vnode) {
      if (routing.owner[vnode] == dead_node) lost.push_back(vnode);
    }
    if (lost.empty()) continue;

    ReplicaFetchRequest fetch;
    fetch.origin_node = dead_node;
    fetch.op = op;
    fetch.vnodes = lost;
    std::string body;
    fetch.EncodeTo(&body);
    std::string reply_body;
    // Rhino path: the ring successor already holds the replica in memory.
    Status st =
        Call(target, MessageType::kPromoteReplica, body, &reply_body);
    bool promoted = st.ok();
    if (st.code() == StatusCode::kNotFound) {
      // Fallback: no replica survived (replication off, or the holder died
      // too) — restore the durable checkpoint image from shared storage.
      st = Call(target, MessageType::kRestoreFromCheckpoint, body,
                &reply_body);
    }
    RHINO_RETURN_NOT_OK(st);
    RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                           rhino::DecodeReplicaState(reply_body));

    for (uint32_t vnode : lost) routing.owner[vnode] = target;

    // Rewind each partition cursor to the earliest offset any restored
    // vnode still needs; surviving vnodes dedup the replayed overlap. A
    // restored vnode with no watermark for a partition replays that
    // partition from the start (it may have applied records that were
    // never checkpointed).
    for (size_t p = 0; p < partitions_.size(); ++p) {
      uint64_t low = cursors_[p];
      for (uint32_t vnode : lost) {
        uint64_t mark = 0;
        auto vit = rs.latest_descriptor.vnode_watermarks.find(vnode);
        if (vit != rs.latest_descriptor.vnode_watermarks.end()) {
          auto sit = vit->second.find(static_cast<int>(p));
          if (sit != vit->second.end()) mark = sit->second;
        }
        low = std::min(low, mark);
      }
      cursors_[p] = low;
    }
    obs_->trace().Emit("net", "cluster_recovery", "driver",
                       rs.latest_checkpoint_id,
                       {{"dead", dead_node},
                        {"target", target},
                        {"vnodes", static_cast<int64_t>(lost.size())},
                        {"promoted", promoted ? 1 : 0}});
  }
  return Status::OK();
}

std::vector<uint32_t> ClusterDriver::ProbeFailures() {
  std::vector<uint32_t> dead;
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    std::string reply_body;
    if (!Call(node, MessageType::kStats, {}, &reply_body).ok()) {
      dead.push_back(node);
    }
  }
  return dead;
}

Result<uint64_t> ClusterDriver::QueryCount(const std::string& op,
                                           uint64_t key) {
  RHINO_ASSIGN_OR_RETURN(uint32_t node, RouteKey(op, key));
  QueryCountRequest req;
  req.op = op;
  req.key = key;
  std::string body;
  req.EncodeTo(&body);
  std::string reply_body;
  RHINO_RETURN_NOT_OK(Call(node, MessageType::kQueryCount, body, &reply_body));
  RHINO_ASSIGN_OR_RETURN(QueryCountReply reply,
                         QueryCountReply::Decode(reply_body));
  return reply.count;
}

Result<StatsReply> ClusterDriver::NodeStats(uint32_t node) {
  std::string reply_body;
  RHINO_RETURN_NOT_OK(Call(node, MessageType::kStats, {}, &reply_body));
  return StatsReply::Decode(reply_body);
}

void ClusterDriver::Shutdown() {
  for (uint32_t node = 0; node < endpoints_.size(); ++node) {
    if (!alive_[node]) continue;
    Call(node, MessageType::kShutdown, {}, nullptr);  // best-effort
  }
}

Result<uint32_t> ClusterDriver::RouteKey(const std::string& op,
                                         uint64_t key) const {
  auto it = routing_.find(op);
  if (it == routing_.end()) return Status::NotFound("no operator: " + op);
  return it->second.owner[VnodeForKey(key, it->second.num_vnodes)];
}

std::vector<uint32_t> ClusterDriver::VnodesOwnedBy(const std::string& op,
                                                   uint32_t node) const {
  std::vector<uint32_t> vnodes;
  auto it = routing_.find(op);
  if (it == routing_.end()) return vnodes;
  for (uint32_t vnode = 0; vnode < it->second.num_vnodes; ++vnode) {
    if (it->second.owner[vnode] == node) vnodes.push_back(vnode);
  }
  return vnodes;
}

}  // namespace rhino::net
