#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rhino::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status ResolveAddr(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port,
                              int backlog) {
  sockaddr_in addr;
  RHINO_RETURN_NOT_OK(ResolveAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError(Errno("bind " + host + ":" + std::to_string(port)));
  }
  if (::listen(fd, backlog) != 0) return Status::IOError(Errno("listen"));
  return sock;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  RHINO_RETURN_NOT_OK(ResolveAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IOError(
        Errno("connect " + host + ":" + std::to_string(port)));
  }
  RHINO_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Result<Socket> Socket::Accept() const {
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::TimedOut("accept timed out");
    }
    return Status::IOError(Errno("accept"));
  }
  Socket sock(fd);
  RHINO_RETURN_NOT_OK(sock.SetNoDelay(true));
  return sock;
}

Status Socket::SetNoDelay(bool enable) {
  int flag = enable ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) != 0) {
    return Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

bool Socket::nodelay() const {
  int flag = 0;
  socklen_t len = sizeof(flag);
  if (::getsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, &len) != 0) {
    return false;
  }
  return flag != 0;
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(Errno("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::OK();
}

Status Socket::WriteAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer reset surfaces as EPIPE, not a process signal.
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadExact(char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::TimedOut("recv timed out after " +
                                std::to_string(got) + "/" +
                                std::to_string(n) + " bytes");
      }
      return Status::IOError(Errno("recv"));
    }
    if (r == 0) {
      if (got == 0) return Status::Aborted("peer closed");
      return Status::IOError("peer disconnected mid-message (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint16_t Socket::local_port() const {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("endpoint not host:port: " + endpoint);
  }
  *host = endpoint.substr(0, colon);
  unsigned long p = 0;
  for (size_t i = colon + 1; i < endpoint.size(); ++i) {
    char c = endpoint[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in endpoint: " + endpoint);
    }
    p = p * 10 + static_cast<unsigned long>(c - '0');
    if (p > 65535) {
      return Status::InvalidArgument("port out of range: " + endpoint);
    }
  }
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

std::string FormatEndpoint(const std::string& host, uint16_t port) {
  return host + ":" + std::to_string(port);
}

}  // namespace rhino::net
