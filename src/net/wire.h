#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "dataflow/operator_core.h"
#include "dataflow/record.h"

/// \file wire.h
/// Wire format of the multi-process runtime: RPC envelopes plus binary
/// serialization of the things that cross process boundaries — data
/// batches, in-band control events (checkpoint barriers and handover
/// markers, `dataflow::ControlEvent`), and state blobs (replica images are
/// encoded by `rhino::EncodeReplicaState`).
///
/// Everything uses the little-endian `BinaryWriter`/`BinaryReader` format
/// shared with the LSM on-disk structures; every `Decode` returns
/// `Corruption` on truncated or trailing bytes instead of crashing — the
/// payload may have arrived from a byte stream in an arbitrary failure
/// state.

namespace rhino::net {

/// RPC verbs understood by a `NodeServer`. The driver plans checkpoints
/// and handovers by issuing these over TCP (or the in-process loopback
/// transport — same bytes either way).
enum class MessageType : uint8_t {
  kReply = 0,                 ///< server -> client response envelope
  kHello = 1,                 ///< configure node id + replication successor
  kAddOperator = 2,           ///< host an operator instance + LSM shard
  kProcessBatch = 3,          ///< data plane: one routed batch
  kCheckpoint = 4,            ///< control: checkpoint barrier
  kExtractVnodes = 5,         ///< handover origin: serialize moved vnodes
  kIngestVnodes = 6,          ///< handover target: ingest moved vnodes
  kDropVnodes = 7,            ///< handover origin: release migrated state
  kReplicateState = 8,        ///< node -> node: chain-replicated image
  kPromoteReplica = 9,        ///< recovery: fold a held replica into live state
  kRestoreFromCheckpoint = 10,///< recovery: load a dead node's durable image
  kQueryCount = 11,           ///< read side: keyed counter lookup
  kStats = 12,                ///< introspection for tests/benches
  kShutdown = 13,             ///< graceful stop
};

const char* MessageTypeName(MessageType type);

/// Version byte carried by every envelope, directly after the type byte.
/// Decoders reject any other value as `Corruption` so a protocol change
/// fails loudly at the first frame instead of mis-parsing the stream.
/// Version 1 introduced correlation-id pipelining (out-of-order windows);
/// version 0 never carried an explicit byte, so 1 is the first value.
/// Version 2 made `kAddOperator` carry a full operator spec (kind +
/// config + input arity), `kProcessBatch` carry the input side and an
/// output-collection flag, and widened the batch/query replies.
constexpr uint8_t kWireVersion = 2;

/// Reads the `RHINO_NET_PIPELINE` toggle: `0` reverts the data plane to
/// the blocking batch-at-a-time pump and synchronous checkpoint-time
/// replication; unset or any other value selects the pipelined pump and
/// the continuous replication stream. Driver and node consult the same
/// switch so one environment variable flips both halves of the data
/// plane (the protocol itself is identical either way).
bool NetPipelineEnabled();

/// Key -> virtual node mapping of the networked runtime. Driver (routing)
/// and nodes (ownership checks) must agree, so it lives here.
inline uint32_t VnodeForKey(uint64_t key, uint32_t num_vnodes) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>(key >> (8 * i));
  }
  return static_cast<uint32_t>(Fnv1a64(bytes, 8) % num_vnodes);
}

// ----------------------------------------------------------- envelopes --

/// Client -> server: `u8 type | u8 version | u64 seq | body`. `seq` is
/// the correlation id: a pipelined client keeps a window of requests in
/// flight and matches replies back by `seq`, so the server echoes it
/// verbatim (replies may then arrive out of submission order).
struct RequestEnvelope {
  MessageType type = MessageType::kReply;
  uint64_t seq = 0;
  std::string body;

  void EncodeTo(std::string* out) const;
  static Result<RequestEnvelope> Decode(std::string_view data);
};

/// Server -> client: `u8 kReply | u8 version | u64 seq | u8 code | msg |
/// body`. The handler's `Status` travels in the envelope so application
/// errors are distinguishable from transport failures; `seq` echoes the
/// request's correlation id.
struct ReplyEnvelope {
  uint64_t seq = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string body;

  void EncodeTo(std::string* out) const;
  static Result<ReplyEnvelope> Decode(std::string_view data);

  Status ToStatus() const {
    if (code == StatusCode::kOk) return Status::OK();
    return Status(code, message);
  }
};

// ------------------------------------------------- batches and control --

void EncodeBatch(const dataflow::Batch& batch, std::string* out);
Result<dataflow::Batch> DecodeBatch(std::string_view data);

void EncodeHandoverSpec(const dataflow::HandoverSpec& spec, std::string* out);
Result<dataflow::HandoverSpec> DecodeHandoverSpec(std::string_view data);

/// Control events are what flow through channels in-process (paper R1);
/// across processes they flow inside these request bodies with identical
/// content — a checkpoint barrier carries its id, a handover marker its
/// full `HandoverSpec`.
void EncodeControlEvent(const dataflow::ControlEvent& ev, std::string* out);
Result<dataflow::ControlEvent> DecodeControlEvent(std::string_view data);

/// Operator specs travel inside `kAddOperator`: kind byte, name, vnode
/// count, input arity, and the modeled-state config. An unknown kind byte
/// decodes to `InvalidArgument` (not `Corruption`) — the frame is intact,
/// the request is just not satisfiable, and the driver surfaces the error
/// verbatim instead of silently hosting the wrong operator.
void EncodeOperatorSpec(const dataflow::OperatorSpec& spec, std::string* out);
Result<dataflow::OperatorSpec> DecodeOperatorSpec(std::string_view data);

// ------------------------------------------------------- request bodies --

/// kHello: assigns the node id and the chain-replication successor
/// (endpoint string, empty = replication off). Sent by the driver once
/// every node's port is known.
struct HelloRequest {
  uint32_t node_id = 0;
  std::string successor;

  void EncodeTo(std::string* out) const;
  static Result<HelloRequest> Decode(std::string_view data);
};

/// kAddOperator: host the operator described by `spec` and initially own
/// the given vnode set.
struct AddOperatorRequest {
  dataflow::OperatorSpec spec;
  std::vector<uint32_t> owned_vnodes;

  void EncodeTo(std::string* out) const;
  static Result<AddOperatorRequest> Decode(std::string_view data);
};

/// kProcessBatch: one batch routed to this node. `batch.source_id` is the
/// logical input source (broker partition or upstream operator edge),
/// `batch.source_offset` the log offset — the node's per-vnode replay
/// watermarks deduplicate on them. `side` is the operator's logical input
/// (1 = the join's right column); `return_outputs` asks the node to ship
/// produced records back in the reply so the driver can feed downstream
/// operators or audit sink output.
struct ProcessBatchRequest {
  std::string op;
  uint32_t side = 0;
  uint8_t return_outputs = 0;
  dataflow::Batch batch;

  void EncodeTo(std::string* out) const;
  static Result<ProcessBatchRequest> Decode(std::string_view data);
};

struct ProcessBatchReply {
  uint64_t applied = 0;
  uint64_t deduped = 0;
  /// Vnodes the batch actually folded into (post-dedup) — the driver
  /// replaces its edge-log output slots only for these, so replays cannot
  /// clobber retained outputs of deduplicated vnodes.
  std::vector<uint32_t> applied_vnodes;
  /// Encoded output batch when `return_outputs` was set and the operator
  /// produced records; empty otherwise.
  std::string outputs;

  void EncodeTo(std::string* out) const;
  static Result<ProcessBatchReply> Decode(std::string_view data);
};

/// kCheckpoint carries an encoded checkpoint-barrier ControlEvent as its
/// body; this is the reply.
struct CheckpointReply {
  uint64_t checkpoint_id = 0;
  uint64_t bytes = 0;
  uint32_t operators = 0;
  /// 1 when the image was also chain-replicated to the successor.
  uint8_t replicated = 0;

  void EncodeTo(std::string* out) const;
  static Result<CheckpointReply> Decode(std::string_view data);
};

/// kExtractVnodes / kIngestVnodes: the handover marker (control event with
/// the full spec) plus which move of the spec this node participates in.
/// For ingest, `replica` holds the origin's encoded `ReplicaState` and
/// `durable` says whether those bytes came from a persisted checkpoint
/// (recovery) or a live migration tail.
struct HandoverStateRequest {
  dataflow::ControlEvent control;
  uint32_t move_index = 0;
  std::string replica;
  uint8_t durable = 0;

  void EncodeTo(std::string* out) const;
  static Result<HandoverStateRequest> Decode(std::string_view data);
};

/// kDropVnodes.
struct VnodeSetRequest {
  std::string op;
  std::vector<uint32_t> vnodes;

  void EncodeTo(std::string* out) const;
  static Result<VnodeSetRequest> Decode(std::string_view data);
};

/// kReplicateState: chain-replicated state from `origin_node` (`replica`
/// = encoded ReplicaState). The receiver stores it in its replica
/// catalog; it does NOT touch live state until promoted.
///
/// Two shapes share the verb. `delta == 0` is the legacy full image: the
/// receiver replaces its whole catalog entry (checkpoint-time sync
/// replication). `delta == 1` is one element of the continuous stream:
/// `replica` carries only the vnodes that changed since the last delta
/// (each with its state blob AND replay watermarks, captured atomically
/// per vnode), `dropped_vnodes` lists vnodes the origin no longer owns
/// (handover tombstones), and `stream_seq` orders the stream for
/// observability. The receiver merges vnode-by-vnode.
struct ReplicateStateRequest {
  uint32_t origin_node = 0;
  std::string op;
  std::string replica;
  uint64_t stream_seq = 0;
  uint8_t delta = 0;
  std::vector<uint32_t> dropped_vnodes;

  void EncodeTo(std::string* out) const;
  static Result<ReplicateStateRequest> Decode(std::string_view data);
};

/// kPromoteReplica / kRestoreFromCheckpoint: fold `vnodes` of
/// `origin_node`'s latest image (held replica, or durable checkpoint
/// image) into this node's live state. The reply body is the image's
/// encoded ReplicaState with blobs stripped — the driver reads the replay
/// watermarks out of its descriptor.
struct ReplicaFetchRequest {
  uint32_t origin_node = 0;
  std::string op;
  std::vector<uint32_t> vnodes;

  void EncodeTo(std::string* out) const;
  static Result<ReplicaFetchRequest> Decode(std::string_view data);
};

struct QueryCountRequest {
  std::string op;
  uint64_t key = 0;

  void EncodeTo(std::string* out) const;
  static Result<QueryCountRequest> Decode(std::string_view data);
};

/// Kind-specific: the running count (counter), total stored entries for
/// the key with the per-side split (join), or vnode state bytes (modeled).
struct QueryCountReply {
  uint64_t count = 0;
  uint64_t left = 0;
  uint64_t right = 0;

  void EncodeTo(std::string* out) const;
  static Result<QueryCountReply> Decode(std::string_view data);
};

struct StatsReply {
  uint64_t applied = 0;
  uint64_t deduped = 0;
  uint64_t owned_vnodes = 0;
  uint64_t replicas_held = 0;
  uint64_t state_bytes = 0;
  /// Continuous-replication stream health: vnodes dirtied but not yet
  /// shipped, deltas in flight to the successor, and the stream/acked
  /// sequence numbers. `repl_dirty == 0 && repl_inflight == 0` means the
  /// stream is idle (benches poll this to separate steady replication
  /// from checkpoint-barrier cost).
  uint64_t repl_dirty = 0;
  uint64_t repl_inflight = 0;
  uint64_t repl_stream_seq = 0;
  uint64_t repl_shipped = 0;

  void EncodeTo(std::string* out) const;
  static Result<StatsReply> Decode(std::string_view data);
};

}  // namespace rhino::net
