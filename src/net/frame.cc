#include "net/frame.h"

#include <cstring>

#include "lsm/log_format.h"

namespace rhino::net {

Status WriteFrame(Socket& sock, std::string_view payload) {
  std::string framed;
  framed.reserve(8 + payload.size());
  lsm::AppendLogRecord(&framed, payload);
  return sock.WriteAll(framed);
}

Status ReadFrame(Socket& sock, std::string* payload,
                 uint32_t max_frame_bytes) {
  char header[8];
  RHINO_RETURN_NOT_OK(sock.ReadExact(header, 8));
  uint32_t crc = 0, len = 0;
  std::memcpy(&crc, header, 4);
  std::memcpy(&len, header + 4, 4);
  if (len > max_frame_bytes) {
    return Status::Corruption("oversized frame: length prefix " +
                              std::to_string(len) + " exceeds limit " +
                              std::to_string(max_frame_bytes));
  }
  payload->resize(len);
  if (len > 0) RHINO_RETURN_NOT_OK(sock.ReadExact(payload->data(), len));
  if (lsm::LogChecksum(*payload) != crc) {
    return Status::Corruption("frame checksum mismatch (" +
                              std::to_string(len) + " bytes)");
  }
  return Status::OK();
}

}  // namespace rhino::net
