#include "net/wire.h"

#include <bit>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/serde.h"

namespace rhino::net {

bool NetPipelineEnabled() {
  const char* v = std::getenv("RHINO_NET_PIPELINE");
  return v == nullptr || std::string_view(v) != "0";
}

namespace {

// Decoders share this trailing-bytes check: a frame that parses but has
// leftover bytes is as suspect as a truncated one.
Status CheckAtEnd(const BinaryReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes after ") + what);
  }
  return Status::OK();
}

Status CheckVersion(BinaryReader* r, const char* what) {
  uint8_t version = 0;
  RHINO_RETURN_NOT_OK(r->GetU8(&version));
  if (version != kWireVersion) {
    return Status::Corruption(std::string(what) + " has wire version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kWireVersion));
  }
  return Status::OK();
}

void PutVnodes(BinaryWriter* w, const std::vector<uint32_t>& vnodes) {
  w->PutVarint(vnodes.size());
  for (uint32_t v : vnodes) w->PutU32(v);
}

Status GetVnodes(BinaryReader* r, std::vector<uint32_t>* vnodes) {
  uint64_t n = 0;
  RHINO_RETURN_NOT_OK(r->GetVarint(&n));
  vnodes->clear();
  vnodes->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t v = 0;
    RHINO_RETURN_NOT_OK(r->GetU32(&v));
    vnodes->push_back(v);
  }
  return Status::OK();
}

// Doubles cross the wire as their IEEE-754 bit pattern in a u64; the
// serde layer is integers-and-strings only.
void PutDouble(BinaryWriter* w, double value) {
  w->PutU64(std::bit_cast<uint64_t>(value));
}

Status GetDouble(BinaryReader* r, double* value) {
  uint64_t bits = 0;
  RHINO_RETURN_NOT_OK(r->GetU64(&bits));
  *value = std::bit_cast<double>(bits);
  return Status::OK();
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kReply: return "Reply";
    case MessageType::kHello: return "Hello";
    case MessageType::kAddOperator: return "AddOperator";
    case MessageType::kProcessBatch: return "ProcessBatch";
    case MessageType::kCheckpoint: return "Checkpoint";
    case MessageType::kExtractVnodes: return "ExtractVnodes";
    case MessageType::kIngestVnodes: return "IngestVnodes";
    case MessageType::kDropVnodes: return "DropVnodes";
    case MessageType::kReplicateState: return "ReplicateState";
    case MessageType::kPromoteReplica: return "PromoteReplica";
    case MessageType::kRestoreFromCheckpoint: return "RestoreFromCheckpoint";
    case MessageType::kQueryCount: return "QueryCount";
    case MessageType::kStats: return "Stats";
    case MessageType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

// ------------------------------------------------------------ envelopes --

void RequestEnvelope::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(kWireVersion);
  w.PutU64(seq);
  out->append(body);
}

Result<RequestEnvelope> RequestEnvelope::Decode(std::string_view data) {
  BinaryReader r(data);
  RequestEnvelope env;
  uint8_t type = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&type));
  if (type == 0 || type > static_cast<uint8_t>(MessageType::kShutdown)) {
    return Status::Corruption("unknown request type " + std::to_string(type));
  }
  env.type = static_cast<MessageType>(type);
  RHINO_RETURN_NOT_OK(CheckVersion(&r, "request envelope"));
  RHINO_RETURN_NOT_OK(r.GetU64(&env.seq));
  env.body.assign(data.substr(r.position()));
  return env;
}

void ReplyEnvelope::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(MessageType::kReply));
  w.PutU8(kWireVersion);
  w.PutU64(seq);
  w.PutU8(static_cast<uint8_t>(code));
  w.PutString(message);
  out->append(body);
}

Result<ReplyEnvelope> ReplyEnvelope::Decode(std::string_view data) {
  BinaryReader r(data);
  ReplyEnvelope env;
  uint8_t type = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&type));
  if (type != static_cast<uint8_t>(MessageType::kReply)) {
    return Status::Corruption("reply envelope has type " +
                              std::to_string(type));
  }
  RHINO_RETURN_NOT_OK(CheckVersion(&r, "reply envelope"));
  RHINO_RETURN_NOT_OK(r.GetU64(&env.seq));
  uint8_t code = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kUnknown)) {
    return Status::Corruption("reply has status code " + std::to_string(code));
  }
  env.code = static_cast<StatusCode>(code);
  RHINO_RETURN_NOT_OK(r.GetString(&env.message));
  env.body.assign(data.substr(r.position()));
  return env;
}

// -------------------------------------------------- batches and control --

void EncodeBatch(const dataflow::Batch& batch, std::string* out) {
  BinaryWriter w(out);
  w.PutI64(batch.create_time);
  w.PutU64(batch.count);
  w.PutU64(batch.bytes);
  w.PutI64(batch.source_id);
  w.PutU64(batch.source_offset);
  w.PutVarint(batch.records.size());
  for (const auto& rec : batch.records) {
    w.PutU64(rec.key);
    w.PutI64(rec.event_time);
    w.PutU32(rec.size);
    w.PutString(rec.payload);
  }
  // Modeled-mode slices do not cross the wire: the networked runtime
  // always runs in real (record-carrying) mode.
}

Result<dataflow::Batch> DecodeBatch(std::string_view data) {
  BinaryReader r(data);
  dataflow::Batch batch;
  RHINO_RETURN_NOT_OK(r.GetI64(&batch.create_time));
  RHINO_RETURN_NOT_OK(r.GetU64(&batch.count));
  RHINO_RETURN_NOT_OK(r.GetU64(&batch.bytes));
  int64_t source_id = 0;
  RHINO_RETURN_NOT_OK(r.GetI64(&source_id));
  batch.source_id = static_cast<int>(source_id);
  RHINO_RETURN_NOT_OK(r.GetU64(&batch.source_offset));
  uint64_t n = 0;
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  // Record count bounded by the remaining bytes (each record is >= 21
  // bytes encoded) so a corrupt varint cannot force a huge allocation.
  if (n > r.remaining()) {
    return Status::Corruption("batch record count " + std::to_string(n) +
                              " exceeds payload size");
  }
  batch.records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    dataflow::Record rec;
    RHINO_RETURN_NOT_OK(r.GetU64(&rec.key));
    RHINO_RETURN_NOT_OK(r.GetI64(&rec.event_time));
    RHINO_RETURN_NOT_OK(r.GetU32(&rec.size));
    RHINO_RETURN_NOT_OK(r.GetString(&rec.payload));
    batch.records.push_back(std::move(rec));
  }
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "batch"));
  return batch;
}

void EncodeHandoverSpec(const dataflow::HandoverSpec& spec, std::string* out) {
  BinaryWriter w(out);
  w.PutU64(spec.id);
  w.PutString(spec.operator_name);
  w.PutU8(spec.origin_failed ? 1 : 0);
  w.PutVarint(spec.moves.size());
  for (const auto& move : spec.moves) {
    w.PutU32(move.origin_instance);
    w.PutU32(move.target_instance);
    PutVnodes(&w, move.vnodes);
  }
}

Result<dataflow::HandoverSpec> DecodeHandoverSpec(std::string_view data) {
  BinaryReader r(data);
  dataflow::HandoverSpec spec;
  RHINO_RETURN_NOT_OK(r.GetU64(&spec.id));
  RHINO_RETURN_NOT_OK(r.GetString(&spec.operator_name));
  uint8_t origin_failed = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&origin_failed));
  spec.origin_failed = origin_failed != 0;
  uint64_t n = 0;
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  if (n > r.remaining()) {
    return Status::Corruption("handover move count exceeds payload size");
  }
  spec.moves.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    dataflow::HandoverMove move;
    RHINO_RETURN_NOT_OK(r.GetU32(&move.origin_instance));
    RHINO_RETURN_NOT_OK(r.GetU32(&move.target_instance));
    RHINO_RETURN_NOT_OK(GetVnodes(&r, &move.vnodes));
    spec.moves.push_back(std::move(move));
  }
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "handover spec"));
  return spec;
}

void EncodeControlEvent(const dataflow::ControlEvent& ev, std::string* out) {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(ev.type));
  w.PutU64(ev.id);
  std::string spec;
  if (ev.handover != nullptr) EncodeHandoverSpec(*ev.handover, &spec);
  w.PutString(spec);
}

Result<dataflow::ControlEvent> DecodeControlEvent(std::string_view data) {
  BinaryReader r(data);
  dataflow::ControlEvent ev;
  uint8_t type = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&type));
  if (type >
      static_cast<uint8_t>(dataflow::ControlEvent::Type::kHandoverMarker)) {
    return Status::Corruption("unknown control event type " +
                              std::to_string(type));
  }
  ev.type = static_cast<dataflow::ControlEvent::Type>(type);
  RHINO_RETURN_NOT_OK(r.GetU64(&ev.id));
  std::string_view spec_bytes;
  RHINO_RETURN_NOT_OK(r.GetString(&spec_bytes));
  if (!spec_bytes.empty()) {
    RHINO_ASSIGN_OR_RETURN(dataflow::HandoverSpec spec,
                           DecodeHandoverSpec(spec_bytes));
    ev.handover =
        std::make_shared<const dataflow::HandoverSpec>(std::move(spec));
  }
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "control event"));
  return ev;
}

void EncodeOperatorSpec(const dataflow::OperatorSpec& spec, std::string* out) {
  BinaryWriter w(out);
  w.PutU8(static_cast<uint8_t>(spec.kind));
  w.PutString(spec.name);
  w.PutU32(spec.num_vnodes);
  w.PutU32(spec.input_arity);
  w.PutU8(static_cast<uint8_t>(spec.model.pattern));
  PutDouble(&w, spec.model.state_bytes_per_input_byte);
  w.PutU64(spec.model.rmw_cap_bytes_per_vnode);
  w.PutI64(spec.model.retention_us);
  PutDouble(&w, spec.model.output_selectivity);
  w.PutU32(spec.model.output_record_bytes);
}

Result<dataflow::OperatorSpec> DecodeOperatorSpec(std::string_view data) {
  BinaryReader r(data);
  dataflow::OperatorSpec spec;
  uint8_t kind = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&kind));
  if (!dataflow::ValidOperatorKind(kind)) {
    // InvalidArgument, not Corruption: the frame parsed fine, the peer
    // just asked for an operator this build cannot host.
    return Status::InvalidArgument("unknown operator kind " +
                                   std::to_string(kind));
  }
  spec.kind = static_cast<dataflow::OperatorKind>(kind);
  RHINO_RETURN_NOT_OK(r.GetString(&spec.name));
  RHINO_RETURN_NOT_OK(r.GetU32(&spec.num_vnodes));
  RHINO_RETURN_NOT_OK(r.GetU32(&spec.input_arity));
  uint8_t pattern = 0;
  RHINO_RETURN_NOT_OK(r.GetU8(&pattern));
  if (pattern >
      static_cast<uint8_t>(dataflow::StateModelConfig::Pattern::kSession)) {
    return Status::Corruption("unknown state model pattern " +
                              std::to_string(pattern));
  }
  spec.model.pattern =
      static_cast<dataflow::StateModelConfig::Pattern>(pattern);
  RHINO_RETURN_NOT_OK(GetDouble(&r, &spec.model.state_bytes_per_input_byte));
  RHINO_RETURN_NOT_OK(r.GetU64(&spec.model.rmw_cap_bytes_per_vnode));
  RHINO_RETURN_NOT_OK(r.GetI64(&spec.model.retention_us));
  RHINO_RETURN_NOT_OK(GetDouble(&r, &spec.model.output_selectivity));
  RHINO_RETURN_NOT_OK(r.GetU32(&spec.model.output_record_bytes));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "operator spec"));
  return spec;
}

// ------------------------------------------------------- request bodies --

void HelloRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU32(node_id);
  w.PutString(successor);
}

Result<HelloRequest> HelloRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  HelloRequest req;
  RHINO_RETURN_NOT_OK(r.GetU32(&req.node_id));
  RHINO_RETURN_NOT_OK(r.GetString(&req.successor));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "hello request"));
  return req;
}

void AddOperatorRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  std::string encoded;
  EncodeOperatorSpec(spec, &encoded);
  w.PutString(encoded);
  PutVnodes(&w, owned_vnodes);
}

Result<AddOperatorRequest> AddOperatorRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  AddOperatorRequest req;
  std::string_view encoded;
  RHINO_RETURN_NOT_OK(r.GetString(&encoded));
  RHINO_ASSIGN_OR_RETURN(req.spec, DecodeOperatorSpec(encoded));
  RHINO_RETURN_NOT_OK(GetVnodes(&r, &req.owned_vnodes));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "add-operator request"));
  return req;
}

void ProcessBatchRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutString(op);
  w.PutU32(side);
  w.PutU8(return_outputs);
  std::string encoded;
  EncodeBatch(batch, &encoded);
  w.PutString(encoded);
}

Result<ProcessBatchRequest> ProcessBatchRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  ProcessBatchRequest req;
  RHINO_RETURN_NOT_OK(r.GetString(&req.op));
  RHINO_RETURN_NOT_OK(r.GetU32(&req.side));
  RHINO_RETURN_NOT_OK(r.GetU8(&req.return_outputs));
  std::string_view encoded;
  RHINO_RETURN_NOT_OK(r.GetString(&encoded));
  RHINO_ASSIGN_OR_RETURN(req.batch, DecodeBatch(encoded));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "process-batch request"));
  return req;
}

void ProcessBatchReply::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU64(applied);
  w.PutU64(deduped);
  PutVnodes(&w, applied_vnodes);
  w.PutString(outputs);
}

Result<ProcessBatchReply> ProcessBatchReply::Decode(std::string_view data) {
  BinaryReader r(data);
  ProcessBatchReply rep;
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.applied));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.deduped));
  RHINO_RETURN_NOT_OK(GetVnodes(&r, &rep.applied_vnodes));
  RHINO_RETURN_NOT_OK(r.GetString(&rep.outputs));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "process-batch reply"));
  return rep;
}

void CheckpointReply::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU64(checkpoint_id);
  w.PutU64(bytes);
  w.PutU32(operators);
  w.PutU8(replicated);
}

Result<CheckpointReply> CheckpointReply::Decode(std::string_view data) {
  BinaryReader r(data);
  CheckpointReply rep;
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.checkpoint_id));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.bytes));
  RHINO_RETURN_NOT_OK(r.GetU32(&rep.operators));
  RHINO_RETURN_NOT_OK(r.GetU8(&rep.replicated));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "checkpoint reply"));
  return rep;
}

void HandoverStateRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  std::string encoded;
  EncodeControlEvent(control, &encoded);
  w.PutString(encoded);
  w.PutU32(move_index);
  w.PutString(replica);
  w.PutU8(durable);
}

Result<HandoverStateRequest> HandoverStateRequest::Decode(
    std::string_view data) {
  BinaryReader r(data);
  HandoverStateRequest req;
  std::string_view encoded;
  RHINO_RETURN_NOT_OK(r.GetString(&encoded));
  RHINO_ASSIGN_OR_RETURN(req.control, DecodeControlEvent(encoded));
  RHINO_RETURN_NOT_OK(r.GetU32(&req.move_index));
  RHINO_RETURN_NOT_OK(r.GetString(&req.replica));
  RHINO_RETURN_NOT_OK(r.GetU8(&req.durable));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "handover state request"));
  return req;
}

void VnodeSetRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutString(op);
  PutVnodes(&w, vnodes);
}

Result<VnodeSetRequest> VnodeSetRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  VnodeSetRequest req;
  RHINO_RETURN_NOT_OK(r.GetString(&req.op));
  RHINO_RETURN_NOT_OK(GetVnodes(&r, &req.vnodes));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "vnode-set request"));
  return req;
}

void ReplicateStateRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU32(origin_node);
  w.PutString(op);
  w.PutString(replica);
  w.PutU64(stream_seq);
  w.PutU8(delta);
  PutVnodes(&w, dropped_vnodes);
}

Result<ReplicateStateRequest> ReplicateStateRequest::Decode(
    std::string_view data) {
  BinaryReader r(data);
  ReplicateStateRequest req;
  RHINO_RETURN_NOT_OK(r.GetU32(&req.origin_node));
  RHINO_RETURN_NOT_OK(r.GetString(&req.op));
  RHINO_RETURN_NOT_OK(r.GetString(&req.replica));
  RHINO_RETURN_NOT_OK(r.GetU64(&req.stream_seq));
  RHINO_RETURN_NOT_OK(r.GetU8(&req.delta));
  RHINO_RETURN_NOT_OK(GetVnodes(&r, &req.dropped_vnodes));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "replicate-state request"));
  return req;
}

void ReplicaFetchRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU32(origin_node);
  w.PutString(op);
  PutVnodes(&w, vnodes);
}

Result<ReplicaFetchRequest> ReplicaFetchRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  ReplicaFetchRequest req;
  RHINO_RETURN_NOT_OK(r.GetU32(&req.origin_node));
  RHINO_RETURN_NOT_OK(r.GetString(&req.op));
  RHINO_RETURN_NOT_OK(GetVnodes(&r, &req.vnodes));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "replica-fetch request"));
  return req;
}

void QueryCountRequest::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutString(op);
  w.PutU64(key);
}

Result<QueryCountRequest> QueryCountRequest::Decode(std::string_view data) {
  BinaryReader r(data);
  QueryCountRequest req;
  RHINO_RETURN_NOT_OK(r.GetString(&req.op));
  RHINO_RETURN_NOT_OK(r.GetU64(&req.key));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "query-count request"));
  return req;
}

void QueryCountReply::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU64(count);
  w.PutU64(left);
  w.PutU64(right);
}

Result<QueryCountReply> QueryCountReply::Decode(std::string_view data) {
  BinaryReader r(data);
  QueryCountReply rep;
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.count));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.left));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.right));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "query-count reply"));
  return rep;
}

void StatsReply::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU64(applied);
  w.PutU64(deduped);
  w.PutU64(owned_vnodes);
  w.PutU64(replicas_held);
  w.PutU64(state_bytes);
  w.PutU64(repl_dirty);
  w.PutU64(repl_inflight);
  w.PutU64(repl_stream_seq);
  w.PutU64(repl_shipped);
}

Result<StatsReply> StatsReply::Decode(std::string_view data) {
  BinaryReader r(data);
  StatsReply rep;
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.applied));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.deduped));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.owned_vnodes));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.replicas_held));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.state_bytes));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.repl_dirty));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.repl_inflight));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.repl_stream_seq));
  RHINO_RETURN_NOT_OK(r.GetU64(&rep.repl_shipped));
  RHINO_RETURN_NOT_OK(CheckAtEnd(r, "stats reply"));
  return rep;
}

}  // namespace rhino::net
