#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// \file socket.h
/// Thin RAII wrapper over blocking TCP sockets (IPv4 loopback/LAN).
///
/// Every networked component in `src/net` speaks through this class, so
/// error handling is uniform: syscall failures become `IOError`, receive
/// timeouts become `TimedOut`, and an orderly peer close observed at a
/// message boundary becomes `Aborted` — the three classes the RPC layer
/// and `runtime::IsTransientStatus` distinguish.
///
/// Sockets are blocking with an optional receive timeout (`SO_RCVTIMEO`):
/// a wedged peer costs at most one timeout interval, never a hung thread.
/// Servers listen with `port = 0` by default so parallel test shards get
/// kernel-assigned ports that cannot collide; `local_port()` reports the
/// actual binding.

namespace rhino::net {

/// Move-only owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Opens a listening socket on `host:port` (`port` 0 = kernel-assigned;
  /// query `local_port()` afterwards). SO_REUSEADDR is set so restarted
  /// servers can rebind their port immediately.
  static Result<Socket> Listen(const std::string& host, uint16_t port,
                               int backlog = 64);

  /// Connects to `host:port`. Failure to reach the peer is `IOError`.
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Accepts one connection (blocking, subject to the receive timeout set
  /// on the listening socket — a timeout returns `TimedOut` so accept
  /// loops can poll their stop flag).
  Result<Socket> Accept() const;

  /// Caps how long a blocking read (or accept) waits. 0 disables.
  Status SetRecvTimeout(int timeout_ms);

  /// Toggles TCP_NODELAY. The data plane exchanges small request/reply
  /// frames where Nagle's algorithm would serialize every exchange behind
  /// a delayed ACK, so `Connect` and `Accept` enable it on every
  /// connection they produce; this seam exists so callers (and tests) can
  /// assert or override the setting.
  Status SetNoDelay(bool enable);

  /// Reads TCP_NODELAY back from the kernel (false on any error), so
  /// tests assert the option really reached the socket.
  bool nodelay() const;

  /// Writes all of `data` (loops over partial sends, EINTR-safe). A broken
  /// pipe or reset is `IOError`.
  Status WriteAll(std::string_view data);

  /// Reads exactly `n` bytes into `buf`.
  ///  * `Aborted`  — the peer closed before the FIRST byte (clean EOF at a
  ///    message boundary);
  ///  * `IOError`  — EOF or a socket error after a partial read (the peer
  ///    disconnected mid-message);
  ///  * `TimedOut` — the receive timeout elapsed with the read incomplete.
  Status ReadExact(char* buf, size_t n);

  /// Port this socket is bound to (after Listen with port 0).
  uint16_t local_port() const;

  /// Half-closes both directions: blocked peers observe EOF immediately.
  /// Used to interrupt reads from another thread before Close/join.
  void ShutdownBoth();

  void Close();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// "host:port" -> parts. Port must parse and fit uint16.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

/// Formats "host:port".
std::string FormatEndpoint(const std::string& host, uint16_t port);

}  // namespace rhino::net
