#include "net/transport.h"

#include <utility>

namespace rhino::net {

Status TcpTransport::Call(const std::string& endpoint, MessageType type,
                          std::string_view body, std::string* reply_body) {
  RpcClient* client = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(endpoint);
    if (it == clients_.end()) {
      std::string host;
      uint16_t port = 0;
      RHINO_RETURN_NOT_OK(ParseEndpoint(endpoint, &host, &port));
      it = clients_
               .emplace(endpoint,
                        std::make_unique<RpcClient>(
                            host, port, options_, "rpc_call:" + endpoint))
               .first;
    }
    client = it->second.get();
  }
  // The client serializes its own calls; holding mu_ across the RPC would
  // needlessly serialize calls to DIFFERENT endpoints.
  return client->Call(type, body, reply_body);
}

Status TcpTransport::CallAsync(const std::string& endpoint, MessageType type,
                               std::string body, AsyncCallback cb) {
  PipelinedChannel* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(endpoint);
    if (it == channels_.end()) {
      std::string host;
      uint16_t port = 0;
      RHINO_RETURN_NOT_OK(ParseEndpoint(endpoint, &host, &port));
      PipelinedChannelOptions opts;
      opts.window = options_.pipeline_window;
      opts.deadline_ms = options_.recv_timeout_ms;
      opts.retry = options_.retry;
      it = channels_
               .emplace(endpoint, std::make_unique<PipelinedChannel>(
                                      host, port, opts,
                                      "pipelined_call:" + endpoint))
               .first;
    }
    channel = it->second.get();
  }
  // The channel handles its own backpressure; holding mu_ across Submit
  // would couple windows of DIFFERENT endpoints. Safe because channels
  // are only destroyed by Forget, which callers order after draining
  // their in-flight work for that endpoint.
  return channel->Submit(type, std::move(body), std::move(cb));
}

void TcpTransport::Forget(const std::string& endpoint) {
  std::unique_ptr<PipelinedChannel> channel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clients_.erase(endpoint);
    auto it = channels_.find(endpoint);
    if (it != channels_.end()) {
      channel = std::move(it->second);
      channels_.erase(it);
    }
  }
  // Destroyed outside mu_: Close() invokes pending callbacks, which must
  // not deadlock against other transport calls.
  channel.reset();
}

void LoopbackTransport::Register(const std::string& endpoint,
                                 RpcServer::Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[endpoint] = std::move(handler);
}

void LoopbackTransport::Kill(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(endpoint);
}

Status LoopbackTransport::Call(const std::string& endpoint, MessageType type,
                               std::string_view body,
                               std::string* reply_body) {
  RpcServer::Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(endpoint);
    if (it == handlers_.end()) {
      return Status::IOError("loopback endpoint unreachable: " + endpoint);
    }
    handler = it->second;
  }
  auto result = handler(type, body);
  RHINO_RETURN_NOT_OK(result.status());
  if (reply_body != nullptr) *reply_body = std::move(result).MoveValue();
  return Status::OK();
}

}  // namespace rhino::net
