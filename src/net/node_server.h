#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dataflow/operator_host.h"
#include "lsm/env.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/observability.h"
#include "rhino/replication_runtime.h"
#include "state/lsm_state_backend.h"

/// \file node_server.h
/// One worker process of the networked runtime.
///
/// A `NodeServer` hosts operator instances — each a
/// `dataflow::OperatorHost` (state backend + vnode ownership + replay
/// watermarks + the operator core) — and answers the driver's RPC verbs.
/// It is transport-agnostic: `Handle` consumes decoded request bodies and
/// is plugged into an `RpcServer` (the `rhino_node` binary) or a
/// `LoopbackTransport` (in-process tests) unchanged.
///
/// Protocol roles, mirroring the in-process engine:
///
///  * **data plane** — `kProcessBatch` folds routed records into the
///    hosted operator through the exact same `StatefulOperatorCore` the
///    thread-mode `StatefulInstance` runs (keyed counter, symmetric hash
///    join, modeled state); records below a vnode's replay watermark are
///    deduplicated (exactly-once under replay);
///  * **replication** — in continuous mode (the default), every write
///    marks its vnode dirty and a background replicator streams
///    per-vnode deltas (state blob + replay watermarks, captured
///    atomically) to the ring successor as pipelined `kReplicateState`
///    requests under a small credit window — Rhino's state-centric
///    replication as a continuous ordered stream, off the checkpoint
///    path. In sync mode (`RHINO_NET_PIPELINE=0`) replication instead
///    happens inside `kCheckpoint` as a blocking full-image hop;
///  * **checkpoint** — `kCheckpoint` snapshots every shard (vnode blobs +
///    watermarks) and persists a framed image to the shared checkpoint
///    directory (the DFS stand-in). Continuous mode then shrinks the
///    barrier to "durable image + wait for the replication stream to
///    drain" (a sequence-number barrier), so checkpoint cost no longer
///    scales with replication traffic volume;
///  * **handover** — `kExtractVnodes` / `kIngestVnodes` / `kDropVnodes`
///    implement the origin and target halves of a live migration, moving
///    state *and* dedup watermarks;
///  * **recovery** — `kPromoteReplica` folds a held replica of a dead peer
///    into live state; `kRestoreFromCheckpoint` does the same from the
///    durable image when no replica survived (the RhinoDFS fallback).
///
/// Thread safety: one mutex (`mu_`) serializes all verbs, so every
/// checkpoint or extraction observes a consistent shard. The replicator
/// thread takes `mu_` only while building a delta snapshot; stream
/// bookkeeping lives under the separate `ReplStream::mu` (lock order:
/// `mu_` before `ReplStream::mu`, never the reverse). `kCheckpoint`
/// releases `mu_` before waiting on the stream barrier, so the
/// replicator can drain while the barrier waits — the one place a cycle
/// could otherwise form.

namespace rhino::net {

struct NodeServerOptions {
  /// This node's private state directory (each operator shard in a
  /// subdirectory).
  std::string data_dir;
  /// Shared checkpoint directory (all nodes + driver see the same files;
  /// stands in for a DFS).
  std::string ckpt_dir;
  /// Continuous background replication (dirty-vnode deltas stream to the
  /// successor; checkpoints barrier on stream drain) vs legacy
  /// synchronous full-image shipping inside kCheckpoint. Defaults to the
  /// cluster-wide `RHINO_NET_PIPELINE` toggle.
  bool continuous_replication = NetPipelineEnabled();
  /// Deltas in flight to the successor before the replicator waits for
  /// acks (the stream's own credit window).
  uint32_t repl_credit_window = 2;
  /// Upper bound on the checkpoint barrier's wait for stream drain.
  int barrier_timeout_ms = 10'000;
  /// Bench seam: emulated service latency (sleep, microseconds) per
  /// kProcessBatch, taken BEFORE the server lock. Loopback on a small
  /// host hides the round-trip structure real deployments have (network
  /// hops, remote storage); `bench/dist_pipeline` reintroduces it in a
  /// controlled way to measure how much of it each pump mode hides.
  /// Always 0 outside benches.
  int apply_delay_us = 0;
};

/// Path of the durable checkpoint image `origin_node` writes for `op`.
/// Node (writer) and recovery peers (readers) must agree, so it lives
/// here.
std::string CheckpointImagePath(const std::string& ckpt_dir,
                                uint32_t origin_node, const std::string& op);

class NodeServer {
 public:
  /// `transport` issues the successor replication RPC; it may be null when
  /// replication is disabled (single-node clusters).
  NodeServer(lsm::Env* env, Transport* transport, NodeServerOptions options,
             obs::Observability* obs = nullptr);

  /// Joins the replicator thread (continuous mode). In-flight
  /// kReplicateState callbacks only touch the shared stream block, so a
  /// transport may complete them after the node is gone.
  ~NodeServer();

  /// Stops the replication stream and joins its thread. Idempotent; the
  /// destructor calls it. Tests with in-process clusters call it on all
  /// nodes before tearing any node down, so no replicator is mid-call
  /// into a dying peer.
  void StopReplication();

  /// Dispatches one request; the returned string is the reply body. Safe
  /// to call concurrently (internal lock).
  Result<std::string> Handle(MessageType type, std::string_view body);

  /// Adapter for RpcServer / LoopbackTransport registration.
  RpcServer::Handler AsHandler() {
    return [this](MessageType type, std::string_view body) {
      return Handle(type, body);
    };
  }

  /// Set by kShutdown; the hosting binary polls this to exit.
  bool shutdown_requested() const { return shutdown_.load(); }

  uint32_t node_id() const { return node_id_.load(); }

 private:
  /// One hosted operator instance. All state mechanics (backend,
  /// ownership, replay watermarks, apply/extract/absorb/drop) live in the
  /// host; the shard only keeps node-local traffic counters.
  struct Shard {
    std::unique_ptr<dataflow::OperatorHost> host;
    uint64_t applied = 0;
    uint64_t deduped = 0;
  };

  /// Bookkeeping of the continuous replication stream, shared between the
  /// verb handlers (which mark vnodes dirty), the replicator thread, the
  /// checkpoint barrier, and the transport completion callbacks. Held by
  /// shared_ptr so a late callback outliving the NodeServer stays safe.
  struct ReplStream {
    std::mutex mu;
    std::condition_variable work_cv;     ///< replicator: work or credit
    std::condition_variable barrier_cv;  ///< checkpoint barrier waiters
    /// op -> vnodes with unshipped writes.
    std::map<std::string, std::set<uint32_t>> dirty;
    /// op -> vnodes dropped (handover) but not yet tombstoned downstream.
    std::map<std::string, std::set<uint32_t>> dropped;
    uint64_t stream_seq = 0;  ///< last delta sequence number assigned
    uint64_t shipped = 0;     ///< deltas acked by the successor
    uint32_t inflight = 0;    ///< deltas submitted, not yet acked
    /// Last stream failure; sticky until a delta succeeds or kHello
    /// re-forms the ring. A waiting barrier fails fast on it.
    Status error;
    bool stop = false;
  };

  Result<std::string> HandleHello(std::string_view body);
  Result<std::string> HandleAddOperator(std::string_view body);
  Result<std::string> HandleProcessBatch(std::string_view body);
  Result<std::string> HandleCheckpoint(std::string_view body);
  Result<std::string> HandleExtractVnodes(std::string_view body);
  Result<std::string> HandleIngestVnodes(std::string_view body);
  Result<std::string> HandleDropVnodes(std::string_view body);
  Result<std::string> HandleReplicateState(std::string_view body);
  Result<std::string> HandleReplicaFetch(MessageType type,
                                         std::string_view body);
  Result<std::string> HandleQueryCount(std::string_view body);
  Result<std::string> HandleStats();

  Result<Shard*> FindShard(const std::string& op);

  /// Builds the full replica image of `shard` (blobs + watermarks) for the
  /// given vnodes at checkpoint/handover id `id`.
  Result<rhino::ReplicaState> Snapshot(Shard* shard,
                                       const std::vector<uint32_t>& vnodes,
                                       uint64_t id);

  /// Folds `rs`'s blobs/watermarks for `vnodes` (empty = all) into the
  /// live shard of `op`. Consumes the image's blobs.
  Status Absorb(const std::string& op, rhino::ReplicaState&& rs,
                const std::vector<uint32_t>& vnodes, bool already_durable);

  /// Marks `vnodes` of `op` dirty on the replication stream. Caller holds
  /// `mu_`; no-op unless continuous replication is running.
  template <typename Container>
  void MarkReplDirty(const std::string& op, const Container& vnodes) {
    if (!replicating_ || vnodes.empty()) return;
    {
      std::lock_guard<std::mutex> lock(repl_->mu);
      auto& set = repl_->dirty[op];
      set.insert(vnodes.begin(), vnodes.end());
    }
    repl_->work_cv.notify_all();
  }

  /// Body of the replicator thread: pops one operator's dirty/dropped
  /// vnodes, snapshots a consistent delta under `mu_`, and streams it to
  /// the successor under the credit window.
  void ReplicatorLoop();

  /// Blocks (with `mu_` RELEASED) until the stream has drained — dirty
  /// and dropped empty, nothing in flight — or fails on a sticky stream
  /// error / the configured timeout.
  Status WaitReplicationBarrier();

  lsm::Env* env_;
  Transport* transport_;
  NodeServerOptions options_;
  obs::Observability* obs_;

  std::atomic<uint32_t> node_id_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;
  std::string successor_;  ///< replication successor endpoint ("" = off)
  std::map<std::string, Shard> shards_;
  /// Replica catalog: (origin node, op) -> latest chain-replicated image.
  /// Continuous mode merges per-vnode deltas into it; sync mode replaces
  /// it wholesale at each checkpoint.
  std::map<std::pair<uint32_t, std::string>, rhino::ReplicaState> replicas_;

  /// True when the replicator thread was started (continuous mode with a
  /// transport); constant after construction.
  bool replicating_ = false;
  std::shared_ptr<ReplStream> repl_ = std::make_shared<ReplStream>();
  std::thread replicator_;
};

}  // namespace rhino::net
