#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "lsm/env.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/observability.h"
#include "rhino/replication_runtime.h"
#include "state/lsm_state_backend.h"

/// \file node_server.h
/// One worker process of the networked runtime.
///
/// A `NodeServer` hosts operator instances — each an `LsmStateBackend`
/// shard plus the per-(vnode, source) replay watermarks that make batch
/// application idempotent — and answers the driver's RPC verbs. It is
/// transport-agnostic: `Handle` consumes decoded request bodies and is
/// plugged into an `RpcServer` (the `rhino_node` binary) or a
/// `LoopbackTransport` (in-process tests) unchanged.
///
/// Protocol roles, mirroring the in-process engine:
///
///  * **data plane** — `kProcessBatch` folds routed records into the shard
///    with the same `ApplyKeyedCount` kernel the thread-mode
///    `KeyedCounterOperator` uses; records below a vnode's replay
///    watermark are deduplicated (exactly-once under replay);
///  * **checkpoint** — `kCheckpoint` snapshots every shard (vnode blobs +
///    watermarks), persists a framed image to the shared checkpoint
///    directory (the DFS stand-in), and chain-replicates the image to the
///    ring successor (`kReplicateState`) — Rhino's state-centric
///    replication between real processes;
///  * **handover** — `kExtractVnodes` / `kIngestVnodes` / `kDropVnodes`
///    implement the origin and target halves of a live migration, moving
///    state *and* dedup watermarks;
///  * **recovery** — `kPromoteReplica` folds a held replica of a dead peer
///    into live state; `kRestoreFromCheckpoint` does the same from the
///    durable image when no replica survived (the RhinoDFS fallback).
///
/// Thread safety: one mutex serializes all verbs, so every checkpoint or
/// extraction observes a consistent shard. The driver sequences
/// cluster-wide operations, so the blocking successor RPC inside
/// `kCheckpoint` cannot form a lock cycle.

namespace rhino::net {

struct NodeServerOptions {
  /// This node's private state directory (each operator shard in a
  /// subdirectory).
  std::string data_dir;
  /// Shared checkpoint directory (all nodes + driver see the same files;
  /// stands in for a DFS).
  std::string ckpt_dir;
};

/// Path of the durable checkpoint image `origin_node` writes for `op`.
/// Node (writer) and recovery peers (readers) must agree, so it lives
/// here.
std::string CheckpointImagePath(const std::string& ckpt_dir,
                                uint32_t origin_node, const std::string& op);

class NodeServer {
 public:
  /// `transport` issues the successor replication RPC; it may be null when
  /// replication is disabled (single-node clusters).
  NodeServer(lsm::Env* env, Transport* transport, NodeServerOptions options,
             obs::Observability* obs = nullptr);

  /// Dispatches one request; the returned string is the reply body. Safe
  /// to call concurrently (internal lock).
  Result<std::string> Handle(MessageType type, std::string_view body);

  /// Adapter for RpcServer / LoopbackTransport registration.
  RpcServer::Handler AsHandler() {
    return [this](MessageType type, std::string_view body) {
      return Handle(type, body);
    };
  }

  /// Set by kShutdown; the hosting binary polls this to exit.
  bool shutdown_requested() const { return shutdown_.load(); }

  uint32_t node_id() const { return node_id_.load(); }

 private:
  /// One hosted operator instance.
  struct Shard {
    std::unique_ptr<state::LsmStateBackend> backend;
    uint32_t num_vnodes = 0;
    std::set<uint32_t> owned;
    /// vnode -> source -> next expected offset (records below are dropped).
    std::map<uint32_t, std::map<int, uint64_t>> watermarks;
    uint64_t applied = 0;
    uint64_t deduped = 0;
  };

  Result<std::string> HandleHello(std::string_view body);
  Result<std::string> HandleAddOperator(std::string_view body);
  Result<std::string> HandleProcessBatch(std::string_view body);
  Result<std::string> HandleCheckpoint(std::string_view body);
  Result<std::string> HandleExtractVnodes(std::string_view body);
  Result<std::string> HandleIngestVnodes(std::string_view body);
  Result<std::string> HandleDropVnodes(std::string_view body);
  Result<std::string> HandleReplicateState(std::string_view body);
  Result<std::string> HandleReplicaFetch(MessageType type,
                                         std::string_view body);
  Result<std::string> HandleQueryCount(std::string_view body);
  Result<std::string> HandleStats();

  Result<Shard*> FindShard(const std::string& op);

  /// Builds the full replica image of `shard` (blobs + watermarks) for the
  /// given vnodes at checkpoint/handover id `id`.
  Result<rhino::ReplicaState> Snapshot(const std::string& op, Shard* shard,
                                       const std::vector<uint32_t>& vnodes,
                                       uint64_t id);

  /// Folds `rs`'s blobs/watermarks for `vnodes` (empty = all) into the
  /// live shard of `op`.
  Status Absorb(const std::string& op, const rhino::ReplicaState& rs,
                const std::vector<uint32_t>& vnodes, bool already_durable);

  lsm::Env* env_;
  Transport* transport_;
  NodeServerOptions options_;
  obs::Observability* obs_;

  std::atomic<uint32_t> node_id_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;
  std::string successor_;  ///< replication successor endpoint ("" = off)
  std::map<std::string, Shard> shards_;
  /// Replica catalog: (origin node, op) -> latest chain-replicated image.
  std::map<std::pair<uint32_t, std::string>, rhino::ReplicaState> replicas_;
};

}  // namespace rhino::net
