#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/observability.h"
#include "runtime/retry.h"

/// \file pipeline.h
/// Pipelined RPC channel: a bounded window of correlation-id-tagged
/// requests in flight on ONE connection, with out-of-order reply
/// matching, per-request deadlines, and idempotent window replay on
/// reconnect.
///
/// The blocking `RpcClient` pays a full round trip per request; at the
/// driver's batch sizes that makes the network the pipeline. This channel
/// overlaps serialization, send, remote apply, and the reply path:
/// `Submit` enqueues a request and returns as soon as it is on the wire
/// (or queued for replay), and the completion callback fires from the
/// reader thread when the matching reply arrives.
///
/// Ordering contract — load-bearing for exactly-once: requests are
/// WRITTEN in correlation-id order (the id is assigned and the frame
/// written inside one critical section), and on reconnect the pending
/// window is replayed in that same order. `RpcServer` serves one
/// connection serially, so per-channel FIFO application falls out even
/// though replies may be matched out of order. The driver's replay
/// watermarks (`offset < mark` dedup) rely on batches for one vnode
/// applying in offset order; a channel that reordered writes could
/// advance a watermark past a batch that was never applied and lose it
/// silently.
///
/// Failure semantics: a transport error parks the window and the reader
/// reconnects under a fresh `runtime::BlockingRetrier` budget, replaying
/// every pending request (the server's verbs are idempotent, so a request
/// whose reply was lost is safely re-applied and answered `deduped`).
/// When the budget is exhausted the channel breaks: all pending and all
/// future submits fail with the retrier's verdict, and the owner is
/// expected to `Forget` the endpoint (driver failure handling) which
/// destroys the channel. A per-request deadline bounds how long any
/// single callback can stay unanswered even while the window keeps
/// moving; a late reply to an expired id is dropped by design.
namespace rhino::net {

struct PipelinedChannelOptions {
  /// Max requests in flight (submitted, reply not yet matched). Submit
  /// blocks when the window is full — backpressure, not buffering.
  uint32_t window = 32;
  /// Per-request deadline from submit to matched reply.
  int deadline_ms = 10'000;
  /// Reader poll granularity: recv timeout between reply frames, which
  /// bounds how stale a deadline sweep can be.
  int poll_ms = 50;
  /// Reconnect budget per outage episode (armed fresh each time the
  /// connection drops with requests pending).
  runtime::RetryOptions retry;
};

class PipelinedChannel {
 public:
  /// Completion callback: transport or application status plus the reply
  /// body. Runs on the channel's reader thread (or on the submitter when
  /// a submit fails synchronously) — keep it cheap and non-blocking.
  using Callback = std::function<void(Status, std::string)>;

  PipelinedChannel(std::string host, uint16_t port,
                   PipelinedChannelOptions options, std::string what,
                   obs::Observability* obs = nullptr);
  ~PipelinedChannel();

  PipelinedChannel(const PipelinedChannel&) = delete;
  PipelinedChannel& operator=(const PipelinedChannel&) = delete;

  /// Queues one request. Blocks while the window is full; returns an
  /// error (without invoking `cb`) only when the channel is closed or
  /// broken. Connection setup is lazy and failures surface through `cb`.
  Status Submit(MessageType type, std::string body, Callback cb);

  /// Blocks until no request is in flight (each one completed or
  /// expired). Returns the breaking status if the channel died first.
  Status Drain();

  /// Fails all pending requests with `Aborted` and stops the reader.
  /// Idempotent; the destructor calls it.
  void Close();

  std::string endpoint() const { return FormatEndpoint(host_, port_); }

  uint32_t inflight() const;
  /// High-water mark of the in-flight window over the channel lifetime.
  uint32_t inflight_high_water() const;
  /// Requests re-sent by reconnect replay (0 on a healthy channel).
  uint64_t replayed_total() const;

 private:
  struct Pending {
    MessageType type = MessageType::kReply;
    std::string body;
    Callback cb;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
  };

  void ReaderLoop();
  /// Reconnects and replays the pending window in seq order. Returns
  /// false when the retry budget is exhausted (channel broken) or the
  /// channel is closing. Runs on the reader thread.
  bool ReconnectAndReplay();
  /// Expires pending requests whose deadline passed (callbacks invoked
  /// with `TimedOut` outside the lock).
  void SweepDeadlines();
  /// Removes and fails every pending request with `st`.
  void FailAllPending(const Status& st);
  /// Completes one pending request (no-op for unknown/expired ids).
  void CompleteOne(uint64_t seq, const Status& st, std::string body);

  const std::string host_;
  const uint16_t port_;
  const PipelinedChannelOptions options_;
  const std::string what_;

  obs::Gauge* inflight_gauge_ = nullptr;
  obs::HistogramMetric* latency_ms_ = nullptr;

  /// Guards bookkeeping: the pending window, seq counter, connection
  /// state flags. Never held across a syscall or a callback.
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  ///< window space / drain / breakage
  std::condition_variable work_cv_;   ///< wakes the reader (work or close)
  std::map<uint64_t, Pending> pending_;
  uint64_t next_seq_ = 1;
  uint32_t reserved_ = 0;  ///< submitters between window wait and enqueue
  uint32_t high_water_ = 0;
  uint64_t replayed_total_ = 0;
  bool connected_ = false;
  bool ever_connected_ = false;  ///< distinguishes first connect from replay
  bool closing_ = false;
  Status broken_;  ///< non-OK once the reconnect budget is exhausted

  /// Serializes socket writes AND connection replacement, so frames hit
  /// the wire in seq order and never interleave with a replay. Lock
  /// order: wmu_ before mu_ (Submit holds wmu_ while it takes mu_ to
  /// assign the seq).
  std::mutex wmu_;
  Socket conn_;

  std::thread reader_;
};

}  // namespace rhino::net
