#include "net/node_server.h"

#include <utility>
#include <vector>

#include "dataflow/stateful.h"
#include "rhino/checkpoint_storage.h"

namespace rhino::net {

std::string CheckpointImagePath(const std::string& ckpt_dir,
                                uint32_t origin_node, const std::string& op) {
  return ckpt_dir + "/node-" + std::to_string(origin_node) + "-" + op +
         ".img";
}

NodeServer::NodeServer(lsm::Env* env, Transport* transport,
                       NodeServerOptions options, obs::Observability* obs)
    : env_(env),
      transport_(transport),
      options_(std::move(options)),
      obs_(obs != nullptr ? obs : obs::Observability::Default()) {}

Result<std::string> NodeServer::Handle(MessageType type,
                                       std::string_view body) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (type) {
    case MessageType::kHello:
      return HandleHello(body);
    case MessageType::kAddOperator:
      return HandleAddOperator(body);
    case MessageType::kProcessBatch:
      return HandleProcessBatch(body);
    case MessageType::kCheckpoint:
      return HandleCheckpoint(body);
    case MessageType::kExtractVnodes:
      return HandleExtractVnodes(body);
    case MessageType::kIngestVnodes:
      return HandleIngestVnodes(body);
    case MessageType::kDropVnodes:
      return HandleDropVnodes(body);
    case MessageType::kReplicateState:
      return HandleReplicateState(body);
    case MessageType::kPromoteReplica:
    case MessageType::kRestoreFromCheckpoint:
      return HandleReplicaFetch(type, body);
    case MessageType::kQueryCount:
      return HandleQueryCount(body);
    case MessageType::kStats:
      return HandleStats();
    case MessageType::kShutdown:
      shutdown_.store(true);
      return std::string();
    case MessageType::kReply:
      break;
  }
  return Status::InvalidArgument(std::string("node cannot serve ") +
                                 MessageTypeName(type));
}

Result<NodeServer::Shard*> NodeServer::FindShard(const std::string& op) {
  auto it = shards_.find(op);
  if (it == shards_.end()) {
    return Status::NotFound("no operator shard: " + op);
  }
  return &it->second;
}

Result<std::string> NodeServer::HandleHello(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HelloRequest req, HelloRequest::Decode(body));
  node_id_.store(req.node_id);
  successor_ = req.successor;
  RHINO_RETURN_NOT_OK(env_->CreateDir(options_.data_dir));
  RHINO_RETURN_NOT_OK(env_->CreateDir(options_.ckpt_dir));
  return std::string();
}

Result<std::string> NodeServer::HandleAddOperator(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(AddOperatorRequest req,
                         AddOperatorRequest::Decode(body));
  if (req.num_vnodes == 0) {
    return Status::InvalidArgument("num_vnodes must be > 0");
  }
  auto it = shards_.find(req.name);
  if (it != shards_.end()) {
    // Idempotent re-add (driver retry after a transport hiccup).
    if (it->second.num_vnodes != req.num_vnodes) {
      return Status::AlreadyExists("operator " + req.name +
                                   " exists with different vnode count");
    }
    return std::string();
  }
  // Real worker processes take flushes/compactions off the RPC thread: a
  // ProcessBatch that fills a memtable schedules the flush and returns
  // instead of paying for it inline (failures surface on the next write).
  lsm::Options lsm_options;
  lsm_options.background_maintenance = true;
  RHINO_ASSIGN_OR_RETURN(
      auto backend,
      state::LsmStateBackend::Open(env_, options_.data_dir + "/" + req.name,
                                   req.name, node_id_.load(),
                                   std::move(lsm_options)));
  Shard shard;
  shard.backend = std::move(backend);
  shard.num_vnodes = req.num_vnodes;
  shard.owned.insert(req.owned_vnodes.begin(), req.owned_vnodes.end());
  shards_.emplace(req.name, std::move(shard));
  return std::string();
}

Result<std::string> NodeServer::HandleProcessBatch(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ProcessBatchRequest req,
                         ProcessBatchRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  ProcessBatchReply reply;
  const int source = req.batch.source_id;
  const uint64_t offset = req.batch.source_offset;
  std::set<uint32_t> advanced;
  for (const auto& rec : req.batch.records) {
    uint32_t vnode = VnodeForKey(rec.key, shard->num_vnodes);
    if (!shard->owned.count(vnode)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(node_id_.load()) + " does not own vnode " +
          std::to_string(vnode) + " of " + req.op + " (stale routing?)");
    }
    auto vit = shard->watermarks.find(vnode);
    if (vit != shard->watermarks.end()) {
      auto sit = vit->second.find(source);
      if (sit != vit->second.end() && offset < sit->second) {
        ++reply.deduped;
        continue;  // already folded into state before a replay
      }
    }
    RHINO_ASSIGN_OR_RETURN(uint64_t count,
                           dataflow::ApplyKeyedCount(shard->backend.get(),
                                                     vnode, rec.key));
    (void)count;
    ++reply.applied;
    advanced.insert(vnode);
  }
  // Watermarks advance only after the whole batch: every record of one
  // vnode in this batch shares `offset`, so advancing mid-batch would
  // wrongly dedup its siblings.
  for (uint32_t vnode : advanced) {
    uint64_t& mark = shard->watermarks[vnode][source];
    if (offset + 1 > mark) mark = offset + 1;
  }
  shard->applied += reply.applied;
  shard->deduped += reply.deduped;
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

Result<rhino::ReplicaState> NodeServer::Snapshot(
    const std::string& op, Shard* shard, const std::vector<uint32_t>& vnodes,
    uint64_t id) {
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = id;
  auto& desc = rs.latest_descriptor;
  desc.checkpoint_id = id;
  desc.operator_name = op;
  desc.instance_id = node_id_.load();
  for (uint32_t vnode : vnodes) {
    desc.vnode_bytes[vnode] = shard->backend->VnodeBytes(vnode);
    auto it = shard->watermarks.find(vnode);
    if (it != shard->watermarks.end()) {
      desc.vnode_watermarks[vnode] = it->second;
    }
  }
  RHINO_ASSIGN_OR_RETURN(rs.vnode_blobs,
                         shard->backend->ExtractVnodeBlobs(vnodes));
  return rs;
}

Status NodeServer::Absorb(const std::string& op,
                          const rhino::ReplicaState& rs,
                          const std::vector<uint32_t>& vnodes,
                          bool already_durable) {
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(op));
  std::vector<uint32_t> wanted = vnodes;
  if (wanted.empty()) {
    for (const auto& [vnode, blob] : rs.vnode_blobs) wanted.push_back(vnode);
  }
  for (uint32_t vnode : wanted) {
    auto blob = rs.vnode_blobs.find(vnode);
    if (blob != rs.vnode_blobs.end() && !blob->second.empty()) {
      RHINO_RETURN_NOT_OK(
          shard->backend->IngestVnodes(blob->second, already_durable));
    }
    shard->owned.insert(vnode);
    // Dedup positions come WITH the state: replay resumes exactly where
    // this snapshot stopped. Assign (not max-merge) — the receiver never
    // owned these vnodes, and recovery must roll dedup back to the
    // snapshot so the replayed tail is applied.
    auto marks = rs.latest_descriptor.vnode_watermarks.find(vnode);
    if (marks != rs.latest_descriptor.vnode_watermarks.end()) {
      shard->watermarks[vnode] = marks->second;
    } else {
      shard->watermarks.erase(vnode);
    }
  }
  return Status::OK();
}

Result<std::string> NodeServer::HandleCheckpoint(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(dataflow::ControlEvent ev, DecodeControlEvent(body));
  if (ev.type != dataflow::ControlEvent::Type::kCheckpointBarrier) {
    return Status::InvalidArgument("kCheckpoint body is not a barrier");
  }
  CheckpointReply reply;
  reply.checkpoint_id = ev.id;
  for (auto& [op, shard] : shards_) {
    std::vector<uint32_t> owned(shard.owned.begin(), shard.owned.end());
    RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                           Snapshot(op, &shard, owned, ev.id));
    std::string image;
    rhino::EncodeReplicaState(rs, &image);
    reply.bytes += image.size();
    ++reply.operators;
    // Durable image first (the "DFS" copy), then the chain hop: a crash
    // between the two leaves at least the image restorable.
    RHINO_RETURN_NOT_OK(rhino::WriteCheckpointImage(
        env_, CheckpointImagePath(options_.ckpt_dir, node_id_.load(), op),
        rs));
    if (!successor_.empty() && transport_ != nullptr) {
      ReplicateStateRequest rep;
      rep.origin_node = node_id_.load();
      rep.op = op;
      rep.replica = std::move(image);
      std::string rep_body;
      rep.EncodeTo(&rep_body);
      RHINO_RETURN_NOT_OK(transport_->Call(
          successor_, MessageType::kReplicateState, rep_body, nullptr));
      reply.replicated = 1;
    }
  }
  obs_->trace().Emit("net", "node_checkpoint",
                     "node" + std::to_string(node_id_.load()), ev.id,
                     {{"bytes", static_cast<int64_t>(reply.bytes)}});
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

Result<std::string> NodeServer::HandleExtractVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HandoverStateRequest req,
                         HandoverStateRequest::Decode(body));
  if (req.control.handover == nullptr ||
      req.move_index >= req.control.handover->moves.size()) {
    return Status::InvalidArgument("extract request without a valid move");
  }
  const auto& spec = *req.control.handover;
  const auto& move = spec.moves[req.move_index];
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(spec.operator_name));
  for (uint32_t vnode : move.vnodes) {
    if (!shard->owned.count(vnode)) {
      return Status::FailedPrecondition("extract of unowned vnode " +
                                        std::to_string(vnode));
    }
  }
  RHINO_ASSIGN_OR_RETURN(
      rhino::ReplicaState rs,
      Snapshot(spec.operator_name, shard, move.vnodes, spec.id));
  obs_->trace().Emit("net", "handover_extract",
                     "node" + std::to_string(node_id_.load()), spec.id,
                     {{"vnodes", static_cast<int64_t>(move.vnodes.size())}});
  std::string out;
  EncodeReplicaState(rs, &out);
  return out;
}

Result<std::string> NodeServer::HandleIngestVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HandoverStateRequest req,
                         HandoverStateRequest::Decode(body));
  if (req.control.handover == nullptr ||
      req.move_index >= req.control.handover->moves.size()) {
    return Status::InvalidArgument("ingest request without a valid move");
  }
  const auto& spec = *req.control.handover;
  const auto& move = spec.moves[req.move_index];
  RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                         rhino::DecodeReplicaState(req.replica));
  RHINO_RETURN_NOT_OK(Absorb(spec.operator_name, rs, move.vnodes,
                             req.durable != 0));
  obs_->trace().Emit("net", "handover_ingest",
                     "node" + std::to_string(node_id_.load()), spec.id,
                     {{"vnodes", static_cast<int64_t>(move.vnodes.size())}});
  return std::string();
}

Result<std::string> NodeServer::HandleDropVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(VnodeSetRequest req, VnodeSetRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  RHINO_RETURN_NOT_OK(shard->backend->DropVnodes(req.vnodes));
  for (uint32_t vnode : req.vnodes) {
    shard->owned.erase(vnode);
    shard->watermarks.erase(vnode);
  }
  return std::string();
}

Result<std::string> NodeServer::HandleReplicateState(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ReplicateStateRequest req,
                         ReplicateStateRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                         rhino::DecodeReplicaState(req.replica));
  replicas_[{req.origin_node, req.op}] = std::move(rs);
  return std::string();
}

Result<std::string> NodeServer::HandleReplicaFetch(MessageType type,
                                                   std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ReplicaFetchRequest req,
                         ReplicaFetchRequest::Decode(body));
  rhino::ReplicaState rs;
  if (type == MessageType::kPromoteReplica) {
    auto it = replicas_.find({req.origin_node, req.op});
    if (it == replicas_.end()) {
      return Status::NotFound("no replica of node " +
                              std::to_string(req.origin_node) + " op " +
                              req.op + " on node " +
                              std::to_string(node_id_.load()));
    }
    rs = it->second;
  } else {
    RHINO_ASSIGN_OR_RETURN(
        rs, rhino::ReadCheckpointImage(
                env_, CheckpointImagePath(options_.ckpt_dir, req.origin_node,
                                          req.op)));
  }
  RHINO_RETURN_NOT_OK(Absorb(req.op, rs, req.vnodes, /*already_durable=*/true));
  obs_->trace().Emit(
      "net",
      type == MessageType::kPromoteReplica ? "promote_replica"
                                           : "restore_from_checkpoint",
      "node" + std::to_string(node_id_.load()), rs.latest_checkpoint_id,
      {{"origin", static_cast<int64_t>(req.origin_node)}});
  // The reply is the image minus the blobs: the driver only needs the
  // descriptor (replay watermarks) to rewind its partition cursors.
  rs.vnode_blobs.clear();
  std::string out;
  EncodeReplicaState(rs, &out);
  return out;
}

Result<std::string> NodeServer::HandleQueryCount(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(QueryCountRequest req,
                         QueryCountRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  uint32_t vnode = VnodeForKey(req.key, shard->num_vnodes);
  if (!shard->owned.count(vnode)) {
    return Status::FailedPrecondition("query for unowned vnode " +
                                      std::to_string(vnode));
  }
  QueryCountReply reply;
  RHINO_ASSIGN_OR_RETURN(
      reply.count,
      dataflow::ReadKeyedCount(shard->backend.get(), vnode, req.key));
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

Result<std::string> NodeServer::HandleStats() {
  StatsReply reply;
  for (const auto& [op, shard] : shards_) {
    reply.applied += shard.applied;
    reply.deduped += shard.deduped;
    reply.owned_vnodes += shard.owned.size();
    reply.state_bytes += shard.backend->SizeBytes();
  }
  reply.replicas_held = replicas_.size();
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

}  // namespace rhino::net
