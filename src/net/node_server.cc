#include "net/node_server.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "rhino/checkpoint_storage.h"
#include "state/modeled_state_backend.h"

namespace rhino::net {

namespace {
/// Pacing between retries after a stream failure: without it a dead
/// successor turns the replicator into a busy loop (loopback Call and a
/// broken channel Submit both fail instantly).
constexpr auto kReplErrorPacing = std::chrono::milliseconds(20);
}  // namespace

std::string CheckpointImagePath(const std::string& ckpt_dir,
                                uint32_t origin_node, const std::string& op) {
  return ckpt_dir + "/node-" + std::to_string(origin_node) + "-" + op +
         ".img";
}

NodeServer::NodeServer(lsm::Env* env, Transport* transport,
                       NodeServerOptions options, obs::Observability* obs)
    : env_(env),
      transport_(transport),
      options_(std::move(options)),
      obs_(obs != nullptr ? obs : obs::Observability::Default()) {
  if (options_.continuous_replication && transport_ != nullptr) {
    replicating_ = true;
    replicator_ = std::thread([this] { ReplicatorLoop(); });
  }
}

NodeServer::~NodeServer() { StopReplication(); }

void NodeServer::StopReplication() {
  {
    std::lock_guard<std::mutex> lock(repl_->mu);
    repl_->stop = true;
  }
  repl_->work_cv.notify_all();
  repl_->barrier_cv.notify_all();
  if (replicator_.joinable()) replicator_.join();
}

Result<std::string> NodeServer::Handle(MessageType type,
                                       std::string_view body) {
  if (type == MessageType::kCheckpoint) {
    // Manages its own locking: the barrier must wait with mu_ released so
    // the replicator can drain the stream.
    return HandleCheckpoint(body);
  }
  if (type == MessageType::kProcessBatch && options_.apply_delay_us > 0) {
    // Emulated service latency (bench seam) — outside mu_ so it models a
    // slow link, not a held lock.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.apply_delay_us));
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (type) {
    case MessageType::kHello:
      return HandleHello(body);
    case MessageType::kAddOperator:
      return HandleAddOperator(body);
    case MessageType::kProcessBatch:
      return HandleProcessBatch(body);
    case MessageType::kCheckpoint:
      break;  // dispatched above
    case MessageType::kExtractVnodes:
      return HandleExtractVnodes(body);
    case MessageType::kIngestVnodes:
      return HandleIngestVnodes(body);
    case MessageType::kDropVnodes:
      return HandleDropVnodes(body);
    case MessageType::kReplicateState:
      return HandleReplicateState(body);
    case MessageType::kPromoteReplica:
    case MessageType::kRestoreFromCheckpoint:
      return HandleReplicaFetch(type, body);
    case MessageType::kQueryCount:
      return HandleQueryCount(body);
    case MessageType::kStats:
      return HandleStats();
    case MessageType::kShutdown:
      shutdown_.store(true);
      return std::string();
    case MessageType::kReply:
      break;
  }
  return Status::InvalidArgument(std::string("node cannot serve ") +
                                 MessageTypeName(type));
}

Result<NodeServer::Shard*> NodeServer::FindShard(const std::string& op) {
  auto it = shards_.find(op);
  if (it == shards_.end()) {
    return Status::NotFound("no operator shard: " + op);
  }
  return &it->second;
}

Result<std::string> NodeServer::HandleHello(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HelloRequest req, HelloRequest::Decode(body));
  node_id_.store(req.node_id);
  successor_ = req.successor;
  RHINO_RETURN_NOT_OK(env_->CreateDir(options_.data_dir));
  RHINO_RETURN_NOT_OK(env_->CreateDir(options_.ckpt_dir));
  if (replicating_) {
    // The ring (re)formed: forget the old successor's failures and
    // re-baseline — everything owned ships again so the NEW successor
    // holds a complete replica, not just future deltas.
    {
      std::lock_guard<std::mutex> lock(repl_->mu);
      repl_->error = Status::OK();
    }
    for (const auto& [op, shard] : shards_) {
      MarkReplDirty(op, shard.host->owned());
    }
    repl_->work_cv.notify_all();
  }
  return std::string();
}

Result<std::string> NodeServer::HandleAddOperator(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(AddOperatorRequest req,
                         AddOperatorRequest::Decode(body));
  const dataflow::OperatorSpec& spec = req.spec;
  if (spec.num_vnodes == 0) {
    return Status::InvalidArgument("num_vnodes must be > 0");
  }
  auto it = shards_.find(spec.name);
  if (it != shards_.end()) {
    // Idempotent re-add (driver retry after a transport hiccup).
    const dataflow::OperatorSpec& have = it->second.host->spec();
    if (have.num_vnodes != spec.num_vnodes || have.kind != spec.kind) {
      return Status::AlreadyExists("operator " + spec.name +
                                   " exists with a different spec");
    }
    return std::string();
  }
  std::unique_ptr<state::StateBackend> backend;
  if (spec.kind == dataflow::OperatorKind::kModeledState) {
    // Modeled operators account bytes instead of materializing values —
    // no LSM shard on disk, same protocols above the backend interface.
    backend = std::make_unique<state::ModeledStateBackend>(spec.name,
                                                           node_id_.load());
  } else {
    // Real worker processes take flushes/compactions off the RPC thread:
    // a ProcessBatch that fills a memtable schedules the flush and
    // returns instead of paying for it inline (failures surface on the
    // next write).
    lsm::Options lsm_options;
    lsm_options.background_maintenance = true;
    RHINO_ASSIGN_OR_RETURN(
        backend,
        state::LsmStateBackend::Open(env_, options_.data_dir + "/" + spec.name,
                                     spec.name, node_id_.load(),
                                     std::move(lsm_options)));
  }
  const uint32_t num_vnodes = spec.num_vnodes;
  RHINO_ASSIGN_OR_RETURN(
      auto host,
      dataflow::OperatorHost::Create(
          spec, std::move(backend),
          [num_vnodes](uint64_t key) { return VnodeForKey(key, num_vnodes); },
          node_id_.load()));
  host->InitOwned(req.owned_vnodes);
  Shard shard;
  shard.host = std::move(host);
  shards_.emplace(spec.name, std::move(shard));
  // Baseline the stream: even before any traffic, the successor should
  // hold an (empty-state) replica of every owned vnode, so promotion
  // works for a node killed right after setup.
  MarkReplDirty(spec.name, req.owned_vnodes);
  return std::string();
}

Result<std::string> NodeServer::HandleProcessBatch(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ProcessBatchRequest req,
                         ProcessBatchRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  // The host runs the same dedup + operator core as the in-process
  // engine; strict ownership turns a misrouted record into a clean
  // FailedPrecondition before any state mutation.
  dataflow::Batch out;
  out.create_time = req.batch.create_time;
  RHINO_ASSIGN_OR_RETURN(
      dataflow::ApplyResult applied,
      shard->host->Apply(static_cast<int>(req.side), req.batch,
                         /*now=*/req.batch.create_time, &out,
                         /*strict_ownership=*/true));
  ProcessBatchReply reply;
  reply.applied = applied.applied;
  reply.deduped = applied.deduped;
  reply.applied_vnodes.assign(applied.applied_vnodes.begin(),
                              applied.applied_vnodes.end());
  if (req.return_outputs != 0 && out.count > 0) {
    EncodeBatch(out, &reply.outputs);
  }
  MarkReplDirty(req.op, applied.applied_vnodes);
  shard->applied += reply.applied;
  shard->deduped += reply.deduped;
  std::string encoded;
  reply.EncodeTo(&encoded);
  return encoded;
}

Result<rhino::ReplicaState> NodeServer::Snapshot(
    Shard* shard, const std::vector<uint32_t>& vnodes, uint64_t id) {
  RHINO_ASSIGN_OR_RETURN(dataflow::OperatorImage image,
                         shard->host->ExtractImage(vnodes, id));
  // For the join, this image is the unit of consistency: both side
  // columns of a vnode travel inside one blob.
  image.descriptor.instance_id = node_id_.load();
  rhino::ReplicaState rs;
  rs.latest_checkpoint_id = id;
  rs.latest_descriptor = std::move(image.descriptor);
  rs.vnode_blobs = std::move(image.blobs);
  return rs;
}

Status NodeServer::Absorb(const std::string& op, rhino::ReplicaState&& rs,
                          const std::vector<uint32_t>& vnodes,
                          bool already_durable) {
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(op));
  dataflow::OperatorImage image;
  // Blobs are stolen (they dominate the image); the descriptor is copied
  // because kPromoteReplica still returns it to the driver afterwards.
  image.descriptor = rs.latest_descriptor;
  image.blobs = std::move(rs.vnode_blobs);
  // Dedup positions come WITH the state: replay resumes exactly where the
  // snapshot stopped (the host assigns, never max-merges).
  RHINO_ASSIGN_OR_RETURN(std::vector<uint32_t> absorbed,
                         shard->host->Absorb(image, vnodes, already_durable));
  // Newly absorbed vnodes are writes this node's OWN successor has not
  // seen yet.
  MarkReplDirty(op, absorbed);
  return Status::OK();
}

Result<std::string> NodeServer::HandleCheckpoint(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(dataflow::ControlEvent ev, DecodeControlEvent(body));
  if (ev.type != dataflow::ControlEvent::Type::kCheckpointBarrier) {
    return Status::InvalidArgument("kCheckpoint body is not a barrier");
  }
  CheckpointReply reply;
  reply.checkpoint_id = ev.id;
  bool want_barrier = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [op, shard] : shards_) {
      const auto& owned_set = shard.host->owned();
      std::vector<uint32_t> owned(owned_set.begin(), owned_set.end());
      RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                             Snapshot(&shard, owned, ev.id));
      std::string image;
      rhino::EncodeReplicaState(rs, &image);
      reply.bytes += image.size();
      ++reply.operators;
      // Durable image first (the "DFS" copy), then the chain hop: a crash
      // between the two leaves at least the image restorable.
      RHINO_RETURN_NOT_OK(rhino::WriteCheckpointImage(
          env_, CheckpointImagePath(options_.ckpt_dir, node_id_.load(), op),
          rs));
      if (!replicating_ && !successor_.empty() && transport_ != nullptr) {
        // Sync mode: the full image hops the chain inside the barrier —
        // checkpoint cost scales with total state volume.
        ReplicateStateRequest rep;
        rep.origin_node = node_id_.load();
        rep.op = op;
        rep.replica = std::move(image);
        std::string rep_body;
        rep.EncodeTo(&rep_body);
        RHINO_RETURN_NOT_OK(transport_->Call(
            successor_, MessageType::kReplicateState, rep_body, nullptr));
        reply.replicated = 1;
      }
    }
    want_barrier = replicating_ && !successor_.empty();
  }
  if (want_barrier) {
    // Continuous mode: replication already streamed in the background;
    // the barrier only waits for the stream to drain (sequence-number
    // barrier), independent of how much state the deltas carried.
    RHINO_RETURN_NOT_OK(WaitReplicationBarrier());
    reply.replicated = 1;
  }
  obs_->trace().Emit("net", "node_checkpoint",
                     "node" + std::to_string(node_id_.load()), ev.id,
                     {{"bytes", static_cast<int64_t>(reply.bytes)}});
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

Result<std::string> NodeServer::HandleExtractVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HandoverStateRequest req,
                         HandoverStateRequest::Decode(body));
  if (req.control.handover == nullptr ||
      req.move_index >= req.control.handover->moves.size()) {
    return Status::InvalidArgument("extract request without a valid move");
  }
  const auto& spec = *req.control.handover;
  const auto& move = spec.moves[req.move_index];
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(spec.operator_name));
  for (uint32_t vnode : move.vnodes) {
    if (!shard->host->Owns(vnode)) {
      return Status::FailedPrecondition("extract of unowned vnode " +
                                        std::to_string(vnode));
    }
  }
  RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                         Snapshot(shard, move.vnodes, spec.id));
  obs_->trace().Emit("net", "handover_extract",
                     "node" + std::to_string(node_id_.load()), spec.id,
                     {{"vnodes", static_cast<int64_t>(move.vnodes.size())}});
  std::string out;
  EncodeReplicaState(rs, &out);
  return out;
}

Result<std::string> NodeServer::HandleIngestVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(HandoverStateRequest req,
                         HandoverStateRequest::Decode(body));
  if (req.control.handover == nullptr ||
      req.move_index >= req.control.handover->moves.size()) {
    return Status::InvalidArgument("ingest request without a valid move");
  }
  const auto& spec = *req.control.handover;
  const auto& move = spec.moves[req.move_index];
  RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                         rhino::DecodeReplicaState(req.replica));
  RHINO_RETURN_NOT_OK(Absorb(spec.operator_name, std::move(rs), move.vnodes,
                             req.durable != 0));
  obs_->trace().Emit("net", "handover_ingest",
                     "node" + std::to_string(node_id_.load()), spec.id,
                     {{"vnodes", static_cast<int64_t>(move.vnodes.size())}});
  return std::string();
}

Result<std::string> NodeServer::HandleDropVnodes(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(VnodeSetRequest req, VnodeSetRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  RHINO_RETURN_NOT_OK(shard->host->Drop(req.vnodes));
  if (replicating_ && !req.vnodes.empty()) {
    // Dropped vnodes become stream tombstones: the successor must purge
    // them from its replica, or a later promotion would resurrect state
    // that was handed to another node (double counting).
    {
      std::lock_guard<std::mutex> lock(repl_->mu);
      auto dit = repl_->dirty.find(req.op);
      if (dit != repl_->dirty.end()) {
        for (uint32_t vnode : req.vnodes) dit->second.erase(vnode);
        if (dit->second.empty()) repl_->dirty.erase(dit);
      }
      auto& tomb = repl_->dropped[req.op];
      tomb.insert(req.vnodes.begin(), req.vnodes.end());
    }
    repl_->work_cv.notify_all();
  }
  return std::string();
}

Result<std::string> NodeServer::HandleReplicateState(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ReplicateStateRequest req,
                         ReplicateStateRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(rhino::ReplicaState rs,
                         rhino::DecodeReplicaState(req.replica));
  if (req.delta == 0) {
    // Full image (sync-mode checkpoint hop): wholesale replace.
    replicas_[{req.origin_node, req.op}] = std::move(rs);
    return std::string();
  }
  // Streamed delta: merge per vnode. The channel delivers deltas in
  // stream order, so last-writer-wins per vnode is exactly the origin's
  // latest snapshot of it.
  auto& dst = replicas_[{req.origin_node, req.op}];
  if (rs.latest_checkpoint_id > dst.latest_checkpoint_id) {
    dst.latest_checkpoint_id = rs.latest_checkpoint_id;
    dst.latest_descriptor.checkpoint_id = rs.latest_descriptor.checkpoint_id;
  }
  dst.latest_descriptor.operator_name = rs.latest_descriptor.operator_name;
  dst.latest_descriptor.instance_id = rs.latest_descriptor.instance_id;
  // desc.vnode_bytes names every vnode the delta carries (a blob may be
  // absent when the vnode's state is empty — then the replica's copy is
  // cleared, not kept).
  for (const auto& [vnode, bytes] : rs.latest_descriptor.vnode_bytes) {
    dst.latest_descriptor.vnode_bytes[vnode] = bytes;
    auto marks = rs.latest_descriptor.vnode_watermarks.find(vnode);
    if (marks != rs.latest_descriptor.vnode_watermarks.end()) {
      dst.latest_descriptor.vnode_watermarks[vnode] = marks->second;
    } else {
      dst.latest_descriptor.vnode_watermarks.erase(vnode);
    }
    auto blob = rs.vnode_blobs.find(vnode);
    if (blob != rs.vnode_blobs.end()) {
      dst.vnode_blobs[vnode] = std::move(blob->second);
    } else {
      dst.vnode_blobs.erase(vnode);
    }
  }
  for (uint32_t vnode : req.dropped_vnodes) {
    dst.vnode_blobs.erase(vnode);
    dst.latest_descriptor.vnode_bytes.erase(vnode);
    dst.latest_descriptor.vnode_watermarks.erase(vnode);
  }
  return std::string();
}

Result<std::string> NodeServer::HandleReplicaFetch(MessageType type,
                                                   std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(ReplicaFetchRequest req,
                         ReplicaFetchRequest::Decode(body));
  rhino::ReplicaState rs;
  if (type == MessageType::kPromoteReplica) {
    auto it = replicas_.find({req.origin_node, req.op});
    if (it == replicas_.end()) {
      return Status::NotFound("no replica of node " +
                              std::to_string(req.origin_node) + " op " +
                              req.op + " on node " +
                              std::to_string(node_id_.load()));
    }
    rs = it->second;
  } else {
    RHINO_ASSIGN_OR_RETURN(
        rs, rhino::ReadCheckpointImage(
                env_, CheckpointImagePath(options_.ckpt_dir, req.origin_node,
                                          req.op)));
  }
  RHINO_RETURN_NOT_OK(
      Absorb(req.op, std::move(rs), req.vnodes, /*already_durable=*/true));
  obs_->trace().Emit(
      "net",
      type == MessageType::kPromoteReplica ? "promote_replica"
                                           : "restore_from_checkpoint",
      "node" + std::to_string(node_id_.load()), rs.latest_checkpoint_id,
      {{"origin", static_cast<int64_t>(req.origin_node)}});
  // The reply is the image minus the blobs: the driver only needs the
  // descriptor (replay watermarks) to rewind its partition cursors.
  rs.vnode_blobs.clear();
  std::string out;
  EncodeReplicaState(rs, &out);
  return out;
}

Result<std::string> NodeServer::HandleQueryCount(std::string_view body) {
  RHINO_ASSIGN_OR_RETURN(QueryCountRequest req,
                         QueryCountRequest::Decode(body));
  RHINO_ASSIGN_OR_RETURN(Shard * shard, FindShard(req.op));
  uint32_t vnode = shard->host->VnodeOf(req.key);
  if (!shard->host->Owns(vnode)) {
    return Status::FailedPrecondition("query for unowned vnode " +
                                      std::to_string(vnode));
  }
  RHINO_ASSIGN_OR_RETURN(dataflow::OperatorQueryResult result,
                         shard->host->Query(req.key));
  QueryCountReply reply;
  reply.count = result.count;
  reply.left = result.left;
  reply.right = result.right;
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

Result<std::string> NodeServer::HandleStats() {
  StatsReply reply;
  for (const auto& [op, shard] : shards_) {
    reply.applied += shard.applied;
    reply.deduped += shard.deduped;
    reply.owned_vnodes += shard.host->owned().size();
    reply.state_bytes += shard.host->backend()->SizeBytes();
  }
  reply.replicas_held = replicas_.size();
  {
    std::lock_guard<std::mutex> lock(repl_->mu);
    for (const auto& [op, set] : repl_->dirty) reply.repl_dirty += set.size();
    for (const auto& [op, set] : repl_->dropped) {
      reply.repl_dirty += set.size();
    }
    reply.repl_inflight = repl_->inflight;
    reply.repl_stream_seq = repl_->stream_seq;
    reply.repl_shipped = repl_->shipped;
  }
  std::string out;
  reply.EncodeTo(&out);
  return out;
}

void NodeServer::ReplicatorLoop() {
  // The loop holds repl_->mu only for bookkeeping and mu_ only while
  // snapshotting; the actual ship is an async submit, so writers are
  // never blocked behind the network.
  auto repl = repl_;
  while (true) {
    std::string op;
    std::vector<uint32_t> vnodes;
    std::vector<uint32_t> dropped;
    bool paced = false;
    {
      std::unique_lock<std::mutex> lock(repl->mu);
      repl->work_cv.wait(lock, [&] {
        return repl->stop ||
               ((!repl->dirty.empty() || !repl->dropped.empty()) &&
                repl->inflight < options_.repl_credit_window);
      });
      if (repl->stop) return;
      op = !repl->dirty.empty() ? repl->dirty.begin()->first
                                : repl->dropped.begin()->first;
      auto dit = repl->dirty.find(op);
      if (dit != repl->dirty.end()) {
        vnodes.assign(dit->second.begin(), dit->second.end());
        repl->dirty.erase(dit);
      }
      auto tit = repl->dropped.find(op);
      if (tit != repl->dropped.end()) {
        dropped.assign(tit->second.begin(), tit->second.end());
        repl->dropped.erase(tit);
      }
      ++repl->inflight;  // credit spent before the lock drops
      paced = !repl->error.ok();
    }
    if (paced) {
      // Last ship failed (dead successor until the ring re-forms): retry,
      // but not in a busy loop.
      std::this_thread::sleep_for(kReplErrorPacing);
      std::lock_guard<std::mutex> lock(repl->mu);
      if (repl->stop) {
        --repl->inflight;
        return;
      }
    }
    // Snapshot a consistent delta under mu_: each vnode's blob and its
    // replay watermarks are captured together, so a promoted replica
    // resumes dedup exactly where its state stopped.
    ReplicateStateRequest req;
    std::string successor;
    Status failure;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      successor = successor_;
      if (!successor.empty()) {
        auto it = shards_.find(op);
        std::vector<uint32_t> live;
        if (it != shards_.end()) {
          for (uint32_t vnode : vnodes) {
            // A vnode dirtied then handed away ships as a tombstone, not
            // as state.
            if (it->second.host->Owns(vnode)) live.push_back(vnode);
          }
        }
        if (!live.empty() || !dropped.empty()) {
          uint64_t seq;
          {
            std::lock_guard<std::mutex> rlock(repl->mu);
            seq = ++repl->stream_seq;
          }
          rhino::ReplicaState rs;
          if (!live.empty()) {
            auto snap = Snapshot(&it->second, live, seq);
            if (!snap.ok()) {
              failure = snap.status();
            } else {
              rs = std::move(snap).MoveValue();
            }
          } else {
            rs.latest_checkpoint_id = seq;
            rs.latest_descriptor.checkpoint_id = seq;
            rs.latest_descriptor.operator_name = op;
            rs.latest_descriptor.instance_id = node_id_.load();
          }
          if (failure.ok()) {
            req.origin_node = node_id_.load();
            req.op = op;
            rhino::EncodeReplicaState(rs, &req.replica);
            req.stream_seq = seq;
            req.delta = 1;
            req.dropped_vnodes = dropped;
            have = true;
          }
        }
      }
    }
    if (!have) {
      // Nothing to ship (no successor, or the vnodes all moved away) or
      // the snapshot failed. Return the credit; re-mark on failure.
      std::lock_guard<std::mutex> lock(repl->mu);
      --repl->inflight;
      if (!failure.ok()) {
        repl->error = failure;
        repl->dirty[op].insert(vnodes.begin(), vnodes.end());
        if (!dropped.empty()) {
          repl->dropped[op].insert(dropped.begin(), dropped.end());
        }
      }
      repl->work_cv.notify_all();
      repl->barrier_cv.notify_all();
      continue;
    }
    std::string req_body;
    req.EncodeTo(&req_body);
    // The callback captures only the shared stream block (+ the work it
    // would have to re-mark): the transport may run it after this
    // NodeServer is gone.
    Status submitted = transport_->CallAsync(
        successor, MessageType::kReplicateState, std::move(req_body),
        [repl, op, vnodes, dropped](Status st, std::string /*reply*/) {
          {
            std::lock_guard<std::mutex> lock(repl->mu);
            --repl->inflight;
            if (st.ok()) {
              ++repl->shipped;
              repl->error = Status::OK();
            } else {
              // Unacked work goes back on the stream; a waiting barrier
              // fails fast on the sticky error.
              repl->error = st;
              repl->dirty[op].insert(vnodes.begin(), vnodes.end());
              if (!dropped.empty()) {
                repl->dropped[op].insert(dropped.begin(), dropped.end());
              }
            }
          }
          repl->work_cv.notify_all();
          repl->barrier_cv.notify_all();
        });
    if (!submitted.ok()) {
      // Never handed to the transport — the callback will not run.
      {
        std::lock_guard<std::mutex> lock(repl->mu);
        --repl->inflight;
        repl->error = submitted;
        repl->dirty[op].insert(vnodes.begin(), vnodes.end());
        if (!dropped.empty()) {
          repl->dropped[op].insert(dropped.begin(), dropped.end());
        }
      }
      repl->work_cv.notify_all();
      repl->barrier_cv.notify_all();
    }
  }
}

Status NodeServer::WaitReplicationBarrier() {
  auto repl = repl_;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.barrier_timeout_ms);
  std::unique_lock<std::mutex> lock(repl->mu);
  bool done = repl->barrier_cv.wait_until(lock, deadline, [&] {
    return repl->stop || !repl->error.ok() ||
           (repl->dirty.empty() && repl->dropped.empty() &&
            repl->inflight == 0);
  });
  if (!repl->error.ok()) {
    return Status(repl->error.code(),
                  "replication stream to successor failed: " +
                      repl->error.ToString());
  }
  if (repl->stop) return Status::Aborted("node stopping");
  if (!done) {
    return Status::TimedOut("replication barrier: stream not drained after " +
                            std::to_string(options_.barrier_timeout_ms) +
                            "ms");
  }
  return Status::OK();
}

}  // namespace rhino::net
