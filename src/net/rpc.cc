#include "net/rpc.h"

#include <utility>

#include "common/logging.h"
#include "net/frame.h"

namespace rhino::net {

namespace {

/// Accept/read poll interval: how often blocked server threads re-check
/// the stop flag. Long enough to stay off the profile, short enough that
/// Stop() completes promptly.
constexpr int kServerPollMs = 100;

}  // namespace

// ---------------------------------------------------------------- server --

Status RpcServer::Start(const std::string& host, uint16_t port) {
  RHINO_ASSIGN_OR_RETURN(listener_, Socket::Listen(host, port));
  RHINO_RETURN_NOT_OK(listener_.SetRecvTimeout(kServerPollMs));
  port_ = listener_.local_port();
  stop_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  if (stop_.exchange(true)) {
    // Second caller still joins in case the first is mid-Stop.
  }
  if (listener_.valid()) listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : conns_) conn->ShutdownBoth();
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  listener_.Close();
}

void RpcServer::AcceptLoop() {
  while (!stop_.load()) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kTimedOut) continue;
      // Listener shut down (Stop) or hard error: either way the accept
      // loop is done.
      break;
    }
    auto conn = std::make_shared<Socket>(std::move(accepted).MoveValue());
    if (!conn->SetRecvTimeout(kServerPollMs).ok()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load()) break;
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { Serve(*conn); });
  }
}

void RpcServer::Serve(Socket& conn) {
  std::string frame;
  while (!stop_.load()) {
    Status st = ReadFrame(conn, &frame);
    if (st.code() == StatusCode::kTimedOut) continue;  // poll stop flag
    if (!st.ok()) {
      // Aborted = client hung up cleanly; IOError = mid-message
      // disconnect; Corruption = garbage framing. None of them can be
      // answered (the stream is unsynchronized), so drop the connection —
      // the client's whole-call retry reconnects on a fresh stream.
      break;
    }
    auto request = RequestEnvelope::Decode(frame);
    ReplyEnvelope reply;
    if (!request.ok()) {
      // Framing was intact but the envelope is malformed: report it on
      // seq 0 (the client detects the mismatch and fails the call), then
      // resynchronize by closing.
      reply.seq = 0;
      reply.code = request.status().code();
      reply.message = request.status().message();
    } else {
      reply.seq = request->seq;
      auto result = handler_(request->type, request->body);
      if (result.ok()) {
        reply.body = std::move(result).MoveValue();
      } else {
        reply.code = result.status().code();
        reply.message = result.status().message();
      }
    }
    std::string encoded;
    reply.EncodeTo(&encoded);
    if (!WriteFrame(conn, encoded).ok()) break;
    if (!request.ok()) break;
  }
  conn.Close();
}

// ---------------------------------------------------------------- client --

RpcClient::RpcClient(std::string host, uint16_t port, RpcClientOptions options,
                     std::string what)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      what_(std::move(what)) {}

RpcClient::~RpcClient() { Disconnect(); }

void RpcClient::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  conn_.Close();
}

Status RpcClient::Call(MessageType type, std::string_view body,
                       std::string* reply_body) {
  std::lock_guard<std::mutex> lock(mu_);
  // Seed the backoff jitter from the endpoint + call count so concurrent
  // clients de-synchronize deterministically (no wall-clock entropy).
  runtime::BlockingRetrier retrier(
      options_.retry, Fnv1a64(host_) + port_ + next_seq_, what_);
  Status last;
  while (true) {
    last = CallOnce(type, body, reply_body);
    if (last.ok() || !runtime::IsTransientStatus(last)) return last;
    conn_.Close();  // reconnect on a fresh stream
    if (!retrier.BackoffAndRetry()) break;
  }
  return retrier.Exhausted(last);
}

Status RpcClient::CallOnce(MessageType type, std::string_view body,
                           std::string* reply_body) {
  if (!conn_.valid()) {
    RHINO_ASSIGN_OR_RETURN(conn_, Socket::Connect(host_, port_));
    RHINO_RETURN_NOT_OK(conn_.SetRecvTimeout(options_.recv_timeout_ms));
  }
  RequestEnvelope request;
  request.type = type;
  request.seq = next_seq_++;
  request.body.assign(body);
  std::string frame;
  request.EncodeTo(&frame);
  RHINO_RETURN_NOT_OK(WriteFrame(conn_, frame));

  std::string reply_frame;
  Status read = ReadFrame(conn_, &reply_frame);
  if (read.code() == StatusCode::kAborted) {
    // The peer closed cleanly after we sent the request (e.g. a server
    // restart). Every verb is idempotent, so surface it as a transient
    // IOError and let the whole-call retry reconnect and resend.
    return Status::IOError(what_ + ": connection closed before reply");
  }
  RHINO_RETURN_NOT_OK(read);
  RHINO_ASSIGN_OR_RETURN(ReplyEnvelope reply,
                         ReplyEnvelope::Decode(reply_frame));
  if (reply.seq != request.seq) {
    // The server lost sync (e.g. it rejected our envelope on seq 0).
    // Treat as an IO failure so the retry path reconnects cleanly.
    return Status::IOError(what_ + ": reply seq " + std::to_string(reply.seq) +
                           " for request " + std::to_string(request.seq));
  }
  RHINO_RETURN_NOT_OK(reply.ToStatus());
  if (reply_body != nullptr) *reply_body = std::move(reply.body);
  return Status::OK();
}

}  // namespace rhino::net
