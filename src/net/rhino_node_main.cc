#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "lsm/env.h"
#include "net/node_server.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "obs/exporters.h"
#include "obs/observability.h"

/// \file rhino_node_main.cc
/// `rhino_node`: one worker process of the networked runtime.
///
/// Hosts a `NodeServer` (operator shards + LSM state on local disk) behind
/// an `RpcServer`, and a `TcpTransport` for its own outbound chain
/// replication. The driver process configures it entirely over RPC
/// (kHello / kAddOperator), so the command line only names where to
/// listen and where state lives:
///
///   rhino_node --port=0 --data-dir=/tmp/n0 --ckpt-dir=/tmp/ckpt
///
/// On startup the bound port is announced on stdout as
/// `RHINO_NODE_PORT=<port>` (port 0 requests a kernel-assigned port), which
/// is how launchers and the multi-process test discover dynamically bound
/// nodes. The process exits on kShutdown, SIGTERM, or SIGINT.

namespace {

volatile std::sig_atomic_t g_signaled = 0;

void OnSignal(int) { g_signaled = 1; }

/// CI forensics: mirror the chaos/bench idiom — when RHINO_TRACE_DUMP
/// names a directory, write this node's Chrome trace there on exit. The
/// multiprocess-e2e lane uploads that directory as a build artifact.
void MaybeDumpTrace(uint32_t node_id) {
  const char* dir = std::getenv("RHINO_TRACE_DUMP");
  if (dir == nullptr || *dir == '\0') return;
  auto* obs = rhino::obs::Observability::Default();
  std::string path = std::string(dir) + "/rhino_node_" +
                     std::to_string(node_id) + "_trace.json";
  (void)rhino::obs::WriteTextFile(path,
                                  rhino::obs::TraceToChromeJson(obs->trace()));
}

const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string data_dir = "rhino-node-data";
  std::string ckpt_dir = "rhino-node-ckpt";
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--host")) {
      host = v;
    } else if (const char* v = FlagValue(argv[i], "--port")) {
      port = std::atoi(v);
    } else if (const char* v = FlagValue(argv[i], "--data-dir")) {
      data_dir = v;
    } else if (const char* v = FlagValue(argv[i], "--ckpt-dir")) {
      ckpt_dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: rhino_node [--host=H] [--port=P] [--data-dir=D] "
                   "[--ckpt-dir=D]\n");
      return 2;
    }
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  rhino::lsm::PosixEnv env;
  rhino::net::TcpTransport transport;
  rhino::net::NodeServer node(
      &env, &transport,
      rhino::net::NodeServerOptions{data_dir, ckpt_dir});
  rhino::net::RpcServer server(node.AsHandler());
  rhino::Status st = server.Start(host, static_cast<uint16_t>(port));
  if (!st.ok()) {
    std::fprintf(stderr, "rhino_node: %s\n", st.ToString().c_str());
    return 1;
  }
  // The launch handshake: parent parses this line to learn the bound port.
  std::printf("RHINO_NODE_PORT=%u\n", server.port());
  std::fflush(stdout);

  while (!node.shutdown_requested() && !g_signaled) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop();
  MaybeDumpTrace(node.node_id());
  std::fprintf(stderr, "rhino_node: node %u exiting\n", node.node_id());
  return 0;
}
