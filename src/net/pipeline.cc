#include "net/pipeline.h"

#include <utility>
#include <vector>

#include "common/hash.h"
#include "net/frame.h"

namespace rhino::net {

PipelinedChannel::PipelinedChannel(std::string host, uint16_t port,
                                   PipelinedChannelOptions options,
                                   std::string what, obs::Observability* obs)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      what_(std::move(what)) {
  if (obs == nullptr) obs = obs::Observability::Default();
  inflight_gauge_ = obs->metrics().GetGauge("rhino_net_inflight",
                                            {{"endpoint", endpoint()}});
  latency_ms_ = obs->metrics().GetHistogram("rhino_net_call_latency_ms",
                                            {{"endpoint", endpoint()}});
  reader_ = std::thread([this] { ReaderLoop(); });
}

PipelinedChannel::~PipelinedChannel() {
  Close();
  if (reader_.joinable()) reader_.join();
}

Status PipelinedChannel::Submit(MessageType type, std::string body,
                                Callback cb) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [&] {
      return closing_ || !broken_.ok() ||
             pending_.size() + reserved_ < options_.window;
    });
    if (closing_) return Status::Aborted(what_ + ": channel closed");
    if (!broken_.ok()) return broken_;
    // Hold the slot (not yet a pending entry) across the wmu_ wait below
    // so concurrent submitters cannot oversubscribe the window.
    ++reserved_;
  }

  // Writes serialize under wmu_ with the seq assigned inside the same
  // critical section: wire order == seq order, which the server's serial
  // apply turns into FIFO application per channel (see file comment).
  std::unique_lock<std::mutex> wlock(wmu_);
  std::string frame;
  uint64_t seq = 0;
  bool write_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --reserved_;
    if (closing_) {
      space_cv_.notify_all();
      return Status::Aborted(what_ + ": channel closed");
    }
    if (!broken_.ok()) {
      space_cv_.notify_all();
      return broken_;
    }
    seq = next_seq_++;
    RequestEnvelope env;
    env.type = type;
    env.seq = seq;
    env.body = std::move(body);
    env.EncodeTo(&frame);
    Pending p;
    p.type = type;
    p.body = std::move(env.body);
    p.cb = std::move(cb);
    p.submitted = std::chrono::steady_clock::now();
    p.deadline = p.submitted + std::chrono::milliseconds(options_.deadline_ms);
    pending_.emplace(seq, std::move(p));
    if (pending_.size() > high_water_) {
      high_water_ = static_cast<uint32_t>(pending_.size());
    }
    inflight_gauge_->Set(static_cast<double>(pending_.size()));
    write_now = connected_;
  }
  if (write_now) {
    Status st = WriteFrame(conn_, frame);
    if (!st.ok()) {
      // Park the window for the reader to replay. Shutdown (not close):
      // the fd number stays reserved so no submitter can ever write into
      // a recycled descriptor.
      {
        std::lock_guard<std::mutex> lock(mu_);
        connected_ = false;
      }
      conn_.ShutdownBoth();
    }
  }
  wlock.unlock();
  // Reader may be idle (empty window) or parked on a dead connection.
  work_cv_.notify_all();
  return Status::OK();
}

Status PipelinedChannel::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  space_cv_.wait(lock, [&] {
    return closing_ || !broken_.ok() ||
           (pending_.empty() && reserved_ == 0);
  });
  if (!broken_.ok()) return broken_;
  if (!pending_.empty() || reserved_ != 0) {
    return Status::Aborted(what_ + ": closed while draining");
  }
  return Status::OK();
}

void PipelinedChannel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) return;
    closing_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  {
    // Unblocks a reader mid-ReadFrame; reconnect loops observe closing_.
    std::lock_guard<std::mutex> wlock(wmu_);
    conn_.ShutdownBoth();
  }
  FailAllPending(Status::Aborted(what_ + ": channel closed"));
}

uint32_t PipelinedChannel::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(pending_.size());
}

uint32_t PipelinedChannel::inflight_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t PipelinedChannel::replayed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replayed_total_;
}

void PipelinedChannel::ReaderLoop() {
  while (true) {
    bool need_reconnect = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return closing_ || !broken_.ok() || !pending_.empty();
      });
      if (closing_ || !broken_.ok()) return;
      need_reconnect = !connected_;
    }
    if (need_reconnect) {
      if (!ReconnectAndReplay()) return;
      continue;
    }
    std::string payload;
    Status st = ReadFrame(conn_, &payload);
    if (st.code() == StatusCode::kTimedOut) {
      SweepDeadlines();
      continue;
    }
    if (!st.ok()) {
      // Aborted/IOError: connection dropped. Corruption: the reply
      // stream lost sync. Either way the stream is unusable; park the
      // window and reconnect (replay is idempotent server-side).
      {
        std::lock_guard<std::mutex> lock(mu_);
        connected_ = false;
      }
      {
        std::lock_guard<std::mutex> wlock(wmu_);
        conn_.ShutdownBoth();
      }
      SweepDeadlines();
      continue;
    }
    auto reply = ReplyEnvelope::Decode(payload);
    if (!reply.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      connected_ = false;
      continue;
    }
    CompleteOne(reply->seq, reply->ToStatus(), std::move(reply->body));
  }
}

bool PipelinedChannel::ReconnectAndReplay() {
  std::unique_lock<std::mutex> wlock(wmu_);
  // Fresh budget per outage episode, seeded deterministically (endpoint +
  // progress so far) like the blocking client.
  runtime::BlockingRetrier retrier(options_.retry,
                                   Fnv1a64(host_) + port_ + next_seq_,
                                   what_ + ":reconnect");
  Status last = Status::IOError(what_ + ": not connected");
  bool first_attempt = true;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) return false;
      if (pending_.empty()) return true;  // nothing owed; connect lazily
    }
    if (!first_attempt && !retrier.BackoffAndRetry()) {
      Status verdict = retrier.Exhausted(last);
      {
        std::lock_guard<std::mutex> lock(mu_);
        broken_ = verdict;
      }
      FailAllPending(verdict);
      return false;
    }
    first_attempt = false;
    conn_.Close();
    auto sock = Socket::Connect(host_, port_);
    if (!sock.ok()) {
      last = sock.status();
      continue;
    }
    conn_ = std::move(sock).MoveValue();
    Status st = conn_.SetRecvTimeout(options_.poll_ms);
    if (!st.ok()) {
      last = st;
      continue;
    }
    // Replay the whole window in seq order. Replies that were lost with
    // the old connection re-apply server-side as dedups — idempotence is
    // what makes replay exactly-once from the application's view.
    std::vector<std::pair<uint64_t, std::pair<MessageType, std::string>>> window;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [seq, p] : pending_) {
        window.emplace_back(seq, std::make_pair(p.type, p.body));
      }
    }
    bool wrote_all = true;
    for (auto& [seq, req] : window) {
      RequestEnvelope env;
      env.type = req.first;
      env.seq = seq;
      env.body = std::move(req.second);
      std::string frame;
      env.EncodeTo(&frame);
      st = WriteFrame(conn_, frame);
      if (!st.ok()) {
        last = st;
        wrote_all = false;
        break;
      }
    }
    if (!wrote_all) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) return false;
      connected_ = true;
      // The lazy FIRST connection also flows through here; only a
      // re-established one counts as replay.
      if (ever_connected_) replayed_total_ += window.size();
      ever_connected_ = true;
    }
    return true;
  }
}

void PipelinedChannel::SweepDeadlines() {
  auto now = std::chrono::steady_clock::now();
  std::vector<Pending> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.deadline <= now) {
        expired.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    if (!expired.empty()) {
      inflight_gauge_->Set(static_cast<double>(pending_.size()));
      space_cv_.notify_all();
    }
  }
  for (auto& p : expired) {
    // The request may still apply server-side; a late reply to this id
    // is dropped. Callers treat TimedOut as transient and replay — the
    // server dedups.
    if (p.cb) {
      p.cb(Status::TimedOut(what_ + ": no reply within " +
                            std::to_string(options_.deadline_ms) + "ms"),
           std::string());
    }
  }
}

void PipelinedChannel::FailAllPending(const Status& st) {
  std::map<uint64_t, Pending> failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed.swap(pending_);
    inflight_gauge_->Set(0);
    space_cv_.notify_all();
  }
  for (auto& [seq, p] : failed) {
    if (p.cb) p.cb(st, std::string());
  }
}

void PipelinedChannel::CompleteOne(uint64_t seq, const Status& st,
                                   std::string body) {
  Pending p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;  // expired or replaced; drop late reply
    p = std::move(it->second);
    pending_.erase(it);
    inflight_gauge_->Set(static_cast<double>(pending_.size()));
    space_cv_.notify_all();
  }
  latency_ms_->Observe(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - p.submitted)
                           .count());
  if (p.cb) p.cb(st, std::move(body));
}

}  // namespace rhino::net
