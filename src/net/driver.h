#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/observability.h"

/// \file driver.h
/// The coordinator process of the networked runtime.
///
/// `ClusterDriver` plays the role the engine's coordinator plays
/// in-process: it owns the routing tables (vnode -> node, per operator),
/// the dataflow graph wiring (which broker partitions and which upstream
/// operators feed each operator input), the upstream backup cursors (one
/// per operator input), and the protocol clocks (checkpoint and handover
/// ids). It sequences cluster-wide operations over the RPC layer — the
/// checkpoint barrier broadcast, the three-step live handover
/// (extract -> ingest -> drop), and failure recovery (promote the ring
/// successor's replica, or fall back to the durable checkpoint image, then
/// rewind the dead operator's input cursors to the restored replay
/// watermarks and re-pump).
///
/// Multi-operator graphs: operators are wired explicitly —
/// `ConnectPartition` feeds a broker partition into an operator input,
/// `ConnectOperators` feeds one operator's output into another's input
/// (`side` selects the input for multi-input operators such as the
/// symmetric hash join). Operator outputs travel back in `kProcessBatch`
/// replies and are retained in a driver-resident **edge log** — the
/// upstream backup of every operator->operator edge, replayable exactly
/// like a broker partition. Each edge-log entry keeps its output records
/// in per-producer-vnode slots; a replayed upstream batch refreshes only
/// the slots of vnodes the node actually re-applied
/// (`ProcessBatchReply::applied_vnodes`), so deduplicated vnodes keep
/// their original outputs and downstream operators never see duplicated
/// or lost edge records.
///
/// Exactly-once: the driver may re-send any batch (after an RPC retry or
/// a post-failure rewind); nodes deduplicate on per-(vnode, source) replay
/// watermarks — every operator input has its own source id, so the same
/// rule covers broker partitions and operator edges uniformly.
///
/// The pump has two modes (`DriverOptions::pipelined`, default from
/// `RHINO_NET_PIPELINE`). Blocking: one batch, one round trip — the
/// original correctness skeleton. Pipelined: batches stream to all nodes
/// concurrently through `Transport::CallAsync` under credit-based flow
/// control — each node has `credit_window` credits, a submit spends one
/// and its ack returns it, and a submitter with no credit BLOCKS
/// (backpressure, never unbounded buffering). Per-node submission order
/// is (input, offset) order, which the channel turns into per-node FIFO
/// apply — that is what keeps replay watermarks safe. Either mode drains
/// an operator's inputs before its downstream consumers pump, so one
/// `Pump()` pushes data through the whole graph. On any error a cursor
/// only advances over the contiguous prefix of fully-acked offsets; the
/// next pump replays the rest and nodes dedup.
///
/// Single-threaded by design — every method must be called from one
/// coordinating thread, mirroring how the paper's coordinator serializes
/// reconfigurations. (Completion callbacks run on transport threads, but
/// they only touch the pump's own synchronized scratch state.)

namespace rhino::net {

struct DriverOptions {
  /// Pipelined pump + concurrent checkpoint broadcast when true; the
  /// blocking batch-at-a-time path when false. Defaults to the
  /// `RHINO_NET_PIPELINE` toggle so one env var flips a whole deployment
  /// (nodes read the same toggle for continuous replication).
  bool pipelined = NetPipelineEnabled();
  /// Credits (max batches in flight) per node during a pipelined pump.
  uint32_t credit_window = 16;
};

struct PumpStats {
  uint64_t batches_sent = 0;
  uint64_t records_sent = 0;
  uint64_t applied = 0;
  uint64_t deduped = 0;
  /// Wall-clock duration of this Pump() call, both modes.
  double wall_s = 0;
  /// Pipelined mode: submits that had to wait for a credit (backpressure
  /// events), and the in-flight high-water marks actually reached.
  uint64_t credit_stalls = 0;
  uint32_t max_inflight = 0;                        ///< cluster-wide
  std::map<uint32_t, uint32_t> node_inflight_hwm;   ///< per node id
};

struct CheckpointStats {
  uint64_t checkpoint_id = 0;
  uint64_t bytes = 0;
  uint32_t nodes = 0;
  uint32_t replicated_nodes = 0;
};

class ClusterDriver {
 public:
  /// `endpoints[i]` is node i's address under `transport`.
  ClusterDriver(Transport* transport, std::vector<std::string> endpoints,
                obs::Observability* obs = nullptr,
                DriverOptions options = DriverOptions());

  /// Mutable between operations (benches sweep the credit window).
  DriverOptions& options() { return options_; }

  // ------------------------------------------------------------ topology --

  /// Sends kHello to every node: node ids and the replication ring
  /// (node i replicates to node i+1 mod n; no ring with one node).
  Status ConnectAll();

  /// Hosts the operator described by `spec` on every node (any node can
  /// become a recovery target); vnode ownership is round-robin across
  /// nodes. Operators must be added in topological order — an edge may
  /// only point from an earlier operator to a later one.
  Status AddOperator(const dataflow::OperatorSpec& spec);

  /// Convenience: a keyed-counter operator named `op`.
  Status AddOperator(const std::string& op, uint32_t num_vnodes);

  /// Registers one upstream-backup partition (feeds nothing until
  /// connected).
  void AddPartition(const broker::PartitionSource* partition);

  /// Feeds broker partition `partition` into input `side` of `op`.
  Status ConnectPartition(const std::string& op, size_t partition,
                          uint32_t side = 0);

  /// Feeds `upstream`'s output records into input `side` of `downstream`.
  /// The edge gets its own source id and a driver-resident edge log (the
  /// upstream backup of the edge).
  Status ConnectOperators(const std::string& upstream,
                          const std::string& downstream, uint32_t side = 0);

  /// Retains `op`'s outputs driver-side even without a downstream consumer
  /// (sink audit: `OutputRecords`).
  Status CollectOutputs(const std::string& op);

  // ---------------------------------------------------------- data plane --

  /// Drains every operator input from its cursor to its current end in
  /// topological passes, routing per-vnode sub-batches to the owning nodes
  /// and forwarding operator outputs along the wired edges. Re-entrant
  /// after failures: rewound cursors simply replay, and nodes dedup.
  Result<PumpStats> Pump();

  /// All output records `op` has produced, in edge-log order (complete
  /// entries only). Exactly-once audit surface for sinks.
  std::vector<dataflow::Record> OutputRecords(const std::string& op) const;

  // ------------------------------------------------------- control plane --

  /// Broadcasts a checkpoint barrier; every node persists + replicates its
  /// image before acking.
  Result<CheckpointStats> Checkpoint();

  /// Live handover of `vnodes` of `op` from `origin` to `target`:
  /// extract -> ingest -> drop, then the routing update.
  Status TriggerHandover(const std::string& op, uint32_t origin,
                         uint32_t target, const std::vector<uint32_t>& vnodes);

  /// Declares `dead_node` failed and re-homes everything it owned onto
  /// surviving nodes: promote the successor's replica (Rhino) or restore
  /// the durable checkpoint image (fallback), rewind the input cursors of
  /// each affected operator to the restored replay watermarks. Call
  /// `Pump()` afterwards to replay.
  Status RecoverNode(uint32_t dead_node) { return RecoverNodes({dead_node}); }

  /// Recovery from CORRELATED failures (e.g. a whole VM taking several
  /// nodes down): every listed node is declared dead up front — so the
  /// re-formed ring and the recovery RPCs only touch true survivors —
  /// then each dead node's state is re-homed in turn.
  Status RecoverNodes(const std::vector<uint32_t>& dead_nodes);

  /// Probes every live node with kStats; returns ids that did not answer.
  std::vector<uint32_t> ProbeFailures();

  Result<uint64_t> QueryCount(const std::string& op, uint64_t key);
  /// Kind-specific state query (join: per-side entry counts; modeled:
  /// vnode bytes).
  Result<QueryCountReply> QueryState(const std::string& op, uint64_t key);
  Result<StatsReply> NodeStats(uint32_t node);

  /// kShutdown to every live node (best-effort).
  void Shutdown();

  // ------------------------------------------------------- introspection --

  uint32_t num_nodes() const { return static_cast<uint32_t>(endpoints_.size()); }
  bool IsAlive(uint32_t node) const { return alive_[node]; }
  /// The node currently owning `key` of `op`.
  Result<uint32_t> RouteKey(const std::string& op, uint64_t key) const;
  std::vector<uint32_t> VnodesOwnedBy(const std::string& op,
                                      uint32_t node) const;
  /// Earliest cursor of any operator input fed by broker partition
  /// `partition` (0 when unconnected).
  uint64_t cursor(size_t partition) const;

 private:
  /// One wired input of an operator: a broker partition or an upstream
  /// operator edge, the operator-side input index (`side`), the source id
  /// stamped on its batches (dedup key), and the replay cursor — the next
  /// upstream offset to pump.
  struct OpInput {
    bool from_partition = true;
    size_t partition = 0;     ///< when from_partition
    std::string upstream;     ///< when !from_partition
    uint32_t side = 0;
    int source_id = 0;
    uint64_t cursor = 0;
  };

  /// One edge-log entry: the outputs one upstream (input, offset) step
  /// produced, sliced per producer vnode so a replay can refresh exactly
  /// the vnodes that re-applied. `complete` flips once every routed
  /// sub-batch of the step acked; downstream consumers only read the
  /// complete prefix.
  struct EdgeEntry {
    std::map<uint32_t, std::vector<dataflow::Record>> slots;
    SimTime create_time = 0;
    bool complete = false;
  };

  struct OpRouting {
    dataflow::OperatorSpec spec;
    std::vector<uint32_t> owner;  ///< vnode -> node id
    std::vector<OpInput> inputs;
    /// Outputs are requested from nodes and retained in the edge log
    /// (set by ConnectOperators on the upstream, or CollectOutputs).
    bool track_outputs = false;
    /// The edge log: entry e is edge offset e. Appended in pump order,
    /// looked up by (input index, upstream offset) on replay so an entry
    /// keeps its offset across failures.
    std::vector<EdgeEntry> entries;
    std::map<std::pair<size_t, uint64_t>, size_t> entry_index;
  };

  Status Call(uint32_t node, MessageType type, std::string_view body,
              std::string* reply);

  /// Drains every input of `op`; sets `*advanced` when at least one offset
  /// was pumped. Blocking or pipelined per `options_.pipelined`.
  Status PumpOperator(const std::string& op, OpRouting& routing,
                      PumpStats* stats, bool* advanced);

  /// Number of edge-log offsets of `routing` a downstream may consume
  /// (length of the complete prefix).
  static uint64_t CompletePrefix(const OpRouting& routing);

  /// Folds one successful reply of (input_idx, offset) into the edge log:
  /// clears and refills the slots of every vnode in `applied_vnodes`.
  Status RecordOutputs(OpRouting& routing, size_t input_idx, uint64_t offset,
                       SimTime create_time, const ProcessBatchReply& reply);

  int AllocateSourceId() { return next_edge_source_id_++; }

  /// Next live node after `node` on the ring (the replica holder).
  Result<uint32_t> NextAlive(uint32_t node) const;

  /// (Re)announces node ids + replication successors over the LIVE nodes:
  /// the initial ring, and the re-formed ring after each failure (a dead
  /// node's predecessor must stop replicating to it, or every later
  /// checkpoint fails on the chain hop).
  Status ReformRing();

  /// Re-homes one (already declared dead) node's vnodes onto a survivor.
  Status RecoverOne(uint32_t dead_node);

  Transport* transport_;
  std::vector<std::string> endpoints_;
  std::vector<bool> alive_;
  obs::Observability* obs_;
  DriverOptions options_;

  std::map<std::string, OpRouting> routing_;
  std::vector<std::string> op_order_;  ///< topological (AddOperator order)
  std::vector<const broker::PartitionSource*> partitions_;
  /// Edge source ids live far above any partition index so one operator's
  /// inputs never collide in its watermark maps.
  int next_edge_source_id_ = 1 << 20;

  uint64_t last_checkpoint_id_ = 0;
  uint64_t last_handover_id_ = 0;
};

}  // namespace rhino::net
