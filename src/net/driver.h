#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/observability.h"

/// \file driver.h
/// The coordinator process of the networked runtime.
///
/// `ClusterDriver` plays the role the engine's coordinator plays
/// in-process: it owns the routing table (vnode -> node), the upstream
/// backup cursors (one per broker partition), and the protocol clocks
/// (checkpoint and handover ids), and it sequences cluster-wide operations
/// over the RPC layer — the checkpoint barrier broadcast, the three-step
/// live handover (extract -> ingest -> drop), and failure recovery
/// (promote the ring successor's replica, or fall back to the durable
/// checkpoint image, then rewind partition cursors to the restored replay
/// watermarks and re-pump).
///
/// Exactly-once: the driver may re-send any batch (after an RPC retry or
/// a post-failure rewind); nodes deduplicate on per-(vnode, source) replay
/// watermarks, so output counts stay exact no matter how often the driver
/// replays.
///
/// The pump has two modes (`DriverOptions::pipelined`, default from
/// `RHINO_NET_PIPELINE`). Blocking: one batch, one round trip — the
/// original correctness skeleton. Pipelined: batches stream to all nodes
/// concurrently through `Transport::CallAsync` under credit-based flow
/// control — each node has `credit_window` credits, a submit spends one
/// and its ack returns it, and a submitter with no credit BLOCKS
/// (backpressure, never unbounded buffering). Per-node submission order
/// is still cursor order, which the channel turns into per-node FIFO
/// apply — that is what keeps replay watermarks safe. On any error the
/// pump drains its window and leaves every cursor unmoved, so the next
/// pump replays the whole range and nodes dedup.
///
/// Single-threaded by design — every method must be called from one
/// coordinating thread, mirroring how the paper's coordinator serializes
/// reconfigurations. (Completion callbacks run on transport threads, but
/// they only touch the pump's own synchronized scratch state.)

namespace rhino::net {

struct DriverOptions {
  /// Pipelined pump + concurrent checkpoint broadcast when true; the
  /// blocking batch-at-a-time path when false. Defaults to the
  /// `RHINO_NET_PIPELINE` toggle so one env var flips a whole deployment
  /// (nodes read the same toggle for continuous replication).
  bool pipelined = NetPipelineEnabled();
  /// Credits (max batches in flight) per node during a pipelined pump.
  uint32_t credit_window = 16;
};

struct PumpStats {
  uint64_t batches_sent = 0;
  uint64_t records_sent = 0;
  uint64_t applied = 0;
  uint64_t deduped = 0;
  /// Wall-clock duration of this Pump() call, both modes.
  double wall_s = 0;
  /// Pipelined mode: submits that had to wait for a credit (backpressure
  /// events), and the in-flight high-water marks actually reached.
  uint64_t credit_stalls = 0;
  uint32_t max_inflight = 0;                        ///< cluster-wide
  std::map<uint32_t, uint32_t> node_inflight_hwm;   ///< per node id
};

struct CheckpointStats {
  uint64_t checkpoint_id = 0;
  uint64_t bytes = 0;
  uint32_t nodes = 0;
  uint32_t replicated_nodes = 0;
};

class ClusterDriver {
 public:
  /// `endpoints[i]` is node i's address under `transport`.
  ClusterDriver(Transport* transport, std::vector<std::string> endpoints,
                obs::Observability* obs = nullptr,
                DriverOptions options = DriverOptions());

  /// Mutable between operations (benches sweep the credit window).
  DriverOptions& options() { return options_; }

  // ------------------------------------------------------------ topology --

  /// Sends kHello to every node: node ids and the replication ring
  /// (node i replicates to node i+1 mod n; no ring with one node).
  Status ConnectAll();

  /// Hosts `op` on every node (any node can become a recovery target);
  /// vnode ownership is round-robin across nodes.
  Status AddOperator(const std::string& op, uint32_t num_vnodes);

  /// Registers one upstream-backup partition; its index is the
  /// `source_id` stamped on every batch pumped from it.
  void AddPartition(const broker::PartitionSource* partition);

  // ---------------------------------------------------------- data plane --

  /// Drains every partition from its cursor to its current end, routing
  /// per-vnode sub-batches to the owning nodes. Re-entrant after failures:
  /// rewound cursors simply replay, and nodes dedup.
  Result<PumpStats> Pump();

  // ------------------------------------------------------- control plane --

  /// Broadcasts a checkpoint barrier; every node persists + replicates its
  /// image before acking.
  Result<CheckpointStats> Checkpoint();

  /// Live handover of `vnodes` of `op` from `origin` to `target`:
  /// extract -> ingest -> drop, then the routing update.
  Status TriggerHandover(const std::string& op, uint32_t origin,
                         uint32_t target, const std::vector<uint32_t>& vnodes);

  /// Declares `dead_node` failed and re-homes everything it owned onto
  /// surviving nodes: promote the successor's replica (Rhino) or restore
  /// the durable checkpoint image (fallback), rewind partition cursors to
  /// the restored replay watermarks. Call `Pump()` afterwards to replay.
  Status RecoverNode(uint32_t dead_node) { return RecoverNodes({dead_node}); }

  /// Recovery from CORRELATED failures (e.g. a whole VM taking several
  /// nodes down): every listed node is declared dead up front — so the
  /// re-formed ring and the recovery RPCs only touch true survivors —
  /// then each dead node's state is re-homed in turn.
  Status RecoverNodes(const std::vector<uint32_t>& dead_nodes);

  /// Probes every live node with kStats; returns ids that did not answer.
  std::vector<uint32_t> ProbeFailures();

  Result<uint64_t> QueryCount(const std::string& op, uint64_t key);
  Result<StatsReply> NodeStats(uint32_t node);

  /// kShutdown to every live node (best-effort).
  void Shutdown();

  // ------------------------------------------------------- introspection --

  uint32_t num_nodes() const { return static_cast<uint32_t>(endpoints_.size()); }
  bool IsAlive(uint32_t node) const { return alive_[node]; }
  /// The node currently owning `key` of `op`.
  Result<uint32_t> RouteKey(const std::string& op, uint64_t key) const;
  std::vector<uint32_t> VnodesOwnedBy(const std::string& op,
                                      uint32_t node) const;
  uint64_t cursor(size_t partition) const { return cursors_[partition]; }

 private:
  struct OpRouting {
    uint32_t num_vnodes = 0;
    std::vector<uint32_t> owner;  ///< vnode -> node id
  };

  Status Call(uint32_t node, MessageType type, std::string_view body,
              std::string* reply);

  Result<PumpStats> PumpBlocking();
  Result<PumpStats> PumpPipelined();

  /// Next live node after `node` on the ring (the replica holder).
  Result<uint32_t> NextAlive(uint32_t node) const;

  /// (Re)announces node ids + replication successors over the LIVE nodes:
  /// the initial ring, and the re-formed ring after each failure (a dead
  /// node's predecessor must stop replicating to it, or every later
  /// checkpoint fails on the chain hop).
  Status ReformRing();

  /// Re-homes one (already declared dead) node's vnodes onto a survivor.
  Status RecoverOne(uint32_t dead_node);

  Transport* transport_;
  std::vector<std::string> endpoints_;
  std::vector<bool> alive_;
  obs::Observability* obs_;
  DriverOptions options_;

  std::map<std::string, OpRouting> routing_;
  std::vector<const broker::PartitionSource*> partitions_;
  std::vector<uint64_t> cursors_;

  uint64_t last_checkpoint_id_ = 0;
  uint64_t last_handover_id_ = 0;
};

}  // namespace rhino::net
