#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/socket.h"

/// \file frame.h
/// Length + checksum message framing over a socket — the WAL record idiom
/// (`lsm/log_format.h`) applied to the wire.
///
/// A frame is `u32 checksum | u32 length | payload`, little endian, with
/// the checksum taken over the payload (FNV-1a folded to 32 bits). Framing
/// makes every failure mode an explicit error `Status` instead of a parser
/// surprise:
///
///  * oversized length prefix  -> `Corruption` (rejected BEFORE the reader
///    allocates or waits for the claimed bytes);
///  * checksum mismatch        -> `Corruption`;
///  * peer disconnect mid-frame-> `IOError` (from the socket layer);
///  * clean close between frames -> `Aborted` (a normal end of stream);
///  * receive timeout          -> `TimedOut`.
///
/// No failure hangs: reads inherit the socket's receive timeout, and the
/// length prefix is validated against `max_frame_bytes` up front.

namespace rhino::net {

/// Upper bound on one frame's payload. State blobs dominate frame sizes;
/// 256 MiB comfortably fits any test/bench shard while still rejecting
/// garbage length prefixes immediately.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// Frames `payload` and writes it to `sock`.
Status WriteFrame(Socket& sock, std::string_view payload);

/// Reads one frame into `*payload`. See file comment for the error
/// contract.
Status ReadFrame(Socket& sock, std::string* payload,
                 uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace rhino::net
