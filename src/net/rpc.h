#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/retry.h"

/// \file rpc.h
/// Blocking request/reply RPC over framed TCP.
///
/// One frame carries one `RequestEnvelope` (client -> server) or one
/// `ReplyEnvelope` (server -> client); the handler's `Status` travels
/// inside the reply so application failures are distinguishable from
/// transport failures. Transport failures never hang or crash either side:
/// corrupt frames produce error replies or clean connection teardown, and
/// all reads are bounded by receive timeouts.
///
/// `RpcClient::Call` retries the WHOLE call (reconnect included) through a
/// `runtime::BlockingRetrier` on transient transport errors. That is safe
/// because every verb a node serves is idempotent — batch application
/// dedups on replay watermarks, ingest/drop/replicate are
/// set-state operations — mirroring how the in-process protocol tolerates
/// re-delivered completions.

namespace rhino::net {

/// Server side: accept loop plus one thread per live connection.
class RpcServer {
 public:
  /// Handles one decoded request; the returned string is the reply body.
  /// Called concurrently from connection threads — the handler owns its
  /// locking.
  using Handler =
      std::function<Result<std::string>(MessageType, std::string_view)>;

  explicit RpcServer(Handler handler) : handler_(std::move(handler)) {}
  ~RpcServer() { Stop(); }

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds `host:port` (port 0 = kernel-assigned) and starts the accept
  /// thread.
  Status Start(const std::string& host, uint16_t port);

  /// Port actually bound (valid after `Start`).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void Serve(Socket& conn);

  Handler handler_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::thread> conn_threads_;
  /// fds of live connections, shut down on Stop to unblock their reads.
  std::vector<std::shared_ptr<Socket>> conns_;
};

struct RpcClientOptions {
  /// Receive timeout per reply. Checkpoints serialize and replicate whole
  /// shards, so this is generous; a SIGKILLed peer still fails fast
  /// because its kernel resets the connection rather than timing out.
  int recv_timeout_ms = 10'000;
  /// Whole-call retry budget. Small so the driver detects a dead node in
  /// well under a second of backoff.
  runtime::RetryOptions retry;
  /// In-flight window per endpoint for the pipelined path
  /// (`Transport::CallAsync` via `PipelinedChannel`); the blocking `Call`
  /// path ignores it.
  uint32_t pipeline_window = 32;
};

/// Client side: one connection, one outstanding call at a time (guarded by
/// an internal mutex — callers on different threads serialize).
class RpcClient {
 public:
  RpcClient(std::string host, uint16_t port, RpcClientOptions options,
            std::string what);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Sends `body` as a `type` request; on success `*reply_body` holds the
  /// reply payload. Application errors come back verbatim from the
  /// handler; transport errors surface after the retry budget (typically
  /// as `IOError`/`TimedOut` naming the endpoint).
  Status Call(MessageType type, std::string_view body,
              std::string* reply_body);

  /// Drops the cached connection (next call reconnects).
  void Disconnect();

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string endpoint() const { return FormatEndpoint(host_, port_); }

 private:
  Status CallOnce(MessageType type, std::string_view body,
                  std::string* reply_body);

  std::string host_;
  uint16_t port_;
  RpcClientOptions options_;
  std::string what_;

  std::mutex mu_;
  Socket conn_;
  uint64_t next_seq_ = 1;
};

}  // namespace rhino::net
