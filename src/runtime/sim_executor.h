#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "sim/simulation.h"

/// \file sim_executor.h
/// Deterministic executor backend: a thin adapter over the discrete-event
/// kernel. Every `Schedule`/`ScheduleAt`/`Post*` call forwards straight to
/// `sim::Simulation`, allocating kernel sequence numbers in the exact order
/// the calls are made — so a program ported from raw `sim::Simulation` to
/// `SimExecutor` keeps bit-identical event ordering. Serial queues need no
/// extra machinery here: the kernel runs one event at a time, which already
/// satisfies the TaskQueue contract.
///
/// The kernel conveniences (`Run`, `Step`, `PendingEvents`) are re-exposed
/// so tests and benches that drove a `sim::Simulation` directly port with a
/// type change only.

namespace rhino::runtime {

class SimExecutor final : public Executor {
 public:
  SimExecutor() = default;

  // ---- Executor contract ----
  SimTime Now() const override { return sim_.Now(); }
  void ScheduleAt(SimTime when, Callback fn) override {
    sim_.ScheduleAt(when, std::move(fn));
  }
  TaskQueue* CreateQueue(const std::string& name) override {
    queues_.push_back(std::make_unique<SimTaskQueue>(this, name));
    return queues_.back().get();
  }
  void RunUntil(SimTime t) override { sim_.RunUntil(t); }
  void Drain() override { sim_.Run(); }
  bool realtime() const override { return false; }
  uint64_t clamped_schedules() const override {
    return sim_.clamped_schedules();
  }

  // ---- kernel conveniences ----
  /// Runs until the event queue drains.
  void Run() { sim_.Run(); }
  /// Runs one event; returns false when the queue is empty.
  bool Step() { return sim_.Step(); }
  /// Number of pending events.
  size_t PendingEvents() const { return sim_.PendingEvents(); }
  /// The underlying kernel.
  sim::Simulation& kernel() { return sim_; }
  const sim::Simulation& kernel() const { return sim_; }

 private:
  /// All queues forward to the kernel: one global event order, FIFO within
  /// a timestamp — a strict refinement of the per-queue serial contract.
  class SimTaskQueue final : public TaskQueue {
   public:
    using TaskQueue::TaskQueue;
    void PostAt(SimTime when, Callback fn) override {
      executor_->ScheduleAt(when, std::move(fn));
    }
  };

  sim::Simulation sim_;
  std::vector<std::unique_ptr<SimTaskQueue>> queues_;
};

}  // namespace rhino::runtime
