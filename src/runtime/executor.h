#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/units.h"

/// \file executor.h
/// The execution substrate: a clock + scheduler abstraction that decouples
/// every runtime component (engine, replication chains, handover protocol,
/// DFS, bench harness) from the discrete-event simulator.
///
/// Two backends implement the contract:
///
///  * `SimExecutor` — a thin adapter over the deterministic simulation
///    kernel (`sim::Simulation`). Single-threaded; events run in strict
///    (time, submission-order) sequence, so every experiment is exactly
///    reproducible.
///  * `RealtimeExecutor` — a thread pool driven by `steady_clock` timers.
///    Callbacks posted to the same `TaskQueue` never run concurrently or
///    out of order; callbacks on different queues genuinely run in
///    parallel on OS threads.
///
/// ## Contract
///
///  * `Now()` is monotonically non-decreasing (microseconds).
///  * `Schedule(delay, fn)` == `ScheduleAt(Now() + delay, fn)`.
///  * `ScheduleAt` with a past deadline clamps to `Now()` and counts the
///    clamp in `clamped_schedules()` — misuse of the clock is observable.
///  * Two tasks posted to the same `TaskQueue` with equal deadlines run in
///    submission order (FIFO). Tasks on *different* queues with equal
///    deadlines run in submission order under `SimExecutor` and in
///    unspecified (possibly concurrent) order under `RealtimeExecutor`.
///  * `Schedule`/`ScheduleAt` on the executor itself post to a default
///    serial queue, so directly scheduled callbacks never race each other.
///  * A callback may re-enter `Schedule`/`Post*` (including on its own
///    queue); the new task becomes eligible after the current one returns.
///  * `Drain()` runs until no task is queued or running — including timers
///    scheduled in the future. Must not be called from inside a callback.

namespace rhino::runtime {

class Executor;

/// A serial ("strand") queue: tasks posted to one queue execute in
/// deadline-then-FIFO order and never concurrently with each other.
/// Components of one worker node share that node's queue, preserving
/// intra-node ordering while distinct nodes run in parallel.
class TaskQueue {
 public:
  using Callback = std::function<void()>;

  TaskQueue(Executor* executor, std::string name)
      : executor_(executor), name_(std::move(name)) {}
  virtual ~TaskQueue() = default;

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Schedules `fn` on this queue at absolute time `when` (clamped to
  /// `Now()` if already past).
  virtual void PostAt(SimTime when, Callback fn) = 0;

  /// Schedules `fn` on this queue `delay` microseconds from now.
  void PostDelayed(SimTime delay, Callback fn);

  /// Schedules `fn` on this queue as soon as possible.
  void Post(Callback fn) { PostDelayed(0, std::move(fn)); }

  Executor* executor() const { return executor_; }
  const std::string& name() const { return name_; }

 protected:
  Executor* executor_;
  std::string name_;
};

/// Clock + scheduler interface shared by both backends.
class Executor {
 public:
  using Callback = std::function<void()>;

  virtual ~Executor() = default;

  /// Current time in microseconds (simulated or wall-clock since the
  /// executor's epoch).
  virtual SimTime Now() const = 0;

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0) on
  /// the default serial queue.
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(Now() + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `when` on the default serial queue
  /// (clamped to now; clamps are counted).
  virtual void ScheduleAt(SimTime when, Callback fn) = 0;

  /// Creates a serial queue owned by the executor. Queues live as long as
  /// the executor; components keep raw pointers.
  virtual TaskQueue* CreateQueue(const std::string& name) = 0;

  /// Advances to time `t`: the sim backend runs all events with deadline
  /// <= t and sets the clock to t; the realtime backend sleeps until the
  /// wall clock reaches epoch + t (workers keep executing meanwhile).
  virtual void RunUntil(SimTime t) = 0;

  /// Runs until no task is queued or running (timers included).
  virtual void Drain() = 0;

  /// True for backends that execute on OS threads in wall-clock time.
  virtual bool realtime() const = 0;

  /// Number of ScheduleAt/PostAt calls whose deadline was already in the
  /// past and got clamped to Now().
  virtual uint64_t clamped_schedules() const = 0;
};

inline void TaskQueue::PostDelayed(SimTime delay, Callback fn) {
  PostAt(executor_->Now() + delay, std::move(fn));
}

}  // namespace rhino::runtime
