#pragma once

#include <functional>
#include <string>

#include "runtime/executor.h"

/// \file background.h
/// Adapter from the executor substrate to `lsm::Options::background_post`.
///
/// The LSM store's background maintenance (memtable flushes, compactions)
/// accepts an abstract "run this closure somewhere that is not my caller's
/// thread" callback. On the realtime backend the natural home for that
/// work is an executor task queue: it lands on the shared worker pool,
/// shows up in the executor's accounting like any other task, and —
/// because each queue is a strand — passes for one store are naturally
/// serialized without the store starting a private thread per DB.
///
/// Under `SimExecutor` the returned poster still works (the queue drains
/// inside `Drain()`/`RunUntil` on the simulation thread), but deterministic
/// experiments should simply leave `background_maintenance` off — inline
/// maintenance is the reproducible configuration.

namespace rhino::runtime {

/// Returns a poster for `lsm::Options::background_post` that runs each
/// maintenance pass on a dedicated serial queue named `name` on `executor`.
/// The queue is owned by the executor (queues live as long as it), so the
/// executor must outlive every DB handed this poster, and the executor must
/// be drained (or the DBs destroyed) before it is torn down.
inline std::function<void(std::function<void()>)> MakeBackgroundPoster(
    Executor* executor, const std::string& name) {
  TaskQueue* queue = executor->CreateQueue(name);
  return [queue](std::function<void()> work) { queue->Post(std::move(work)); };
}

}  // namespace rhino::runtime
