#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/executor.h"

/// \file realtime_executor.h
/// Multi-threaded executor backend: N worker threads drain per-queue timer
/// heaps against `std::chrono::steady_clock`.
///
/// Each `TaskQueue` is a strand: a min-heap of (deadline, seq, fn) plus a
/// `running` flag. A worker claims the queue with the earliest due task
/// that is not already running, marks it running, executes the task with
/// the scheduler lock released, then releases the queue — so one queue's
/// tasks are serialized (deadline order, FIFO within a deadline) while
/// distinct queues execute genuinely in parallel. Pinning every component
/// of a worker node to that node's queue preserves intra-node ordering the
/// same way the single-threaded simulator did, which is what the engine's
/// per-node protocol logic assumes.
///
/// `Now()` is microseconds since the executor's construction, so simulated
/// and wall-clock timelines share an origin at 0.

namespace rhino::runtime {

class RealtimeExecutor final : public Executor {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit RealtimeExecutor(int num_threads);
  ~RealtimeExecutor() override;

  RealtimeExecutor(const RealtimeExecutor&) = delete;
  RealtimeExecutor& operator=(const RealtimeExecutor&) = delete;

  // ---- Executor contract ----
  SimTime Now() const override;
  void ScheduleAt(SimTime when, Callback fn) override;
  TaskQueue* CreateQueue(const std::string& name) override;
  /// Sleeps until the wall clock reaches epoch + `t`. Workers keep
  /// executing; pair with Drain() to also wait for quiescence.
  void RunUntil(SimTime t) override;
  /// Blocks until no task is queued or running, timers included. Must be
  /// called from outside the worker pool (e.g. the test's main thread).
  void Drain() override;
  bool realtime() const override { return true; }
  uint64_t clamped_schedules() const override {
    return clamped_.load(std::memory_order_relaxed);
  }

  /// Stops accepting work, drops undelivered tasks, joins the workers.
  /// Called by the destructor; idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    SimTime when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Task& a, const Task& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class SerialQueue final : public TaskQueue {
   public:
    using TaskQueue::TaskQueue;
    void PostAt(SimTime when, Callback fn) override;

    // Guarded by the executor's mu_.
    std::vector<Task> heap;  // min-heap on (when, seq)
    bool running = false;
  };

  void Enqueue(SerialQueue* queue, SimTime when, Callback fn);
  void WorkerLoop();
  std::chrono::steady_clock::time_point Deadline(SimTime t) const {
    return epoch_ + std::chrono::microseconds(t);
  }

  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // new/ready work or shutdown
  std::condition_variable idle_cv_;  // outstanding_ reached zero
  std::vector<std::unique_ptr<SerialQueue>> queues_;
  SerialQueue* default_queue_ = nullptr;  // target of Schedule/ScheduleAt
  uint64_t next_seq_ = 0;
  /// Tasks queued or currently executing; Drain waits for zero.
  uint64_t outstanding_ = 0;
  bool shutdown_ = false;

  std::atomic<uint64_t> clamped_{0};

  std::vector<std::thread> workers_;
};

}  // namespace rhino::runtime
