#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/observability.h"
#include "runtime/executor.h"

/// \file retry.h
/// Shared retry-with-backoff and deadline policy for asynchronous protocol
/// steps (replication chunks, catch-up copies, handover state fetches,
/// checkpoint persistence).
///
/// Transient faults — injected I/O errors, dropped state transfers during
/// a network partition, slow devices — must degrade into bounded extra
/// latency, not a wedged protocol. Permanent faults (a fail-stopped chain
/// member) must keep surfacing as an error `Status` promptly. `Retrier`
/// encodes the boundary: each retry waits a jittered exponentially-growing
/// backoff, and the attempt budget / overall deadline decide when to stop
/// retrying and report the last error.
///
/// Attempts are observable: every backoff increments the
/// `rhino_retry_attempts_total{what=...}` counter, so a chaos run shows
/// which paths absorbed faults (and a production-style dashboard would
/// show retry storms).
///
/// Thread safety: a `Retrier` may be consulted from completion callbacks
/// on different node strands; its bookkeeping is guarded by an internal
/// mutex. Jitter draws from a seeded `Random`, so retry timing is
/// deterministic under `SimExecutor` for a fixed seed.

namespace rhino::runtime {

struct RetryOptions {
  /// Backoff before the first retry; doubles (times `multiplier`) after
  /// each subsequent failure, capped at `max_backoff_us`.
  SimTime initial_backoff_us = 10 * kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff_us = 500 * kMillisecond;
  /// Each backoff is drawn uniform in [b*(1-jitter), b*(1+jitter)] to
  /// de-synchronize retry storms.
  double jitter = 0.2;
  /// Total tries including the first; <= 0 means unbounded (deadline-only).
  int max_attempts = 6;
  /// Overall budget measured from `Arm()`; 0 = no deadline.
  SimTime deadline_us = 0;
};

/// Is this failure worth retrying? I/O errors and timeouts are transient
/// by convention; everything else (Aborted = fail-stop, NotFound,
/// InvalidArgument, ...) is permanent and must propagate.
inline bool IsTransientStatus(const Status& s) {
  return s.code() == StatusCode::kIOError ||
         s.code() == StatusCode::kTimedOut;
}

/// Backoff/deadline bookkeeping for one logical operation.
class Retrier {
 public:
  /// `what` labels the attempt counter (e.g. "replication_chunk").
  Retrier(Executor* executor, RetryOptions options, uint64_t seed,
          std::string what, obs::Observability* obs = nullptr)
      : executor_(executor),
        options_(options),
        rng_(seed),
        what_(std::move(what)) {
    if (obs == nullptr) obs = obs::Observability::Default();
    attempts_metric_ = obs->metrics().GetCounter(
        "rhino_retry_attempts_total", {{"what", what_}});
    Arm();
  }

  /// (Re)starts the deadline clock and resets the backoff ladder — call
  /// when the operation begins, or after genuine forward progress.
  void Arm() {
    std::lock_guard<std::mutex> lock(mu_);
    started_at_ = executor_->Now();
    next_backoff_ = options_.initial_backoff_us;
    retries_ = 0;
  }

  /// Decides whether one more retry is allowed. On true, `*delay` holds
  /// the jittered backoff to wait and the attempt has been recorded (and
  /// counted in `rhino_retry_attempts_total`). On false the budget is
  /// exhausted; report the last error via `Exhausted()`.
  bool NextBackoff(SimTime* delay) {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_attempts > 0 && retries_ + 1 >= options_.max_attempts) {
      return false;
    }
    if (options_.deadline_us > 0 &&
        executor_->Now() - started_at_ >= options_.deadline_us) {
      return false;
    }
    ++retries_;
    total_retries_ += 1;
    attempts_metric_->Increment();
    double base = static_cast<double>(next_backoff_);
    double lo = base * (1.0 - options_.jitter);
    double hi = base * (1.0 + options_.jitter);
    *delay = std::max<SimTime>(
        1, static_cast<SimTime>(lo + (hi - lo) * rng_.NextDouble()));
    next_backoff_ = std::min<SimTime>(
        options_.max_backoff_us,
        static_cast<SimTime>(base * options_.multiplier));
    return true;
  }

  /// True once the overall deadline has passed (always false without one).
  bool DeadlineExpired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_.deadline_us > 0 &&
           executor_->Now() - started_at_ >= options_.deadline_us;
  }

  /// Retries since the last `Arm()`.
  int retries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return retries_;
  }
  /// Retries over the Retrier's lifetime (across `Arm()` resets).
  uint64_t total_retries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_retries_;
  }

  /// The error to surface when the budget ran out: wraps `last` with the
  /// attempt history so the failure is diagnosable.
  Status Exhausted(const Status& last) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string msg = what_ + " gave up after " +
                      std::to_string(retries_ + 1) + " attempts: " +
                      (last.ok() ? "no completion before deadline"
                                 : last.ToString());
    if (options_.deadline_us > 0 &&
        executor_->Now() - started_at_ >= options_.deadline_us) {
      return Status::TimedOut(std::move(msg));
    }
    return last.ok() ? Status::TimedOut(std::move(msg))
                     : Status(last.code(), std::move(msg));
  }

  const RetryOptions& options() const { return options_; }

 private:
  Executor* executor_;
  RetryOptions options_;
  mutable std::mutex mu_;
  Random rng_;
  std::string what_;
  obs::Counter* attempts_metric_ = nullptr;
  SimTime started_at_ = 0;
  SimTime next_backoff_ = 0;
  int retries_ = 0;
  uint64_t total_retries_ = 0;
};

/// Synchronous counterpart of `Retrier` for blocking client paths — the
/// TCP RPC client reconnecting to a node process, where there is no
/// executor to schedule continuations on. Same jittered-backoff /
/// attempt-budget / deadline policy and the same
/// `rhino_retry_attempts_total{what=...}` accounting, but measured on
/// `steady_clock` and slept on the calling thread.
///
/// Not for use under `SimExecutor`: real sleeps would desynchronize the
/// simulated clock. The networked runtime is realtime by construction.
class BlockingRetrier {
 public:
  BlockingRetrier(RetryOptions options, uint64_t seed, std::string what,
                  obs::Observability* obs = nullptr)
      : options_(options), rng_(seed), what_(std::move(what)) {
    if (obs == nullptr) obs = obs::Observability::Default();
    attempts_metric_ = obs->metrics().GetCounter(
        "rhino_retry_attempts_total", {{"what", what_}});
    started_at_ = std::chrono::steady_clock::now();
    next_backoff_ = options_.initial_backoff_us;
  }

  /// Decides whether one more retry is allowed and, if so, sleeps the
  /// jittered backoff before returning true. On false the budget is
  /// exhausted; surface the last error via `Exhausted()`.
  bool BackoffAndRetry() {
    if (options_.max_attempts > 0 && retries_ + 1 >= options_.max_attempts) {
      return false;
    }
    if (DeadlineExpired()) return false;
    ++retries_;
    attempts_metric_->Increment();
    double base = static_cast<double>(next_backoff_);
    double lo = base * (1.0 - options_.jitter);
    double hi = base * (1.0 + options_.jitter);
    auto delay = std::max<SimTime>(
        1, static_cast<SimTime>(lo + (hi - lo) * rng_.NextDouble()));
    next_backoff_ = std::min<SimTime>(
        options_.max_backoff_us,
        static_cast<SimTime>(base * options_.multiplier));
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
    return true;
  }

  bool DeadlineExpired() const {
    if (options_.deadline_us <= 0) return false;
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - started_at_)
                       .count();
    return elapsed >= static_cast<int64_t>(options_.deadline_us);
  }

  int retries() const { return retries_; }

  /// The error to surface when the budget ran out.
  Status Exhausted(const Status& last) const {
    std::string msg = what_ + " gave up after " +
                      std::to_string(retries_ + 1) + " attempts: " +
                      (last.ok() ? "no completion before deadline"
                                 : last.ToString());
    if (DeadlineExpired() || last.ok()) {
      return Status::TimedOut(std::move(msg));
    }
    return Status(last.code(), std::move(msg));
  }

 private:
  RetryOptions options_;
  Random rng_;
  std::string what_;
  obs::Counter* attempts_metric_ = nullptr;
  std::chrono::steady_clock::time_point started_at_;
  SimTime next_backoff_ = 0;
  int retries_ = 0;
};

}  // namespace rhino::runtime
