#include "runtime/realtime_executor.h"

#include <algorithm>

#include "common/logging.h"

namespace rhino::runtime {

void RealtimeExecutor::SerialQueue::PostAt(SimTime when, Callback fn) {
  static_cast<RealtimeExecutor*>(executor_)->Enqueue(this, when,
                                                     std::move(fn));
}

RealtimeExecutor::RealtimeExecutor(int num_threads)
    : epoch_(std::chrono::steady_clock::now()) {
  RHINO_CHECK_GE(num_threads, 1);
  default_queue_ = static_cast<SerialQueue*>(CreateQueue("default"));
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RealtimeExecutor::~RealtimeExecutor() { Shutdown(); }

SimTime RealtimeExecutor::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RealtimeExecutor::ScheduleAt(SimTime when, Callback fn) {
  Enqueue(default_queue_, when, std::move(fn));
}

TaskQueue* RealtimeExecutor::CreateQueue(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  queues_.push_back(std::make_unique<SerialQueue>(this, name));
  return queues_.back().get();
}

void RealtimeExecutor::Enqueue(SerialQueue* queue, SimTime when,
                               Callback fn) {
  SimTime now = Now();
  if (when < now) {
    clamped_.fetch_add(1, std::memory_order_relaxed);
    RHINO_LOG(Debug) << "PostAt clamped past deadline " << when
                     << "us to now=" << now << "us on queue '"
                     << queue->name() << "'";
    when = now;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue->heap.push_back(Task{when, next_seq_++, std::move(fn)});
    std::push_heap(queue->heap.begin(), queue->heap.end(), Later{});
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void RealtimeExecutor::RunUntil(SimTime t) {
  std::this_thread::sleep_until(Deadline(t));
}

void RealtimeExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0 || shutdown_; });
}

void RealtimeExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& queue : queues_) {
      outstanding_ -= queue->heap.size();
      queue->heap.clear();
    }
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void RealtimeExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (shutdown_) return;
    // Pick the queue (not already running on another worker) whose next
    // task has the earliest (deadline, seq). Queues are few — one per node
    // plus the default — so a linear scan beats a cross-queue index.
    SerialQueue* best = nullptr;
    for (auto& queue : queues_) {
      if (queue->running || queue->heap.empty()) continue;
      if (best == nullptr || Later{}(best->heap.front(), queue->heap.front())) {
        best = queue.get();
      }
    }
    if (best == nullptr) {
      work_cv_.wait(lock);
      continue;
    }
    SimTime due = best->heap.front().when;
    if (due > Now()) {
      work_cv_.wait_until(lock, Deadline(due));
      continue;
    }
    std::pop_heap(best->heap.begin(), best->heap.end(), Later{});
    Task task = std::move(best->heap.back());
    best->heap.pop_back();
    best->running = true;
    lock.unlock();
    task.fn();
    task.fn = nullptr;  // release captured state before re-taking the lock
    lock.lock();
    best->running = false;
    --outstanding_;
    if (outstanding_ == 0) {
      idle_cv_.notify_all();
    } else if (!best->heap.empty()) {
      // The queue this worker just released may hold the next due task;
      // wake a peer in case every other worker is parked on a timer.
      work_cv_.notify_one();
    }
  }
}

}  // namespace rhino::runtime
