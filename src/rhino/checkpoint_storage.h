#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/stateful.h"
#include "dfs/dfs.h"
#include "rhino/replication_runtime.h"

/// \file checkpoint_storage.h
/// The two checkpoint persistence strategies of the evaluation:
///
///  * `RhinoCheckpointStorage`  — local disk write + state-centric chain
///    replication of the incremental delta (Rhino);
///  * `DfsCheckpointStorage`    — delta upload into the block-centric DFS
///    (Flink and RhinoDFS).
///
/// Both capture per-vnode content blobs so recovery can restore actual
/// state (values in real mode, byte counters in modeled mode).

namespace rhino::rhino {

/// Rhino: persist locally, replicate the delta down the replica chain.
class RhinoCheckpointStorage : public dataflow::CheckpointStorage {
 public:
  RhinoCheckpointStorage(sim::Cluster* cluster, ReplicationRuntime* runtime)
      : cluster_(cluster), runtime_(runtime) {}

  void Persist(dataflow::OperatorInstance* instance,
               const state::CheckpointDescriptor& desc,
               std::function<void(Status)> done) override;

 private:
  sim::Cluster* cluster_;
  ReplicationRuntime* runtime_;
  std::mutex mu_;  ///< guards disk_cursor_ (Persist runs on node strands)
  std::map<int, int> disk_cursor_;
};

/// Flink / RhinoDFS: upload the delta files into the DFS.
class DfsCheckpointStorage : public dataflow::CheckpointStorage {
 public:
  DfsCheckpointStorage(sim::Cluster* cluster, dfs::DistributedFileSystem* dfs)
      : cluster_(cluster), dfs_(dfs) {}

  void Persist(dataflow::OperatorInstance* instance,
               const state::CheckpointDescriptor& desc,
               std::function<void(Status)> done) override;

  /// Every DFS path holding state of the instance (all retained deltas —
  /// together they are the full state image a recovery must fetch).
  std::vector<std::string> PathsFor(const std::string& op,
                                    uint32_t subtask) const;

  /// Latest checkpoint content of the instance (for state restoration).
  const ReplicaState* LatestFor(const std::string& op, uint32_t subtask) const;

  /// Registers a pre-existing checkpoint without modeling the upload
  /// (experiment seeding).
  void SeedCheckpoint(const std::string& op, uint32_t subtask, int home_node,
                      const state::CheckpointDescriptor& desc,
                      std::map<uint32_t, std::string> blobs);

  dfs::DistributedFileSystem* dfs() { return dfs_; }

 private:
  static std::string Key(const std::string& op, uint32_t subtask) {
    return op + "#" + std::to_string(subtask);
  }

  sim::Cluster* cluster_;
  dfs::DistributedFileSystem* dfs_;
  /// Guards the catalog below. `LatestFor` hands out stable map-node
  /// pointers; a later checkpoint of the same instance overwrites the
  /// entry's fields, so callers copy promptly.
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::string>> paths_;
  std::map<std::string, ReplicaState> latest_;
};

/// Captures the per-vnode content blobs of a stateful instance (shared by
/// both storages and by experiment seeding).
std::map<uint32_t, std::string> CaptureVnodeBlobs(
    dataflow::StatefulInstance* instance);

}  // namespace rhino::rhino
