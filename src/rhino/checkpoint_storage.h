#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/stateful.h"
#include "dfs/dfs.h"
#include "lsm/env.h"
#include "rhino/replication_runtime.h"

/// \file checkpoint_storage.h
/// The two checkpoint persistence strategies of the evaluation:
///
///  * `RhinoCheckpointStorage`  — local disk write + state-centric chain
///    replication of the incremental delta (Rhino);
///  * `DfsCheckpointStorage`    — delta upload into the block-centric DFS
///    (Flink and RhinoDFS).
///
/// Both capture per-vnode content blobs so recovery can restore actual
/// state (values in real mode, byte counters in modeled mode).

namespace rhino::rhino {

/// Rhino: persist locally, replicate the delta down the replica chain.
///
/// A replication attempt that fails *transiently* (IOError / TimedOut —
/// e.g. an injected fault stalled the chain past its budget) is retried
/// with jittered backoff before the failure is surfaced to the checkpoint
/// coordinator; permanent failures (Aborted: a chain member fail-stopped)
/// propagate immediately — the next checkpoint re-replicates.
class RhinoCheckpointStorage : public dataflow::CheckpointStorage {
 public:
  RhinoCheckpointStorage(sim::Cluster* cluster, ReplicationRuntime* runtime,
                         runtime::RetryOptions retry = DefaultRetry())
      : cluster_(cluster), runtime_(runtime), retry_(retry) {}

  void Persist(dataflow::OperatorInstance* instance,
               const state::CheckpointDescriptor& desc,
               std::function<void(Status)> done) override;

  static runtime::RetryOptions DefaultRetry() {
    runtime::RetryOptions r;
    r.initial_backoff_us = 200 * kMillisecond;
    r.max_backoff_us = 2 * kSecond;
    r.max_attempts = 3;  // the periodic checkpoint cadence is the backstop
    return r;
  }

 private:
  /// One replication attempt; retries per `retry_` on transient failure.
  void ReplicateWithRetry(std::string op, uint32_t subtask, int node_id,
                          state::CheckpointDescriptor desc,
                          std::shared_ptr<runtime::Retrier> retrier,
                          std::shared_ptr<const std::map<uint32_t, std::string>>
                              blobs,
                          std::function<void(Status)> done);

  sim::Cluster* cluster_;
  ReplicationRuntime* runtime_;
  runtime::RetryOptions retry_;
  std::mutex mu_;  ///< guards disk_cursor_ (Persist runs on node strands)
  std::map<int, int> disk_cursor_;
};

/// Flink / RhinoDFS: upload the delta files into the DFS.
class DfsCheckpointStorage : public dataflow::CheckpointStorage {
 public:
  DfsCheckpointStorage(sim::Cluster* cluster, dfs::DistributedFileSystem* dfs)
      : cluster_(cluster), dfs_(dfs) {}

  void Persist(dataflow::OperatorInstance* instance,
               const state::CheckpointDescriptor& desc,
               std::function<void(Status)> done) override;

  /// Every DFS path holding state of the instance (all retained deltas —
  /// together they are the full state image a recovery must fetch).
  std::vector<std::string> PathsFor(const std::string& op,
                                    uint32_t subtask) const;

  /// Latest checkpoint content of the instance (for state restoration).
  const ReplicaState* LatestFor(const std::string& op, uint32_t subtask) const;

  /// Registers a pre-existing checkpoint without modeling the upload
  /// (experiment seeding).
  void SeedCheckpoint(const std::string& op, uint32_t subtask, int home_node,
                      const state::CheckpointDescriptor& desc,
                      std::map<uint32_t, std::string> blobs);

  dfs::DistributedFileSystem* dfs() { return dfs_; }

 private:
  static std::string Key(const std::string& op, uint32_t subtask) {
    return op + "#" + std::to_string(subtask);
  }

  sim::Cluster* cluster_;
  dfs::DistributedFileSystem* dfs_;
  /// Guards the catalog below. `LatestFor` hands out stable map-node
  /// pointers; a later checkpoint of the same instance overwrites the
  /// entry's fields, so callers copy promptly.
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::string>> paths_;
  std::map<std::string, ReplicaState> latest_;
};

/// Captures the per-vnode content blobs of a stateful instance (shared by
/// both storages and by experiment seeding).
std::map<uint32_t, std::string> CaptureVnodeBlobs(
    dataflow::StatefulInstance* instance);

// ------------------------------------------------- durable image helpers --
//
// The networked runtime persists whole replica images (descriptor +
// blobs) as single files on an `lsm::Env` — the node's "local disk" and
// the shared checkpoint directory standing in for a DFS. The image is one
// framed record (len + checksum, the WAL idiom), so a torn write from a
// SIGKILL mid-checkpoint is detected on load and the image is discarded
// rather than half-restored.

/// Atomically writes the framed image of `rs` at `path` (parent directory
/// is created if missing).
Status WriteCheckpointImage(lsm::Env* env, const std::string& path,
                            const ReplicaState& rs);

/// Loads and validates an image written by `WriteCheckpointImage`. A torn
/// or checksum-corrupt file is `Corruption`; a missing file is the Env's
/// read error.
Result<ReplicaState> ReadCheckpointImage(lsm::Env* env,
                                         const std::string& path);

}  // namespace rhino::rhino
