#include "rhino/replication_runtime.h"

#include "common/logging.h"

namespace rhino::rhino {

/// One checkpoint's journey down a replica chain.
struct ReplicationRuntime::Transfer {
  std::string op;
  uint32_t subtask = 0;
  std::vector<int> path;  // [primary, replica_1, ..., replica_r]
  uint64_t total_chunks = 0;
  uint64_t chunk_bytes = 0;
  uint64_t last_chunk_bytes = 0;
  state::CheckpointDescriptor desc;
  std::map<uint32_t, std::string> blobs;
  std::function<void(Status)> done;

  std::vector<uint64_t> next_to_send;  // per hop
  std::vector<int> credits;            // per hop
  std::vector<uint64_t> available;     // per path node: chunks received
  std::vector<uint64_t> durable;       // per path node: chunks on disk
  std::map<int, int> disk_cursor;
  std::function<void()> finalize;
  bool completed = false;

  uint64_t ChunkSize(uint64_t index) const {
    return index + 1 == total_chunks ? last_chunk_bytes : chunk_bytes;
  }
};

void ReplicationRuntime::ReplicateCheckpoint(
    const std::string& op, uint32_t subtask, int primary_node,
    const state::CheckpointDescriptor& desc,
    std::map<uint32_t, std::string> blobs, std::function<void(Status)> done) {
  const std::vector<int>& group = manager_->Group(op, subtask);
  uint64_t delta = desc.DeltaBytes();

  auto transfer = std::make_shared<Transfer>();
  transfer->op = op;
  transfer->subtask = subtask;
  transfer->path.push_back(primary_node);
  for (int n : group) transfer->path.push_back(n);
  transfer->chunk_bytes = options_.chunk_bytes;
  transfer->total_chunks =
      delta == 0 ? 0 : (delta + options_.chunk_bytes - 1) / options_.chunk_bytes;
  transfer->last_chunk_bytes =
      delta == 0 ? 0 : delta - (transfer->total_chunks - 1) * options_.chunk_bytes;
  transfer->desc = desc;
  transfer->blobs = std::move(blobs);
  transfer->done = std::move(done);

  size_t hops = transfer->path.size() - 1;
  transfer->next_to_send.assign(hops, 0);
  transfer->credits.assign(hops, options_.credit_window);
  transfer->available.assign(transfer->path.size(), 0);
  transfer->durable.assign(transfer->path.size(), 0);
  transfer->available[0] = transfer->total_chunks;  // primary has everything
  transfer->durable[0] = transfer->total_chunks;

  auto finalize = [this, transfer] {
    if (transfer->completed) return;
    transfer->completed = true;
    // Every chain member now owns a complete secondary copy.
    std::string key = Key(transfer->op, transfer->subtask);
    for (size_t i = 1; i < transfer->path.size(); ++i) {
      ReplicaState& rep = replicas_[key][transfer->path[i]];
      rep.latest_checkpoint_id = transfer->desc.checkpoint_id;
      rep.latest_descriptor = transfer->desc;
      for (const auto& [vnode, blob] : transfer->blobs) {
        rep.vnode_blobs[vnode] = blob;
      }
    }
    ++checkpoints_replicated_;
    // Tail ack travels back up the chain, one hop latency each.
    SimTime ack = options_.ack_latency * static_cast<SimTime>(transfer->path.size() - 1);
    cluster_->sim()->Schedule(ack, [transfer] { transfer->done(Status::OK()); });
  };

  if (transfer->total_chunks == 0) {
    finalize();
    return;
  }
  transfer->finalize = std::move(finalize);
  for (size_t hop = 0; hop < hops; ++hop) PumpHop(transfer, hop);
}

void ReplicationRuntime::PumpHop(std::shared_ptr<Transfer> transfer,
                                 size_t hop) {
  if (transfer->completed) return;
  while (transfer->credits[hop] > 0 &&
         transfer->next_to_send[hop] < transfer->available[hop]) {
    uint64_t chunk = transfer->next_to_send[hop]++;
    --transfer->credits[hop];
    int in_flight = options_.credit_window - transfer->credits[hop];
    max_in_flight_ = std::max(max_in_flight_, in_flight);

    int src = transfer->path[hop];
    int dst = transfer->path[hop + 1];
    uint64_t bytes = transfer->ChunkSize(chunk);
    bytes_replicated_ += bytes;
    cluster_->Transfer(src, dst, bytes, [this, transfer, hop, bytes] {
      // Chunk arrived at the receiver: it may flow further down the chain
      // immediately (chain replication pipelines hops)...
      size_t receiver = hop + 1;
      ++transfer->available[receiver];
      if (receiver < transfer->path.size() - 1) PumpHop(transfer, receiver);
      // ...while the receiver spools it to disk asynchronously. The credit
      // returns only once the chunk is durable (credit-based flow control:
      // the sender can never overrun a slow receiver's storage).
      int node_id = transfer->path[receiver];
      sim::Node& node = cluster_->node(node_id);
      int disk = transfer->disk_cursor[node_id]++ % node.num_disks();
      node.disk(disk).Write(bytes, [this, transfer, hop, receiver] {
        ++transfer->durable[receiver];
        ++transfer->credits[hop];
        PumpHop(transfer, hop);
        if (receiver == transfer->path.size() - 1 &&
            transfer->durable[receiver] == transfer->total_chunks) {
          transfer->finalize();
        }
      });
    });
  }
}

const ReplicaState* ReplicationRuntime::ReplicaOn(const std::string& op,
                                                  uint32_t subtask,
                                                  int node) const {
  auto it = replicas_.find(Key(op, subtask));
  if (it == replicas_.end()) return nullptr;
  auto nit = it->second.find(node);
  if (nit == it->second.end()) return nullptr;
  return &nit->second;
}

void ReplicationRuntime::SeedReplica(const std::string& op, uint32_t subtask,
                                     const state::CheckpointDescriptor& desc,
                                     std::map<uint32_t, std::string> blobs) {
  const std::vector<int>& group = manager_->Group(op, subtask);
  std::string key = Key(op, subtask);
  for (int node : group) {
    ReplicaState& rep = replicas_[key][node];
    rep.latest_checkpoint_id = desc.checkpoint_id;
    rep.latest_descriptor = desc;
    for (const auto& [vnode, blob] : blobs) {
      rep.vnode_blobs[vnode] = blob;
    }
  }
}

}  // namespace rhino::rhino
