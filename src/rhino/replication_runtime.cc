#include "rhino/replication_runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"

namespace rhino::rhino {

/// One checkpoint's journey down a replica chain.
///
/// Chunk completions land on the receiving nodes' strands, so a chain with
/// several hops mutates this bookkeeping from several threads; `mu` guards
/// it (recursive: a durability callback holds it while pumping the next
/// hop, which re-locks).
struct ReplicationRuntime::Transfer {
  std::recursive_mutex mu;
  std::string op;
  uint32_t subtask = 0;
  std::vector<int> path;  // [primary, replica_1, ..., replica_r]
  uint64_t total_chunks = 0;
  uint64_t chunk_bytes = 0;
  uint64_t last_chunk_bytes = 0;
  state::CheckpointDescriptor desc;
  std::map<uint32_t, std::string> blobs;
  std::function<void(Status)> done;

  std::vector<uint64_t> next_to_send;  // per hop
  std::vector<int> credits;            // per hop
  /// Per path node: length of the contiguous received-chunk prefix — how
  /// far this node can pump the next hop.
  std::vector<uint64_t> contiguous;
  /// Per path node: chunks spooled to disk.
  std::vector<uint64_t> durable;
  /// Per path node, per chunk: arrival / durability bitmaps. A dropped
  /// chunk (injected partition) is retransmitted by the stall watchdog;
  /// these make the duplicate deliveries that retransmission can cause
  /// idempotent.
  std::vector<std::vector<bool>> received;
  std::vector<std::vector<bool>> written;
  std::map<int, int> disk_cursor;
  std::function<void()> finalize;
  bool completed = false;
  uint64_t span = 0;  // open "replication"/"transfer" trace span

  /// Forward-progress ticks (arrivals + durability acks); the watchdog
  /// compares against `progress_marker` to detect a stall.
  uint64_t progress = 0;
  uint64_t progress_marker = 0;
  std::unique_ptr<runtime::Retrier> retrier;

  uint64_t ChunkSize(uint64_t index) const {
    return index + 1 == total_chunks ? last_chunk_bytes : chunk_bytes;
  }
};

/// One catch-up copy in flight: `finished` makes the first terminal event
/// (copy durable, target/source death, retry budget exhausted) win, so
/// `finish` fires exactly once even when a timed-out attempt's delivery
/// races a retry.
struct ReplicationRuntime::CatchUp {
  std::string key;
  int source = -1;
  int target = -1;
  uint64_t bytes = 0;
  std::shared_ptr<ReplicaState> snapshot;
  std::function<void(Status)> finish;
  std::shared_ptr<runtime::Retrier> retrier;
  std::atomic<bool> finished{false};

  /// First terminal event wins.
  bool Finish(Status st) {
    if (finished.exchange(true)) return false;
    finish(std::move(st));
    return true;
  }
};

void ReplicationRuntime::ReplicateCheckpoint(
    const std::string& op, uint32_t subtask, int primary_node,
    const state::CheckpointDescriptor& desc,
    std::map<uint32_t, std::string> blobs, std::function<void(Status)> done) {
  std::vector<int> group = manager_->Group(op, subtask);
  uint64_t delta = desc.DeltaBytes();
  if (probe_) probe_("replication_transfer");
  obs_->metrics().GetCounter("rhino_replication_transfers_total")->Increment();

  auto transfer = std::make_shared<Transfer>();
  transfer->op = op;
  transfer->subtask = subtask;
  transfer->path.push_back(primary_node);
  for (int n : group) transfer->path.push_back(n);
  transfer->chunk_bytes = options_.chunk_bytes;
  transfer->total_chunks =
      delta == 0 ? 0 : (delta + options_.chunk_bytes - 1) / options_.chunk_bytes;
  transfer->last_chunk_bytes =
      delta == 0 ? 0 : delta - (transfer->total_chunks - 1) * options_.chunk_bytes;
  transfer->desc = desc;
  transfer->blobs = std::move(blobs);
  transfer->done = std::move(done);

  size_t hops = transfer->path.size() - 1;
  size_t members = transfer->path.size();
  uint64_t chunks = transfer->total_chunks;
  transfer->next_to_send.assign(hops, 0);
  transfer->credits.assign(hops, options_.credit_window);
  transfer->contiguous.assign(members, 0);
  transfer->durable.assign(members, 0);
  transfer->received.assign(members, std::vector<bool>(chunks, false));
  transfer->written.assign(members, std::vector<bool>(chunks, false));
  transfer->contiguous[0] = chunks;  // primary has everything
  transfer->durable[0] = chunks;
  transfer->received[0].assign(chunks, true);
  transfer->written[0].assign(chunks, true);
  transfer->span = obs_->trace().BeginSpan(
      "replication", "transfer", Key(op, subtask), desc.checkpoint_id,
      {{"bytes", static_cast<int64_t>(delta)},
       {"hops", static_cast<int64_t>(hops)}});

  // Runs with transfer->mu held (called from the tail's durability
  // callback).
  auto finalize = [this, transfer] {
    if (transfer->completed) return;
    transfer->completed = true;
    std::lock_guard<std::mutex> catalog_lock(catalog_mu_);
    // Record the secondary copies against the group's *current* live
    // membership: HandleWorkerFailure may have rewritten the group while
    // the chunks were in flight, and a node that left the group (or died)
    // must not be advertised as a replica holder.
    std::string key = Key(transfer->op, transfer->subtask);
    bool has_group = manager_->HasGroup(transfer->op, transfer->subtask);
    std::vector<int> group_now;
    if (has_group) {
      group_now = manager_->Group(transfer->op, transfer->subtask);
    }
    for (size_t i = 1; i < transfer->path.size(); ++i) {
      int node = transfer->path[i];
      if (!cluster_->node(node).alive()) continue;
      if (has_group && std::find(group_now.begin(), group_now.end(), node) ==
                           group_now.end()) {
        continue;
      }
      ReplicaState& rep = replicas_[key][node];
      rep.latest_checkpoint_id = transfer->desc.checkpoint_id;
      rep.latest_descriptor = transfer->desc;
      // Replace wholesale: the blobs cover every vnode the instance owned
      // at snapshot time, so merging would only keep stale blobs of vnodes
      // that moved away since the previous checkpoint.
      rep.vnode_blobs = transfer->blobs;
    }
    checkpoints_replicated_.fetch_add(1, std::memory_order_relaxed);
    obs_->metrics()
        .GetCounter("rhino_replication_completed_total")
        ->Increment();
    obs_->trace().EndSpan(transfer->span);
    // Tail ack travels back up the chain, one hop latency each.
    SimTime ack = options_.ack_latency * static_cast<SimTime>(transfer->path.size() - 1);
    cluster_->executor()->Schedule(ack,
                                   [transfer] { transfer->done(Status::OK()); });
  };

  if (transfer->total_chunks == 0) {
    std::lock_guard<std::recursive_mutex> lock(transfer->mu);
    finalize();
    return;
  }
  transfer->finalize = std::move(finalize);
  if (options_.retry.initial_backoff_us > 0) {
    transfer->retrier = std::make_unique<runtime::Retrier>(
        cluster_->executor(), options_.retry,
        options_.retry_seed ^ desc.checkpoint_id, "replication_transfer",
        obs_);
    ArmWatchdog(transfer, options_.retry.initial_backoff_us);
  }
  std::lock_guard<std::recursive_mutex> lock(transfer->mu);
  for (size_t hop = 0; hop < hops; ++hop) PumpHop(transfer, hop);
}

void ReplicationRuntime::ArmWatchdog(std::shared_ptr<Transfer> transfer,
                                     SimTime delay) {
  cluster_->executor()->Schedule(delay, [this, transfer] {
    std::lock_guard<std::recursive_mutex> lock(transfer->mu);
    if (transfer->completed) return;  // done or aborted: watchdog retires
    if (transfer->progress != transfer->progress_marker) {
      // Forward progress since the last check: reset the backoff ladder
      // and the stall deadline, check again after the base interval.
      transfer->progress_marker = transfer->progress;
      transfer->retrier->Arm();
      ArmWatchdog(transfer, options_.retry.initial_backoff_us);
      return;
    }
    SimTime backoff = 0;
    if (!transfer->retrier->NextBackoff(&backoff)) {
      AbortTransfer(transfer, transfer->retrier->Exhausted(Status::TimedOut(
                                  "replication chain stalled")));
      return;
    }
    // Stalled (chunks or durability acks lost): rewind each hop to its
    // receiver's contiguous prefix and restore full credits. Duplicate
    // deliveries of chunks that were merely delayed are absorbed by the
    // received/written bitmaps.
    retransmit_rounds_.fetch_add(1, std::memory_order_relaxed);
    obs_->metrics()
        .GetCounter("rhino_replication_retransmit_rounds_total")
        ->Increment();
    obs_->trace().Emit("replication", "retransmit",
                       Key(transfer->op, transfer->subtask),
                       transfer->desc.checkpoint_id);
    if (probe_) probe_("replication_retry");
    size_t hops = transfer->path.size() - 1;
    for (size_t h = 0; h < hops; ++h) {
      transfer->next_to_send[h] = transfer->contiguous[h + 1];
      transfer->credits[h] = options_.credit_window;
    }
    for (size_t h = 0; h < hops; ++h) {
      PumpHop(transfer, h);
      if (transfer->completed) return;
    }
    ArmWatchdog(transfer, backoff);
  });
}

void ReplicationRuntime::AbortTransfer(const std::shared_ptr<Transfer>& transfer,
                                       Status status) {
  // Requires transfer->mu held by the caller.
  if (transfer->completed) return;
  transfer->completed = true;
  // Break the self-reference cycle: `finalize` captures the transfer's own
  // shared_ptr, so a stored copy would keep the object alive forever.
  transfer->finalize = nullptr;
  transfers_aborted_.fetch_add(1, std::memory_order_relaxed);
  obs_->metrics().GetCounter("rhino_replication_aborted_total")->Increment();
  obs_->trace().EndSpan(transfer->span, {{"aborted", 1}});
  obs_->trace().Emit("replication", "abort",
                     Key(transfer->op, transfer->subtask),
                     transfer->desc.checkpoint_id);
  RHINO_LOG(Warn) << "replication of " << transfer->op << "#"
                  << transfer->subtask << " ckpt "
                  << transfer->desc.checkpoint_id
                  << " aborted: " << status.ToString();
  if (transfer->done) transfer->done(std::move(status));
}

void ReplicationRuntime::PumpHop(std::shared_ptr<Transfer> transfer,
                                 size_t hop) {
  // Requires transfer->mu held by the caller.
  if (transfer->completed) return;
  while (transfer->credits[hop] > 0 &&
         transfer->next_to_send[hop] < transfer->contiguous[hop]) {
    int src = transfer->path[hop];
    int dst = transfer->path[hop + 1];
    // Fail-stop detection: a dead sender cannot pump, a dead receiver
    // cannot spool. Either way the chain is broken — complete with an
    // error instead of streaming into the void (the next checkpoint, or a
    // catch-up transfer, re-replicates). A fail-stop is *permanent*
    // (Aborted, never retried), unlike the transient stalls the watchdog
    // absorbs.
    if (!cluster_->node(src).alive() || !cluster_->node(dst).alive()) {
      int dead = cluster_->node(src).alive() ? dst : src;
      AbortTransfer(transfer,
                    Status::Aborted("replica chain member node " +
                                    std::to_string(dead) + " fail-stopped"));
      return;
    }
    uint64_t chunk = transfer->next_to_send[hop]++;
    --transfer->credits[hop];
    int in_flight = options_.credit_window - transfer->credits[hop];
    int seen = max_in_flight_.load(std::memory_order_relaxed);
    while (in_flight > seen &&
           !max_in_flight_.compare_exchange_weak(seen, in_flight)) {
    }

    uint64_t bytes = transfer->ChunkSize(chunk);
    bytes_replicated_.fetch_add(bytes, std::memory_order_relaxed);
    chunks_metric_->Increment();
    chunk_bytes_metric_->Increment(bytes);
    if (probe_) probe_("replication_chunk");
    cluster_->Transfer(
        src, dst, bytes,
        [this, transfer, hop, chunk, bytes] {
          std::lock_guard<std::recursive_mutex> lock(transfer->mu);
          if (transfer->completed) return;
          // Chunk arrived at the receiver: it may flow further down the
          // chain immediately (chain replication pipelines hops)...
          size_t receiver = hop + 1;
          int node_id = transfer->path[receiver];
          if (!cluster_->node(node_id).alive()) {
            AbortTransfer(transfer, Status::Aborted(
                                        "replica chain member node " +
                                        std::to_string(node_id) +
                                        " fail-stopped mid-transfer"));
            return;
          }
          if (transfer->received[receiver][chunk]) return;  // retransmit dup
          transfer->received[receiver][chunk] = true;
          ++transfer->progress;
          uint64_t& prefix = transfer->contiguous[receiver];
          while (prefix < transfer->total_chunks &&
                 transfer->received[receiver][prefix]) {
            ++prefix;
          }
          if (receiver < transfer->path.size() - 1) {
            PumpHop(transfer, receiver);
            if (transfer->completed) return;
          }
          // ...while the receiver spools it to disk asynchronously. The
          // credit returns only once the chunk is durable (credit-based
          // flow control: the sender can never overrun a slow receiver's
          // storage).
          sim::Node& node = cluster_->node(node_id);
          int disk = transfer->disk_cursor[node_id]++ % node.num_disks();
          node.disk(disk).Write(
              bytes, [this, transfer, hop, receiver, chunk, node_id] {
                std::lock_guard<std::recursive_mutex> lock(transfer->mu);
                if (transfer->completed) return;
                if (!cluster_->node(node_id).alive()) {
                  AbortTransfer(transfer,
                                Status::Aborted(
                                    "replica chain member node " +
                                    std::to_string(node_id) +
                                    " fail-stopped before durability"));
                  return;
                }
                if (transfer->written[receiver][chunk]) return;
                transfer->written[receiver][chunk] = true;
                ++transfer->durable[receiver];
                ++transfer->progress;
                // A watchdog reset may have already restored full credits;
                // clamp so late durability acks cannot overshoot the window.
                transfer->credits[hop] =
                    std::min(options_.credit_window, transfer->credits[hop] + 1);
                PumpHop(transfer, hop);
                if (transfer->completed) return;
                if (receiver == transfer->path.size() - 1 &&
                    transfer->durable[receiver] == transfer->total_chunks) {
                  // Move the closure out before invoking: it captures the
                  // transfer's own shared_ptr, and a stored copy would
                  // cycle.
                  auto fin = std::move(transfer->finalize);
                  fin();
                }
              });
            },
        sim::TransferKind::kState);
  }
}

const ReplicaState* ReplicationRuntime::ReplicaOn(const std::string& op,
                                                  uint32_t subtask,
                                                  int node) const {
  if (!cluster_->node(node).alive()) return nullptr;
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = replicas_.find(Key(op, subtask));
  if (it == replicas_.end()) return nullptr;
  auto nit = it->second.find(node);
  if (nit == it->second.end()) return nullptr;
  return &nit->second;
}

int ReplicationRuntime::LiveReplicaNode(const std::string& op,
                                        uint32_t subtask) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = replicas_.find(Key(op, subtask));
  if (it == replicas_.end()) return -1;
  int best = -1;
  uint64_t best_id = 0;
  for (const auto& [node, rep] : it->second) {
    if (!cluster_->node(node).alive()) continue;
    if (best < 0 || rep.latest_checkpoint_id > best_id) {
      best = node;
      best_id = rep.latest_checkpoint_id;
    }
  }
  return best;
}

const ReplicaState* ReplicationRuntime::FindVnodeReplica(
    const std::string& op, uint32_t vnode, int preferred_node,
    int* holder) const {
  *holder = -1;
  const ReplicaState* best = nullptr;
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::string prefix = op + "#";
  for (auto it = replicas_.lower_bound(prefix);
       it != replicas_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    for (const auto& [node, rep] : it->second) {
      if (!cluster_->node(node).alive()) continue;
      if (!rep.vnode_blobs.count(vnode)) continue;
      bool fresher =
          best == nullptr ||
          rep.latest_checkpoint_id > best->latest_checkpoint_id ||
          (rep.latest_checkpoint_id == best->latest_checkpoint_id &&
           node == preferred_node && *holder != preferred_node);
      if (fresher) {
        best = &rep;
        *holder = node;
      }
    }
  }
  return best;
}

void ReplicationRuntime::PurgeNode(int node) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  size_t purged = 0;
  for (auto& [key, per_node] : replicas_) {
    purged += per_node.erase(node);
  }
  if (purged > 0) {
    RHINO_LOG(Info) << "purged " << purged
                    << " replica catalog entries of dead node " << node;
  }
}

void ReplicationRuntime::CatchUpReplicas(const std::string& op,
                                         uint32_t subtask,
                                         std::function<void(Status)> done) {
  if (!manager_->HasGroup(op, subtask)) {
    if (done) done(Status::NotFound("no replica group for " + Key(op, subtask)));
    return;
  }
  std::string key = Key(op, subtask);
  // Newest complete copy on a live node: the catch-up source.
  int source = LiveReplicaNode(op, subtask);
  if (source < 0) {
    // Nothing replicated yet (or every copy died): the next full
    // checkpoint rebuilds the group from the primary.
    if (done) done(Status::OK());
    return;
  }
  const ReplicaState* ref = ReplicaOn(op, subtask, source);
  RHINO_CHECK(ref != nullptr);

  std::vector<int> lagging;
  for (int m : manager_->Group(op, subtask)) {
    if (!cluster_->node(m).alive()) continue;
    const ReplicaState* have = ReplicaOn(op, subtask, m);
    if (have != nullptr &&
        have->latest_checkpoint_id >= ref->latest_checkpoint_id) {
      continue;
    }
    lagging.push_back(m);
  }
  if (lagging.empty()) {
    if (done) done(Status::OK());
    return;
  }

  // Copy the reference state now: the catalog entry may be overwritten by
  // the next checkpoint (or purged) while the copies are on the wire.
  auto snapshot = std::make_shared<ReplicaState>(*ref);
  // Copies complete on their targets' strands: the countdown is atomic and
  // the aggregate status carries its own lock.
  struct Settle {
    std::atomic<size_t> remaining;
    std::mutex mu;
    Status aggregate = Status::OK();
    std::function<void(Status)> done;
  };
  auto ctl = std::make_shared<Settle>();
  ctl->remaining.store(lagging.size());
  ctl->done = std::move(done);
  uint64_t bytes = snapshot->latest_descriptor.TotalBytes();
  for (int m : lagging) {
    auto copy = std::make_shared<CatchUp>();
    copy->key = key;
    copy->source = source;
    copy->target = m;
    copy->bytes = bytes;
    copy->snapshot = snapshot;
    copy->finish = [this, ctl](Status st) {
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(ctl->mu);
        if (ctl->aggregate.ok()) ctl->aggregate = std::move(st);
      }
      if (ctl->remaining.fetch_sub(1) == 1 && ctl->done) {
        std::lock_guard<std::mutex> lock(ctl->mu);
        ctl->done(ctl->aggregate);
      }
    };
    copy->retrier = std::make_shared<runtime::Retrier>(
        cluster_->executor(), options_.retry,
        options_.retry_seed ^ (snapshot->latest_checkpoint_id * 31 +
                               static_cast<uint64_t>(m)),
        "replication_catchup", obs_);
    AttemptCatchUp(std::move(copy));
  }
}

void ReplicationRuntime::AttemptCatchUp(std::shared_ptr<CatchUp> ctl) {
  if (ctl->finished.load(std::memory_order_acquire)) return;
  int m = ctl->target;
  // Fail-stops are permanent: no retry brings the copy (or its source)
  // back, so surface Aborted immediately.
  if (!cluster_->node(m).alive()) {
    ctl->Finish(Status::Aborted("catch-up target node " + std::to_string(m) +
                                " died"));
    return;
  }
  if (!cluster_->node(ctl->source).alive()) {
    ctl->Finish(Status::Aborted("catch-up source node " +
                                std::to_string(ctl->source) + " died"));
    return;
  }
  uint64_t bytes = ctl->bytes;
  catchup_transfers_.fetch_add(1, std::memory_order_relaxed);
  catchup_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  obs_->metrics().GetCounter("rhino_replication_catchup_total")->Increment();
  obs_->metrics()
      .GetCounter("rhino_replication_catchup_bytes_total")
      ->Increment(bytes);
  obs_->trace().Emit("replication", "catchup", ctl->key,
                     ctl->snapshot->latest_checkpoint_id,
                     {{"target_node", m},
                      {"bytes", static_cast<int64_t>(bytes)},
                      {"attempt", ctl->retrier->retries() + 1}});
  cluster_->Transfer(
      ctl->source, m, bytes,
      [this, ctl, m, bytes]() mutable {
        if (ctl->finished.load(std::memory_order_acquire)) return;
        if (!cluster_->node(m).alive()) {
          ctl->Finish(Status::Aborted("catch-up target node " +
                                      std::to_string(m) + " died"));
          return;
        }
        sim::Node& node = cluster_->node(m);
        int disk;
        {
          std::lock_guard<std::mutex> lock(catalog_mu_);
          disk = disk_cursor_[m]++ % node.num_disks();
        }
        node.disk(disk).Write(bytes, [this, ctl, m]() mutable {
          if (!cluster_->node(m).alive()) {
            ctl->Finish(Status::Aborted("catch-up target node " +
                                        std::to_string(m) + " died"));
            return;
          }
          if (ctl->Finish(Status::OK())) {
            std::lock_guard<std::mutex> lock(catalog_mu_);
            replicas_[ctl->key][m] = *ctl->snapshot;
          }
        });
      },
      sim::TransferKind::kState);
  // Timeout guard: if the copy is not durable within a generous multiple
  // of its fault-free duration (the transfer may be dropped by an injected
  // partition), retry with backoff; an exhausted budget surfaces TimedOut.
  const sim::NodeSpec& spec = cluster_->node(m).spec();
  SimTime expected =
      TransferTime(bytes, spec.net_bytes_per_sec) +
      TransferTime(bytes, spec.disk_write_bytes_per_sec) + spec.net_latency;
  SimTime timeout = expected * 3 + 50 * kMillisecond;
  cluster_->executor()->Schedule(timeout, [this, ctl] {
    if (ctl->finished.load(std::memory_order_acquire)) return;
    SimTime backoff = 0;
    if (!ctl->retrier->NextBackoff(&backoff)) {
      ctl->Finish(ctl->retrier->Exhausted(Status::TimedOut(
          "catch-up copy to node " + std::to_string(ctl->target) +
          " not durable in time")));
      return;
    }
    cluster_->executor()->Schedule(backoff, [this, ctl]() mutable {
      AttemptCatchUp(std::move(ctl));
    });
  });
}

void ReplicationRuntime::SeedReplica(const std::string& op, uint32_t subtask,
                                     const state::CheckpointDescriptor& desc,
                                     std::map<uint32_t, std::string> blobs) {
  std::vector<int> group = manager_->Group(op, subtask);
  std::string key = Key(op, subtask);
  std::lock_guard<std::mutex> lock(catalog_mu_);
  for (int node : group) {
    ReplicaState& rep = replicas_[key][node];
    rep.latest_checkpoint_id = desc.checkpoint_id;
    rep.latest_descriptor = desc;
    for (const auto& [vnode, blob] : blobs) {
      rep.vnode_blobs[vnode] = blob;
    }
  }
}

// ------------------------------------------------------------ wire form --

void EncodeReplicaState(const ReplicaState& rs, std::string* out) {
  BinaryWriter w(out);
  w.PutU64(rs.latest_checkpoint_id);
  const state::CheckpointDescriptor& d = rs.latest_descriptor;
  w.PutU64(d.checkpoint_id);
  w.PutString(d.operator_name);
  w.PutU32(d.instance_id);
  auto put_files = [&w](const std::vector<state::StateFile>& files) {
    w.PutVarint(files.size());
    for (const auto& f : files) {
      w.PutString(f.name);
      w.PutU64(f.bytes);
    }
  };
  put_files(d.files);
  put_files(d.delta_files);
  w.PutVarint(d.vnode_bytes.size());
  for (const auto& [vnode, bytes] : d.vnode_bytes) {
    w.PutU32(vnode);
    w.PutU64(bytes);
  }
  w.PutVarint(d.source_offsets.size());
  for (const auto& [source, offset] : d.source_offsets) {
    w.PutI64(source);
    w.PutU64(offset);
  }
  w.PutVarint(d.vnode_watermarks.size());
  for (const auto& [vnode, marks] : d.vnode_watermarks) {
    w.PutU32(vnode);
    w.PutVarint(marks.size());
    for (const auto& [source, offset] : marks) {
      w.PutI64(source);
      w.PutU64(offset);
    }
  }
  w.PutVarint(rs.vnode_blobs.size());
  for (const auto& [vnode, blob] : rs.vnode_blobs) {
    w.PutU32(vnode);
    w.PutString(blob);
  }
}

Result<ReplicaState> DecodeReplicaState(std::string_view data) {
  BinaryReader r(data);
  ReplicaState rs;
  RHINO_RETURN_NOT_OK(r.GetU64(&rs.latest_checkpoint_id));
  state::CheckpointDescriptor& d = rs.latest_descriptor;
  RHINO_RETURN_NOT_OK(r.GetU64(&d.checkpoint_id));
  RHINO_RETURN_NOT_OK(r.GetString(&d.operator_name));
  RHINO_RETURN_NOT_OK(r.GetU32(&d.instance_id));
  auto get_files = [&r](std::vector<state::StateFile>* files) -> Status {
    uint64_t n = 0;
    RHINO_RETURN_NOT_OK(r.GetVarint(&n));
    for (uint64_t i = 0; i < n; ++i) {
      state::StateFile f;
      RHINO_RETURN_NOT_OK(r.GetString(&f.name));
      RHINO_RETURN_NOT_OK(r.GetU64(&f.bytes));
      files->push_back(std::move(f));
    }
    return Status::OK();
  };
  RHINO_RETURN_NOT_OK(get_files(&d.files));
  RHINO_RETURN_NOT_OK(get_files(&d.delta_files));
  uint64_t n = 0;
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t vnode = 0;
    uint64_t bytes = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&vnode));
    RHINO_RETURN_NOT_OK(r.GetU64(&bytes));
    d.vnode_bytes[vnode] = bytes;
  }
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t source = 0;
    uint64_t offset = 0;
    RHINO_RETURN_NOT_OK(r.GetI64(&source));
    RHINO_RETURN_NOT_OK(r.GetU64(&offset));
    d.source_offsets[static_cast<int>(source)] = offset;
  }
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t vnode = 0;
    uint64_t marks = 0;
    RHINO_RETURN_NOT_OK(r.GetU32(&vnode));
    RHINO_RETURN_NOT_OK(r.GetVarint(&marks));
    for (uint64_t j = 0; j < marks; ++j) {
      int64_t source = 0;
      uint64_t offset = 0;
      RHINO_RETURN_NOT_OK(r.GetI64(&source));
      RHINO_RETURN_NOT_OK(r.GetU64(&offset));
      d.vnode_watermarks[vnode][static_cast<int>(source)] = offset;
    }
  }
  RHINO_RETURN_NOT_OK(r.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t vnode = 0;
    std::string blob;
    RHINO_RETURN_NOT_OK(r.GetU32(&vnode));
    RHINO_RETURN_NOT_OK(r.GetString(&blob));
    rs.vnode_blobs[vnode] = std::move(blob);
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after replica state");
  }
  return rs;
}

}  // namespace rhino::rhino
