#include "rhino/handover_manager.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"

namespace rhino::rhino {

using dataflow::HandoverMove;
using dataflow::HandoverSpec;
using dataflow::SourceInstance;
using dataflow::StatefulInstance;

namespace {

/// One bulk state shipment (migration tail / remote replica fetch) with a
/// durability timeout and retransmission. `settled` makes the first
/// terminal event win: a timed-out attempt's late delivery cannot fire
/// `deliver` twice, and a retry racing a death cannot fire both callbacks.
struct Shipment {
  dataflow::Engine* engine = nullptr;
  int src = -1;
  int dst = -1;
  uint64_t bytes = 0;
  std::function<void()> deliver;
  std::function<void(Status)> give_up;
  std::shared_ptr<runtime::Retrier> retrier;
  std::atomic<bool> settled{false};

  bool Settle() { return !settled.exchange(true); }

  static void Attempt(std::shared_ptr<Shipment> s) {
    if (s->settled.load(std::memory_order_acquire)) return;
    sim::Cluster* cluster = s->engine->cluster();
    // Fail-stops are permanent — retrying cannot revive a dead endpoint.
    if (!cluster->node(s->src).alive() || !cluster->node(s->dst).alive()) {
      int dead = cluster->node(s->src).alive() ? s->dst : s->src;
      if (s->Settle()) {
        s->give_up(Status::Aborted("shipment endpoint node " +
                                   std::to_string(dead) + " fail-stopped"));
      }
      return;
    }
    cluster->Transfer(
        s->src, s->dst, s->bytes,
        [s] {
          if (s->settled.load(std::memory_order_acquire)) return;
          sim::Node& tgt = s->engine->cluster()->node(s->dst);
          tgt.disk(0).Write(s->bytes, [s] {
            if (s->Settle()) s->deliver();
          });
        },
        sim::TransferKind::kState);
    // Durability timeout: a generous multiple of the fault-free duration.
    // An injected partition swallows the shipment entirely; the timeout is
    // what turns that silence into a retry.
    const sim::NodeSpec& spec = cluster->node(s->dst).spec();
    SimTime expected = TransferTime(s->bytes, spec.net_bytes_per_sec) +
                       TransferTime(s->bytes, spec.disk_write_bytes_per_sec) +
                       spec.net_latency;
    SimTime timeout = expected * 3 + 50 * kMillisecond;
    s->engine->executor()->Schedule(timeout, [s] {
      if (s->settled.load(std::memory_order_acquire)) return;
      SimTime backoff = 0;
      if (!s->retrier->NextBackoff(&backoff)) {
        if (s->Settle()) {
          s->give_up(s->retrier->Exhausted(Status::TimedOut(
              "state shipment to node " + std::to_string(s->dst) +
              " not durable in time")));
        }
        return;
      }
      s->engine->executor()->Schedule(backoff, [s] { Attempt(s); });
    });
  }
};

}  // namespace

void HandoverManager::ShipStateWithRetry(int src, int dst, uint64_t bytes,
                                         uint64_t handover_id,
                                         std::function<void()> deliver,
                                         std::function<void(Status)> give_up) {
  if (options_.retry.initial_backoff_us == 0) {
    // Watchdog disabled: the historical fire-and-forget path.
    sim::Node& tgt = engine_->cluster()->node(dst);
    engine_->cluster()->Transfer(
        src, dst, bytes,
        [&tgt, bytes, deliver = std::move(deliver)]() mutable {
          tgt.disk(0).Write(bytes, std::move(deliver));
        },
        sim::TransferKind::kState);
    return;
  }
  auto s = std::make_shared<Shipment>();
  s->engine = engine_;
  s->src = src;
  s->dst = dst;
  s->bytes = bytes;
  s->deliver = std::move(deliver);
  s->give_up = std::move(give_up);
  s->retrier = std::make_shared<runtime::Retrier>(
      engine_->executor(), options_.retry, options_.retry_seed ^ handover_id,
      "handover_shipment", engine_->obs());
  Shipment::Attempt(std::move(s));
}

uint64_t HandoverManager::TriggerReconfiguration(
    const std::string& op, std::vector<HandoverMove> moves) {
  auto spec = std::make_shared<HandoverSpec>();
  spec->id = NextHandoverId();
  spec->operator_name = op;
  spec->moves = std::move(moves);
  UpdateStats(spec->id, [&](HandoverStats& stats) {
    stats.handover_id = spec->id;
    stats.triggered_at = engine_->executor()->Now();
    stats.moves = static_cast<int>(spec->moves.size());
  });
  engine_->StartHandover(spec);
  return spec->id;
}

// Observability note: per-move state movement is spanned as
// "handover"/"state_transfer" on scope `<op>#<target>`; the span ends when
// the move resolves (ingested, restored, abandoned, or dropped as stale).

uint64_t HandoverManager::TriggerLoadBalance(const std::string& op,
                                             uint32_t origin, uint32_t target,
                                             double fraction) {
  auto vnodes = engine_->routing(op)->VnodesOfInstance(origin);
  size_t count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(vnodes.size()) * fraction));
  vnodes.resize(std::min(count, vnodes.size()));
  return TriggerReconfiguration(op, {HandoverMove{origin, target, vnodes}});
}

std::vector<uint64_t> HandoverManager::RecoverFailedNode(int node) {
  std::vector<uint64_t> handovers;
  engine_->obs()->metrics().GetCounter("rhino_recovery_total")->Increment();
  engine_->obs()->trace().Emit("handover", "recovery_start",
                               "node" + std::to_string(node));
  const auto* ckpt = engine_->LastCompletedCheckpoint();

  // The dead node's secondary copies died with its disks.
  runtime_->PurgeNode(node);

  // Redeploy the failed node's stateless instances (sources, sinks) on
  // live workers, round-robin.
  std::vector<int> live;
  for (int w : manager_->workers()) {
    if (w != node && engine_->cluster()->node(w).alive()) live.push_back(w);
  }
  if (live.empty()) {
    RHINO_LOG(Error) << "no live workers to recover node " << node
                     << " onto; the job stalls until capacity returns";
    return handovers;
  }
  size_t cursor = 0;
  for (SourceInstance* src : engine_->sources()) {
    if (!src->halted()) continue;
    src->set_node_id(live[cursor++ % live.size()]);
    src->Resume();
  }
  for (dataflow::SinkInstance* sink : engine_->sinks()) {
    if (!sink->halted()) continue;
    sink->set_node_id(live[cursor++ % live.size()]);
    sink->Resume();
  }

  // Effective vnode ownership: the coordinator's routing table plus every
  // still-incomplete handover applied in trigger order. Gates rewire at
  // marker passage, so the vnodes of an uncommitted in-flight move already
  // route to its target — planning from the committed table alone would
  // strand them on a dead instance.
  std::map<std::string, std::vector<uint32_t>> effective;
  for (StatefulInstance* inst : engine_->stateful()) {
    const std::string& op = inst->op_name();
    if (effective.count(op) != 0) continue;
    hashring::RoutingTable* table = engine_->routing(op);
    std::vector<uint32_t> owner(table->map().num_vnodes());
    for (uint32_t v = 0; v < owner.size(); ++v) {
      owner[v] = table->InstanceForVnode(v);
    }
    for (const auto& record : engine_->SnapshotHandovers()) {
      if (record.completed || record.spec->operator_name != op) continue;
      for (const HandoverMove& mv : record.spec->moves) {
        for (uint32_t v : mv.vnodes) owner[v] = mv.target_instance;
      }
    }
    effective.emplace(op, std::move(owner));
  }

  // One recovery handover per stateful operator with orphaned vnodes.
  std::map<std::string, std::vector<HandoverMove>> moves_per_op;
  std::map<int, size_t> target_node_usage;
  for (StatefulInstance* inst : engine_->stateful()) {
    if (!inst->halted()) continue;
    auto me = static_cast<uint32_t>(inst->subtask());
    const std::vector<uint32_t>& owner = effective[inst->op_name()];
    std::vector<uint32_t> vnodes;
    for (uint32_t v = 0; v < owner.size(); ++v) {
      if (owner[v] == me) vnodes.push_back(v);
    }
    if (vnodes.empty()) continue;
    // Target: a live instance of the same operator, preferring workers
    // that hold a secondary copy of the failed instance's state (local
    // fetch). Targets are spread over distinct nodes so recovery fetching
    // parallelizes across the cluster. When no replica holder is live
    // (e.g. the whole group died), any live instance qualifies and the
    // restore path degrades to remote-replica / DFS / replay-only.
    StatefulInstance* best = nullptr;
    size_t best_score = ~0ull;
    for (StatefulInstance* candidate : engine_->stateful()) {
      if (candidate->halted() || candidate->op_name() != inst->op_name()) {
        continue;
      }
      size_t score = candidate->owned_vnodes().size() +
                     1000 * target_node_usage[candidate->node_id()];
      if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica &&
          runtime_->ReplicaOn(inst->op_name(), me, candidate->node_id()) ==
              nullptr) {
        score += 1000000;  // last resort: no local copy on this worker
      }
      if (best == nullptr || score < best_score) {
        best = candidate;
        best_score = score;
      }
    }
    if (best == nullptr) {
      RHINO_LOG(Error) << "no live instance of " << inst->op_name()
                       << " to adopt the vnodes of subtask " << me
                       << "; they stay orphaned";
      continue;
    }
    if (best_score >= 1000000) {
      RHINO_LOG(Warn) << "no live worker holds a replica of "
                      << inst->op_name() << "#" << me
                      << "; recovery degrades to remote fetch";
    }
    ++target_node_usage[best->node_id()];
    moves_per_op[inst->op_name()].push_back(
        HandoverMove{me, static_cast<uint32_t>(best->subtask()), vnodes});
  }

  // Markers go in *before* the rewind (they rewire the upstream gates, so
  // every replayed record routes to the new owners) — but both must land
  // on each source atomically. Under real threads, a source left running
  // between marker injection and its rewind can emit a pre-rewind record
  // through an already-rewired gate; the new owner's replay watermark
  // then jumps past the tail about to be replayed and deduplicates it as
  // already seen — silently losing records the simulator (where this
  // whole block is one event) could never lose.
  std::vector<dataflow::ControlEvent> markers;
  for (auto& [op, moves] : moves_per_op) {
    auto spec = std::make_shared<HandoverSpec>();
    spec->id = NextHandoverId();
    spec->operator_name = op;
    spec->moves = std::move(moves);
    spec->origin_failed = true;
    UpdateStats(spec->id, [&](HandoverStats& stats) {
      stats.handover_id = spec->id;
      stats.triggered_at = engine_->executor()->Now();
      stats.moves = static_cast<int>(spec->moves.size());
    });
    engine_->StartHandover(spec, /*inject_markers=*/false);
    markers.push_back(dataflow::Engine::HandoverMarkerFor(spec));
    handovers.push_back(spec->id);
  }

  // Rewind every source to the last completed checkpoint so the upstream
  // backup replays the tail lost with the failed state. Live instances
  // drop the duplicates via their replay watermarks.
  for (SourceInstance* src : engine_->sources()) {
    uint64_t offset = 0;
    if (ckpt != nullptr) {
      auto it = ckpt->descriptors.find(src->op_name() + "#" +
                                       std::to_string(src->subtask()));
      if (it != ckpt->descriptors.end()) {
        auto oit = it->second.source_offsets.find(src->subtask());
        if (oit != it->second.source_offsets.end()) offset = oit->second;
      }
    }
    src->RewindThroughMarkers(markers, offset);
  }

  // Repair the replica groups that lost the failed worker, then catch the
  // substitutes up to the newest replicated checkpoint so the replication
  // factor is restored before the next failure (§4.2.3).
  for (const GroupRepair& repair : manager_->HandleWorkerFailure(node)) {
    if (repair.substitute < 0) continue;  // degraded: no worker to catch up
    runtime_->CatchUpReplicas(
        repair.op_name, repair.subtask,
        [op = repair.op_name, sub = repair.subtask](Status st) {
          if (!st.ok()) {
            RHINO_LOG(Warn) << "catch-up re-replication of " << op << "#"
                            << sub << " failed: " << st.ToString();
          }
        });
  }
  return handovers;
}

void HandoverManager::TransferState(const HandoverSpec& spec,
                                    const HandoverMove& move,
                                    StatefulInstance* origin,
                                    StatefulInstance* target,
                                    std::function<void()> done) {
  SimTime start = engine_->executor()->Now();
  HandoverSpec spec_copy = spec;
  HandoverMove move_copy = move;

  uint64_t span = engine_->obs()->trace().BeginSpan(
      "handover", "state_transfer",
      spec.operator_name + "#" + std::to_string(move.target_instance), spec.id,
      {{"origin", static_cast<int64_t>(move.origin_instance)},
       {"vnodes", static_cast<int64_t>(move.vnodes.size())},
       {"origin_failed", origin == nullptr ? 1 : 0}});
  // Every completion path resolves through `done`; closing the span there
  // covers ingest, restore, abandon, and stale-drop alike.
  done = [this, span, inner = std::move(done)]() {
    engine_->obs()->trace().EndSpan(span);
    inner();
  };

  // The target's worker fail-stopped before the transfer began: abandon
  // the move (the origin keeps its state, the recovery handover re-homes
  // the vnodes later).
  auto abandon = [this, spec_copy, move_copy, origin, done]() {
    abandoned_moves_.fetch_add(1, std::memory_order_relaxed);
    engine_->obs()
        ->metrics()
        .GetCounter("rhino_handover_abandoned_moves_total")
        ->Increment();
    engine_->obs()->trace().Emit(
        "handover", "move_abandoned",
        spec_copy.operator_name + "#" +
            std::to_string(move_copy.target_instance),
        spec_copy.id);
    RHINO_LOG(Warn) << "handover " << spec_copy.id << ": target instance "
                    << move_copy.target_instance
                    << " fail-stopped; move abandoned, origin keeps state";
    if (origin != nullptr && !origin->halted()) {
      origin->AbandonHandoverMoveAsOrigin(spec_copy, move_copy);
    }
    done();
  };

  if (origin != nullptr) {
    // ---- live migration: incremental checkpoint + tail transfer --------
    if (target == nullptr || target->halted()) {
      engine_->executor()->Schedule(0, abandon);
      return;
    }
    uint64_t moved_bytes = 0;
    for (uint32_t v : move.vnodes) {
      moved_bytes += origin->backend()->VnodeBytes(v);
    }
    uint64_t total_bytes = std::max<uint64_t>(1, origin->backend()->SizeBytes());

    auto mini = origin->backend()->Checkpoint(next_mini_checkpoint_++);
    RHINO_CHECK(mini.ok()) << mini.status().ToString();
    // The target worker already holds the state when it is the origin's
    // own worker (primary copy) or a member of the replica group.
    bool target_has_replica =
        origin->node_id() == target->node_id() ||
        (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica &&
         runtime_->ReplicaOn(origin->op_name(),
                             static_cast<uint32_t>(origin->subtask()),
                             target->node_id()) != nullptr);
    // The share of the final incremental checkpoint belonging to the
    // moved vnodes; everything older is already on the target's worker
    // when it is in the replica group.
    uint64_t tail_bytes = static_cast<uint64_t>(
        static_cast<double>(mini->DeltaBytes()) *
        (static_cast<double>(moved_bytes) / static_cast<double>(total_bytes)));
    uint64_t wire_bytes = target_has_replica ? tail_bytes : moved_bytes;

    auto blob = origin->backend()->ExtractVnodes(move.vnodes);
    RHINO_CHECK(blob.ok()) << blob.status().ToString();
    auto marks = origin->GetWatermarks(move.vnodes);

    UpdateStats(spec.id, [&](HandoverStats& stats) {
      stats.bytes_transferred +=
          origin->node_id() == target->node_id() ? 0 : wire_bytes;
      stats.local_fetch = target_has_replica;
    });
    if (origin->node_id() != target->node_id()) {
      engine_->obs()
          ->metrics()
          .GetCounter("rhino_handover_bytes_total")
          ->Increment(wire_bytes);
    }

    auto ingest = [this, spec_copy, move_copy, origin, target, done, abandon,
                   start, target_has_replica,
                   blob = std::move(blob).MoveValue(), marks]() {
      SimTime fetch = engine_->executor()->Now() - start;
      UpdateStats(spec_copy.id, [&](HandoverStats& s) {
        s.state_fetch_us = std::max(s.state_fetch_us, fetch);
      });
      engine_->obs()
          ->metrics()
          .GetHistogram("rhino_handover_state_fetch_us")
          ->Observe(fetch);
      SimTime load = options_.load_per_file_us * 8;
      engine_->executor()->Schedule(load, [this, spec_copy, move_copy, origin,
                                      target, done, abandon,
                                      target_has_replica, blob, marks, load] {
        if (target->halted()) {
          // Target died while the tail was in flight.
          abandon();
          return;
        }
        if (origin->halted()) {
          // Origin died after extracting the tail: this copy is stale
          // relative to the recovery plan. The target's re-issued restore
          // from the replicated checkpoint plus the source rewind supply
          // the state; ingesting here would double-apply the tail.
          done();
          return;
        }
        UpdateStats(spec_copy.id, [&](HandoverStats& s2) {
          s2.state_load_us = std::max(s2.state_load_us, load);
        });
        engine_->obs()
            ->metrics()
            .GetHistogram("rhino_handover_state_load_us")
            ->Observe(load);
        RHINO_CHECK_OK(target->backend()->IngestVnodes(blob, target_has_replica));
        target->MergeWatermarks(marks);
        origin->CompleteHandoverAsOrigin(spec_copy, move_copy);
        target->CompleteHandoverAsTarget(spec_copy, move_copy);
        done();
      });
    };

    int origin_node = origin->node_id();
    int target_node = target->node_id();
    if (origin_node == target_node) {
      engine_->executor()->Schedule(0, std::move(ingest));
    } else {
      // Write the tail locally (part of the checkpoint), then ship it and
      // spool it at the target. A shipment swallowed by an injected fault
      // is retransmitted; exhausting the retry budget abandons the move
      // (the origin keeps its state, like a target fail-stop).
      ShipStateWithRetry(origin_node, target_node, wire_bytes, spec.id,
                         std::move(ingest),
                         [spec_id = spec.id, abandon](Status st) {
                           RHINO_LOG(Warn)
                               << "handover " << spec_id
                               << ": tail shipment failed permanently: "
                               << st.ToString();
                           abandon();
                         });
    }
    return;
  }

  // ---- failed origin: restore from a secondary copy --------------------
  RHINO_CHECK(target != nullptr);
  if (target->halted()) {
    // Cascading failure: the chosen substitute died too. The next
    // RecoverFailedNode re-plans these vnodes.
    engine_->executor()->Schedule(0, abandon);
    return;
  }
  const std::string& op = spec.operator_name;

  // Snapshot everything the restore needs *by value*: the catalog entry a
  // pointer would reference can be purged by a concurrent node failure
  // before the (simulated) fetch completes.
  struct RestorePlan {
    std::map<uint32_t, std::string> blobs;       // vnode -> content
    StatefulInstance::WatermarkMap marks;        // replay dedup positions
    size_t files = 0;                            // load-time model input
    uint64_t remote_bytes = 0;                   // bytes crossing the wire
    int remote_source = -1;                      // node shipping them
    size_t missing = 0;                          // vnodes with no live copy
  };
  auto plan = std::make_shared<RestorePlan>();

  auto add_from = [&](const ReplicaState* rep, int holder, uint32_t v) {
    auto bit = rep->vnode_blobs.find(v);
    if (bit == rep->vnode_blobs.end()) return false;
    plan->blobs[v] = bit->second;
    auto wit = rep->latest_descriptor.vnode_watermarks.find(v);
    if (wit != rep->latest_descriptor.vnode_watermarks.end()) {
      plan->marks[v] = wit->second;
    }
    plan->files = std::max(plan->files, rep->latest_descriptor.files.size());
    if (holder != target->node_id()) {
      auto sit = rep->latest_descriptor.vnode_bytes.find(v);
      plan->remote_bytes +=
          sit != rep->latest_descriptor.vnode_bytes.end() ? sit->second
                                                          : bit->second.size();
      plan->remote_source = holder;
    }
    return true;
  };

  // Vnodes the target already owns live need no restore: it was the origin
  // of an abandoned move of this very state, and its copy reflects every
  // record applied up to the gate rewire — strictly fresher than any
  // checkpoint. Overwriting it would lose the un-checkpointed tail (the
  // live replay watermarks would dedup the replay that should refill it).
  std::vector<uint32_t> to_restore;
  for (uint32_t v : move_copy.vnodes) {
    if (!target->owned_vnodes().count(v)) to_restore.push_back(v);
  }

  if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica) {
    // Preferred ladder per vnode: the target worker's own copy (hard
    // links), else the newest live copy anywhere (one network hop), else
    // any live copy of the *vnode* — it may have been checkpointed under a
    // different instance when a move chain was interrupted by failures.
    const ReplicaState* base =
        runtime_->ReplicaOn(op, move.origin_instance, target->node_id());
    int base_node = target->node_id();
    if (base == nullptr) {
      base_node = runtime_->LiveReplicaNode(op, move.origin_instance);
      if (base_node >= 0) {
        base = runtime_->ReplicaOn(op, move.origin_instance, base_node);
      }
    }
    for (uint32_t v : to_restore) {
      if (base != nullptr && add_from(base, base_node, v)) continue;
      int holder = -1;
      const ReplicaState* vrep =
          runtime_->FindVnodeReplica(op, v, target->node_id(), &holder);
      if (vrep != nullptr && add_from(vrep, holder, v)) continue;
      ++plan->missing;
    }
  } else if (options_.dfs_replica_lookup) {
    const ReplicaState* rep = options_.dfs_replica_lookup(op, move.origin_instance);
    if (rep != nullptr) {
      for (uint32_t v : to_restore) {
        if (!add_from(rep, target->node_id(), v)) ++plan->missing;
      }
      // DFS fetch cost is modeled by the block reads below, not by a
      // point-to-point transfer.
      plan->remote_bytes = 0;
      plan->remote_source = -1;
    } else {
      plan->missing = to_restore.size();
    }
  } else {
    plan->missing = to_restore.size();
  }
  if (plan->missing > 0) {
    degraded_restores_.fetch_add(1, std::memory_order_relaxed);
    engine_->obs()
        ->metrics()
        .GetCounter("rhino_handover_degraded_restores_total")
        ->Increment();
    engine_->obs()->trace().Emit(
        "handover", "degraded_restore",
        op + "#" + std::to_string(move.target_instance), spec.id,
        {{"missing_vnodes", static_cast<int64_t>(plan->missing)}});
    RHINO_LOG(Warn) << "handover " << spec.id << ": " << plan->missing
                    << " vnode(s) of " << op << "#" << move.origin_instance
                    << " have no live copy; restoring empty, upstream "
                       "replay covers the checkpointed tail only";
  }

  auto restore = [this, spec_copy, move_copy, target, done, plan, start] {
    SimTime fetch = engine_->executor()->Now() - start;
    UpdateStats(spec_copy.id, [&](HandoverStats& s) {
      s.state_fetch_us = std::max(s.state_fetch_us, fetch);
    });
    engine_->obs()
        ->metrics()
        .GetHistogram("rhino_handover_state_fetch_us")
        ->Observe(fetch);
    SimTime load = options_.load_fixed_us +
                   options_.load_per_file_us * static_cast<SimTime>(plan->files);
    engine_->executor()->Schedule(load, [this, spec_copy, move_copy, target, done,
                                    plan, load] {
      UpdateStats(spec_copy.id, [&](HandoverStats& s2) {
        s2.state_load_us = std::max(s2.state_load_us, load);
      });
      engine_->obs()
          ->metrics()
          .GetHistogram("rhino_handover_state_load_us")
          ->Observe(load);
      if (target->halted()) {
        // Cascading failure while loading; the next recovery re-plans.
        done();
        return;
      }
      for (const auto& [v, content] : plan->blobs) {
        (void)v;
        RHINO_CHECK_OK(target->backend()->IngestVnodes(content, /*durable=*/true));
      }
      target->MergeWatermarks(plan->marks);
      uint64_t restored = 0;
      for (uint32_t v : move_copy.vnodes) {
        restored += target->backend()->VnodeBytes(v);
      }
      UpdateStats(spec_copy.id, [&](HandoverStats& s2) {
        s2.bytes_transferred += restored;
      });
      target->CompleteHandoverAsTarget(spec_copy, move_copy);
      done();
    });
  };

  if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica) {
    if (plan->remote_bytes == 0) {
      // Secondary copy on this worker's own disks: fetching is
      // hard-linking checkpoint files (paper: ~0.2 s, size-independent).
      UpdateStats(spec.id,
                  [](HandoverStats& stats) { stats.local_fetch = true; });
      engine_->executor()->Schedule(options_.local_fetch_us, restore);
    } else {
      // Replica lives elsewhere: one bulk hop to the target's disks, then
      // the usual local fetch + load.
      UpdateStats(spec.id, [&](HandoverStats& stats) {
        stats.local_fetch = false;
        stats.bytes_transferred += plan->remote_bytes;
      });
      engine_->obs()
          ->metrics()
          .GetCounter("rhino_handover_bytes_total")
          ->Increment(plan->remote_bytes);
      uint64_t wire = plan->remote_bytes;
      ShipStateWithRetry(
          plan->remote_source, target->node_id(), wire, spec.id,
          [this, restore]() {
            engine_->executor()->Schedule(options_.local_fetch_us, restore);
          },
          [this, op, spec_copy, move_copy, plan, restore](Status st) {
            // The remote copy stayed unreachable past the retry budget:
            // degrade to upstream replay, the same contract as vnodes with
            // no live copy at planning time.
            degraded_restores_.fetch_add(1, std::memory_order_relaxed);
            engine_->obs()
                ->metrics()
                .GetCounter("rhino_handover_degraded_restores_total")
                ->Increment();
            engine_->obs()->trace().Emit(
                "handover", "degraded_restore",
                op + "#" + std::to_string(move_copy.target_instance),
                spec_copy.id);
            RHINO_LOG(Warn) << "handover " << spec_copy.id
                            << ": remote replica fetch failed permanently ("
                            << st.ToString()
                            << "); restoring from upstream replay only";
            plan->blobs.clear();
            plan->marks.clear();
            engine_->executor()->Schedule(options_.local_fetch_us, restore);
          });
    }
  } else {
    // RhinoDFS: the protocol is the same but the state comes through the
    // block-centric DFS — remote blocks cross the network (Figure 3).
    RHINO_CHECK(options_.dfs != nullptr);
    UpdateStats(spec.id,
                [](HandoverStats& stats) { stats.local_fetch = false; });
    std::vector<std::string> paths;
    if (options_.dfs_paths) {
      paths = options_.dfs_paths(op, move.origin_instance);
    }
    if (paths.empty()) {
      engine_->executor()->Schedule(options_.local_fetch_us, restore);
      return;
    }
    auto remaining =
        std::make_shared<std::atomic<size_t>>(paths.size());
    for (const auto& path : paths) {
      options_.dfs->ReadFile(path, target->node_id(),
                             [remaining, restore](Status st) {
                               if (!st.ok()) {
                                 RHINO_LOG(Warn)
                                     << "DFS read failed during restore: "
                                     << st.ToString();
                               }
                               if (remaining->fetch_sub(1) == 1) restore();
                             });
    }
  }
}

const HandoverStats* HandoverManager::StatsFor(uint64_t handover_id) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_.find(handover_id);
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace rhino::rhino
