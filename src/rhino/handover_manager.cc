#include "rhino/handover_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"

namespace rhino::rhino {

using dataflow::HandoverMove;
using dataflow::HandoverSpec;
using dataflow::SourceInstance;
using dataflow::StatefulInstance;

uint64_t HandoverManager::TriggerReconfiguration(
    const std::string& op, std::vector<HandoverMove> moves) {
  auto spec = std::make_shared<HandoverSpec>();
  spec->id = NextHandoverId();
  spec->operator_name = op;
  spec->moves = std::move(moves);
  HandoverStats& stats = stats_[spec->id];
  stats.handover_id = spec->id;
  stats.triggered_at = engine_->sim()->Now();
  stats.moves = static_cast<int>(spec->moves.size());
  engine_->StartHandover(spec);
  return spec->id;
}

uint64_t HandoverManager::TriggerLoadBalance(const std::string& op,
                                             uint32_t origin, uint32_t target,
                                             double fraction) {
  auto vnodes = engine_->routing(op)->VnodesOfInstance(origin);
  size_t count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(vnodes.size()) * fraction));
  vnodes.resize(std::min(count, vnodes.size()));
  return TriggerReconfiguration(op, {HandoverMove{origin, target, vnodes}});
}

std::vector<uint64_t> HandoverManager::RecoverFailedNode(int node) {
  std::vector<uint64_t> handovers;
  const auto* ckpt = engine_->LastCompletedCheckpoint();

  // Redeploy the failed node's stateless instances (sources, sinks) on
  // live workers, round-robin.
  std::vector<int> live;
  for (int w : manager_->workers()) {
    if (w != node && engine_->cluster()->node(w).alive()) live.push_back(w);
  }
  RHINO_CHECK(!live.empty()) << "no live workers to recover onto";
  size_t cursor = 0;
  for (SourceInstance* src : engine_->sources()) {
    if (!src->halted()) continue;
    src->set_node_id(live[cursor++ % live.size()]);
    src->Resume();
  }
  for (dataflow::SinkInstance* sink : engine_->sinks()) {
    if (!sink->halted()) continue;
    sink->set_node_id(live[cursor++ % live.size()]);
    sink->Resume();
  }

  // One recovery handover per stateful operator with failed instances.
  std::map<std::string, std::vector<HandoverMove>> moves_per_op;
  std::map<int, size_t> target_node_usage;
  for (StatefulInstance* inst : engine_->stateful()) {
    if (!inst->halted()) continue;
    auto vnodes = engine_->routing(inst->op_name())
                      ->VnodesOfInstance(static_cast<uint32_t>(inst->subtask()));
    if (vnodes.empty()) continue;
    // Target: a live instance of the same operator. With local-replica
    // fetching the target's worker must hold a secondary copy; with DFS
    // fetching any worker qualifies. Targets are spread over distinct
    // nodes so recovery fetching parallelizes across the cluster.
    StatefulInstance* best = nullptr;
    size_t best_score = ~0ull;
    for (StatefulInstance* candidate : engine_->stateful()) {
      if (candidate->halted() || candidate->op_name() != inst->op_name()) {
        continue;
      }
      if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica &&
          !manager_->NodeInGroup(inst->op_name(),
                                 static_cast<uint32_t>(inst->subtask()),
                                 candidate->node_id())) {
        continue;
      }
      size_t score = candidate->owned_vnodes().size() +
                     1000 * target_node_usage[candidate->node_id()];
      if (best == nullptr || score < best_score) {
        best = candidate;
        best_score = score;
      }
    }
    RHINO_CHECK(best != nullptr)
        << "no live instance on the replica group of " << inst->op_name()
        << "#" << inst->subtask();
    ++target_node_usage[best->node_id()];
    moves_per_op[inst->op_name()].push_back(
        HandoverMove{static_cast<uint32_t>(inst->subtask()),
                     static_cast<uint32_t>(best->subtask()), vnodes});
  }

  // Inject the markers *before* rewinding: the markers rewire upstream
  // gates, so every replayed record routes to the new owners.
  for (auto& [op, moves] : moves_per_op) {
    auto spec = std::make_shared<HandoverSpec>();
    spec->id = NextHandoverId();
    spec->operator_name = op;
    spec->moves = std::move(moves);
    spec->origin_failed = true;
    HandoverStats& stats = stats_[spec->id];
    stats.handover_id = spec->id;
    stats.triggered_at = engine_->sim()->Now();
    stats.moves = static_cast<int>(spec->moves.size());
    engine_->StartHandover(spec);
    handovers.push_back(spec->id);
  }

  // Rewind every source to the last completed checkpoint so the upstream
  // backup replays the tail lost with the failed state. Live instances
  // drop the duplicates via their replay watermarks.
  for (SourceInstance* src : engine_->sources()) {
    uint64_t offset = 0;
    if (ckpt != nullptr) {
      auto it = ckpt->descriptors.find(src->op_name() + "#" +
                                       std::to_string(src->subtask()));
      if (it != ckpt->descriptors.end()) {
        auto oit = it->second.source_offsets.find(src->subtask());
        if (oit != it->second.source_offsets.end()) offset = oit->second;
      }
    }
    src->ResetOffset(offset);
    src->Start();
  }

  // Repair the replica groups that lost the failed worker (§4.2.3).
  manager_->HandleWorkerFailure(node);
  return handovers;
}

void HandoverManager::TransferState(const HandoverSpec& spec,
                                    const HandoverMove& move,
                                    StatefulInstance* origin,
                                    StatefulInstance* target,
                                    std::function<void()> done) {
  HandoverStats& stats = stats_[spec.id];
  SimTime start = engine_->sim()->Now();
  HandoverSpec spec_copy = spec;
  HandoverMove move_copy = move;

  if (origin != nullptr) {
    // ---- live migration: incremental checkpoint + tail transfer --------
    uint64_t moved_bytes = 0;
    for (uint32_t v : move.vnodes) {
      moved_bytes += origin->backend()->VnodeBytes(v);
    }
    uint64_t total_bytes = std::max<uint64_t>(1, origin->backend()->SizeBytes());

    auto mini = origin->backend()->Checkpoint(next_mini_checkpoint_++);
    RHINO_CHECK(mini.ok()) << mini.status().ToString();
    // The target worker already holds the state when it is the origin's
    // own worker (primary copy) or a member of the replica group.
    bool target_has_replica =
        origin->node_id() == target->node_id() ||
        (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica &&
         runtime_->ReplicaOn(origin->op_name(),
                             static_cast<uint32_t>(origin->subtask()),
                             target->node_id()) != nullptr);
    // The share of the final incremental checkpoint belonging to the
    // moved vnodes; everything older is already on the target's worker
    // when it is in the replica group.
    uint64_t tail_bytes = static_cast<uint64_t>(
        static_cast<double>(mini->DeltaBytes()) *
        (static_cast<double>(moved_bytes) / static_cast<double>(total_bytes)));
    uint64_t wire_bytes = target_has_replica ? tail_bytes : moved_bytes;

    auto blob = origin->backend()->ExtractVnodes(move.vnodes);
    RHINO_CHECK(blob.ok()) << blob.status().ToString();
    auto marks = origin->GetWatermarks(move.vnodes);

    stats.bytes_transferred +=
        origin->node_id() == target->node_id() ? 0 : wire_bytes;
    stats.local_fetch = target_has_replica;

    auto ingest = [this, spec_copy, move_copy, origin, target, done, start,
                   target_has_replica,
                   blob = std::move(blob).MoveValue(), marks]() {
      HandoverStats& s = stats_[spec_copy.id];
      s.state_fetch_us =
          std::max(s.state_fetch_us, engine_->sim()->Now() - start);
      SimTime load = options_.load_per_file_us * 8;
      engine_->sim()->Schedule(load, [this, spec_copy, move_copy, origin,
                                      target, done, target_has_replica, blob,
                                      marks, load] {
        HandoverStats& s2 = stats_[spec_copy.id];
        s2.state_load_us = std::max(s2.state_load_us, load);
        RHINO_CHECK_OK(target->backend()->IngestVnodes(blob, target_has_replica));
        target->MergeWatermarks(marks);
        origin->CompleteHandoverAsOrigin(spec_copy, move_copy);
        target->CompleteHandoverAsTarget(spec_copy, move_copy);
        done();
      });
    };

    int origin_node = origin->node_id();
    int target_node = target->node_id();
    if (origin_node == target_node) {
      engine_->sim()->Schedule(0, std::move(ingest));
    } else {
      // Write the tail locally (part of the checkpoint), then ship it and
      // spool it at the target.
      sim::Node& tgt = engine_->cluster()->node(target_node);
      engine_->cluster()->Transfer(
          origin_node, target_node, wire_bytes,
          [&tgt, wire_bytes, ingest = std::move(ingest)]() mutable {
            tgt.disk(0).Write(wire_bytes, std::move(ingest));
          });
    }
    return;
  }

  // ---- failed origin: restore from the secondary copy ------------------
  RHINO_CHECK(target != nullptr);
  const std::string& op = spec.operator_name;
  const ReplicaState* rep = nullptr;
  if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica) {
    rep = runtime_->ReplicaOn(op, move.origin_instance, target->node_id());
  } else if (options_.dfs_replica_lookup) {
    rep = options_.dfs_replica_lookup(op, move.origin_instance);
  }

  auto restore = [this, spec_copy, move_copy, target, done, rep, start] {
    HandoverStats& s = stats_[spec_copy.id];
    s.state_fetch_us = std::max(s.state_fetch_us, engine_->sim()->Now() - start);
    SimTime load = options_.load_fixed_us;
    if (rep != nullptr) {
      load += options_.load_per_file_us *
              static_cast<SimTime>(rep->latest_descriptor.files.size());
    }
    engine_->sim()->Schedule(load, [this, spec_copy, move_copy, target, done,
                                    rep, load] {
      HandoverStats& s2 = stats_[spec_copy.id];
      s2.state_load_us = std::max(s2.state_load_us, load);
      if (rep != nullptr) {
        for (uint32_t v : move_copy.vnodes) {
          auto it = rep->vnode_blobs.find(v);
          if (it != rep->vnode_blobs.end()) {
            RHINO_CHECK_OK(target->backend()->IngestVnodes(it->second,
                                                           /*durable=*/true));
          }
        }
        dataflow::StatefulInstance::WatermarkMap marks;
        for (uint32_t v : move_copy.vnodes) {
          auto wit = rep->latest_descriptor.vnode_watermarks.find(v);
          if (wit != rep->latest_descriptor.vnode_watermarks.end()) {
            marks[v] = wit->second;
          }
        }
        target->MergeWatermarks(marks);
        uint64_t restored = 0;
        for (uint32_t v : move_copy.vnodes) {
          restored += target->backend()->VnodeBytes(v);
        }
        s2.bytes_transferred += restored;
      }
      target->CompleteHandoverAsTarget(spec_copy, move_copy);
      done();
    });
  };

  if (options_.fetch_mode == HandoverOptions::FetchMode::kLocalReplica) {
    // Secondary copy is on this worker's own disks: fetching is
    // hard-linking the checkpoint files (paper: ~0.2 s, size-independent).
    RHINO_CHECK(rep != nullptr)
        << "target worker holds no replica of " << op << "#"
        << move.origin_instance;
    stats.local_fetch = true;
    engine_->sim()->Schedule(options_.local_fetch_us, restore);
  } else {
    // RhinoDFS: the protocol is the same but the state comes through the
    // block-centric DFS — remote blocks cross the network (Figure 3).
    RHINO_CHECK(options_.dfs != nullptr);
    stats.local_fetch = false;
    std::vector<std::string> paths;
    if (options_.dfs_paths) {
      paths = options_.dfs_paths(op, move.origin_instance);
    }
    if (paths.empty()) {
      engine_->sim()->Schedule(options_.local_fetch_us, restore);
      return;
    }
    auto remaining = std::make_shared<size_t>(paths.size());
    for (const auto& path : paths) {
      options_.dfs->ReadFile(path, target->node_id(),
                             [remaining, restore](Status st) {
                               RHINO_CHECK(st.ok()) << st.ToString();
                               if (--*remaining == 0) restore();
                             });
    }
  }
}

const HandoverStats* HandoverManager::StatsFor(uint64_t handover_id) const {
  auto it = stats_.find(handover_id);
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace rhino::rhino
