#include "rhino/checkpoint_storage.h"

#include "common/logging.h"
#include "dataflow/source.h"
#include "lsm/log_format.h"

namespace rhino::rhino {

std::map<uint32_t, std::string> CaptureVnodeBlobs(
    dataflow::StatefulInstance* instance) {
  // One extraction pass produces every owned vnode's blob; the old
  // per-vnode ExtractVnodes loop re-scanned the whole backend once per
  // owned vnode (O(vnodes * state) per checkpoint).
  std::vector<uint32_t> owned(instance->owned_vnodes().begin(),
                              instance->owned_vnodes().end());
  auto blobs = instance->backend()->ExtractVnodeBlobs(owned);
  RHINO_CHECK(blobs.ok()) << blobs.status().ToString();
  return std::move(blobs).MoveValue();
}

void RhinoCheckpointStorage::Persist(dataflow::OperatorInstance* instance,
                                     const state::CheckpointDescriptor& desc,
                                     std::function<void(Status)> done) {
  auto* stateful = dynamic_cast<dataflow::StatefulInstance*>(instance);
  if (stateful == nullptr) {
    // Source snapshots are offsets only; the coordinator records them.
    done(Status::OK());
    return;
  }
  auto blobs = CaptureVnodeBlobs(stateful);
  int node_id = instance->node_id();
  std::string op = instance->op_name();
  auto subtask = static_cast<uint32_t>(instance->subtask());
  obs::Observability* o = instance->engine()->obs();
  o->metrics()
      .GetCounter("rhino_checkpoint_ship_bytes_total")
      ->Increment(desc.DeltaBytes());
  uint64_t span = o->trace().BeginSpan(
      "checkpoint", "ship", op + "#" + std::to_string(subtask),
      desc.checkpoint_id,
      {{"bytes", static_cast<int64_t>(desc.DeltaBytes())}});
  done = [o, span, inner = std::move(done)](Status st) {
    o->trace().EndSpan(span, {{"ok", st.ok() ? 1 : 0}});
    inner(std::move(st));
  };
  // The delta is spooled to the local disk (the primary copy)...
  sim::Node& node = cluster_->node(node_id);
  int disk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    disk = disk_cursor_[node_id]++ % node.num_disks();
  }
  node.disk(disk).Write(
      desc.DeltaBytes(),
      [this, op, subtask, node_id, desc, blobs = std::move(blobs),
       done = std::move(done)]() mutable {
        // ...then replicated asynchronously down the chain (§4.2.2), with
        // transient replication failures retried before surfacing.
        auto retrier = std::make_shared<runtime::Retrier>(
            cluster_->executor(), retry_, 0xC4E ^ desc.checkpoint_id,
            "checkpoint_persist");
        ReplicateWithRetry(
            std::move(op), subtask, node_id, desc, std::move(retrier),
            std::make_shared<const std::map<uint32_t, std::string>>(
                std::move(blobs)),
            std::move(done));
      });
}

void RhinoCheckpointStorage::ReplicateWithRetry(
    std::string op, uint32_t subtask, int node_id,
    state::CheckpointDescriptor desc,
    std::shared_ptr<runtime::Retrier> retrier,
    std::shared_ptr<const std::map<uint32_t, std::string>> blobs,
    std::function<void(Status)> done) {
  // Each attempt consumes its own copy of the blobs (ReplicateCheckpoint
  // takes them by value); the shared snapshot feeds every retry.
  runtime_->ReplicateCheckpoint(
      op, subtask, node_id, desc, *blobs,
      [this, op, subtask, node_id, desc, retrier, blobs,
       done = std::move(done)](Status st) mutable {
        if (st.ok() || !runtime::IsTransientStatus(st)) {
          // Success, or a permanent fault (Aborted = fail-stop): surface
          // as-is. The periodic checkpoint cadence re-replicates later.
          done(std::move(st));
          return;
        }
        SimTime backoff = 0;
        if (!retrier->NextBackoff(&backoff)) {
          done(retrier->Exhausted(st));
          return;
        }
        RHINO_LOG(Warn) << "replication of " << op << "#" << subtask
                        << " ckpt " << desc.checkpoint_id
                        << " failed transiently (" << st.ToString()
                        << "); retry " << retrier->retries() << " in "
                        << backoff << "us";
        cluster_->executor()->Schedule(
            backoff, [this, op = std::move(op), subtask, node_id, desc,
                      retrier = std::move(retrier), blobs = std::move(blobs),
                      done = std::move(done)]() mutable {
              ReplicateWithRetry(std::move(op), subtask, node_id, desc,
                                 std::move(retrier), std::move(blobs),
                                 std::move(done));
            });
      });
}

void DfsCheckpointStorage::Persist(dataflow::OperatorInstance* instance,
                                   const state::CheckpointDescriptor& desc,
                                   std::function<void(Status)> done) {
  auto* stateful = dynamic_cast<dataflow::StatefulInstance*>(instance);
  if (stateful == nullptr) {
    done(Status::OK());
    return;
  }
  std::string key = Key(instance->op_name(),
                        static_cast<uint32_t>(instance->subtask()));
  std::string path =
      "/checkpoints/" + key + "/delta-" + std::to_string(desc.checkpoint_id);
  auto blobs = CaptureVnodeBlobs(stateful);
  {
    std::lock_guard<std::mutex> lock(mu_);
    paths_[key].push_back(path);
    ReplicaState& rep = latest_[key];
    rep.latest_checkpoint_id = desc.checkpoint_id;
    rep.latest_descriptor = desc;
    for (auto& [vnode, blob] : blobs) {
      rep.vnode_blobs[vnode] = std::move(blob);
    }
  }
  obs::Observability* o = instance->engine()->obs();
  o->metrics()
      .GetCounter("rhino_checkpoint_dfs_upload_bytes_total")
      ->Increment(desc.DeltaBytes());
  uint64_t span = o->trace().BeginSpan(
      "checkpoint", "dfs_upload", key, desc.checkpoint_id,
      {{"bytes", static_cast<int64_t>(desc.DeltaBytes())}});
  done = [o, span, inner = std::move(done)](Status st) {
    o->trace().EndSpan(span, {{"ok", st.ok() ? 1 : 0}});
    inner(std::move(st));
  };
  dfs_->WriteFile(path, desc.DeltaBytes(), instance->node_id(), std::move(done));
}

std::vector<std::string> DfsCheckpointStorage::PathsFor(const std::string& op,
                                                        uint32_t subtask) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = paths_.find(Key(op, subtask));
  if (it == paths_.end()) return {};
  return it->second;
}

const ReplicaState* DfsCheckpointStorage::LatestFor(const std::string& op,
                                                    uint32_t subtask) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(Key(op, subtask));
  return it == latest_.end() ? nullptr : &it->second;
}

void DfsCheckpointStorage::SeedCheckpoint(
    const std::string& op, uint32_t subtask, int home_node,
    const state::CheckpointDescriptor& desc,
    std::map<uint32_t, std::string> blobs) {
  std::string key = Key(op, subtask);
  std::string path =
      "/checkpoints/" + key + "/delta-" + std::to_string(desc.checkpoint_id);
  dfs_->RegisterFile(path, desc.TotalBytes(), home_node);
  std::lock_guard<std::mutex> lock(mu_);
  paths_[key].push_back(path);
  ReplicaState& rep = latest_[key];
  rep.latest_checkpoint_id = desc.checkpoint_id;
  rep.latest_descriptor = desc;
  rep.vnode_blobs = std::move(blobs);
}

Status WriteCheckpointImage(lsm::Env* env, const std::string& path,
                            const ReplicaState& rs) {
  size_t slash = path.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    RHINO_RETURN_NOT_OK(env->CreateDir(path.substr(0, slash)));
  }
  std::string payload;
  EncodeReplicaState(rs, &payload);
  std::string framed;
  framed.reserve(8 + payload.size());
  lsm::AppendLogRecord(&framed, payload);
  // Env::WriteFile replaces atomically (fresh content), so a reader never
  // observes a half-written image under a stable name.
  return env->WriteFile(path, framed);
}

Result<ReplicaState> ReadCheckpointImage(lsm::Env* env,
                                         const std::string& path) {
  std::string framed;
  RHINO_RETURN_NOT_OK(env->ReadFile(path, &framed));
  size_t pos = 0;
  std::string_view payload;
  lsm::LogRead read = lsm::ReadLogRecord(framed, &pos, &payload);
  if (read != lsm::LogRead::kRecord) {
    return Status::Corruption("torn checkpoint image: " + path);
  }
  return DecodeReplicaState(payload);
}

}  // namespace rhino::rhino
