#pragma once

#include <algorithm>
#include <atomic>

#include "dataflow/engine.h"

/// \file adaptive_scheduler.h
/// Adaptive checkpoint scheduling — the paper's §5.6 future-work item.
///
/// Rhino's replication runtime becomes a bottleneck when an incremental
/// checkpoint grows large (the paper estimates trouble above ~50 GB per
/// instance). A fixed interval cannot track a varying ingest rate: too
/// long and the deltas (and the tail a handover must ship) balloon; too
/// short and the constant alignment/replication overhead hurts steady
/// processing. This scheduler closes the loop: after every completed
/// checkpoint it rescales the interval so the *observed* delta per
/// checkpoint approaches a byte target.

namespace rhino::rhino {

struct AdaptiveSchedulerOptions {
  /// Desired aggregate delta per checkpoint (across all instances).
  uint64_t target_delta_bytes = 32ull * 1024 * 1024 * 1024;
  SimTime min_interval = 15 * kSecond;
  SimTime max_interval = 10 * kMinute;
  SimTime initial_interval = 2 * kMinute;
  /// Damping: fraction of the computed correction applied per step (1 =
  /// jump straight to the estimate; lower = smoother convergence).
  double gain = 0.5;
};

/// Drives Engine::TriggerCheckpoint at a self-tuned cadence.
class AdaptiveCheckpointScheduler {
 public:
  AdaptiveCheckpointScheduler(dataflow::Engine* engine,
                              AdaptiveSchedulerOptions options = {})
      : engine_(engine),
        options_(options),
        interval_(options.initial_interval) {}

  /// Starts the loop. Replaces any fixed periodic checkpointing — do not
  /// also call Engine::StartPeriodicCheckpoints.
  void Start() {
    running_.store(true, std::memory_order_release);
    Tick();
  }
  void Stop() { running_.store(false, std::memory_order_release); }

  SimTime current_interval() const { return interval_; }
  uint64_t last_delta_bytes() const { return last_delta_; }

 private:
  // Tick and the completion observer always run on the executor's default
  // strand, so interval_/last_delta_ need no lock; running_ is atomic for
  // the cross-thread Stop().
  void Tick() {
    if (!running_.load(std::memory_order_acquire)) return;
    engine_->executor()->Schedule(interval_, [this] {
      if (!running_.load(std::memory_order_acquire)) return;
      if (!engine_->checkpoint_in_flight()) {
        uint64_t id = engine_->TriggerCheckpoint();
        ObserveWhenComplete(id);
      }
      Tick();
    });
  }

  void ObserveWhenComplete(uint64_t id) {
    // Poll cheaply on the simulated clock; the checkpoint completes within
    // a few seconds of simulated time.
    engine_->executor()->Schedule(kSecond, [this, id] {
      const dataflow::CheckpointRecord* record = engine_->FindCheckpoint(id);
      if (record == nullptr || record->aborted) return;
      if (!record->completed) {
        ObserveWhenComplete(id);
        return;
      }
      uint64_t delta = 0;
      for (const auto& [_, desc] : record->descriptors) {
        delta += desc.DeltaBytes();
      }
      last_delta_ = delta;
      if (delta == 0) return;  // idle stream: keep the current cadence
      // interval' = interval * (target / delta), damped and clamped.
      double scale = static_cast<double>(options_.target_delta_bytes) /
                     static_cast<double>(delta);
      double damped = 1.0 + options_.gain * (scale - 1.0);
      auto next = static_cast<SimTime>(static_cast<double>(interval_) * damped);
      interval_ = std::clamp(next, options_.min_interval, options_.max_interval);
    });
  }

  dataflow::Engine* engine_;
  AdaptiveSchedulerOptions options_;
  SimTime interval_;
  uint64_t last_delta_ = 0;
  std::atomic<bool> running_{false};
};

}  // namespace rhino::rhino
