#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/observability.h"
#include "rhino/replication_manager.h"
#include "runtime/retry.h"
#include "sim/cluster.h"
#include "state/checkpoint.h"

/// \file replication_runtime.h
/// Rhino's distributed replication runtime (paper §4.2.2 phase 2).
///
/// State-centric, primary/secondary replication with **chain replication**
/// and **credit-based flow control**: the primary cuts the incremental
/// checkpoint into chunks and streams them down its replica chain. A chunk
/// occupies one credit from send until the receiving worker has spooled it
/// to disk, bounding the memory the protocol can pin on any worker. The
/// tail acknowledges up the chain once every chunk is durable; when the
/// head receives the ack the checkpoint is marked complete.
///
/// The runtime doubles as the replica catalog: which node holds which
/// instance's checkpoints (descriptors, per-vnode content blobs, and
/// replay watermarks) — what the Handover Manager consults to pick targets
/// whose state fetch is purely local.
///
/// Failure handling (paper §4.2.3): a fail-stop of any chain member aborts
/// the transfer with an error `Status` (the chain is only as durable as
/// its weakest member; the next checkpoint re-replicates), the catalog
/// never advertises copies on dead nodes, and `CatchUpReplicas` restores
/// the replication factor after `ReplicationManager::HandleWorkerFailure`
/// substitutes a new group member.

namespace rhino::rhino {

struct ReplicationOptions {
  uint64_t chunk_bytes = 8 * kMiB;
  /// Credits per hop: max chunks in flight towards one receiver.
  int credit_window = 4;
  /// One-way latency of a (tiny) ack message.
  SimTime ack_latency = 200;
  /// Stall recovery: a per-transfer watchdog retransmits unacknowledged
  /// chunks when the chain makes no forward progress for one (jittered,
  /// exponentially growing) backoff interval — e.g. chunks dropped by an
  /// injected network partition. The deadline measures *stall* time, not
  /// total transfer time: it re-arms on every chunk arrival or durability
  /// ack, so a slow-but-progressing transfer never times out, while a
  /// fully stalled one aborts with TimedOut once the budget runs out.
  /// Set `retry.initial_backoff_us = 0` to disable the watchdog.
  runtime::RetryOptions retry = DefaultRetry();
  /// Seed of the watchdog's backoff jitter (deterministic under sim).
  uint64_t retry_seed = 0x7e71;

  static runtime::RetryOptions DefaultRetry() {
    runtime::RetryOptions r;
    r.initial_backoff_us = 100 * kMillisecond;
    r.max_backoff_us = kSecond;
    r.max_attempts = 0;               // deadline-governed
    r.deadline_us = 120 * kSecond;    // of continuous stall
    return r;
  }
};

/// Everything the replicas know about one instance's latest state.
struct ReplicaState {
  uint64_t latest_checkpoint_id = 0;
  state::CheckpointDescriptor latest_descriptor;
  /// Per-vnode content blob (real mode carries values; modeled mode
  /// carries byte counts). Keyed by vnode.
  std::map<uint32_t, std::string> vnode_blobs;
};

/// Binary encoding of a full replica image (descriptor — including the
/// per-vnode replay watermarks — plus the content blobs). This is the
/// payload chain replication ships between node *processes* and the record
/// the networked runtime persists as a durable checkpoint image
/// (`WriteCheckpointImage` in checkpoint_storage.h). Little-endian
/// `BinaryWriter` format; `DecodeReplicaState` fails with `Corruption` on
/// any truncation instead of reading out of bounds.
void EncodeReplicaState(const ReplicaState& rs, std::string* out);
Result<ReplicaState> DecodeReplicaState(std::string_view data);

/// Chain-replication engine + replica catalog.
class ReplicationRuntime {
 public:
  ReplicationRuntime(sim::Cluster* cluster, ReplicationManager* manager,
                     ReplicationOptions options = ReplicationOptions())
      : cluster_(cluster), manager_(manager), options_(options) {
    SetObservability(obs_);
  }

  /// Asynchronously replicates the *delta* of `desc` from `primary_node`
  /// through the instance's replica chain. `blobs` carries the per-vnode
  /// content snapshot stored at the replicas for recovery. `done` fires
  /// exactly once: with OK when the head receives the tail's
  /// acknowledgment, or with an error `Status` when a chain member (or the
  /// primary) fail-stops mid-transfer.
  void ReplicateCheckpoint(const std::string& op, uint32_t subtask,
                           int primary_node,
                           const state::CheckpointDescriptor& desc,
                           std::map<uint32_t, std::string> blobs,
                           std::function<void(Status)> done);

  /// Latest state fully replicated on `node` for the instance, or nullptr
  /// when that node holds no (complete) copy. Dead nodes never advertise
  /// replicas, whatever the catalog remembers.
  ///
  /// Catalog lookups return pointers to stable map nodes; a concurrent
  /// re-replication of the *same* instance may overwrite the entry's
  /// fields, so callers copy what they need promptly after the lookup.
  const ReplicaState* ReplicaOn(const std::string& op, uint32_t subtask,
                                int node) const;

  /// The live node holding the newest complete copy of the instance's
  /// state, or -1 when no live replica exists.
  int LiveReplicaNode(const std::string& op, uint32_t subtask) const;

  /// Newest live copy of one *vnode* across every instance of `op` (the
  /// vnode may have been checkpointed under a different instance than the
  /// one now losing it — e.g. a move chain interrupted by failures).
  /// Prefers `preferred_node` among equally fresh copies; sets *holder to
  /// the node found (-1 when none). Returns nullptr when no live node
  /// holds the vnode.
  const ReplicaState* FindVnodeReplica(const std::string& op, uint32_t vnode,
                                       int preferred_node, int* holder) const;

  /// Drops every catalog entry hosted on `node` (fail-stop cleanup: the
  /// copies died with the node's disks).
  void PurgeNode(int node);

  /// Restores the replication factor after a group repair: every live
  /// member of the instance's *current* group that lags the newest live
  /// copy receives a full catch-up transfer from the node holding it
  /// (paper §4.2.3 — the substitute "fetches the respective state").
  /// `done` fires once all catch-up copies are durable (OK) or a target
  /// died mid-copy (error).
  void CatchUpReplicas(const std::string& op, uint32_t subtask,
                       std::function<void(Status)> done);

  /// Seeds a fully-replicated checkpoint without modeling any transfer
  /// (pre-experiment state, "previous checkpoints already replicated").
  void SeedReplica(const std::string& op, uint32_t subtask,
                   const state::CheckpointDescriptor& desc,
                   std::map<uint32_t, std::string> blobs);

  /// Fault-injection probe: called with a named protocol event
  /// ("replication_transfer", "replication_chunk") at each occurrence —
  /// wire it to `sim::FaultInjector::Notify` to crash mid-chain.
  void SetFaultProbe(std::function<void(const std::string& event)> probe) {
    probe_ = std::move(probe);
  }

  /// Installs the observability context (defaults to the process-wide one).
  /// Must be called before any transfer starts: the per-chunk counters are
  /// resolved here, eagerly, so the hot chunk path (which runs on node
  /// strands concurrently) never writes the cached pointers.
  void SetObservability(obs::Observability* o) {
    obs_ = o;
    chunks_metric_ = obs_->metrics().GetCounter("rhino_replication_chunks_total");
    chunk_bytes_metric_ =
        obs_->metrics().GetCounter("rhino_replication_bytes_total");
  }

  // ---- diagnostics ----
  uint64_t bytes_replicated() const { return bytes_replicated_.load(); }
  int max_in_flight_chunks() const { return max_in_flight_.load(); }
  uint64_t checkpoints_replicated() const {
    return checkpoints_replicated_.load();
  }
  uint64_t transfers_aborted() const { return transfers_aborted_.load(); }
  uint64_t catchup_transfers() const { return catchup_transfers_.load(); }
  uint64_t catchup_bytes() const { return catchup_bytes_.load(); }
  /// Chunk retransmission rounds triggered by the stall watchdog.
  uint64_t retransmit_rounds() const { return retransmit_rounds_.load(); }

 private:
  struct Transfer;
  struct CatchUp;
  void PumpHop(std::shared_ptr<Transfer> transfer, size_t hop);
  /// Completes `transfer` with an error exactly once.
  void AbortTransfer(const std::shared_ptr<Transfer>& transfer, Status status);
  /// Schedules the next stall check `delay` from now.
  void ArmWatchdog(std::shared_ptr<Transfer> transfer, SimTime delay);
  /// Runs one catch-up copy attempt (with its timeout/retry guard).
  void AttemptCatchUp(std::shared_ptr<CatchUp> ctl);

  static std::string Key(const std::string& op, uint32_t subtask) {
    return op + "#" + std::to_string(subtask);
  }

  sim::Cluster* cluster_;
  ReplicationManager* manager_;
  ReplicationOptions options_;
  std::function<void(const std::string&)> probe_;
  obs::Observability* obs_ = obs::Observability::Default();
  /// Per-chunk counter handles, fetched once per registry (chunk sends are
  /// the runtime's hot path).
  obs::Counter* chunks_metric_ = nullptr;
  obs::Counter* chunk_bytes_metric_ = nullptr;

  /// Guards the replica catalog (replicas_, disk_cursor_): finalizing
  /// transfers write it from node strands while recovery planning reads it.
  mutable std::mutex catalog_mu_;
  /// replica catalog: instance key -> node -> state
  std::map<std::string, std::map<int, ReplicaState>> replicas_;
  std::map<int, int> disk_cursor_;

  std::atomic<uint64_t> bytes_replicated_{0};
  std::atomic<uint64_t> checkpoints_replicated_{0};
  std::atomic<int> max_in_flight_{0};
  std::atomic<uint64_t> transfers_aborted_{0};
  std::atomic<uint64_t> catchup_transfers_{0};
  std::atomic<uint64_t> catchup_bytes_{0};
  std::atomic<uint64_t> retransmit_rounds_{0};
};

}  // namespace rhino::rhino
