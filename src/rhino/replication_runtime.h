#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rhino/replication_manager.h"
#include "sim/cluster.h"
#include "state/checkpoint.h"

/// \file replication_runtime.h
/// Rhino's distributed replication runtime (paper §4.2.2 phase 2).
///
/// State-centric, primary/secondary replication with **chain replication**
/// and **credit-based flow control**: the primary cuts the incremental
/// checkpoint into chunks and streams them down its replica chain. A chunk
/// occupies one credit from send until the receiving worker has spooled it
/// to disk, bounding the memory the protocol can pin on any worker. The
/// tail acknowledges up the chain once every chunk is durable; when the
/// head receives the ack the checkpoint is marked complete.
///
/// The runtime doubles as the replica catalog: which node holds which
/// instance's checkpoints (descriptors, per-vnode content blobs, and
/// replay watermarks) — what the Handover Manager consults to pick targets
/// whose state fetch is purely local.

namespace rhino::rhino {

struct ReplicationOptions {
  uint64_t chunk_bytes = 8 * kMiB;
  /// Credits per hop: max chunks in flight towards one receiver.
  int credit_window = 4;
  /// One-way latency of a (tiny) ack message.
  SimTime ack_latency = 200;
};

/// Everything the replicas know about one instance's latest state.
struct ReplicaState {
  uint64_t latest_checkpoint_id = 0;
  state::CheckpointDescriptor latest_descriptor;
  /// Per-vnode content blob (real mode carries values; modeled mode
  /// carries byte counts). Keyed by vnode.
  std::map<uint32_t, std::string> vnode_blobs;
};

/// Chain-replication engine + replica catalog.
class ReplicationRuntime {
 public:
  ReplicationRuntime(sim::Cluster* cluster, ReplicationManager* manager,
                     ReplicationOptions options = ReplicationOptions())
      : cluster_(cluster), manager_(manager), options_(options) {}

  /// Asynchronously replicates the *delta* of `desc` from `primary_node`
  /// through the instance's replica chain. `blobs` carries the per-vnode
  /// content snapshot stored at the replicas for recovery. `done` fires
  /// when the head receives the tail's acknowledgment.
  void ReplicateCheckpoint(const std::string& op, uint32_t subtask,
                           int primary_node,
                           const state::CheckpointDescriptor& desc,
                           std::map<uint32_t, std::string> blobs,
                           std::function<void(Status)> done);

  /// Latest state fully replicated on `node` for the instance, or nullptr
  /// when that node holds no (complete) copy.
  const ReplicaState* ReplicaOn(const std::string& op, uint32_t subtask,
                                int node) const;

  /// Seeds a fully-replicated checkpoint without modeling any transfer
  /// (pre-experiment state, "previous checkpoints already replicated").
  void SeedReplica(const std::string& op, uint32_t subtask,
                   const state::CheckpointDescriptor& desc,
                   std::map<uint32_t, std::string> blobs);

  // ---- diagnostics ----
  uint64_t bytes_replicated() const { return bytes_replicated_; }
  int max_in_flight_chunks() const { return max_in_flight_; }
  uint64_t checkpoints_replicated() const { return checkpoints_replicated_; }

 private:
  struct Transfer;
  void PumpHop(std::shared_ptr<Transfer> transfer, size_t hop);

  static std::string Key(const std::string& op, uint32_t subtask) {
    return op + "#" + std::to_string(subtask);
  }

  sim::Cluster* cluster_;
  ReplicationManager* manager_;
  ReplicationOptions options_;

  /// replica catalog: instance key -> node -> state
  std::map<std::string, std::map<int, ReplicaState>> replicas_;

  uint64_t bytes_replicated_ = 0;
  uint64_t checkpoints_replicated_ = 0;
  int max_in_flight_ = 0;
};

}  // namespace rhino::rhino
