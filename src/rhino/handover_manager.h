#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "dfs/dfs.h"
#include "rhino/replication_manager.h"
#include "rhino/replication_runtime.h"

/// \file handover_manager.h
/// Rhino's Handover Manager (paper §3.3) and the state-transfer side of
/// the handover protocol (paper §4.1.2 step 3).
///
/// The HM triggers reconfigurations (load balancing, rescaling, failure
/// recovery), monitors their completion, and — as the engine's
/// `HandoverDelegate` — performs the state movement at each origin's
/// alignment point:
///
///  * live origin: take an incremental checkpoint; ship only the tail
///    delta when the target's worker already holds the replicated state
///    (Rhino), or fetch through the DFS (the RhinoDFS variant);
///  * failed origin: the target restores the moved virtual nodes from the
///    secondary copy on its own disks (local hard links, no network).

namespace rhino::rhino {

struct HandoverOptions {
  enum class FetchMode {
    kLocalReplica,  ///< Rhino: state-centric replicas, local fetch
    kDfs,           ///< RhinoDFS: block-centric fetch through the DFS
  };
  FetchMode fetch_mode = FetchMode::kLocalReplica;
  /// Required for kDfs.
  dfs::DistributedFileSystem* dfs = nullptr;
  /// Catalog of DFS paths per instance (filled by DfsCheckpointStorage).
  std::function<std::vector<std::string>(const std::string& op,
                                         uint32_t subtask)>
      dfs_paths;
  /// Latest checkpoint content per instance when fetching through the DFS
  /// (the data-plane complement of dfs_paths).
  std::function<const ReplicaState*(const std::string& op, uint32_t subtask)>
      dfs_replica_lookup;

  /// Local-fetch cost: hard links + metadata only (paper ~0.2 s).
  SimTime local_fetch_us = 200 * kMillisecond;
  /// RocksDB-style state loading: open files + read metadata
  /// (paper: 1.3-1.5 s regardless of size).
  SimTime load_fixed_us = 1300 * kMillisecond;
  SimTime load_per_file_us = 2 * kMillisecond;
  /// Failure-detection + planning delay before a recovery handover.
  SimTime recovery_scheduling_us = 2500 * kMillisecond;

  /// Retry policy of the bulk state shipments (migration tail, remote
  /// replica fetch): a shipment that is not durable at the target within a
  /// generous multiple of its fault-free duration is resent with jittered
  /// backoff (injected partitions drop state transfers). The deadline
  /// bounds continuous failure, not total shipment time; exhaustion
  /// abandons the move / degrades the restore to upstream replay. Set
  /// `retry.initial_backoff_us = 0` to disable.
  runtime::RetryOptions retry = ReplicationOptions::DefaultRetry();
  uint64_t retry_seed = 0x4a0b;
};

/// Per-handover observability (drives Table 1's time breakdown).
struct HandoverStats {
  uint64_t handover_id = 0;
  SimTime triggered_at = 0;
  /// Time spent fetching state (max across moves).
  SimTime state_fetch_us = 0;
  /// Time spent loading state into the backend (max across moves).
  SimTime state_load_us = 0;
  uint64_t bytes_transferred = 0;
  bool local_fetch = false;
  int moves = 0;
};

/// Coordinator for on-the-fly reconfigurations.
class HandoverManager : public dataflow::HandoverDelegate {
 public:
  HandoverManager(dataflow::Engine* engine, ReplicationManager* manager,
                  ReplicationRuntime* runtime,
                  HandoverOptions options = HandoverOptions())
      : engine_(engine),
        manager_(manager),
        runtime_(runtime),
        options_(options) {
    engine_->SetHandoverDelegate(this);
  }

  /// Starts a handover moving `moves` within `op` (paper §3.5.1/§3.5.2:
  /// load balancing and rescaling are the same mechanism). Returns the
  /// handover id.
  uint64_t TriggerReconfiguration(const std::string& op,
                                  std::vector<dataflow::HandoverMove> moves);

  /// Load balancing helper: moves `fraction` of the origin's virtual
  /// nodes to the target instance.
  uint64_t TriggerLoadBalance(const std::string& op, uint32_t origin,
                              uint32_t target, double fraction = 0.5);

  /// Fail-stop recovery (paper §3.5.3): purges the dead node's catalog
  /// entries, restarts its sources and sinks on live workers, rewinds all
  /// sources of affected topics to the last completed checkpoint, hands
  /// every virtual node *effectively* owned by a dead instance (routing
  /// table plus in-flight handovers) to a live target — preferring workers
  /// that hold the replicated state — and repairs the replica groups,
  /// catching substitutes up to the newest replicated checkpoint. Returns
  /// the ids of the recovery handovers (one per stateful op). Degrades
  /// gracefully (empty result, warning) when no live capacity remains.
  std::vector<uint64_t> RecoverFailedNode(int node);

  // HandoverDelegate:
  void TransferState(const dataflow::HandoverSpec& spec,
                     const dataflow::HandoverMove& move,
                     dataflow::StatefulInstance* origin,
                     dataflow::StatefulInstance* target,
                     std::function<void()> done) override;

  const HandoverStats* StatsFor(uint64_t handover_id) const;
  const HandoverOptions& options() const { return options_; }

  // ---- diagnostics ----
  /// Moves abandoned because the target's worker fail-stopped mid-handover
  /// (the origin kept its state).
  uint64_t abandoned_moves() const {
    return abandoned_moves_.load(std::memory_order_relaxed);
  }
  /// Failed-origin restores that found no live copy for ≥1 vnode and fell
  /// back to upstream replay only.
  uint64_t degraded_restores() const {
    return degraded_restores_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t NextHandoverId() {
    return next_handover_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Ships `bytes` from `src` to `dst` and spools them to the target's
  /// disk, retrying per `options_.retry` when an injected fault swallows
  /// the shipment. Exactly one of `deliver` (durable at the target) or
  /// `give_up` (a chain member died, or the retry budget ran out) fires.
  void ShipStateWithRetry(int src, int dst, uint64_t bytes,
                          uint64_t handover_id,
                          std::function<void()> deliver,
                          std::function<void(Status)> give_up);

  /// Applies `fn` to the stats row of `id` under the stats lock (moves of
  /// one handover resolve concurrently on different node strands).
  template <typename Fn>
  void UpdateStats(uint64_t id, Fn&& fn) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    fn(stats_[id]);
  }

  dataflow::Engine* engine_;
  ReplicationManager* manager_;
  ReplicationRuntime* runtime_;
  HandoverOptions options_;
  std::atomic<uint64_t> next_handover_id_{1};
  std::atomic<uint64_t> next_mini_checkpoint_{1ull << 32};  // disjoint ids
  mutable std::mutex stats_mu_;
  /// Map nodes are stable: StatsFor hands out pointers that outlive later
  /// insertions; read their fields only once the handover resolved.
  std::map<uint64_t, HandoverStats> stats_;
  std::atomic<uint64_t> abandoned_moves_{0};
  std::atomic<uint64_t> degraded_restores_{0};
};

}  // namespace rhino::rhino
