#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/observability.h"

/// \file replication_manager.h
/// Rhino's Replication Manager (paper §3.3, §4.2.2 phase 1).
///
/// Runs on the coordinator. For every stateful instance it builds a
/// *replica group*: a chain of `r` distinct workers (never the instance's
/// home worker) that will hold the secondary copies of the instance's
/// checkpointed state. Groups are assigned with a greedy bin-packing
/// heuristic that balances the expected replicated bytes per worker, so a
/// failure of any one worker spreads its recovery across the cluster.

namespace rhino::rhino {

/// Identity and placement weight of one stateful instance.
struct InstanceInfo {
  std::string op_name;
  uint32_t subtask = 0;
  int home_node = 0;
  /// Expected state size (bytes); drives the bin packing.
  uint64_t weight = 1;
};

/// One group rewritten by `HandleWorkerFailure`: the instance that lost a
/// replica holder and the worker substituted in (-1 when no eligible live
/// worker remained and the group shrank instead). The caller runs a
/// catch-up re-replication towards the substitute to restore factor r.
struct GroupRepair {
  std::string op_name;
  uint32_t subtask = 0;
  int substitute = -1;
};

/// Coordinator-side replica-group construction and repair.
class ReplicationManager {
 public:
  /// `workers`: nodes eligible to host secondary copies.
  /// `replication_factor`: r, the number of secondary copies per instance
  /// (the paper evaluates r=1: one local primary + one remote secondary,
  /// mirroring HDFS replication 2).
  ReplicationManager(std::vector<int> workers, int replication_factor)
      : workers_(std::move(workers)), replication_factor_(replication_factor) {
    RHINO_CHECK_GE(static_cast<int>(workers_.size()), replication_factor_ + 1)
        << "need at least r+1 workers";
  }

  /// (Re)builds every replica group with greedy bin packing: instances in
  /// descending weight order each take the `r` least-loaded live workers
  /// other than their home. When fewer than `r` eligible workers exist the
  /// group is built smaller (degraded) with a warning instead of aborting —
  /// the job keeps running at a reduced replication factor.
  void BuildGroups(std::vector<InstanceInfo> instances);

  /// Instance keys ("op#subtask") whose current group is smaller than the
  /// requested replication factor.
  std::vector<std::string> degraded_groups() const;

  /// The replica chain of an instance (ordered: head first). Returned by
  /// value: `HandleWorkerFailure` rewrites groups in place from the
  /// coordinator while replication transfers start on node strands.
  std::vector<int> Group(const std::string& op, uint32_t subtask) const;

  bool HasGroup(const std::string& op, uint32_t subtask) const {
    std::lock_guard<std::mutex> lock(mu_);
    return groups_.count(Key(op, subtask)) > 0;
  }

  /// True when `node` holds a secondary copy of the instance's state.
  bool NodeInGroup(const std::string& op, uint32_t subtask, int node) const;

  /// Fail-stop repair (paper §4.2.3): removes `failed` from every group and
  /// substitutes the least-loaded surviving worker. Returns one entry per
  /// rewritten group so the replication runtime can catch the substitute up
  /// to the newest replicated checkpoint.
  std::vector<GroupRepair> HandleWorkerFailure(int failed);

  /// Replicated-bytes load currently assigned to a worker.
  uint64_t WorkerLoad(int node) const;

  int replication_factor() const { return replication_factor_; }
  const std::vector<int>& workers() const { return workers_; }

  /// Installs the observability context (defaults to the process-wide one).
  void SetObservability(obs::Observability* o) { obs_ = o; }

 private:
  static std::string Key(const std::string& op, uint32_t subtask) {
    return op + "#" + std::to_string(subtask);
  }

  /// Requires mu_ held by the caller.
  std::vector<std::string> DegradedGroupsLocked() const;

  /// Guards the group/load bookkeeping (read by replication transfers on
  /// node strands, rewritten by failure repair on the coordinator).
  mutable std::mutex mu_;
  std::vector<int> workers_;
  int replication_factor_;
  obs::Observability* obs_ = obs::Observability::Default();
  std::map<std::string, std::vector<int>> groups_;
  std::map<std::string, InstanceInfo> infos_;
  std::map<int, uint64_t> load_;
};

}  // namespace rhino::rhino
