#include "rhino/replication_manager.h"

#include <algorithm>

namespace rhino::rhino {

void ReplicationManager::BuildGroups(std::vector<InstanceInfo> instances) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_.clear();
  infos_.clear();
  load_.clear();
  for (int w : workers_) load_[w] = 0;

  // Heaviest instances first so big replicas land before bins fill up.
  std::stable_sort(instances.begin(), instances.end(),
                   [](const InstanceInfo& a, const InstanceInfo& b) {
                     return a.weight > b.weight;
                   });

  for (const InstanceInfo& info : instances) {
    // Candidates: all workers except the home node, least-loaded first.
    std::vector<int> candidates;
    for (int w : workers_) {
      if (w != info.home_node) candidates.push_back(w);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [this](int a, int b) { return load_[a] < load_[b]; });

    std::vector<int> group;
    for (int w : candidates) {
      if (static_cast<int>(group.size()) == replication_factor_) break;
      group.push_back(w);
      load_[w] += info.weight;
    }
    if (static_cast<int>(group.size()) < replication_factor_) {
      // Graceful degradation: too few eligible workers (e.g. after
      // cascading failures). Run with fewer copies rather than aborting;
      // degraded_groups() surfaces the shortfall.
      RHINO_LOG(Warn) << "degraded replica group for " << info.op_name << "#"
                      << info.subtask << ": " << group.size() << "/"
                      << replication_factor_ << " copies";
    }
    std::string key = Key(info.op_name, info.subtask);
    groups_[key] = std::move(group);
    infos_[key] = info;
  }
  obs_->metrics()
      .GetGauge("rhino_replication_degraded_groups")
      ->Set(static_cast<double>(DegradedGroupsLocked().size()));
}

std::vector<int> ReplicationManager::Group(const std::string& op,
                                           uint32_t subtask) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(Key(op, subtask));
  RHINO_CHECK(it != groups_.end())
      << "no replica group for " << op << "#" << subtask;
  return it->second;
}

bool ReplicationManager::NodeInGroup(const std::string& op, uint32_t subtask,
                                     int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(Key(op, subtask));
  if (it == groups_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) !=
         it->second.end();
}

std::vector<GroupRepair> ReplicationManager::HandleWorkerFailure(int failed) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GroupRepair> repairs;
  workers_.erase(std::remove(workers_.begin(), workers_.end(), failed),
                 workers_.end());
  load_.erase(failed);
  for (auto& [key, group] : groups_) {
    auto pos = std::find(group.begin(), group.end(), failed);
    if (pos == group.end()) continue;
    const InstanceInfo& info = infos_[key];
    // Substitute: least-loaded live worker not already in the group and
    // not the home node.
    int best = -1;
    for (int w : workers_) {
      if (w == info.home_node) continue;
      if (std::find(group.begin(), group.end(), w) != group.end()) continue;
      if (best < 0 || load_[w] < load_[best]) best = w;
    }
    if (best < 0) {
      // Degraded group: fewer copies than requested.
      group.erase(pos);
      RHINO_LOG(Warn) << "replica group of " << key
                      << " degraded to " << group.size() << " copies";
    } else {
      *pos = best;
      load_[best] += info.weight;
    }
    repairs.push_back(GroupRepair{info.op_name, info.subtask, best});
    obs_->trace().Emit("replication", "group_repair", key, 0,
                       {{"substitute", best}});
  }
  obs_->metrics()
      .GetCounter("rhino_replication_group_repairs_total")
      ->Increment(repairs.size());
  obs_->metrics()
      .GetGauge("rhino_replication_degraded_groups")
      ->Set(static_cast<double>(DegradedGroupsLocked().size()));
  return repairs;
}

std::vector<std::string> ReplicationManager::degraded_groups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DegradedGroupsLocked();
}

std::vector<std::string> ReplicationManager::DegradedGroupsLocked() const {
  std::vector<std::string> degraded;
  for (const auto& [key, group] : groups_) {
    if (static_cast<int>(group.size()) < replication_factor_) {
      degraded.push_back(key);
    }
  }
  return degraded;
}

uint64_t ReplicationManager::WorkerLoad(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = load_.find(node);
  return it == load_.end() ? 0 : it->second;
}

}  // namespace rhino::rhino
