#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "dataflow/record.h"

/// \file broker.h
/// Durable partitioned log: the Kafka stand-in (paper §5.1.1).
///
/// The broker is the *upstream backup* both protocols rely on: producers
/// append batches, consumers track offsets, and a restarted or handed-over
/// source simply rewinds its offset and replays. Batches are retained for
/// the lifetime of the experiment (the paper sizes Kafka's page cache and
/// SSDs so that replay is always possible).
///
/// Thread safety: a partition's log is guarded by an internal mutex, so a
/// generator thread can append while a source node fetches. `Fetch`
/// returns a pointer into the append-only deque — deque push_back never
/// invalidates references to existing entries, so the pointer stays valid
/// for the experiment's lifetime. The data listener fires *outside* the
/// partition lock (the consumer's TryFetch re-enters Fetch).

namespace rhino::broker {

/// A batch stored in the log with its assigned offset.
struct LogEntry {
  uint64_t offset = 0;
  dataflow::Batch batch;
};

/// Read side of one partition — the seam consumers (sources, the
/// networked driver's replay pump) depend on instead of the concrete
/// in-memory log. `Partition` below implements it directly; a remote
/// client fetching over the `src/net` RPC layer implements the same
/// interface, so replay code is identical whether the upstream backup is
/// in-process or across a socket.
class PartitionSource {
 public:
  virtual ~PartitionSource() = default;

  /// The batch at `offset`, or nullptr when past the end. The pointer
  /// stays valid for the experiment's lifetime (append-only log).
  virtual const LogEntry* Fetch(uint64_t offset) const = 0;

  /// One past the newest assigned offset.
  virtual uint64_t end_offset() const = 0;
};

/// One append-only partition.
class Partition : public PartitionSource {
 public:
  explicit Partition(int home_node) : home_node_(home_node) {}

  /// Node id of the broker VM hosting this partition (for transfer-cost
  /// modeling by the engine).
  int home_node() const { return home_node_; }

  /// Appends a batch, assigns its offset, and fires the data listener.
  uint64_t Append(dataflow::Batch batch) {
    uint64_t offset;
    std::function<void()> listener;
    {
      std::lock_guard<std::mutex> lock(mu_);
      offset = next_offset_++;
      entries_.push_back(LogEntry{offset, std::move(batch)});
      listener = listener_;
    }
    if (listener) listener();
    return offset;
  }

  /// The batch at `offset`, or nullptr when past the end.
  const LogEntry* Fetch(uint64_t offset) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= next_offset_) return nullptr;
    uint64_t first = entries_.empty() ? next_offset_ : entries_.front().offset;
    RHINO_CHECK_GE(offset, first) << "offset truncated from the log";
    return &entries_[offset - first];
  }

  uint64_t end_offset() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return next_offset_;
  }
  uint64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Registers the (single) consumer-side callback fired on append.
  void SetDataListener(std::function<void()> listener) {
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = std::move(listener);
  }

 private:
  int home_node_;
  mutable std::mutex mu_;
  std::deque<LogEntry> entries_;
  uint64_t next_offset_ = 0;
  std::function<void()> listener_;
};

/// A named stream of partitions (e.g. "bids" with 32 partitions).
class Topic {
 public:
  Topic(std::string name, int num_partitions,
        const std::vector<int>& broker_nodes)
      : name_(std::move(name)) {
    RHINO_CHECK(!broker_nodes.empty());
    partitions_.reserve(num_partitions);
    for (int p = 0; p < num_partitions; ++p) {
      partitions_.push_back(std::make_unique<Partition>(
          broker_nodes[static_cast<size_t>(p) % broker_nodes.size()]));
    }
  }

  const std::string& name() const { return name_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  Partition& partition(int p) { return *partitions_[static_cast<size_t>(p)]; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

/// The broker cluster: topics spread over a set of dedicated nodes.
class Broker {
 public:
  /// `broker_nodes`: cluster node ids hosting partitions (the paper uses
  /// four dedicated Kafka VMs).
  explicit Broker(std::vector<int> broker_nodes)
      : broker_nodes_(std::move(broker_nodes)) {}

  Topic& CreateTopic(const std::string& name, int num_partitions) {
    auto [it, inserted] = topics_.try_emplace(
        name, std::make_unique<Topic>(name, num_partitions, broker_nodes_));
    RHINO_CHECK(inserted) << "topic exists: " << name;
    return *it->second;
  }

  Topic& topic(const std::string& name) {
    auto it = topics_.find(name);
    RHINO_CHECK(it != topics_.end()) << "no topic: " << name;
    return *it->second;
  }

  bool HasTopic(const std::string& name) const { return topics_.count(name) > 0; }

 private:
  std::vector<int> broker_nodes_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
};

}  // namespace rhino::broker
