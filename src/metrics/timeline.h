#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "dataflow/engine.h"

/// \file timeline.h
/// Latency observability: per-operator time series (bucketed aggregates
/// for the Figure 4/6 timelines) plus whole-run histograms (for the
/// mean/min/p99 numbers the paper quotes).

namespace rhino::metrics {

/// Bucketed aggregation of (time, value) samples.
class TimeSeries {
 public:
  struct Bucket {
    SimTime start = 0;
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  };

  explicit TimeSeries(SimTime bucket_width = kSecond)
      : bucket_width_(bucket_width) {}

  void Add(SimTime t, double v) {
    SimTime start = t / bucket_width_ * bucket_width_;
    Bucket& b = buckets_[start];
    if (b.count == 0) {
      b.start = start;
      b.min = b.max = v;
    }
    ++b.count;
    b.sum += v;
    b.min = std::min(b.min, v);
    b.max = std::max(b.max, v);
  }

  /// Buckets in time order.
  std::vector<Bucket> Buckets() const {
    std::vector<Bucket> out;
    out.reserve(buckets_.size());
    for (const auto& [_, b] : buckets_) out.push_back(b);
    return out;
  }

  /// Largest bucket mean within [from, to] — "the latency spike".
  double PeakMean(SimTime from = 0, SimTime to = INT64_MAX) const {
    double peak = 0;
    for (const auto& [start, b] : buckets_) {
      if (start < from || start > to) continue;
      peak = std::max(peak, b.Mean());
    }
    return peak;
  }

  SimTime bucket_width() const { return bucket_width_; }
  bool empty() const { return buckets_.empty(); }

 private:
  SimTime bucket_width_;
  std::map<SimTime, Bucket> buckets_;
};

/// Binds to the engine's latency hook and keeps a series + histogram per
/// instrumented operator.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(dataflow::Engine* engine,
                           SimTime bucket_width = kSecond)
      : bucket_width_(bucket_width) {
    engine->SetLatencyListener(
        [this](const std::string& op, SimTime now, SimTime latency) {
          auto it = series_.find(op);
          if (it == series_.end()) {
            it = series_.emplace(op, TimeSeries(bucket_width_)).first;
          }
          it->second.Add(now, static_cast<double>(latency));
          histograms_[op].Add(latency);
        });
  }

  const TimeSeries* Series(const std::string& op) const {
    auto it = series_.find(op);
    return it == series_.end() ? nullptr : &it->second;
  }
  const Histogram* HistogramFor(const std::string& op) const {
    auto it = histograms_.find(op);
    return it == histograms_.end() ? nullptr : &it->second;
  }

 private:
  SimTime bucket_width_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rhino::metrics
