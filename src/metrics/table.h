#pragma once

#include <cstdio>
#include <string>
#include <vector>

/// \file table.h
/// Fixed-width console tables for the benchmark harness (so each bench
/// prints rows shaped like the paper's tables).

namespace rhino::metrics {

/// Accumulates rows of strings and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rhino::metrics
