#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "runtime/executor.h"
#include "sim/cluster.h"

/// \file resource_monitor.h
/// Periodic sampling of cluster resource utilization (Figure 5): CPU,
/// network, disk utilization plus memory/state footprint, aggregated over
/// a set of nodes.

namespace rhino::metrics {

/// One utilization sample across the monitored nodes.
struct ResourceSample {
  SimTime time = 0;
  double cpu_util = 0;   ///< busy core-time / (cores * interval), 0..1
  double net_util = 0;   ///< (tx+rx busy) / (2 * interval), 0..1
  double disk_util = 0;  ///< disk busy / (disks * interval), 0..1
  uint64_t net_bytes = 0;   ///< bytes through NICs in the interval
  uint64_t disk_bytes = 0;  ///< bytes through disks in the interval
  uint64_t memory_bytes = 0;
};

/// Samples utilization deltas every `interval` of simulated time.
class ResourceMonitor {
 public:
  ResourceMonitor(runtime::Executor* executor, sim::Cluster* cluster,
                  std::vector<int> nodes, SimTime interval = kSecond)
      : executor_(executor), cluster_(cluster), nodes_(std::move(nodes)),
        interval_(interval) {}

  /// Extra memory to report (e.g. modeled operator state), queried at each
  /// sample.
  void SetMemoryProbe(std::function<uint64_t()> probe) {
    memory_probe_ = std::move(probe);
  }

  void Start() {
    running_ = true;
    Snapshot(&prev_);
    Tick();
  }
  void Stop() { running_ = false; }

  const std::vector<ResourceSample>& samples() const { return samples_; }

 private:
  struct Counters {
    SimTime cpu_busy = 0;
    SimTime net_busy = 0;
    SimTime disk_busy = 0;
    uint64_t net_bytes = 0;
    uint64_t disk_bytes = 0;
  };

  void Snapshot(Counters* out) const {
    *out = Counters();
    for (int id : nodes_) {
      sim::Node& node = cluster_->node(id);
      out->cpu_busy += node.cpu_busy_us();
      out->net_busy += node.tx().busy_us() + node.rx().busy_us();
      out->net_bytes += node.tx().bytes_served() + node.rx().bytes_served();
      for (int d = 0; d < node.num_disks(); ++d) {
        out->disk_busy += node.disk(d).read_queue().busy_us() +
                          node.disk(d).write_queue().busy_us();
        out->disk_bytes += node.disk(d).read_queue().bytes_served() +
                           node.disk(d).write_queue().bytes_served();
      }
    }
  }

  void Tick() {
    if (!running_) return;
    executor_->Schedule(interval_, [this] {
      if (!running_) return;
      Counters now;
      Snapshot(&now);
      ResourceSample sample;
      sample.time = executor_->Now();
      double n = static_cast<double>(nodes_.size());
      double interval = static_cast<double>(interval_);
      int cores = cluster_->node(nodes_[0]).spec().cores;
      int disks = cluster_->node(nodes_[0]).spec().num_disks;
      sample.cpu_util = static_cast<double>(now.cpu_busy - prev_.cpu_busy) /
                        (interval * n * cores);
      sample.net_util = static_cast<double>(now.net_busy - prev_.net_busy) /
                        (interval * n * 2);
      sample.disk_util = static_cast<double>(now.disk_busy - prev_.disk_busy) /
                         (interval * n * disks * 2);
      sample.net_bytes = now.net_bytes - prev_.net_bytes;
      sample.disk_bytes = now.disk_bytes - prev_.disk_bytes;
      for (int id : nodes_) {
        sample.memory_bytes += cluster_->node(id).memory_used();
      }
      if (memory_probe_) sample.memory_bytes += memory_probe_();
      samples_.push_back(sample);
      prev_ = now;
      Tick();
    });
  }

  runtime::Executor* executor_;
  sim::Cluster* cluster_;
  std::vector<int> nodes_;
  SimTime interval_;
  bool running_ = false;
  Counters prev_;
  std::vector<ResourceSample> samples_;
  std::function<uint64_t()> memory_probe_;
};

}  // namespace rhino::metrics
