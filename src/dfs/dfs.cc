#include "dfs/dfs.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "sim/reliable_transfer.h"

namespace rhino::dfs {

std::vector<int> DistributedFileSystem::PlaceBlock(int writer_node) {
  std::vector<int> replicas;
  bool writer_is_datanode =
      std::find(datanodes_.begin(), datanodes_.end(), writer_node) !=
      datanodes_.end();
  if (writer_is_datanode) replicas.push_back(writer_node);
  while (replicas.size() < static_cast<size_t>(options_.replication) &&
         replicas.size() < datanodes_.size()) {
    int candidate = datanodes_[rng_.Uniform(datanodes_.size())];
    if (std::find(replicas.begin(), replicas.end(), candidate) ==
        replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

void DistributedFileSystem::RegisterFile(const std::string& path,
                                         uint64_t bytes, int writer_node) {
  std::lock_guard<std::mutex> lock(mu_);
  File file;
  file.bytes = bytes;
  for (uint64_t off = 0; off < bytes; off += options_.block_bytes) {
    Block block;
    block.bytes = std::min(options_.block_bytes, bytes - off);
    block.replicas = PlaceBlock(writer_node);
    file.blocks.push_back(std::move(block));
  }
  if (bytes == 0) {
    // Zero-byte files still exist (empty checkpoint).
  }
  files_[path] = std::move(file);
}

void DistributedFileSystem::WriteFile(const std::string& path, uint64_t bytes,
                                      int writer_node,
                                      std::function<void(Status)> done) {
  RegisterFile(path, bytes, writer_node);
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  // Copy the block layout: a concurrent overwrite of `path` would replace
  // the File underneath a held reference.
  File file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file = files_[path];
  }
  if (file.blocks.empty()) {
    cluster_->executor()->Schedule(0, [done] { done(Status::OK()); });
    return;
  }
  auto remaining = std::make_shared<std::atomic<size_t>>(file.blocks.size());
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto finish = [remaining, failed, done]() {
    if (remaining->fetch_sub(1) == 1) {
      done(failed->load(std::memory_order_relaxed)
               ? Status::IOError("block replication failed")
               : Status::OK());
    }
  };
  for (const Block& block : file.blocks) {
    // Pipeline: every replica receives the block; the writer ships it to
    // each remote replica, and each replica spools to its local disk.
    auto pending =
        std::make_shared<std::atomic<size_t>>(block.replicas.size());
    auto block_done = [pending, finish]() {
      if (pending->fetch_sub(1) == 1) finish();
    };
    for (int replica : block.replicas) {
      uint64_t block_bytes = block.bytes;
      auto write_disk = [this, replica, block_bytes, block_done] {
        sim::Node& node = cluster_->node(replica);
        int disk;
        {
          std::lock_guard<std::mutex> lock(mu_);
          disk = disk_cursor_[replica]++ % node.num_disks();
        }
        node.disk(disk).Write(block_bytes, block_done);
      };
      if (replica == writer_node) {
        write_disk();
      } else {
        sim::ReliableTransfer(
            cluster_, writer_node, replica, block.bytes, options_.retry,
            options_.retry_seed ^ NextTransferSeq(), "dfs_block_write",
            std::move(write_disk), [failed, block_done](Status) {
              failed->store(true, std::memory_order_relaxed);
              block_done();
            });
      }
    }
  }
}

void DistributedFileSystem::ReadFile(const std::string& path, int reader_node,
                                     std::function<void(Status)> done) {
  File file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      cluster_->executor()->Schedule(
          0, [done, path] { done(Status::NotFound(path)); });
      return;
    }
    file = it->second;  // copy: overwrites must not invalidate the read
  }
  if (file.blocks.empty()) {
    cluster_->executor()->Schedule(0, [done] { done(Status::OK()); });
    return;
  }
  auto remaining = std::make_shared<std::atomic<size_t>>(file.blocks.size());
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto finish = [remaining, failed, done](Status st) {
    if (!st.ok()) failed->store(true, std::memory_order_relaxed);
    if (remaining->fetch_sub(1) == 1) {
      done(failed->load() ? Status::IOError("block unavailable")
                          : Status::OK());
    }
  };
  for (const Block& block : file.blocks) {
    // Local replica wins; otherwise any live remote replica serves the
    // block (namenode short-circuit read policy).
    int source = -1;
    bool local = false;
    for (int replica : block.replicas) {
      if (!cluster_->node(replica).alive()) continue;
      if (replica == reader_node) {
        source = replica;
        local = true;
        break;
      }
      if (source < 0) source = replica;
    }
    if (source < 0) {
      cluster_->executor()->Schedule(0, [finish] { finish(Status::IOError("")); });
      continue;
    }
    uint64_t block_bytes = block.bytes;
    sim::Node& src_node = cluster_->node(source);
    int disk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      disk = disk_cursor_[source]++ % src_node.num_disks();
    }
    if (local) {
      local_bytes_read_.fetch_add(block_bytes, std::memory_order_relaxed);
      src_node.disk(disk).Read(block_bytes, [finish] { finish(Status::OK()); });
    } else {
      remote_bytes_read_.fetch_add(block_bytes, std::memory_order_relaxed);
      // Remote: disk read at the source, the network hop, then the
      // reader's client pipeline (the sustained-throughput bottleneck).
      sim::QueueResource* client = ClientQueue(reader_node);
      src_node.disk(disk).Read(
          block_bytes,
          [this, source, reader_node, block_bytes, finish, client] {
            sim::ReliableTransfer(
                cluster_, source, reader_node, block_bytes, options_.retry,
                options_.retry_seed ^ NextTransferSeq(), "dfs_block_read",
                [client, block_bytes, finish] {
                  client->Submit(block_bytes,
                                 [finish] { finish(Status::OK()); });
                },
                [finish](Status) {
                  finish(Status::IOError("block fetch failed"));
                });
          });
    }
  }
}

sim::QueueResource* DistributedFileSystem::ClientQueue(int reader_node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = client_queues_.find(reader_node);
  if (it == client_queues_.end()) {
    it = client_queues_
             .emplace(reader_node,
                      std::make_unique<sim::QueueResource>(
                          cluster_->executor(),
                          "dfs-client-" + std::to_string(reader_node),
                          options_.client_bytes_per_sec))
             .first;
  }
  return it->second.get();
}

Result<uint64_t> DistributedFileSystem::FileBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return it->second.bytes;
}

Status DistributedFileSystem::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) return Status::NotFound(path);
  return Status::OK();
}

}  // namespace rhino::dfs
