#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "runtime/retry.h"
#include "sim/cluster.h"
#include "sim/resource.h"

/// \file dfs.h
/// Block-centric distributed file system (the HDFS role, paper §3.1 and
/// Figure 3).
///
/// Files are split into fixed-size blocks; each block is replicated on
/// `replication` datanodes — the first copy local to the writer, the rest
/// on other nodes (HDFS default placement). On a read, local blocks come
/// off the local disk while remote blocks cross the network: exactly the
/// cost asymmetry that makes Flink's and RhinoDFS's state fetching grow
/// with state size in Table 1, and that Rhino's state-centric replication
/// eliminates.

namespace rhino::dfs {

struct DfsOptions {
  uint64_t block_bytes = 128 * kMiB;
  int replication = 2;
  /// Sustained per-client fetch throughput for remote blocks. HDFS client
  /// streaming tops out well below the NIC line rate (protocol overhead,
  /// single-pipeline reads); the paper's Flink fetch times imply roughly
  /// 0.4-0.5 GB/s per restoring task manager.
  double client_bytes_per_sec = 600e6;
  /// Retry policy of block shipments (write pipeline copies and remote
  /// reads): blocks swallowed by an injected network partition are resent
  /// with jittered backoff; exhaustion surfaces IOError on the file
  /// operation. See `sim::ReliableTransfer`.
  runtime::RetryOptions retry = DefaultRetry();
  uint64_t retry_seed = 0xDF5;

  static runtime::RetryOptions DefaultRetry() {
    runtime::RetryOptions r;
    r.initial_backoff_us = 100 * kMillisecond;
    r.max_backoff_us = kSecond;
    r.max_attempts = 0;               // deadline-governed
    r.deadline_us = 60 * kSecond;     // per block shipment
    return r;
  }
};

/// One replicated block.
struct Block {
  uint64_t bytes = 0;
  std::vector<int> replicas;  // datanode ids, first = primary placement
};

/// Namenode + modeled datanodes over the simulated cluster.
class DistributedFileSystem {
 public:
  DistributedFileSystem(sim::Cluster* cluster, std::vector<int> datanodes,
                        DfsOptions options = DfsOptions(), uint64_t seed = 42)
      : cluster_(cluster),
        datanodes_(std::move(datanodes)),
        options_(options),
        rng_(seed) {}

  /// Writes a file of `bytes` from `writer_node`: local first replica
  /// (when the writer is a datanode) plus pipelined remote copies.
  /// Overwrites any existing file at `path`.
  void WriteFile(const std::string& path, uint64_t bytes, int writer_node,
                 std::function<void(Status)> done);

  /// Fetches the whole file to `reader_node`: local blocks from disk,
  /// remote blocks over the network. Fails if any block lost all live
  /// replicas.
  void ReadFile(const std::string& path, int reader_node,
                std::function<void(Status)> done);

  /// Registers a file's blocks without modeling any I/O — used to seed
  /// pre-existing checkpoints at experiment start.
  void RegisterFile(const std::string& path, uint64_t bytes, int writer_node);

  bool Exists(const std::string& path) const {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(path) > 0;
  }
  Result<uint64_t> FileBytes(const std::string& path) const;
  Status DeleteFile(const std::string& path);

  /// Split of the last ReadFile between local and remote bytes
  /// (cumulative across reads; diagnostic for the Table 1 breakdown).
  uint64_t local_bytes_read() const { return local_bytes_read_.load(); }
  uint64_t remote_bytes_read() const { return remote_bytes_read_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }

 private:
  struct File {
    uint64_t bytes = 0;
    std::vector<Block> blocks;
  };

  /// Picks `replication` distinct datanodes, preferring `writer_node` as
  /// the first copy (HDFS default placement policy).
  std::vector<int> PlaceBlock(int writer_node);

  /// Per-reader-node client pipeline for remote block streaming.
  sim::QueueResource* ClientQueue(int reader_node);

  /// Distinct backoff-jitter seed per block shipment.
  uint64_t NextTransferSeq() {
    return transfer_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> transfer_seq_{0};
  sim::Cluster* cluster_;
  std::vector<int> datanodes_;
  DfsOptions options_;
  /// Guards the namenode metadata (files_, rng_, cursors, client queues):
  /// writers and readers run on their nodes' strands.
  mutable std::mutex mu_;
  Random rng_;
  std::map<std::string, File> files_;
  std::map<int, int> disk_cursor_;  // per-node round-robin disk choice
  std::map<int, std::unique_ptr<sim::QueueResource>> client_queues_;
  std::atomic<uint64_t> local_bytes_read_{0};
  std::atomic<uint64_t> remote_bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace rhino::dfs
