#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "dataflow/operator.h"

/// \file source.h
/// Source operator instance bound 1:1 to a broker partition (the paper
/// runs one source thread per Kafka partition, §5.1.5).
///
/// Sources are where control events enter the dataflow: the engine injects
/// checkpoint barriers and handover markers here, and they flow in band to
/// every downstream instance (requirement R1).

namespace rhino::dataflow {

/// Pull-based source: fetches the next log entry (modeling the network hop
/// from the broker node), pays its processing cost, and emits downstream.
class SourceInstance : public OperatorInstance {
 public:
  SourceInstance(Engine* engine, std::string op_name, int subtask, int node_id,
                 ProcessingProfile profile, broker::Partition* partition);

  /// Begins consuming from the current offset.
  void Start();

  /// Injects a control event into the outbound stream at the source's
  /// current position (between batches).
  void InjectControl(const ControlEvent& ev);

  uint64_t offset() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return offset_;
  }
  /// Rewinds (or advances) the consumer position; the next fetch reads
  /// from `offset`. Used for replay after a restart. Any fetch already in
  /// flight is invalidated (its result is discarded).
  void ResetOffset(uint64_t offset);

  /// Atomically injects `markers` at the current stream position, rewinds
  /// to `offset`, and resumes fetching — all under the instance lock.
  /// Recovery must not let a fetch complete between marker injection and
  /// the rewind: its pre-rewind record would route through an already
  /// rewired gate and advance the new owner's replay watermark past the
  /// tail about to be replayed, which would then be deduplicated as
  /// already seen (i.e. silently lost).
  void RewindThroughMarkers(const std::vector<ControlEvent>& markers,
                            uint64_t offset);

  broker::Partition* partition() { return partition_; }

  /// Engine-assigned id unique across all sources of the job; stamps the
  /// provenance of every emitted batch for replay deduplication.
  void set_global_source_id(int id) { global_source_id_ = id; }
  int global_source_id() const { return global_source_id_; }

 protected:
  void HandleBatch(int, Batch&) override;        // sources have no inputs
  void HandleAlignedControl(const ControlEvent&) override;

 private:
  void TryFetch();

  broker::Partition* partition_;
  uint64_t offset_ = 0;
  uint64_t epoch_ = 0;
  int global_source_id_ = -1;
  bool fetch_in_flight_ = false;
  bool started_ = false;
};

}  // namespace rhino::dataflow
