#include "dataflow/operator.h"

#include <cmath>

#include "common/logging.h"
#include "dataflow/engine.h"

namespace rhino::dataflow {

namespace {

std::string ScopeOf(const OperatorInstance* instance) {
  return instance->op_name() + "#" + std::to_string(instance->subtask());
}

const char* AlignmentName(ControlEvent::Type type) {
  return type == ControlEvent::Type::kCheckpointBarrier ? "barrier_align"
                                                        : "marker_align";
}

}  // namespace

// --------------------------------------------------------------- Channel --

void Channel::Send(ChannelItem item) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = item.WireBytes();
  int src = from_ ? from_->node_id() : to_->node_id();
  int dst = to_->node_id();
  auto deliver = [this, item = std::move(item)]() mutable {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    to_->Deliver(to_channel_idx_, std::move(item));
  };
  if (src == dst) {
    // Local exchange: a scheduling quantum, no NIC time. Delivery runs on
    // the receiver's node strand.
    engine_->cluster()->node(dst).queue()->PostDelayed(50, std::move(deliver));
  } else {
    engine_->cluster()->Transfer(src, dst, bytes, std::move(deliver));
  }
}

// ------------------------------------------------------------ OutputGate --

void OutputGate::Route(Batch&& batch, int sender_subtask) {
  if (channels_.empty()) return;
  if (kind_ == ExchangeKind::kPointwise) {
    Channel* ch =
        channels_[static_cast<size_t>(sender_subtask) % channels_.size()];
    ch->Send(ChannelItem::Data(std::move(batch)));
    return;
  }

  // Keyed exchange: split the batch per destination instance.
  std::vector<Batch> per_dest(channels_.size());
  if (!batch.records.empty()) {
    // Real mode: route record by record.
    for (auto& r : batch.records) {
      uint32_t vnode = vnode_map_->VnodeForKey(r.key);
      uint32_t dest = owner_[vnode];
      Batch& out = per_dest[dest];
      out.create_time = batch.create_time;
      out.source_id = batch.source_id;
      out.source_offset = batch.source_offset;
      ++out.count;
      out.bytes += r.size;
      bool found = false;
      for (auto& s : out.slices) {
        if (s.vnode == vnode) {
          ++s.count;
          s.bytes += r.size;
          found = true;
          break;
        }
      }
      if (!found) out.slices.push_back(VnodeSlice{vnode, 1, r.size});
      out.records.push_back(std::move(r));
    }
  } else if (!batch.slices.empty()) {
    // Pre-sliced modeled batch: route slice by slice.
    for (const auto& s : batch.slices) {
      uint32_t dest = owner_[s.vnode];
      Batch& out = per_dest[dest];
      out.create_time = batch.create_time;
      out.source_id = batch.source_id;
      out.source_offset = batch.source_offset;
      out.count += s.count;
      out.bytes += s.bytes;
      out.slices.push_back(s);
    }
  } else {
    // Modeled batch with uniform keys: spread over all vnodes
    // proportionally to their key-group share.
    uint32_t num_vnodes = vnode_map_->num_vnodes();
    uint64_t remaining_count = batch.count;
    uint64_t remaining_bytes = batch.bytes;
    for (uint32_t v = 0; v < num_vnodes; ++v) {
      uint32_t denom = num_vnodes - v;
      uint64_t c = remaining_count / denom;
      uint64_t b = remaining_bytes / denom;
      remaining_count -= c;
      remaining_bytes -= b;
      if (c == 0 && b == 0) continue;
      uint32_t dest = owner_[v];
      Batch& out = per_dest[dest];
      out.create_time = batch.create_time;
      out.source_id = batch.source_id;
      out.source_offset = batch.source_offset;
      out.count += c;
      out.bytes += b;
      out.slices.push_back(VnodeSlice{v, c, b});
    }
  }

  for (size_t dest = 0; dest < per_dest.size(); ++dest) {
    Batch& out = per_dest[dest];
    if (out.count == 0 && out.bytes == 0) continue;
    channels_[dest]->Send(ChannelItem::Data(std::move(out)));
  }
}

// ------------------------------------------------------ OperatorInstance --

OperatorInstance::OperatorInstance(Engine* engine, std::string op_name,
                                   int subtask, int node_id,
                                   ProcessingProfile profile)
    : engine_(engine),
      op_name_(std::move(op_name)),
      subtask_(subtask),
      node_id_(node_id),
      profile_(profile) {}

void OperatorInstance::Deliver(int channel_idx, ChannelItem item) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (halted()) return;  // fail-stop: the instance is gone
  input_queues_[static_cast<size_t>(channel_idx)].push_back(std::move(item));
  TryProcessNext();
}

void OperatorInstance::Halt() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  halted_.store(true, std::memory_order_release);
  for (auto& q : input_queues_) q.clear();
  alignments_.clear();
  holding_ = false;
}

void OperatorInstance::Resume() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  halted_.store(false, std::memory_order_release);
  busy_ = false;
  TryProcessNext();
}

uint64_t OperatorInstance::QueuedItems() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& q : input_queues_) total += q.size();
  return total;
}

void OperatorInstance::TryProcessNext() {
  if (busy_ || halted()) return;
  if (input_queues_.empty()) return;
  int n = static_cast<int>(input_queues_.size());
  for (int probe = 0; probe < n; ++probe) {
    int ch = (poll_cursor_ + probe) % n;
    // Channels that already delivered the oldest in-flight marker are
    // blocked until that alignment completes (paper §4.1.1).
    if (!alignments_.empty() && alignments_.front().channels.count(ch)) {
      continue;
    }
    auto& queue = input_queues_[static_cast<size_t>(ch)];
    if (queue.empty()) continue;
    ChannelItem item = std::move(queue.front());
    queue.pop_front();
    poll_cursor_ = (ch + 1) % n;
    busy_ = true;
    SimTime cost = profile_.per_item_overhead_us;
    if (!item.is_control) {
      cost += static_cast<SimTime>(
          std::ceil(static_cast<double>(item.batch.count) /
                    profile_.records_per_sec * kSecond));
    }
    engine_->cluster()->node(node_id()).AddCpuBusy(cost);
    // The completion runs on this instance's node strand (the simulator's
    // global order refines this; under real threads it serializes the
    // node's callbacks).
    engine_->cluster()->node(node_id()).queue()->PostDelayed(
        cost, [this, ch, item = std::move(item)]() mutable {
          std::lock_guard<std::recursive_mutex> lock(mu_);
          busy_ = false;
          if (halted()) return;
          ProcessItem(ch, std::move(item));
          TryProcessNext();
        });
    return;
  }
}

void OperatorInstance::ProcessItem(int channel_idx, ChannelItem item) {
  if (item.is_control) {
    OnControl(channel_idx, item.control);
  } else {
    HandleBatch(channel_idx, item.batch);
  }
}

void OperatorInstance::OnControl(int channel_idx, const ControlEvent& ev) {
  if (ev.type == ControlEvent::Type::kCheckpointBarrier &&
      engine_->IsCheckpointAborted(ev.id)) {
    // Stale barrier of an aborted checkpoint (straggling in a queue since
    // before a failure): ignore it — aligning on it could never finish.
    TryProcessNext();
    return;
  }
  if (completed_controls_.count({static_cast<int>(ev.type), ev.id})) {
    // Straggler duplicate of an alignment this instance already completed
    // (a failure let the survivors align without the dead sender, whose
    // marker was still on the wire). A ghost alignment would never finish.
    // If that alignment is still the held front (target role waiting for
    // restored state), the late marker must nonetheless block its channel:
    // everything behind it belongs to the post-handover epoch and must not
    // be applied before the restored state is ingested.
    if (!alignments_.empty() && alignments_.front().ev.id == ev.id &&
        alignments_.front().ev.type == ev.type) {
      alignments_.front().channels.insert(channel_idx);
    }
    TryProcessNext();
    return;
  }
  Alignment* alignment = nullptr;
  for (auto& a : alignments_) {
    if (a.ev.id == ev.id && a.ev.type == ev.type) {
      alignment = &a;
      break;
    }
  }
  if (alignment == nullptr) {
    alignments_.push_back(Alignment{ev, {}, 0});
    alignment = &alignments_.back();
    // Alignment starts with the first marker received.
    alignment->span = engine_->obs()->trace().BeginSpan(
        "align", AlignmentName(ev.type), ScopeOf(this), ev.id);
  }
  alignment->channels.insert(channel_idx);
  MaybeCompleteFront();
}

bool OperatorInstance::AlignmentComplete(const Alignment& alignment) const {
  for (size_t ch = 0; ch < inputs_.size(); ++ch) {
    OperatorInstance* sender = inputs_[ch]->from();
    if (sender != nullptr && sender->halted()) continue;
    if (!alignment.channels.count(static_cast<int>(ch))) return false;
  }
  return true;
}

std::string OperatorInstance::AlignmentDebugString() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (alignments_.empty()) return "no alignments";
  const Alignment& a = alignments_.front();
  std::string out = "front id=" + std::to_string(a.ev.id) +
                    " type=" + std::to_string(static_cast<int>(a.ev.type)) +
                    " got=" + std::to_string(a.channels.size()) + "/" +
                    std::to_string(inputs_.size()) + " missing-live=[";
  for (size_t ch = 0; ch < inputs_.size(); ++ch) {
    OperatorInstance* sender = inputs_[ch]->from();
    if (sender != nullptr && sender->halted()) continue;
    if (!a.channels.count(static_cast<int>(ch))) {
      out += (sender ? sender->op_name() + "#" + std::to_string(sender->subtask())
                     : "?") + " ";
    }
  }
  out += "] depth=" + std::to_string(alignments_.size());
  return out;
}

void OperatorInstance::NotifyPeerFailure() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!halted()) MaybeCompleteFront();
}

void OperatorInstance::AbortAlignment(ControlEvent::Type type, uint64_t id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (halted()) return;
  bool was_front = !alignments_.empty() && alignments_.front().ev.id == id &&
                   alignments_.front().ev.type == type;
  for (auto it = alignments_.begin(); it != alignments_.end();) {
    if (it->ev.id == id && it->ev.type == type) {
      engine_->obs()->trace().EndSpan(it->span, {{"aborted", 1}});
      it = alignments_.erase(it);
    } else {
      ++it;
    }
  }
  if (was_front && holding_) holding_ = false;  // cannot hold a dead barrier
  MaybeCompleteFront();
}

void OperatorInstance::MaybeCompleteFront() {
  while (!holding_ && !alignments_.empty() &&
         AlignmentComplete(alignments_.front())) {
    ControlEvent ev = alignments_.front().ev;
    engine_->obs()->trace().EndSpan(alignments_.front().span);
    completed_controls_.insert({static_cast<int>(ev.type), ev.id});
    // Forward first (after any gate rewiring) so downstream alignment
    // starts while this instance performs its own role.
    BeforeForwardControl(ev);
    ForwardControl(ev);
    HandleAlignedControl(ev);
    if (holding_) break;  // target role: stay blocked until state arrives
    alignments_.pop_front();
  }
  TryProcessNext();
}

void OperatorInstance::BeforeForwardControl(const ControlEvent& ev) {
  // Upstream role of a handover (paper §4.1.2, step 3 first case): rewire
  // the output channels for the moved virtual nodes *before* forwarding
  // the marker, so every record sent after it routes to the target.
  if (ev.type == ControlEvent::Type::kHandoverMarker && ev.handover) {
    int64_t rewired = 0;
    for (auto& gate : outputs_) {
      if (gate->downstream_op() == ev.handover->operator_name) {
        gate->ApplyHandover(*ev.handover);
        ++rewired;
      }
    }
    if (rewired > 0) {
      engine_->obs()->trace().Emit("handover", "rewire", ScopeOf(this), ev.id,
                                   {{"gates", rewired}});
    }
  }
}

void OperatorInstance::ReleaseAlignment() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  holding_ = false;
  if (!alignments_.empty()) alignments_.pop_front();
  MaybeCompleteFront();
}

void OperatorInstance::Emit(Batch batch) {
  if (outputs_.empty()) return;
  // Every downstream consumer receives the full stream (NBQX shares one
  // source among several stateful sub-queries).
  for (size_t i = 0; i + 1 < outputs_.size(); ++i) {
    Batch copy = batch;
    outputs_[i]->Route(std::move(copy), subtask_);
  }
  outputs_.back()->Route(std::move(batch), subtask_);
}

void OperatorInstance::ForwardControl(const ControlEvent& ev) {
  for (auto& gate : outputs_) gate->Broadcast(ev);
}

}  // namespace rhino::dataflow
