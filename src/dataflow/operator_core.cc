#include "dataflow/operator_core.h"

#include <algorithm>
#include <vector>

#include "common/serde.h"
#include "state/modeled_state_backend.h"

namespace rhino::dataflow {

const char* OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kKeyedCounter: return "KeyedCounter";
    case OperatorKind::kSymmetricHashJoin: return "SymmetricHashJoin";
    case OperatorKind::kModeledState: return "ModeledState";
  }
  return "Unknown";
}

bool ValidOperatorKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(OperatorKind::kKeyedCounter) &&
         kind <= static_cast<uint8_t>(OperatorKind::kModeledState);
}

namespace {

std::string EncodeU64Key(uint64_t key) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return out;
}

// ------------------------------------------------------ keyed counter --

class KeyedCounterCore final : public StatefulOperatorCore {
 public:
  OperatorKind kind() const override { return OperatorKind::kKeyedCounter; }

  Status Apply(state::StateBackend* backend, int /*side*/, const Batch& batch,
               const VnodeFn& vnode_of, SimTime /*now*/,
               Batch* out) override {
    for (const Record& r : batch.records) {
      uint32_t vnode = vnode_of(r.key);
      RHINO_ASSIGN_OR_RETURN(uint64_t count,
                             ApplyKeyedCount(backend, vnode, r.key));
      Record result;
      result.key = r.key;
      result.event_time = r.event_time;
      result.size = 16;
      result.payload = std::to_string(count);
      out->records.push_back(std::move(result));
      ++out->count;
      out->bytes += 16;
    }
    return Status::OK();
  }

  Result<OperatorQueryResult> Query(state::StateBackend* backend,
                                    uint32_t vnode,
                                    uint64_t key) const override {
    OperatorQueryResult res;
    RHINO_ASSIGN_OR_RETURN(res.count, ReadKeyedCount(backend, vnode, key));
    return res;
  }
};

// ------------------------------------------------- symmetric hash join --

class SymmetricHashJoinCore final : public StatefulOperatorCore {
 public:
  /// The uniquifier is seeded with the owner tag in its top 16 bits: two
  /// hosts that own the same vnode across a migration (origin before,
  /// target after) allocate from disjoint ranges, so an appended entry
  /// can never overwrite one that arrived with the ingested state.
  explicit SymmetricHashJoinCore(uint64_t owner_tag)
      : next_uniq_((owner_tag & 0xffff) << 48) {}

  OperatorKind kind() const override {
    return OperatorKind::kSymmetricHashJoin;
  }

  Status Apply(state::StateBackend* backend, int side, const Batch& batch,
               const VnodeFn& vnode_of, SimTime /*now*/,
               Batch* out) override {
    if (side != 0 && side != 1) {
      return Status::InvalidArgument("join side must be 0 or 1, got " +
                                     std::to_string(side));
    }
    for (const Record& r : batch.records) {
      uint32_t vnode = vnode_of(r.key);
      // Layout: [8B key][1B side][8B uniq] — contiguous per (key, side),
      // so probing the other side is a prefix scan.
      std::string store_key = EncodeU64Key(r.key);
      store_key.push_back(static_cast<char>(side));
      store_key += EncodeU64Key(next_uniq_++);
      RHINO_RETURN_NOT_OK(backend->Put(vnode, store_key, r.payload, r.size));

      std::string probe_prefix = EncodeU64Key(r.key);
      probe_prefix.push_back(static_cast<char>(1 - side));
      RHINO_ASSIGN_OR_RETURN(auto matches,
                             backend->ScanPrefix(vnode, probe_prefix));
      for (const auto& [_, other_payload] : matches) {
        Record result;
        result.key = r.key;
        result.event_time = r.event_time;
        const std::string& left = side == 0 ? r.payload : other_payload;
        const std::string& right = side == 0 ? other_payload : r.payload;
        result.payload = left + "|" + right;
        result.size = static_cast<uint32_t>(result.payload.size());
        out->count += 1;
        out->bytes += result.size;
        out->records.push_back(std::move(result));
      }
    }
    return Status::OK();
  }

  Result<OperatorQueryResult> Query(state::StateBackend* backend,
                                    uint32_t vnode,
                                    uint64_t key) const override {
    OperatorQueryResult res;
    for (int side = 0; side < 2; ++side) {
      std::string prefix = EncodeU64Key(key);
      prefix.push_back(static_cast<char>(side));
      RHINO_ASSIGN_OR_RETURN(auto entries,
                             backend->ScanPrefix(vnode, prefix));
      (side == 0 ? res.left : res.right) = entries.size();
    }
    res.count = res.left + res.right;
    return res;
  }

 private:
  uint64_t next_uniq_;
};

// -------------------------------------------------------- modeled state --

class ModeledStateCore final : public StatefulOperatorCore {
 public:
  explicit ModeledStateCore(StateModelConfig config) : config_(config) {}

  OperatorKind kind() const override { return OperatorKind::kModeledState; }

  Status Apply(state::StateBackend* backend, int /*side*/, const Batch& batch,
               const VnodeFn& vnode_of, SimTime now, Batch* out) override {
    // The backend of a modeled operator is always a ModeledStateBackend —
    // both hosts construct it that way (stateful.cc, node_server.cc).
    auto* modeled = static_cast<state::ModeledStateBackend*>(backend);
    if (!batch.slices.empty()) {
      // Sim mode: pre-aggregated per-vnode slices.
      for (const VnodeSlice& slice : batch.slices) {
        ApplyBytes(modeled, slice.vnode, slice.bytes, now);
      }
    } else {
      // Record-carrying mode (the networked runtime): derive the slices.
      for (const Record& r : batch.records) {
        ApplyBytes(modeled, vnode_of(r.key), r.size, now);
      }
    }
    if (config_.output_selectivity > 0 && batch.bytes > 0) {
      out->bytes += static_cast<uint64_t>(static_cast<double>(batch.bytes) *
                                          config_.output_selectivity);
      if (out->bytes > 0) {
        out->count = std::max<uint64_t>(
            1, out->bytes / config_.output_record_bytes);
      }
    }
    return Status::OK();
  }

  Result<OperatorQueryResult> Query(state::StateBackend* backend,
                                    uint32_t vnode,
                                    uint64_t /*key*/) const override {
    OperatorQueryResult res;
    res.count = backend->VnodeBytes(vnode);
    return res;
  }

 private:
  void ApplyBytes(state::ModeledStateBackend* modeled, uint32_t vnode,
                  uint64_t bytes, SimTime now) {
    auto add = static_cast<uint64_t>(static_cast<double>(bytes) *
                                     config_.state_bytes_per_input_byte);
    switch (config_.pattern) {
      case StateModelConfig::Pattern::kAppend:
        modeled->AddBytes(vnode, add);
        break;
      case StateModelConfig::Pattern::kReadModifyWrite: {
        uint64_t current = modeled->VnodeBytes(vnode);
        if (current < config_.rmw_cap_bytes_per_vnode) {
          modeled->AddBytes(
              vnode, std::min(add, config_.rmw_cap_bytes_per_vnode - current));
        }
        break;
      }
      case StateModelConfig::Pattern::kSession: {
        modeled->AddBytes(vnode, add);
        auto& log = session_log_[vnode];
        log.emplace_back(now, add);
        if (config_.retention_us > 0) {
          while (!log.empty() &&
                 log.front().first < now - config_.retention_us) {
            modeled->RemoveBytes(vnode, log.front().second);
            log.pop_front();
          }
        }
        break;
      }
    }
  }

  StateModelConfig config_;
  /// kSession bookkeeping: (deposit time, bytes) per vnode.
  std::map<uint32_t, std::deque<std::pair<SimTime, uint64_t>>> session_log_;
};

}  // namespace

Result<std::unique_ptr<StatefulOperatorCore>> MakeOperatorCore(
    const OperatorSpec& spec, uint64_t owner_tag) {
  switch (spec.kind) {
    case OperatorKind::kKeyedCounter:
      return std::unique_ptr<StatefulOperatorCore>(new KeyedCounterCore());
    case OperatorKind::kSymmetricHashJoin:
      return std::unique_ptr<StatefulOperatorCore>(
          new SymmetricHashJoinCore(owner_tag));
    case OperatorKind::kModeledState:
      return std::unique_ptr<StatefulOperatorCore>(
          new ModeledStateCore(spec.model));
  }
  return Status::InvalidArgument(
      "unknown operator kind " +
      std::to_string(static_cast<int>(spec.kind)));
}

Result<uint64_t> ApplyKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                 uint64_t key) {
  std::string store_key = EncodeU64Key(key);
  std::string stored;
  uint64_t count = 0;
  Status st = backend->Get(vnode, store_key, &stored);
  if (st.ok()) {
    BinaryReader reader(stored);
    RHINO_RETURN_NOT_OK(reader.GetU64(&count));
  } else if (!st.IsNotFound()) {
    return st;
  }
  ++count;
  std::string value;
  BinaryWriter writer(&value);
  writer.PutU64(count);
  // RMW: 16 nominal bytes per key (key + counter), written once — the
  // paper's "read-modify-write state update pattern".
  uint64_t nominal = st.IsNotFound() ? 16 : 0;
  RHINO_RETURN_NOT_OK(backend->Put(vnode, store_key, value, nominal));
  return count;
}

Result<uint64_t> ReadKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                uint64_t key) {
  std::string stored;
  Status st = backend->Get(vnode, EncodeU64Key(key), &stored);
  if (st.IsNotFound()) return uint64_t{0};
  RHINO_RETURN_NOT_OK(st);
  BinaryReader reader(stored);
  uint64_t count = 0;
  RHINO_RETURN_NOT_OK(reader.GetU64(&count));
  return count;
}

}  // namespace rhino::dataflow
