#include "dataflow/source.h"

#include <cmath>

#include "common/logging.h"
#include "dataflow/engine.h"

namespace rhino::dataflow {

SourceInstance::SourceInstance(Engine* engine, std::string op_name, int subtask,
                               int node_id, ProcessingProfile profile,
                               broker::Partition* partition)
    : OperatorInstance(engine, std::move(op_name), subtask, node_id, profile),
      partition_(partition) {
  partition_->SetDataListener([this] {
    // Fires on the producer's thread (generator or replayed append); the
    // instance lock serializes it against this source's own strand.
    std::lock_guard<std::recursive_mutex> lock(mu_);
    TryFetch();
  });
}

void SourceInstance::Start() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  started_ = true;
  TryFetch();
}

void SourceInstance::TryFetch() {
  if (!started_ || halted() || fetch_in_flight_) return;
  const broker::LogEntry* entry = partition_->Fetch(offset_);
  if (entry == nullptr) return;
  fetch_in_flight_ = true;
  // Network hop broker node -> this worker, then emit. The source's CPU
  // cost is charged inside the transfer completion (sources are I/O bound;
  // a separate CPU queue would not change the ratios the paper reports).
  Batch batch = entry->batch;  // copy: the log retains its entry for replay
  batch.source_id = global_source_id_;
  batch.source_offset = offset_;
  uint64_t epoch = epoch_;
  engine_->cluster()->Transfer(
      partition_->home_node(), node_id(), batch.bytes,
      [this, epoch, batch = std::move(batch)]() mutable {
        std::lock_guard<std::recursive_mutex> lock(mu_);
        fetch_in_flight_ = false;
        if (halted()) return;
        if (epoch != epoch_) {
          // The consumer was rewound while this fetch was in flight; its
          // result belongs to the previous epoch and is discarded (replay
          // re-reads the entry).
          TryFetch();
          return;
        }
        ++offset_;
        Emit(std::move(batch));
        TryFetch();
      });
}

void SourceInstance::ResetOffset(uint64_t offset) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::TraceLog& trace = engine_->obs()->trace();
  if (trace.data_events()) {
    trace.Emit("source", "rewind", op_name() + "#" + std::to_string(subtask()),
               0,
               {{"from", static_cast<int64_t>(offset_)},
                {"to", static_cast<int64_t>(offset)}});
  }
  offset_ = offset;
  ++epoch_;
}

void SourceInstance::RewindThroughMarkers(
    const std::vector<ControlEvent>& markers, uint64_t offset) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const ControlEvent& ev : markers) InjectControl(ev);
  ResetOffset(offset);
  Start();
}

void SourceInstance::InjectControl(const ControlEvent& ev) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (halted()) return;
  BeforeForwardControl(ev);
  ForwardControl(ev);
  HandleAlignedControl(ev);
}

void SourceInstance::HandleBatch(int, Batch&) {
  RHINO_LOG(Fatal) << "sources have no inbound channels";
}

void SourceInstance::HandleAlignedControl(const ControlEvent& ev) {
  if (ev.type == ControlEvent::Type::kCheckpointBarrier) {
    // Source snapshot: the consumer offset (upstream-backup position).
    state::CheckpointDescriptor desc;
    desc.checkpoint_id = ev.id;
    desc.operator_name = op_name();
    desc.instance_id = static_cast<uint32_t>(subtask());
    desc.source_offsets[subtask()] = offset_;
    engine_->OnSnapshotTaken(this, std::move(desc));
  } else {
    engine_->OnHandoverInstanceDone(ev.id, this);
  }
}

}  // namespace rhino::dataflow
