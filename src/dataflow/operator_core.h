#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "dataflow/record.h"
#include "state/state_backend.h"

/// \file operator_core.h
/// Execution-location-agnostic operator semantics.
///
/// A `StatefulOperatorCore` is the pure "fold a batch into state, emit
/// outputs" half of a stateful operator: no engine, no channels, no
/// transport, no locks. The in-process `StatefulInstance` and the
/// networked `NodeServer` both host cores through `OperatorHost`
/// (operator_host.h), so one implementation of the keyed counter, the
/// symmetric hash join, and the modeled state patterns runs unmodified in
/// sim, realtime-thread, and multi-process modes — state a core wrote in
/// one mode ingests byte-identically in the others.

namespace rhino::dataflow {

/// Operator kinds that can be hosted anywhere (the operator-spec wire
/// codec carries this byte; values are part of the wire format).
enum class OperatorKind : uint8_t {
  kKeyedCounter = 1,       ///< RMW running count per key (NBQ5-like)
  kSymmetricHashJoin = 2,  ///< two-input append + probe (NBQ8-like)
  kModeledState = 3,       ///< statistical state model (TB-scale sim)
};

const char* OperatorKindName(OperatorKind kind);
bool ValidOperatorKind(uint8_t kind);

/// Statistical state model for the simulation benches (and the modeled
/// operator kind of the networked runtime).
struct StateModelConfig {
  enum class Pattern : uint8_t {
    kAppend,           ///< joins over long windows: state grows with input
    kReadModifyWrite,  ///< aggregates: state saturates at a per-key plateau
    kSession,          ///< session windows: append + retention-based eviction
  };
  Pattern pattern = Pattern::kAppend;
  /// State bytes added per input byte (before saturation/eviction).
  double state_bytes_per_input_byte = 1.0;
  /// Saturation plateau per vnode for kReadModifyWrite.
  uint64_t rmw_cap_bytes_per_vnode = 64 * 1024;
  /// kSession: state added now is evicted after this long (0 = never).
  SimTime retention_us = 0;
  /// Output bytes emitted per input byte.
  double output_selectivity = 0.05;
  /// Output record size used to derive output counts.
  uint32_t output_record_bytes = 64;
};

/// Execution-location-independent description of a stateful operator:
/// everything a host (engine subtask or node process) needs to
/// instantiate it. This is what `kAddOperator` carries on the wire.
struct OperatorSpec {
  OperatorKind kind = OperatorKind::kKeyedCounter;
  std::string name;
  /// Virtual-node count of the operator's key space (0 in-process, where
  /// routing comes from the engine's VirtualNodeMap instead).
  uint32_t num_vnodes = 0;
  /// Logical inputs (2 for the join; dedup cursors are per input source).
  uint32_t input_arity = 1;
  /// Only meaningful for kModeledState.
  StateModelConfig model;
};

/// Key -> vnode routing supplied by the host (the engine uses its
/// hashring `VirtualNodeMap`, the networked runtime `net::VnodeForKey`;
/// the core must not bake in either).
using VnodeFn = std::function<uint32_t(uint64_t key)>;

/// Read-side point lookup result. `count` is kind-specific: the running
/// count (counter), total stored entries for the key (join, with the
/// per-side split in `left`/`right`), or the key's vnode state bytes
/// (modeled).
struct OperatorQueryResult {
  uint64_t count = 0;
  uint64_t left = 0;
  uint64_t right = 0;
};

/// One operator's semantics over an abstract `StateBackend`. Not
/// thread-safe; the embedding `OperatorHost` serializes calls.
class StatefulOperatorCore {
 public:
  virtual ~StatefulOperatorCore() = default;

  virtual OperatorKind kind() const = 0;

  /// Folds an (already deduplicated) batch from logical input `side` into
  /// `backend` and appends any produced records to `out` (never null;
  /// the host decides whether outputs are emitted, shipped, or dropped).
  /// `now` is the host's clock (event-time eviction in the modeled core).
  virtual Status Apply(state::StateBackend* backend, int side,
                       const Batch& batch, const VnodeFn& vnode_of,
                       SimTime now, Batch* out) = 0;

  /// Point query against `vnode` (where `key` routes).
  virtual Result<OperatorQueryResult> Query(state::StateBackend* backend,
                                            uint32_t vnode,
                                            uint64_t key) const = 0;
};

/// Instantiates the core for `spec.kind`; `owner_tag` must be unique per
/// hosting identity (node id / subtask) — the join folds it into its
/// store-key uniquifier so entries appended by different owners of a
/// migrated vnode can never collide (the join-state consistency rule,
/// DESIGN.md §16). Unknown kinds return InvalidArgument.
Result<std::unique_ptr<StatefulOperatorCore>> MakeOperatorCore(
    const OperatorSpec& spec, uint64_t owner_tag);

// Engine-independent keyed-counter kernels, kept as free functions so
// read paths (query verbs, tests) share the exact store-key layout.

/// Increments `key`'s running count inside `vnode` and returns the new
/// count (read-modify-write, 16 nominal bytes per distinct key).
Result<uint64_t> ApplyKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                 uint64_t key);

/// Current count of `key` in `vnode`; 0 when the key was never counted.
Result<uint64_t> ReadKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                uint64_t key);

}  // namespace rhino::dataflow
