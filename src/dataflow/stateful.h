#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/operator.h"
#include "dataflow/operator_core.h"
#include "dataflow/operator_host.h"
#include "state/modeled_state_backend.h"
#include "state/state_backend.h"

/// \file stateful.h
/// Stateful operator instances.
///
/// `StatefulInstance` implements the engine-side mechanics every stateful
/// operator shares: latency instrumentation, aligned snapshots on
/// checkpoint barriers, and the origin/target roles of the handover
/// protocol (paper §4.1.2 step 3). Operator *semantics* live in the
/// execution-location-agnostic `StatefulOperatorCore` hosted through
/// `OperatorHost` (operator_host.h) — the same cores the networked
/// `NodeServer` runs:
///
///  * `KeyedCounterOperator`      — read-modify-write pattern (NBQ5-like)
///  * `SymmetricHashJoinOperator` — append pattern, two inputs (NBQ8-like)
///  * `ModeledStatefulOperator`   — statistical state model for TB-scale
///    simulation (append / RMW / session patterns with retention)

namespace rhino::dataflow {

/// Base for operators with keyed, migratable state. The spec's kind
/// selects the hosted core; the thin subclasses below keep their
/// historical constructor signatures.
class StatefulInstance : public OperatorInstance {
 public:
  StatefulInstance(Engine* engine, OperatorSpec spec, int subtask,
                   int node_id, ProcessingProfile profile,
                   std::unique_ptr<state::StateBackend> backend);

  state::StateBackend* backend() { return host_->backend(); }

  /// The hosted seam (apply/dedup/extract/ingest/checkpoint mechanics).
  OperatorHost* host() { return host_.get(); }

  /// Swaps in a fresh backend (restart-based recovery restores state by
  /// rebuilding the backend from a checkpoint).
  void ReplaceBackend(std::unique_ptr<state::StateBackend> backend) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    host_->ReplaceBackend(std::move(backend));
  }

  /// Maps an inbound channel to a logical input side (0 = left/first).
  void SetChannelSide(int channel_idx, int side);
  int ChannelSide(int channel_idx) const;

  /// Initial virtual-node ownership, copied from the routing table after
  /// graph wiring.
  void InitOwnedVnodes(const std::vector<uint32_t>& vnodes) {
    host_->InitOwned(vnodes);
  }
  const std::set<uint32_t>& owned_vnodes() const { return host_->owned(); }

  const hashring::VirtualNodeMap* vnode_map() const {
    return engine_->vnode_map(op_name());
  }

  // ------------------------------------------- replay deduplication ------

  /// See `OperatorHost::WatermarkMap` — kept as a member alias for the
  /// protocol layers above (handover manager, checkpoint storage).
  using WatermarkMap = OperatorHost::WatermarkMap;

  /// Watermarks of the given vnodes (for transfer alongside state).
  WatermarkMap GetWatermarks(const std::vector<uint32_t>& vnodes) const;
  /// Merges transferred watermarks (taking the max per entry).
  void MergeWatermarks(const WatermarkMap& marks);

  /// Replaces all watermarks (restart-based recovery rolls state *and*
  /// dedup positions back to the checkpoint; merging would wrongly keep
  /// post-checkpoint positions and drop the replay).
  void ResetWatermarks(WatermarkMap marks) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    host_->ResetWatermarks(std::move(marks));
  }

  // ---- handover completion callbacks (invoked by the HandoverDelegate) --

  /// Origin side of one move: migrated state is safely at the target; drop
  /// it locally ("release unneeded resources", paper step 3).
  void CompleteHandoverAsOrigin(const HandoverSpec& spec,
                                const HandoverMove& move);

  /// Target side of one move: the checkpointed state for the moved vnodes
  /// has been ingested; consume buffered records (paper step ④).
  void CompleteHandoverAsTarget(const HandoverSpec& spec,
                                const HandoverMove& move);

  /// Origin side of one move whose transfer broke (the target's worker
  /// fail-stopped mid-handover): the move is abandoned — the origin keeps
  /// its state and acks, so the handover completes instead of wedging. The
  /// vnodes are re-homed by the subsequent failure-recovery handover.
  void AbandonHandoverMoveAsOrigin(const HandoverSpec& spec,
                                   const HandoverMove& move);

  /// After a peer failure: targets of in-flight moves whose origin died
  /// re-issue the state fetch against the replicated checkpoint (the
  /// origin's live transfer died with it).
  void NotifyPeerFailure() override;

 protected:
  void HandleBatch(int channel_idx, Batch& batch) final;
  void HandleAlignedControl(const ControlEvent& ev) final;

 private:
  /// Acknowledges the handover once aligned and all roles are complete.
  void MaybeAckHandover(uint64_t handover_id);

  std::unique_ptr<OperatorHost> host_;
  std::vector<int> channel_side_;

  /// Per-handover role bookkeeping, keyed by the move's index in
  /// `spec.moves`. Sets (not counters) make every completion idempotent:
  /// under failures the same move can be finished twice (a re-issued
  /// restore racing a slow origin transfer) or abandoned after completion.
  struct HandoverProgress {
    std::set<size_t> pending_origin;  ///< moves this origin still owes
    std::set<size_t> pending_target;  ///< moves this target still awaits
    /// Target-side completions that arrived before this instance aligned.
    std::set<size_t> early_target;
    /// Dead-origin moves whose restore was already re-issued.
    std::set<size_t> reissued;
    bool aligned = false;
    bool acked = false;
  };
  std::map<uint64_t, HandoverProgress> handover_progress_;
  /// Handover id this target is holding alignment for (0 = none).
  uint64_t holding_for_ = 0;

  /// Metric handles, registered once at construction (hot-path updates are
  /// plain arithmetic through these pointers) + the trace scope key.
  std::string trace_scope_;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* records_total_ = nullptr;
  obs::Counter* dedup_dropped_total_ = nullptr;
  obs::HistogramMetric* latency_us_ = nullptr;
  /// Open buffering-hold span while this target waits for moved state.
  uint64_t hold_span_ = 0;
};

// --------------------------------------------------------------- real ops --

/// Read-modify-write aggregate: running count per key, one output record
/// per input record (exercises the NBQ5 state-update pattern).
class KeyedCounterOperator : public StatefulInstance {
 public:
  KeyedCounterOperator(Engine* engine, std::string op_name, int subtask,
                       int node_id, ProcessingProfile profile,
                       std::unique_ptr<state::StateBackend> backend);
};

/// Symmetric hash join over two inputs: every record is appended to its
/// side's state and probed against the other side; matches are emitted
/// immediately (exercises the NBQ8 append pattern).
class SymmetricHashJoinOperator : public StatefulInstance {
 public:
  SymmetricHashJoinOperator(Engine* engine, std::string op_name, int subtask,
                            int node_id, ProcessingProfile profile,
                            std::unique_ptr<state::StateBackend> backend);
};

// ------------------------------------------------------------ modeled op --

/// Stateful operator over a `ModeledStateBackend`: updates per-vnode byte
/// counters per the configured pattern instead of materializing values.
class ModeledStatefulOperator : public StatefulInstance {
 public:
  ModeledStatefulOperator(Engine* engine, std::string op_name, int subtask,
                          int node_id, ProcessingProfile profile,
                          StateModelConfig config);
};

}  // namespace rhino::dataflow
