#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/operator.h"
#include "state/modeled_state_backend.h"
#include "state/state_backend.h"

/// \file stateful.h
/// Stateful operator instances.
///
/// `StatefulInstance` implements the engine-side mechanics every stateful
/// operator shares: latency instrumentation, aligned snapshots on
/// checkpoint barriers, and the origin/target roles of the handover
/// protocol (paper §4.1.2 step 3). Concrete operators supply semantics via
/// `ProcessData`:
///
///  * `KeyedCounterOperator`      — read-modify-write pattern (NBQ5-like)
///  * `SymmetricHashJoinOperator` — append pattern, two inputs (NBQ8-like)
///  * `ModeledStatefulOperator`   — statistical state model for TB-scale
///    simulation (append / RMW / session patterns with retention)

namespace rhino::dataflow {

/// Base for operators with keyed, migratable state.
class StatefulInstance : public OperatorInstance {
 public:
  StatefulInstance(Engine* engine, std::string op_name, int subtask,
                   int node_id, ProcessingProfile profile,
                   std::unique_ptr<state::StateBackend> backend);

  state::StateBackend* backend() { return backend_.get(); }

  /// Swaps in a fresh backend (restart-based recovery restores state by
  /// rebuilding the backend from a checkpoint).
  void ReplaceBackend(std::unique_ptr<state::StateBackend> backend) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    backend_ = std::move(backend);
  }

  /// Maps an inbound channel to a logical input side (0 = left/first).
  void SetChannelSide(int channel_idx, int side);
  int ChannelSide(int channel_idx) const;

  /// Initial virtual-node ownership, copied from the routing table after
  /// graph wiring.
  void InitOwnedVnodes(const std::vector<uint32_t>& vnodes) {
    owned_vnodes_ = std::set<uint32_t>(vnodes.begin(), vnodes.end());
  }
  const std::set<uint32_t>& owned_vnodes() const { return owned_vnodes_; }

  const hashring::VirtualNodeMap* vnode_map() const {
    return engine_->vnode_map(op_name());
  }

  // ------------------------------------------- replay deduplication ------

  /// Per-(vnode, source) replay watermarks: the next source offset this
  /// instance expects for that vnode. Batches at lower offsets were
  /// already folded into the state and are dropped — this is the paper's
  /// "operators are aware of an in-flight handover and ignore seen
  /// records" rule, realized at offset granularity.
  using WatermarkMap = std::map<uint32_t, std::map<int, uint64_t>>;

  /// Watermarks of the given vnodes (for transfer alongside state).
  WatermarkMap GetWatermarks(const std::vector<uint32_t>& vnodes) const;
  /// Merges transferred watermarks (taking the max per entry).
  void MergeWatermarks(const WatermarkMap& marks);

  /// Replaces all watermarks (restart-based recovery rolls state *and*
  /// dedup positions back to the checkpoint; merging would wrongly keep
  /// post-checkpoint positions and drop the replay).
  void ResetWatermarks(WatermarkMap marks) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    watermarks_ = std::move(marks);
  }

  // ---- handover completion callbacks (invoked by the HandoverDelegate) --

  /// Origin side of one move: migrated state is safely at the target; drop
  /// it locally ("release unneeded resources", paper step 3).
  void CompleteHandoverAsOrigin(const HandoverSpec& spec,
                                const HandoverMove& move);

  /// Target side of one move: the checkpointed state for the moved vnodes
  /// has been ingested; consume buffered records (paper step ④).
  void CompleteHandoverAsTarget(const HandoverSpec& spec,
                                const HandoverMove& move);

  /// Origin side of one move whose transfer broke (the target's worker
  /// fail-stopped mid-handover): the move is abandoned — the origin keeps
  /// its state and acks, so the handover completes instead of wedging. The
  /// vnodes are re-homed by the subsequent failure-recovery handover.
  void AbandonHandoverMoveAsOrigin(const HandoverSpec& spec,
                                   const HandoverMove& move);

  /// After a peer failure: targets of in-flight moves whose origin died
  /// re-issue the state fetch against the replicated checkpoint (the
  /// origin's live transfer died with it).
  void NotifyPeerFailure() override;

 protected:
  void HandleBatch(int channel_idx, Batch& batch) final;
  void HandleAlignedControl(const ControlEvent& ev) final;

  /// Operator semantics: `side` is the logical input (0-based).
  virtual void ProcessData(int side, Batch& batch) = 0;

 private:
  /// Acknowledges the handover once aligned and all roles are complete.
  void MaybeAckHandover(uint64_t handover_id);

  std::unique_ptr<state::StateBackend> backend_;
  std::vector<int> channel_side_;
  std::set<uint32_t> owned_vnodes_;
  WatermarkMap watermarks_;

  /// Per-handover role bookkeeping, keyed by the move's index in
  /// `spec.moves`. Sets (not counters) make every completion idempotent:
  /// under failures the same move can be finished twice (a re-issued
  /// restore racing a slow origin transfer) or abandoned after completion.
  struct HandoverProgress {
    std::set<size_t> pending_origin;  ///< moves this origin still owes
    std::set<size_t> pending_target;  ///< moves this target still awaits
    /// Target-side completions that arrived before this instance aligned.
    std::set<size_t> early_target;
    /// Dead-origin moves whose restore was already re-issued.
    std::set<size_t> reissued;
    bool aligned = false;
    bool acked = false;
  };
  std::map<uint64_t, HandoverProgress> handover_progress_;
  /// Handover id this target is holding alignment for (0 = none).
  uint64_t holding_for_ = 0;

  /// Metric handles, registered once at construction (hot-path updates are
  /// plain arithmetic through these pointers) + the trace scope key.
  std::string trace_scope_;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* records_total_ = nullptr;
  obs::Counter* dedup_dropped_total_ = nullptr;
  obs::HistogramMetric* latency_us_ = nullptr;
  /// Open buffering-hold span while this target waits for moved state.
  uint64_t hold_span_ = 0;
};

// --------------------------------------------------------------- real ops --

// Engine-independent keyed-counter kernel. The update/read semantics live
// outside the operator class so the thread-mode engine
// (`KeyedCounterOperator` below) and the networked node process
// (`net::NodeServer`) fold records into state with byte-identical LSM
// contents — a vnode blob extracted in one mode ingests cleanly in the
// other.

/// Increments `key`'s running count inside `vnode` and returns the new
/// count (read-modify-write, 16 nominal bytes per distinct key).
Result<uint64_t> ApplyKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                 uint64_t key);

/// Current count of `key` in `vnode`; 0 when the key was never counted.
Result<uint64_t> ReadKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                uint64_t key);

/// Read-modify-write aggregate: running count per key, one output record
/// per input record (exercises the NBQ5 state-update pattern).
class KeyedCounterOperator : public StatefulInstance {
 public:
  using StatefulInstance::StatefulInstance;

 protected:
  void ProcessData(int side, Batch& batch) override;
};

/// Symmetric hash join over two inputs: every record is appended to its
/// side's state and probed against the other side; matches are emitted
/// immediately (exercises the NBQ8 append pattern).
class SymmetricHashJoinOperator : public StatefulInstance {
 public:
  using StatefulInstance::StatefulInstance;

 protected:
  void ProcessData(int side, Batch& batch) override;

 private:
  uint64_t uniq_ = 0;  // uniquifier for multi-record keys
};

// ------------------------------------------------------------ modeled op --

/// Statistical state model for the simulation benches.
struct StateModelConfig {
  enum class Pattern {
    kAppend,           ///< joins over long windows: state grows with input
    kReadModifyWrite,  ///< aggregates: state saturates at a per-key plateau
    kSession,          ///< session windows: append + retention-based eviction
  };
  Pattern pattern = Pattern::kAppend;
  /// State bytes added per input byte (before saturation/eviction).
  double state_bytes_per_input_byte = 1.0;
  /// Saturation plateau per vnode for kReadModifyWrite.
  uint64_t rmw_cap_bytes_per_vnode = 64 * 1024;
  /// kSession: state added now is evicted after this long (0 = never).
  SimTime retention_us = 0;
  /// Output bytes emitted per input byte.
  double output_selectivity = 0.05;
  /// Output record size used to derive output counts.
  uint32_t output_record_bytes = 64;
};

/// Stateful operator over a `ModeledStateBackend`: updates per-vnode byte
/// counters per the configured pattern instead of materializing values.
class ModeledStatefulOperator : public StatefulInstance {
 public:
  ModeledStatefulOperator(Engine* engine, std::string op_name, int subtask,
                          int node_id, ProcessingProfile profile,
                          StateModelConfig config);

 protected:
  void ProcessData(int side, Batch& batch) override;

 private:
  /// The backend is always a ModeledStateBackend, but it may be replaced
  /// wholesale by restart-based recovery — never cache the pointer.
  state::ModeledStateBackend* modeled() {
    return static_cast<state::ModeledStateBackend*>(backend());
  }

  StateModelConfig config_;
  /// kSession bookkeeping: (deposit time, bytes) per vnode.
  std::map<uint32_t, std::deque<std::pair<SimTime, uint64_t>>> session_log_;
};

}  // namespace rhino::dataflow
