#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"

/// \file graph.h
/// Logical query definition and physical deployment.
///
/// A `QueryDef` lists logical operators (paper §2.1); `ExecutionGraph::
/// Build` expands each into parallel instances, places them round-robin on
/// the worker nodes, and wires channels: keyed exchange into stateful
/// operators, pointwise into sinks.

namespace rhino::dataflow {

/// Factory building one stateful physical instance.
using StatefulFactory = std::function<std::unique_ptr<StatefulInstance>(
    Engine* engine, int subtask, int node_id)>;

/// One logical operator.
struct OpDef {
  enum class Kind { kSource, kStateful, kSink };
  Kind kind = Kind::kSource;
  std::string name;
  int parallelism = 1;
  std::string topic;                 // sources: broker topic to consume
  std::vector<std::string> inputs;   // upstream operator names, in side order
  ProcessingProfile profile;
  StatefulFactory factory;           // stateful only
};

/// A logical query: operators listed in topological order.
struct QueryDef {
  std::string name;
  std::vector<OpDef> ops;

  /// Adds a source with one instance per partition of `topic`.
  QueryDef& AddSource(const std::string& op_name, const std::string& topic,
                      int parallelism, ProcessingProfile profile = {});

  /// Adds a stateful operator consuming `inputs` via keyed exchange.
  QueryDef& AddStateful(const std::string& op_name, int parallelism,
                        std::vector<std::string> inputs, StatefulFactory factory,
                        ProcessingProfile profile = {});

  /// Adds a sink consuming `inputs` pointwise.
  QueryDef& AddSink(const std::string& op_name, int parallelism,
                    std::vector<std::string> inputs,
                    ProcessingProfile profile = {});
};

/// The deployed physical query.
class ExecutionGraph {
 public:
  /// Expands and wires `def` onto `worker_nodes` (subtask i of every
  /// operator lands on worker_nodes[i % n]).
  static std::unique_ptr<ExecutionGraph> Build(
      Engine* engine, const QueryDef& def, const std::vector<int>& worker_nodes);

  /// Starts every source instance.
  void StartSources();

  const std::vector<SourceInstance*>& sources(const std::string& op) const;
  const std::vector<StatefulInstance*>& stateful(const std::string& op) const;
  const std::vector<SinkInstance*>& sinks(const std::string& op) const;
  /// All stateful instances across operators.
  std::vector<StatefulInstance*> all_stateful() const;

  const std::vector<int>& worker_nodes() const { return worker_nodes_; }

 private:
  ExecutionGraph() = default;

  Engine* engine_ = nullptr;
  std::vector<int> worker_nodes_;
  std::map<std::string, std::vector<SourceInstance*>> sources_;
  std::map<std::string, std::vector<StatefulInstance*>> stateful_;
  std::map<std::string, std::vector<SinkInstance*>> sinks_;
  std::map<std::string, std::vector<OperatorInstance*>> instances_;
  std::map<std::string, OpDef::Kind> kinds_;
};

}  // namespace rhino::dataflow
