#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/status.h"
#include "dataflow/operator.h"
#include "hashring/key_groups.h"
#include "obs/observability.h"
#include "runtime/executor.h"
#include "sim/cluster.h"
#include "state/checkpoint.h"

/// \file engine.h
/// The host SPE runtime: instance registry, checkpoint coordination
/// (aligned barriers, Carbone et al.), handover marker injection, and
/// failure handling. Rhino and the baselines plug in through the
/// `CheckpointStorage` and `HandoverDelegate` strategy interfaces.
///
/// ## Thread safety (RealtimeExecutor)
///
/// Coordinator records (checkpoints, handovers, routing registry) are
/// guarded by a recursive engine mutex. The locking discipline is strict:
/// the engine NEVER holds its mutex while calling into an instance or a
/// storage/delegate strategy — records are mutated under the lock, then
/// the lock is released before fanning out (barrier injection, alignment
/// aborts, persistence). Instances hold their own lock when they call up
/// into the engine, so the only cross-component lock order is
/// instance -> engine, never the reverse. Listener callbacks fire under
/// the engine lock (they may re-enter engine accessors — the mutex is
/// recursive — but must not call into instances).
///
/// Record containers are deques: completion paths hold references across
/// asynchronous persistence, and deque growth never invalidates them.

namespace rhino::dataflow {

class SourceInstance;
class StatefulInstance;
class SinkInstance;

/// Where completed instance snapshots go (paper: HDFS for Flink/RhinoDFS,
/// Rhino's replication runtime for Rhino).
class CheckpointStorage {
 public:
  virtual ~CheckpointStorage() = default;

  /// Makes `desc` (taken on `instance`'s node) durable, then `done`.
  /// Implementations model local disk writes, DFS uploads, or chain
  /// replication.
  virtual void Persist(OperatorInstance* instance,
                       const state::CheckpointDescriptor& desc,
                       std::function<void(Status)> done) = 0;
};

/// Moves state during a handover (Rhino: replicated checkpoint + tail
/// delta; Megaphone-style baselines implement their own bulk transfer).
class HandoverDelegate {
 public:
  virtual ~HandoverDelegate() = default;

  /// Origin of `move` has aligned (or has failed, in which case `origin`
  /// is null). Move the state of `move.vnodes` to `target`, ingest it,
  /// then invoke `CompleteHandoverAsOrigin`/`CompleteHandoverAsTarget` and
  /// `done`.
  virtual void TransferState(const HandoverSpec& spec, const HandoverMove& move,
                             StatefulInstance* origin, StatefulInstance* target,
                             std::function<void()> done) = 0;
};

/// Record of one distributed checkpoint.
struct CheckpointRecord {
  uint64_t id = 0;
  SimTime trigger_time = 0;
  SimTime complete_time = -1;
  bool completed = false;
  /// Aborted by a failure; late barriers/snapshots of this id are dropped.
  bool aborted = false;
  /// Instance key ("op#subtask") -> snapshot descriptor.
  std::map<std::string, state::CheckpointDescriptor> descriptors;
  int pending_acks = 0;
};

/// Record of one handover (reconfiguration).
struct HandoverRecord {
  std::shared_ptr<const HandoverSpec> spec;
  SimTime trigger_time = 0;
  SimTime complete_time = -1;
  bool completed = false;
  /// Instance keys ("op#subtask") that must acknowledge: the instances
  /// live when the markers were injected. Fail-stopped participants are
  /// removed (the dead cannot ack), so a failure mid-handover never wedges
  /// the protocol.
  std::set<std::string> participants;
  /// Instance keys that acknowledged.
  std::set<std::string> acked;
};

/// Engine-wide configuration.
struct EngineOptions {
  uint32_t num_key_groups = 1 << 15;   // paper §5.1.3
  uint32_t vnodes_per_instance = 4;    // paper §5.1.3
};

/// The per-query runtime coordinator.
class Engine {
 public:
  Engine(runtime::Executor* executor, sim::Cluster* cluster,
         broker::Broker* broker, EngineOptions options = EngineOptions())
      : executor_(executor),
        cluster_(cluster),
        broker_(broker),
        options_(options) {}

  runtime::Executor* executor() { return executor_; }
  sim::Cluster* cluster() { return cluster_; }
  broker::Broker* broker() { return broker_; }
  const EngineOptions& options() const { return options_; }

  /// Installs the observability context shared by this engine's instances
  /// (defaults to the process-wide one). Call before building the graph:
  /// instances cache metric handles from it at registration time.
  void SetObservability(obs::Observability* o) { obs_ = o; }
  obs::Observability* obs() { return obs_; }

  // ------------------------------------------------------- registration --

  /// Takes ownership of an instance. Called by the graph builder (wiring
  /// happens before the executor runs; registration is not thread-safe).
  OperatorInstance* AddInstance(std::unique_ptr<OperatorInstance> instance);
  Channel* AddChannel(std::unique_ptr<Channel> channel);

  void RegisterSource(SourceInstance* source);
  void RegisterStateful(StatefulInstance* stateful) {
    stateful_.push_back(stateful);
  }
  void RegisterSink(SinkInstance* sink) { sinks_.push_back(sink); }

  /// Creates (once) and returns the routing state for a stateful operator.
  hashring::RoutingTable* GetOrCreateRouting(const std::string& op_name,
                                             uint32_t parallelism);
  hashring::RoutingTable* routing(const std::string& op_name);
  const hashring::VirtualNodeMap* vnode_map(const std::string& op_name);

  const std::vector<SourceInstance*>& sources() const { return sources_; }
  const std::vector<StatefulInstance*>& stateful() const { return stateful_; }
  const std::vector<SinkInstance*>& sinks() const { return sinks_; }
  StatefulInstance* FindStateful(const std::string& op, uint32_t subtask);

  // ------------------------------------------------------- checkpointing --

  void SetCheckpointStorage(CheckpointStorage* storage) { storage_ = storage; }

  /// Starts distributed checkpoint `n+1`: every source snapshots its offset
  /// and injects a barrier. Returns the checkpoint id.
  uint64_t TriggerCheckpoint();

  /// Re-triggers a checkpoint every `interval` (skipping while one is in
  /// flight, as Flink does).
  void StartPeriodicCheckpoints(SimTime interval);
  void StopPeriodicCheckpoints() { periodic_checkpoints_ = false; }

  /// Called by instances when their snapshot is taken (pre-durability).
  /// Snapshots of aborted checkpoints are discarded.
  void OnSnapshotTaken(OperatorInstance* instance,
                       state::CheckpointDescriptor desc);

  /// Checkpoint record by id (nullptr when unknown). The pointer is stable
  /// (deque storage); read its fields only from engine callbacks or after
  /// the executor drained.
  CheckpointRecord* FindCheckpoint(uint64_t id);

  /// True when checkpoint `id` was aborted by a failure; its barriers are
  /// ignored from then on.
  bool IsCheckpointAborted(uint64_t id);

  /// Aborts an in-flight checkpoint (failure, or persistence error): its
  /// snapshots are discarded and its alignments flushed everywhere.
  void AbortCheckpoint(uint64_t id);

  bool checkpoint_in_flight() const {
    return checkpoint_in_flight_.load(std::memory_order_acquire);
  }
  /// Most recent fully durable checkpoint, or nullptr.
  const CheckpointRecord* LastCompletedCheckpoint() const;
  const std::deque<CheckpointRecord>& checkpoints() const {
    return checkpoints_;
  }
  void SetCheckpointListener(std::function<void(const CheckpointRecord&)> fn) {
    checkpoint_listener_ = std::move(fn);
  }

  // ------------------------------------------------------------ handover --

  void SetHandoverDelegate(HandoverDelegate* delegate) { delegate_ = delegate; }
  HandoverDelegate* handover_delegate() { return delegate_; }

  /// Injects handover markers at every live source (paper §4.1.2 step ①).
  /// With `inject_markers` false only the handover record is registered;
  /// the caller must deliver the marker (`HandoverMarkerFor`) to every
  /// live source itself — recovery does this atomically with the source
  /// rewind so no pre-rewind record can slip through a rewired gate.
  void StartHandover(std::shared_ptr<const HandoverSpec> spec,
                     bool inject_markers = true);

  /// The control event `StartHandover` would inject for `spec`.
  static ControlEvent HandoverMarkerFor(
      const std::shared_ptr<const HandoverSpec>& spec);

  /// Instance-level acknowledgment (paper step ④).
  void OnHandoverInstanceDone(uint64_t handover_id, OperatorInstance* instance);

  void SetHandoverListener(std::function<void(const HandoverRecord&)> fn) {
    handover_listener_ = std::move(fn);
  }
  const std::deque<HandoverRecord>& handovers() const { return handovers_; }

  /// Copy of the handover records, taken under the engine lock — safe to
  /// iterate while other strands trigger or complete handovers (the deque
  /// reference above is for quiescent reads only).
  std::vector<HandoverRecord> SnapshotHandovers() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return {handovers_.begin(), handovers_.end()};
  }

  /// Handover record by id (nullptr when unknown).
  const HandoverRecord* FindHandover(uint64_t id) const;
  bool IsHandoverComplete(uint64_t id) const;

  /// Fault-injection probe: notified with "checkpoint_trigger" and
  /// "handover_start" — wire it to `sim::FaultInjector::Notify` to crash
  /// at the k-th checkpoint or mid-handover.
  void SetFaultProbe(std::function<void(const std::string& event)> probe) {
    probe_ = std::move(probe);
  }

  // ------------------------------------------------------------- metrics --

  /// Latency sample hook (instrumented stateful operators, §5.1.5).
  void SetLatencyListener(
      std::function<void(const std::string& op, SimTime now, SimTime latency)> fn) {
    latency_listener_ = std::move(fn);
  }
  void RecordLatency(const std::string& op, SimTime latency) {
    if (latency_listener_) {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      latency_listener_(op, executor_->Now(), latency);
    }
  }

  // ------------------------------------------------------------- failure --

  /// Fail-stop of a node: the node is marked dead and every instance on it
  /// halts (queues dropped).
  void FailNode(int node_id);

  /// All live (non-halted) instances.
  int CountLiveInstances() const;

  /// Re-initializes every keyed gate feeding `op` from the coordinator's
  /// routing table (used by restart-based rescaling, where routing changes
  /// while the job is stopped instead of via in-band markers).
  void ReinitKeyedGates(const std::string& op);

 private:
  /// Both Locked helpers require mu_ held by the caller.
  CheckpointRecord* FindCheckpointLocked(uint64_t id);
  /// Completes `record` once every still-live participant acked.
  void MaybeCompleteHandoverLocked(HandoverRecord& record);

  runtime::Executor* executor_;
  sim::Cluster* cluster_;
  broker::Broker* broker_;
  EngineOptions options_;
  obs::Observability* obs_ = obs::Observability::Default();

  std::vector<std::unique_ptr<OperatorInstance>> instances_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<SourceInstance*> sources_;
  std::vector<StatefulInstance*> stateful_;
  std::vector<SinkInstance*> sinks_;

  struct Routing {
    std::unique_ptr<hashring::VirtualNodeMap> map;
    std::unique_ptr<hashring::RoutingTable> table;
  };
  std::map<std::string, Routing> routing_;

  CheckpointStorage* storage_ = nullptr;
  HandoverDelegate* delegate_ = nullptr;

  /// Guards the coordinator records (checkpoints_, handovers_, routing_
  /// lookups after wiring). Recursive so listeners can re-enter engine
  /// accessors. Never held across calls into instances or strategies.
  mutable std::recursive_mutex mu_;

  std::deque<CheckpointRecord> checkpoints_;
  std::atomic<bool> checkpoint_in_flight_{false};
  uint64_t next_checkpoint_id_ = 1;
  std::atomic<bool> periodic_checkpoints_{false};
  std::function<void(const CheckpointRecord&)> checkpoint_listener_;

  std::deque<HandoverRecord> handovers_;
  std::function<void(const HandoverRecord&)> handover_listener_;
  std::function<void(const std::string&)> probe_;

  std::function<void(const std::string&, SimTime, SimTime)> latency_listener_;
};

}  // namespace rhino::dataflow
