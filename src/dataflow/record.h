#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"

/// \file record.h
/// Data and control items flowing through dataflow channels.
///
/// The engine runs in two granularities sharing these types:
///  * **real mode** — `Batch::records` is populated and operators process
///    each record (tests, examples);
///  * **modeled mode** — `records` is empty and `count`/`bytes`/`slices`
///    describe the batch statistically (TB-scale benches).

namespace rhino::dataflow {

/// One stream record r = (k, t, a): partitioning key, event timestamp, and
/// a payload standing in for the attribute set.
struct Record {
  uint64_t key = 0;
  /// Event-time creation timestamp (simulated us). End-to-end latency is
  /// measured against this, following Karimov et al. (paper §5.1.5).
  SimTime event_time = 0;
  /// Nominal wire size (NEXMark: 206 B person, 269 B auction, 32 B bid).
  uint32_t size = 0;
  std::string payload;
};

/// Per-virtual-node share of a modeled batch, used to update modeled state
/// at migration granularity.
struct VnodeSlice {
  uint32_t vnode = 0;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

/// A batch of records traveling a channel in FIFO order.
struct Batch {
  /// Simulated time the newest record in the batch was created.
  SimTime create_time = 0;
  uint64_t count = 0;
  uint64_t bytes = 0;
  /// Provenance for replay deduplication: the producing source's global id
  /// and the log offset of this batch (-1 = not from a source).
  int source_id = -1;
  uint64_t source_offset = 0;
  std::vector<Record> records;      // real mode only
  std::vector<VnodeSlice> slices;   // modeled routing/state info
};

/// One origin -> target migration inside a handover.
struct HandoverMove {
  uint32_t origin_instance = 0;
  uint32_t target_instance = 0;
  /// Virtual nodes whose processing and state move origin -> target.
  std::vector<uint32_t> vnodes;
};

/// Reconfiguration description carried by handover markers (paper §4.1).
/// A single handover may migrate many instances at once (e.g. recovering a
/// whole failed VM, or rebalancing half the vnodes of every instance).
struct HandoverSpec {
  uint64_t id = 0;
  /// Logical stateful operator being reconfigured.
  std::string operator_name;
  std::vector<HandoverMove> moves;
  /// True when the origin worker failed: no state flows from the origins;
  /// each target restores from its replicated checkpoint and upstream
  /// backup replays the tail.
  bool origin_failed = false;
};

/// In-band control events (paper R1: markers flow with the records).
struct ControlEvent {
  enum class Type {
    kCheckpointBarrier,  ///< aligned checkpoint (Carbone et al.)
    kHandoverMarker,     ///< Rhino handover (paper §4.1)
  };
  Type type = Type::kCheckpointBarrier;
  uint64_t id = 0;
  std::shared_ptr<const HandoverSpec> handover;  // for kHandoverMarker
};

/// One FIFO channel item: either data or control.
struct ChannelItem {
  bool is_control = false;
  Batch batch;
  ControlEvent control;

  static ChannelItem Data(Batch b) {
    ChannelItem item;
    item.is_control = false;
    item.batch = std::move(b);
    return item;
  }
  static ChannelItem Control(ControlEvent ev) {
    ChannelItem item;
    item.is_control = true;
    item.control = std::move(ev);
    return item;
  }

  /// Wire size used for transfer-cost modeling.
  uint64_t WireBytes() const { return is_control ? 64 : batch.bytes; }
};

}  // namespace rhino::dataflow
