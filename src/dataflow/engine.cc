#include "dataflow/engine.h"

#include "common/logging.h"
#include "dataflow/source.h"
#include "dataflow/stateful.h"

namespace rhino::dataflow {

namespace {

std::string InstanceKey(const OperatorInstance* instance) {
  return instance->op_name() + "#" + std::to_string(instance->subtask());
}

}  // namespace

void Engine::RegisterSource(SourceInstance* source) {
  source->set_global_source_id(static_cast<int>(sources_.size()));
  sources_.push_back(source);
}

OperatorInstance* Engine::AddInstance(std::unique_ptr<OperatorInstance> instance) {
  instances_.push_back(std::move(instance));
  return instances_.back().get();
}

Channel* Engine::AddChannel(std::unique_ptr<Channel> channel) {
  channels_.push_back(std::move(channel));
  return channels_.back().get();
}

hashring::RoutingTable* Engine::GetOrCreateRouting(const std::string& op_name,
                                                   uint32_t parallelism) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = routing_.find(op_name);
  if (it == routing_.end()) {
    Routing r;
    r.map = std::make_unique<hashring::VirtualNodeMap>(
        options_.num_key_groups, parallelism, options_.vnodes_per_instance);
    r.table = std::make_unique<hashring::RoutingTable>(r.map.get());
    it = routing_.emplace(op_name, std::move(r)).first;
  }
  return it->second.table.get();
}

hashring::RoutingTable* Engine::routing(const std::string& op_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = routing_.find(op_name);
  RHINO_CHECK(it != routing_.end()) << "no routing for operator " << op_name;
  return it->second.table.get();
}

const hashring::VirtualNodeMap* Engine::vnode_map(const std::string& op_name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = routing_.find(op_name);
  RHINO_CHECK(it != routing_.end()) << "no routing for operator " << op_name;
  return it->second.map.get();
}

StatefulInstance* Engine::FindStateful(const std::string& op, uint32_t subtask) {
  for (StatefulInstance* s : stateful_) {
    if (s->op_name() == op && s->subtask() == static_cast<int>(subtask)) {
      return s;
    }
  }
  return nullptr;
}

// ----------------------------------------------------------- checkpoints --

uint64_t Engine::TriggerCheckpoint() {
  RHINO_CHECK(!checkpoint_in_flight()) << "checkpoint already in flight";
  if (probe_) probe_("checkpoint_trigger");
  obs_->metrics().GetCounter("rhino_checkpoint_triggered_total")->Increment();
  uint64_t id;
  int pending;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    CheckpointRecord record;
    record.id = next_checkpoint_id_++;
    record.trigger_time = executor_->Now();
    for (SourceInstance* s : sources_) {
      if (!s->halted()) ++record.pending_acks;
    }
    for (StatefulInstance* s : stateful_) {
      if (!s->halted()) ++record.pending_acks;
    }
    id = record.id;
    pending = record.pending_acks;
    checkpoints_.push_back(std::move(record));
    checkpoint_in_flight_.store(true, std::memory_order_release);
  }

  // Barrier fan-out happens with the engine lock released: InjectControl
  // runs the instance's alignment logic, which calls back up into the
  // engine (snapshot acks of an empty pipeline complete synchronously).
  ControlEvent barrier;
  barrier.type = ControlEvent::Type::kCheckpointBarrier;
  barrier.id = id;
  for (SourceInstance* s : sources_) {
    if (!s->halted()) s->InjectControl(barrier);
  }
  obs_->trace().Emit("checkpoint", "trigger", "engine", id,
                     {{"pending_acks", pending}});
  return id;
}

void Engine::StartPeriodicCheckpoints(SimTime interval) {
  periodic_checkpoints_.store(true, std::memory_order_relaxed);
  // Offset the first checkpoint by one interval from now.
  std::function<void()> tick = [this, interval] {
    if (!periodic_checkpoints_.load(std::memory_order_relaxed)) return;
    if (!checkpoint_in_flight()) TriggerCheckpoint();
    StartPeriodicCheckpoints(interval);
  };
  executor_->Schedule(interval, std::move(tick));
}

CheckpointRecord* Engine::FindCheckpointLocked(uint64_t id) {
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

CheckpointRecord* Engine::FindCheckpoint(uint64_t id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return FindCheckpointLocked(id);
}

void Engine::OnSnapshotTaken(OperatorInstance* instance,
                             state::CheckpointDescriptor desc) {
  uint64_t id;
  const state::CheckpointDescriptor* stored;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    CheckpointRecord* record = FindCheckpointLocked(desc.checkpoint_id);
    if (record == nullptr || record->aborted || record->completed) {
      // A barrier of an aborted checkpoint surfaced late (e.g. it was
      // queued behind a handover when the failure hit); the snapshot is
      // discarded.
      return;
    }
    id = record->id;
    // The map node (and the record itself — deque storage) stay stable
    // while Persist runs without the lock; only this instance's ack path
    // ever touches this key again.
    stored = &(record->descriptors[InstanceKey(instance)] = std::move(desc));
  }
  auto durable = [this, id](Status st) {
    bool persist_failed = false;
    {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      CheckpointRecord* rec = FindCheckpointLocked(id);
      if (rec == nullptr || rec->aborted || rec->completed) return;
      if (!st.ok()) {
        persist_failed = true;
      } else if (--rec->pending_acks == 0) {
        rec->completed = true;
        rec->complete_time = executor_->Now();
        checkpoint_in_flight_.store(false, std::memory_order_release);
        obs_->metrics()
            .GetCounter("rhino_checkpoint_completed_total")
            ->Increment();
        obs_->metrics()
            .GetHistogram("rhino_checkpoint_duration_us")
            ->Observe(rec->complete_time - rec->trigger_time);
        obs_->trace().EmitSpan(
            "checkpoint", "checkpoint", "engine", rec->trigger_time,
            rec->complete_time, id,
            {{"snapshots", static_cast<int64_t>(rec->descriptors.size())}});
        if (checkpoint_listener_) checkpoint_listener_(*rec);
      }
    }
    if (persist_failed) {
      // Persistence failed (e.g. a replica chain member fail-stopped
      // mid-transfer). The checkpoint can never become fully durable;
      // abort it so the next interval retries from scratch. Aborting
      // flushes alignments on every instance, so the engine lock is
      // released first.
      RHINO_LOG(Warn) << "checkpoint " << id
                      << " persistence failed: " << st.ToString()
                      << "; aborting checkpoint";
      AbortCheckpoint(id);
    }
  };
  if (storage_ != nullptr) {
    storage_->Persist(instance, *stored, std::move(durable));
  } else {
    durable(Status::OK());
  }
}

const CheckpointRecord* Engine::LastCompletedCheckpoint() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->completed) return &*it;
  }
  return nullptr;
}

// -------------------------------------------------------------- handover --

ControlEvent Engine::HandoverMarkerFor(
    const std::shared_ptr<const HandoverSpec>& spec) {
  ControlEvent marker;
  marker.type = ControlEvent::Type::kHandoverMarker;
  marker.id = spec->id;
  marker.handover = spec;
  return marker;
}

void Engine::StartHandover(std::shared_ptr<const HandoverSpec> spec,
                           bool inject_markers) {
  if (probe_) probe_("handover_start");
  obs_->metrics().GetCounter("rhino_handover_triggered_total")->Increment();
  obs_->trace().Emit(
      "handover", "marker_injected", "engine", spec->id,
      {{"moves", static_cast<int64_t>(spec->moves.size())}});
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    HandoverRecord record;
    record.spec = spec;
    record.trigger_time = executor_->Now();
    for (const auto& instance : instances_) {
      if (!instance->halted()) {
        record.participants.insert(InstanceKey(instance.get()));
      }
    }
    handovers_.push_back(std::move(record));
  }

  if (!inject_markers) return;  // caller injects atomically with a rewind
  ControlEvent marker = HandoverMarkerFor(spec);
  for (SourceInstance* s : sources_) {
    if (!s->halted()) s->InjectControl(marker);
  }
}

void Engine::OnHandoverInstanceDone(uint64_t handover_id,
                                    OperatorInstance* instance) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& record : handovers_) {
    if (record.spec->id != handover_id || record.completed) continue;
    record.acked.insert(InstanceKey(instance));
    MaybeCompleteHandoverLocked(record);
    return;
  }
  RHINO_LOG(Warn) << "ack for unknown handover " << handover_id;
}

void Engine::MaybeCompleteHandoverLocked(HandoverRecord& record) {
  if (record.completed) return;
  for (const std::string& key : record.participants) {
    if (!record.acked.count(key)) return;
  }
  record.completed = true;
  record.complete_time = executor_->Now();
  // Commit the new configuration epoch in the coordinator's view. Routing
  // entries are atomics, so in-flight routing lookups never tear.
  hashring::RoutingTable* table = routing(record.spec->operator_name);
  for (const HandoverMove& move : record.spec->moves) {
    for (uint32_t v : move.vnodes) {
      table->Assign(v, move.target_instance);
    }
  }
  obs_->metrics().GetCounter("rhino_handover_completed_total")->Increment();
  obs_->metrics()
      .GetHistogram("rhino_handover_duration_us")
      ->Observe(record.complete_time - record.trigger_time);
  obs_->trace().EmitSpan(
      "handover", "handover", "engine", record.trigger_time,
      record.complete_time, record.spec->id,
      {{"moves", static_cast<int64_t>(record.spec->moves.size())},
       {"participants", static_cast<int64_t>(record.participants.size())}});
  if (handover_listener_) handover_listener_(record);
}

const HandoverRecord* Engine::FindHandover(uint64_t id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& record : handovers_) {
    if (record.spec->id == id) return &record;
  }
  return nullptr;
}

bool Engine::IsHandoverComplete(uint64_t id) const {
  const HandoverRecord* record = FindHandover(id);
  return record != nullptr && record->completed;
}

// --------------------------------------------------------------- failure --

void Engine::FailNode(int node_id) {
  cluster_->FailNode(node_id);
  int halted = 0;
  for (auto& instance : instances_) {
    if (instance->node_id() == node_id) {
      instance->Halt();
      ++halted;
    }
  }
  obs_->metrics().GetCounter("rhino_engine_node_failures_total")->Increment();
  obs_->trace().Emit("fault", "node_failed",
                     "node" + std::to_string(node_id), 0,
                     {{"halted_instances", halted}});
  // Survivors waiting for markers from the dead instances must re-check
  // their alignment requirements (and targets of in-flight moves whose
  // origin just died re-issue their restore from the replicated copy).
  for (auto& instance : instances_) instance->NotifyPeerFailure();
  // In-flight handovers: the dead instances can never ack. Strike them
  // from the participant sets (permanently — a later Resume on a live
  // worker replays no markers) and re-check completion.
  uint64_t abort_id = 0;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (auto& record : handovers_) {
      if (record.completed) continue;
      for (auto& instance : instances_) {
        if (instance->halted()) {
          record.participants.erase(InstanceKey(instance.get()));
        }
      }
      MaybeCompleteHandoverLocked(record);
    }
    // A checkpoint in flight can never complete: instances on the failed
    // node will not ack — and, worse, its barrier markers may have been
    // wiped with the dead instances' queues. Abort it (Flink would equally
    // discard it) and flush its alignments everywhere.
    if (checkpoint_in_flight() && !checkpoints_.empty() &&
        !checkpoints_.back().completed) {
      abort_id = checkpoints_.back().id;
    }
  }
  if (abort_id != 0) AbortCheckpoint(abort_id);
}

void Engine::AbortCheckpoint(uint64_t id) {
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    CheckpointRecord* record = FindCheckpointLocked(id);
    if (record == nullptr || record->completed || record->aborted) return;
    record->aborted = true;
    obs_->metrics().GetCounter("rhino_checkpoint_aborted_total")->Increment();
    obs_->trace().Emit("checkpoint", "abort", "engine", id);
    if (!checkpoints_.empty() && checkpoints_.back().id == id) {
      checkpoint_in_flight_.store(false, std::memory_order_release);
    }
  }
  // Alignment flushes take each instance's own lock; the engine lock is
  // already released (instance -> engine is the only allowed nesting).
  for (auto& instance : instances_) {
    instance->AbortAlignment(ControlEvent::Type::kCheckpointBarrier, id);
  }
}

bool Engine::IsCheckpointAborted(uint64_t id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  CheckpointRecord* record = FindCheckpointLocked(id);
  return record != nullptr && record->aborted;
}

void Engine::ReinitKeyedGates(const std::string& op) {
  hashring::RoutingTable* table = routing(op);
  for (auto& instance : instances_) {
    for (size_t i = 0; i < instance->num_outputs(); ++i) {
      if (instance->output(i)->downstream_op() == op) {
        instance->output(i)->InitRouting(*table);
      }
    }
  }
}

int Engine::CountLiveInstances() const {
  int live = 0;
  for (const auto& instance : instances_) {
    if (!instance->halted()) ++live;
  }
  return live;
}

}  // namespace rhino::dataflow
