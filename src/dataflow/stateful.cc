#include "dataflow/stateful.h"

#include "common/logging.h"

namespace rhino::dataflow {

// ------------------------------------------------------ StatefulInstance --

StatefulInstance::StatefulInstance(Engine* engine, OperatorSpec spec,
                                   int subtask, int node_id,
                                   ProcessingProfile profile,
                                   std::unique_ptr<state::StateBackend> backend)
    : OperatorInstance(engine, spec.name, subtask, node_id, profile) {
  auto host = OperatorHost::Create(
      std::move(spec), std::move(backend),
      [this](uint64_t key) { return vnode_map()->VnodeForKey(key); },
      static_cast<uint32_t>(subtask));
  RHINO_CHECK(host.ok()) << host.status().ToString();
  host_ = std::move(host).MoveValue();
  trace_scope_ = this->op_name() + "#" + std::to_string(subtask);
  obs::MetricsRegistry& metrics = engine->obs()->metrics();
  obs::Labels labels{{"op", this->op_name()}};
  batches_total_ = metrics.GetCounter("rhino_op_batches_total", labels);
  records_total_ = metrics.GetCounter("rhino_op_records_total", labels);
  dedup_dropped_total_ =
      metrics.GetCounter("rhino_op_dedup_dropped_total", labels);
  latency_us_ = metrics.GetHistogram("rhino_op_latency_us", labels);
}

void StatefulInstance::SetChannelSide(int channel_idx, int side) {
  if (channel_side_.size() <= static_cast<size_t>(channel_idx)) {
    channel_side_.resize(static_cast<size_t>(channel_idx) + 1, 0);
  }
  channel_side_[static_cast<size_t>(channel_idx)] = side;
}

int StatefulInstance::ChannelSide(int channel_idx) const {
  if (static_cast<size_t>(channel_idx) >= channel_side_.size()) return 0;
  return channel_side_[static_cast<size_t>(channel_idx)];
}

void StatefulInstance::HandleBatch(int channel_idx, Batch& batch) {
  SimTime now = engine_->executor()->Now();
  Batch out;
  out.create_time = batch.create_time;
  // The host deduplicates the batch against the replay watermarks, folds
  // the remainder into the state through the operator core, and advances
  // the watermarks of the applied vnodes. Ownership is not enforced — the
  // engine routes by construction.
  auto applied = host_->Apply(ChannelSide(channel_idx), batch, now, &out,
                              /*strict_ownership=*/false);
  RHINO_CHECK(applied.ok()) << applied.status().ToString();

  if (!applied->dropped_vnodes.empty()) {
    dedup_dropped_total_->Increment(applied->dropped_vnodes.size());
    obs::TraceLog& dtrace = engine_->obs()->trace();
    if (dtrace.data_events()) {
      for (uint32_t v : applied->dropped_vnodes) {
        dtrace.Emit("data", "dedup_drop", trace_scope_, 0,
                    {{"vnode", static_cast<int64_t>(v)},
                     {"source", static_cast<int64_t>(batch.source_id)},
                     {"offset", static_cast<int64_t>(batch.source_offset)}});
      }
    }
  }
  if (applied->fully_deduped) return;  // whole batch already seen

  // End-to-end processing latency, sampled at the last (instrumented)
  // stateful operator as in the paper's methodology (§5.1.5).
  SimTime latency = now - batch.create_time;
  engine_->RecordLatency(op_name(), latency);
  batches_total_->Increment();
  records_total_->Increment(batch.count);
  latency_us_->Observe(latency);
  obs::TraceLog& trace = engine_->obs()->trace();
  if (trace.data_events()) {
    // Per-batch firehose for protocol-shape tests ("no record applied
    // inside a buffering hold"); too hot for TB-scale benches.
    trace.Emit("data", "deliver", trace_scope_, 0,
               {{"count", static_cast<int64_t>(batch.count)},
                {"bytes", static_cast<int64_t>(batch.bytes)}});
  }
  if (out.count > 0) Emit(std::move(out));
}

StatefulInstance::WatermarkMap StatefulInstance::GetWatermarks(
    const std::vector<uint32_t>& vnodes) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return host_->GetWatermarks(vnodes);
}

void StatefulInstance::MergeWatermarks(const WatermarkMap& marks) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  host_->MergeWatermarks(marks);
}

namespace {

/// Index of `move` inside `spec.moves` (moves are passed by value through
/// async delegate callbacks, so identity must be re-derived structurally).
size_t MoveIndex(const HandoverSpec& spec, const HandoverMove& move) {
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& m = spec.moves[i];
    if (m.origin_instance == move.origin_instance &&
        m.target_instance == move.target_instance && m.vnodes == move.vnodes) {
      return i;
    }
  }
  RHINO_LOG(Fatal) << "move not found in handover " << spec.id;
  return 0;
}

}  // namespace

void StatefulInstance::HandleAlignedControl(const ControlEvent& ev) {
  if (ev.type == ControlEvent::Type::kCheckpointBarrier) {
    // The snapshot also captures the replay watermarks of the owned
    // vnodes, so a restored copy deduplicates correctly.
    auto desc = host_->CaptureCheckpoint(ev.id);
    RHINO_CHECK(desc.ok()) << desc.status().ToString();
    engine_->obs()->trace().Emit(
        "checkpoint", "snapshot", trace_scope_, ev.id,
        {{"vnodes", static_cast<int64_t>(host_->owned().size())}});
    engine_->OnSnapshotTaken(this, std::move(desc).MoveValue());
    return;
  }

  RHINO_CHECK(ev.handover != nullptr);
  const HandoverSpec& spec = *ev.handover;
  if (spec.operator_name != op_name()) {
    // Upstream/downstream of the reconfigured operator: gates were rewired
    // in BeforeForwardControl; nothing else to do.
    engine_->OnHandoverInstanceDone(spec.id, this);
    return;
  }

  auto me = static_cast<uint32_t>(subtask());
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.aligned) return;  // duplicate alignment (defensive)
  progress.aligned = true;
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& move = spec.moves[i];
    // Completions in early_target raced ahead of our markers.
    if (move.target_instance == me && !progress.early_target.count(i)) {
      progress.pending_target.insert(i);
    }
    if (move.origin_instance == me && !spec.origin_failed) {
      progress.pending_origin.insert(i);
    }
  }
  progress.early_target.clear();

  // Kick off the state movement for every move this instance originates,
  // and — when the origin failed (either declared in the spec, or
  // fail-stopped since the markers were injected) — for every move
  // targeting us (the target restores from the replicated checkpoint,
  // paper step 3).
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& move = spec.moves[i];
    if (move.origin_instance == me && !spec.origin_failed) {
      StatefulInstance* target =
          engine_->FindStateful(spec.operator_name, move.target_instance);
      RHINO_CHECK(target != nullptr);
      engine_->handover_delegate()->TransferState(spec, move, this, target,
                                                  [] {});
    } else if (move.target_instance == me && spec.origin_failed) {
      engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                  [] {});
    } else if (move.target_instance == me && !spec.origin_failed) {
      StatefulInstance* origin =
          engine_->FindStateful(spec.operator_name, move.origin_instance);
      if (origin == nullptr || origin->halted()) {
        // The origin died between marker injection and our alignment: its
        // transfer will never arrive. Restore from the replicated copy.
        progress.reissued.insert(i);
        engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                    [] {});
      }
    }
  }

  if (!progress.pending_target.empty()) {
    // Buffer records until the checkpointed state is ingested
    // (paper §4.1.2 step ④).
    holding_for_ = spec.id;
    hold_span_ = engine_->obs()->trace().BeginSpan(
        "handover", "buffering_hold", trace_scope_, spec.id,
        {{"pending_moves",
          static_cast<int64_t>(progress.pending_target.size())}});
    HoldAlignment();
  } else {
    MaybeAckHandover(spec.id);
  }
}

void StatefulInstance::MaybeAckHandover(uint64_t handover_id) {
  HandoverProgress& progress = handover_progress_[handover_id];
  if (!progress.aligned || progress.acked) return;
  if (!progress.pending_origin.empty() || !progress.pending_target.empty()) {
    return;
  }
  progress.acked = true;
  engine_->OnHandoverInstanceDone(handover_id, this);
}

void StatefulInstance::CompleteHandoverAsOrigin(const HandoverSpec& spec,
                                                const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.pending_origin.erase(MoveIndex(spec, move)) == 0) {
    return;  // already completed or abandoned
  }
  // Drops state, ownership, and the replay watermarks — the watermarks go
  // with the state (see OperatorHost::Drop).
  RHINO_CHECK_OK(host_->Drop(move.vnodes));
  MaybeAckHandover(spec.id);
}

void StatefulInstance::AbandonHandoverMoveAsOrigin(const HandoverSpec& spec,
                                                   const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.pending_origin.erase(MoveIndex(spec, move)) == 0) return;
  // Keep the state: the target never ingested it; the failure-recovery
  // handover re-homes the vnodes from the replicated checkpoint.
  MaybeAckHandover(spec.id);
}

void StatefulInstance::CompleteHandoverAsTarget(const HandoverSpec& spec,
                                                const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t idx = MoveIndex(spec, move);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (!progress.aligned) {
    // Markers have not all arrived yet; alignment will account for it.
    host_->Own(move.vnodes);
    progress.early_target.insert(idx);
    return;
  }
  if (progress.pending_target.erase(idx) == 0) {
    return;  // duplicate (a re-issued restore raced the original transfer)
  }
  host_->Own(move.vnodes);
  if (progress.pending_target.empty() && holding_for_ == spec.id) {
    holding_for_ = 0;
    engine_->obs()->trace().EndSpan(hold_span_);
    hold_span_ = 0;
    ReleaseAlignment();
  }
  MaybeAckHandover(spec.id);
}

void StatefulInstance::NotifyPeerFailure() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!halted()) {
    for (auto& [id, progress] : handover_progress_) {
      if (!progress.aligned || progress.acked) continue;
      const HandoverRecord* record = engine_->FindHandover(id);
      if (record == nullptr || record->spec->origin_failed) continue;
      const HandoverSpec& spec = *record->spec;
      // Copy: TransferState may complete synchronously and mutate the set.
      std::vector<size_t> pending(progress.pending_target.begin(),
                                  progress.pending_target.end());
      for (size_t i : pending) {
        const HandoverMove& move = spec.moves[i];
        StatefulInstance* origin =
            engine_->FindStateful(spec.operator_name, move.origin_instance);
        if (origin != nullptr && !origin->halted()) continue;
        if (!progress.reissued.insert(i).second) continue;
        engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                    [] {});
      }
    }
  }
  OperatorInstance::NotifyPeerFailure();
}

// ----------------------------------------------------------- concrete ops --

namespace {

OperatorSpec MakeSpec(OperatorKind kind, const std::string& name,
                      uint32_t input_arity) {
  OperatorSpec spec;
  spec.kind = kind;
  spec.name = name;
  spec.input_arity = input_arity;
  return spec;
}

}  // namespace

KeyedCounterOperator::KeyedCounterOperator(
    Engine* engine, std::string op_name, int subtask, int node_id,
    ProcessingProfile profile, std::unique_ptr<state::StateBackend> backend)
    : StatefulInstance(engine,
                       MakeSpec(OperatorKind::kKeyedCounter, op_name, 1),
                       subtask, node_id, profile, std::move(backend)) {}

SymmetricHashJoinOperator::SymmetricHashJoinOperator(
    Engine* engine, std::string op_name, int subtask, int node_id,
    ProcessingProfile profile, std::unique_ptr<state::StateBackend> backend)
    : StatefulInstance(engine,
                       MakeSpec(OperatorKind::kSymmetricHashJoin, op_name, 2),
                       subtask, node_id, profile, std::move(backend)) {}

ModeledStatefulOperator::ModeledStatefulOperator(Engine* engine,
                                                 std::string op_name,
                                                 int subtask, int node_id,
                                                 ProcessingProfile profile,
                                                 StateModelConfig config)
    : StatefulInstance(engine,
                       [&] {
                         OperatorSpec spec = MakeSpec(
                             OperatorKind::kModeledState, op_name, 1);
                         spec.model = config;
                         return spec;
                       }(),
                       subtask, node_id, profile,
                       std::make_unique<state::ModeledStateBackend>(
                           op_name, static_cast<uint32_t>(subtask))) {}

}  // namespace rhino::dataflow
