#include "dataflow/stateful.h"

#include "common/logging.h"
#include "common/serde.h"

namespace rhino::dataflow {

// ------------------------------------------------------ StatefulInstance --

StatefulInstance::StatefulInstance(Engine* engine, std::string op_name,
                                   int subtask, int node_id,
                                   ProcessingProfile profile,
                                   std::unique_ptr<state::StateBackend> backend)
    : OperatorInstance(engine, std::move(op_name), subtask, node_id, profile),
      backend_(std::move(backend)) {
  trace_scope_ = this->op_name() + "#" + std::to_string(subtask);
  obs::MetricsRegistry& metrics = engine->obs()->metrics();
  obs::Labels labels{{"op", this->op_name()}};
  batches_total_ = metrics.GetCounter("rhino_op_batches_total", labels);
  records_total_ = metrics.GetCounter("rhino_op_records_total", labels);
  dedup_dropped_total_ =
      metrics.GetCounter("rhino_op_dedup_dropped_total", labels);
  latency_us_ = metrics.GetHistogram("rhino_op_latency_us", labels);
}

void StatefulInstance::SetChannelSide(int channel_idx, int side) {
  if (channel_side_.size() <= static_cast<size_t>(channel_idx)) {
    channel_side_.resize(static_cast<size_t>(channel_idx) + 1, 0);
  }
  channel_side_[static_cast<size_t>(channel_idx)] = side;
}

int StatefulInstance::ChannelSide(int channel_idx) const {
  if (static_cast<size_t>(channel_idx) >= channel_side_.size()) return 0;
  return channel_side_[static_cast<size_t>(channel_idx)];
}

void StatefulInstance::HandleBatch(int channel_idx, Batch& batch) {
  // Replay deduplication: drop the parts of the batch this instance's
  // state already reflects (offset below the per-vnode watermark).
  if (batch.source_id >= 0 && !batch.slices.empty()) {
    std::vector<VnodeSlice> fresh;
    std::set<uint32_t> dropped;
    for (const VnodeSlice& slice : batch.slices) {
      uint64_t& next = watermarks_[slice.vnode][batch.source_id];
      if (batch.source_offset < next) {
        dropped.insert(slice.vnode);
        batch.count -= std::min(batch.count, slice.count);
        batch.bytes -= std::min(batch.bytes, slice.bytes);
      } else {
        next = batch.source_offset + 1;
        fresh.push_back(slice);
      }
    }
    if (!dropped.empty()) {
      dedup_dropped_total_->Increment(dropped.size());
      obs::TraceLog& dtrace = engine_->obs()->trace();
      if (dtrace.data_events()) {
        for (uint32_t v : dropped) {
          dtrace.Emit("data", "dedup_drop", trace_scope_, 0,
                      {{"vnode", static_cast<int64_t>(v)},
                       {"source", static_cast<int64_t>(batch.source_id)},
                       {"offset", static_cast<int64_t>(batch.source_offset)}});
        }
      }
      batch.slices = std::move(fresh);
      if (!batch.records.empty()) {
        std::vector<Record> keep;
        for (auto& r : batch.records) {
          if (!dropped.count(vnode_map()->VnodeForKey(r.key))) {
            keep.push_back(std::move(r));
          }
        }
        batch.records = std::move(keep);
      }
      if (batch.slices.empty()) return;  // whole batch already seen
    }
  }

  // End-to-end processing latency, sampled at the last (instrumented)
  // stateful operator as in the paper's methodology (§5.1.5).
  SimTime latency = engine_->executor()->Now() - batch.create_time;
  engine_->RecordLatency(op_name(), latency);
  batches_total_->Increment();
  records_total_->Increment(batch.count);
  latency_us_->Observe(latency);
  obs::TraceLog& trace = engine_->obs()->trace();
  if (trace.data_events()) {
    // Per-batch firehose for protocol-shape tests ("no record applied
    // inside a buffering hold"); too hot for TB-scale benches.
    trace.Emit("data", "deliver", trace_scope_, 0,
               {{"count", static_cast<int64_t>(batch.count)},
                {"bytes", static_cast<int64_t>(batch.bytes)}});
  }
  ProcessData(ChannelSide(channel_idx), batch);
}

StatefulInstance::WatermarkMap StatefulInstance::GetWatermarks(
    const std::vector<uint32_t>& vnodes) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  WatermarkMap out;
  for (uint32_t v : vnodes) {
    auto it = watermarks_.find(v);
    if (it != watermarks_.end()) out[v] = it->second;
  }
  return out;
}

void StatefulInstance::MergeWatermarks(const WatermarkMap& marks) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& [vnode, sources] : marks) {
    for (const auto& [source, next] : sources) {
      uint64_t& mine = watermarks_[vnode][source];
      if (next > mine) mine = next;
    }
  }
}

namespace {

/// Index of `move` inside `spec.moves` (moves are passed by value through
/// async delegate callbacks, so identity must be re-derived structurally).
size_t MoveIndex(const HandoverSpec& spec, const HandoverMove& move) {
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& m = spec.moves[i];
    if (m.origin_instance == move.origin_instance &&
        m.target_instance == move.target_instance && m.vnodes == move.vnodes) {
      return i;
    }
  }
  RHINO_LOG(Fatal) << "move not found in handover " << spec.id;
  return 0;
}

}  // namespace

void StatefulInstance::HandleAlignedControl(const ControlEvent& ev) {
  if (ev.type == ControlEvent::Type::kCheckpointBarrier) {
    auto desc = backend_->Checkpoint(ev.id);
    RHINO_CHECK(desc.ok()) << desc.status().ToString();
    // The snapshot also captures the replay watermarks of the owned
    // vnodes, so a restored copy deduplicates correctly.
    std::vector<uint32_t> owned(owned_vnodes_.begin(), owned_vnodes_.end());
    desc->vnode_watermarks = GetWatermarks(owned);
    engine_->obs()->trace().Emit(
        "checkpoint", "snapshot", trace_scope_, ev.id,
        {{"vnodes", static_cast<int64_t>(owned.size())}});
    engine_->OnSnapshotTaken(this, std::move(desc).MoveValue());
    return;
  }

  RHINO_CHECK(ev.handover != nullptr);
  const HandoverSpec& spec = *ev.handover;
  if (spec.operator_name != op_name()) {
    // Upstream/downstream of the reconfigured operator: gates were rewired
    // in BeforeForwardControl; nothing else to do.
    engine_->OnHandoverInstanceDone(spec.id, this);
    return;
  }

  auto me = static_cast<uint32_t>(subtask());
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.aligned) return;  // duplicate alignment (defensive)
  progress.aligned = true;
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& move = spec.moves[i];
    // Completions in early_target raced ahead of our markers.
    if (move.target_instance == me && !progress.early_target.count(i)) {
      progress.pending_target.insert(i);
    }
    if (move.origin_instance == me && !spec.origin_failed) {
      progress.pending_origin.insert(i);
    }
  }
  progress.early_target.clear();

  // Kick off the state movement for every move this instance originates,
  // and — when the origin failed (either declared in the spec, or
  // fail-stopped since the markers were injected) — for every move
  // targeting us (the target restores from the replicated checkpoint,
  // paper step 3).
  for (size_t i = 0; i < spec.moves.size(); ++i) {
    const HandoverMove& move = spec.moves[i];
    if (move.origin_instance == me && !spec.origin_failed) {
      StatefulInstance* target =
          engine_->FindStateful(spec.operator_name, move.target_instance);
      RHINO_CHECK(target != nullptr);
      engine_->handover_delegate()->TransferState(spec, move, this, target,
                                                  [] {});
    } else if (move.target_instance == me && spec.origin_failed) {
      engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                  [] {});
    } else if (move.target_instance == me && !spec.origin_failed) {
      StatefulInstance* origin =
          engine_->FindStateful(spec.operator_name, move.origin_instance);
      if (origin == nullptr || origin->halted()) {
        // The origin died between marker injection and our alignment: its
        // transfer will never arrive. Restore from the replicated copy.
        progress.reissued.insert(i);
        engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                    [] {});
      }
    }
  }

  if (!progress.pending_target.empty()) {
    // Buffer records until the checkpointed state is ingested
    // (paper §4.1.2 step ④).
    holding_for_ = spec.id;
    hold_span_ = engine_->obs()->trace().BeginSpan(
        "handover", "buffering_hold", trace_scope_, spec.id,
        {{"pending_moves",
          static_cast<int64_t>(progress.pending_target.size())}});
    HoldAlignment();
  } else {
    MaybeAckHandover(spec.id);
  }
}

void StatefulInstance::MaybeAckHandover(uint64_t handover_id) {
  HandoverProgress& progress = handover_progress_[handover_id];
  if (!progress.aligned || progress.acked) return;
  if (!progress.pending_origin.empty() || !progress.pending_target.empty()) {
    return;
  }
  progress.acked = true;
  engine_->OnHandoverInstanceDone(handover_id, this);
}

void StatefulInstance::CompleteHandoverAsOrigin(const HandoverSpec& spec,
                                                const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.pending_origin.erase(MoveIndex(spec, move)) == 0) {
    return;  // already completed or abandoned
  }
  RHINO_CHECK_OK(backend_->DropVnodes(move.vnodes));
  for (uint32_t v : move.vnodes) {
    owned_vnodes_.erase(v);
    // The replay watermarks go with the state: if a later handover moves
    // these vnodes back (e.g. failure recovery), stale entries would
    // dedup replayed records the restored copy has never applied.
    watermarks_.erase(v);
  }
  MaybeAckHandover(spec.id);
}

void StatefulInstance::AbandonHandoverMoveAsOrigin(const HandoverSpec& spec,
                                                   const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (progress.pending_origin.erase(MoveIndex(spec, move)) == 0) return;
  // Keep the state: the target never ingested it; the failure-recovery
  // handover re-homes the vnodes from the replicated checkpoint.
  MaybeAckHandover(spec.id);
}

void StatefulInstance::CompleteHandoverAsTarget(const HandoverSpec& spec,
                                                const HandoverMove& move) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t idx = MoveIndex(spec, move);
  HandoverProgress& progress = handover_progress_[spec.id];
  if (!progress.aligned) {
    // Markers have not all arrived yet; alignment will account for it.
    for (uint32_t v : move.vnodes) owned_vnodes_.insert(v);
    progress.early_target.insert(idx);
    return;
  }
  if (progress.pending_target.erase(idx) == 0) {
    return;  // duplicate (a re-issued restore raced the original transfer)
  }
  for (uint32_t v : move.vnodes) owned_vnodes_.insert(v);
  if (progress.pending_target.empty() && holding_for_ == spec.id) {
    holding_for_ = 0;
    engine_->obs()->trace().EndSpan(hold_span_);
    hold_span_ = 0;
    ReleaseAlignment();
  }
  MaybeAckHandover(spec.id);
}

void StatefulInstance::NotifyPeerFailure() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!halted()) {
    for (auto& [id, progress] : handover_progress_) {
      if (!progress.aligned || progress.acked) continue;
      const HandoverRecord* record = engine_->FindHandover(id);
      if (record == nullptr || record->spec->origin_failed) continue;
      const HandoverSpec& spec = *record->spec;
      // Copy: TransferState may complete synchronously and mutate the set.
      std::vector<size_t> pending(progress.pending_target.begin(),
                                  progress.pending_target.end());
      for (size_t i : pending) {
        const HandoverMove& move = spec.moves[i];
        StatefulInstance* origin =
            engine_->FindStateful(spec.operator_name, move.origin_instance);
        if (origin != nullptr && !origin->halted()) continue;
        if (!progress.reissued.insert(i).second) continue;
        engine_->handover_delegate()->TransferState(spec, move, nullptr, this,
                                                    [] {});
      }
    }
  }
  OperatorInstance::NotifyPeerFailure();
}

// --------------------------------------------------- KeyedCounterOperator --

namespace {

std::string EncodeU64Key(uint64_t key) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(key & 0xff);
    key >>= 8;
  }
  return out;
}

}  // namespace

Result<uint64_t> ApplyKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                 uint64_t key) {
  std::string store_key = EncodeU64Key(key);
  std::string stored;
  uint64_t count = 0;
  Status st = backend->Get(vnode, store_key, &stored);
  if (st.ok()) {
    BinaryReader reader(stored);
    RHINO_RETURN_NOT_OK(reader.GetU64(&count));
  } else if (!st.IsNotFound()) {
    return st;
  }
  ++count;
  std::string value;
  BinaryWriter writer(&value);
  writer.PutU64(count);
  // RMW: 16 nominal bytes per key (key + counter), written once — the
  // paper's "read-modify-write state update pattern".
  uint64_t nominal = st.IsNotFound() ? 16 : 0;
  RHINO_RETURN_NOT_OK(backend->Put(vnode, store_key, value, nominal));
  return count;
}

Result<uint64_t> ReadKeyedCount(state::StateBackend* backend, uint32_t vnode,
                                uint64_t key) {
  std::string stored;
  Status st = backend->Get(vnode, EncodeU64Key(key), &stored);
  if (st.IsNotFound()) return uint64_t{0};
  RHINO_RETURN_NOT_OK(st);
  BinaryReader reader(stored);
  uint64_t count = 0;
  RHINO_RETURN_NOT_OK(reader.GetU64(&count));
  return count;
}

void KeyedCounterOperator::ProcessData(int, Batch& batch) {
  Batch out;
  out.create_time = batch.create_time;
  for (const Record& r : batch.records) {
    uint32_t vnode = vnode_map()->VnodeForKey(r.key);
    auto count = ApplyKeyedCount(backend(), vnode, r.key);
    RHINO_CHECK(count.ok()) << count.status().ToString();

    Record result;
    result.key = r.key;
    result.event_time = r.event_time;
    result.size = 16;
    result.payload = std::to_string(*count);
    out.records.push_back(std::move(result));
    ++out.count;
    out.bytes += 16;
  }
  if (out.count > 0) Emit(std::move(out));
}

// ---------------------------------------------- SymmetricHashJoinOperator --

void SymmetricHashJoinOperator::ProcessData(int side, Batch& batch) {
  RHINO_CHECK(side == 0 || side == 1);
  Batch out;
  out.create_time = batch.create_time;
  for (const Record& r : batch.records) {
    uint32_t vnode = vnode_map()->VnodeForKey(r.key);
    // Layout: [8B key][1B side][8B uniq] — contiguous per (key, side), so
    // probing the other side is a prefix scan.
    std::string store_key = EncodeU64Key(r.key);
    store_key.push_back(static_cast<char>(side));
    store_key += EncodeU64Key(uniq_++);
    RHINO_CHECK_OK(backend()->Put(vnode, store_key, r.payload, r.size));

    std::string probe_prefix = EncodeU64Key(r.key);
    probe_prefix.push_back(static_cast<char>(1 - side));
    auto matches = backend()->ScanPrefix(vnode, probe_prefix);
    RHINO_CHECK(matches.ok()) << matches.status().ToString();
    for (const auto& [_, other_payload] : *matches) {
      Record result;
      result.key = r.key;
      result.event_time = r.event_time;
      const std::string& left = side == 0 ? r.payload : other_payload;
      const std::string& right = side == 0 ? other_payload : r.payload;
      result.payload = left + "|" + right;
      result.size = static_cast<uint32_t>(result.payload.size());
      out.count += 1;
      out.bytes += result.size;
      out.records.push_back(std::move(result));
    }
  }
  if (out.count > 0) Emit(std::move(out));
}

// --------------------------------------------------- ModeledStatefulOperator

ModeledStatefulOperator::ModeledStatefulOperator(Engine* engine,
                                                 std::string op_name,
                                                 int subtask, int node_id,
                                                 ProcessingProfile profile,
                                                 StateModelConfig config)
    : StatefulInstance(engine, op_name, subtask, node_id, profile,
                       std::make_unique<state::ModeledStateBackend>(
                           op_name, static_cast<uint32_t>(subtask))),
      config_(config) {}

void ModeledStatefulOperator::ProcessData(int, Batch& batch) {
  SimTime now = engine_->executor()->Now();
  for (const VnodeSlice& slice : batch.slices) {
    auto add = static_cast<uint64_t>(static_cast<double>(slice.bytes) *
                                     config_.state_bytes_per_input_byte);
    switch (config_.pattern) {
      case StateModelConfig::Pattern::kAppend:
        modeled()->AddBytes(slice.vnode, add);
        break;
      case StateModelConfig::Pattern::kReadModifyWrite: {
        uint64_t current = modeled()->VnodeBytes(slice.vnode);
        if (current < config_.rmw_cap_bytes_per_vnode) {
          modeled()->AddBytes(
              slice.vnode,
              std::min(add, config_.rmw_cap_bytes_per_vnode - current));
        }
        break;
      }
      case StateModelConfig::Pattern::kSession: {
        modeled()->AddBytes(slice.vnode, add);
        auto& log = session_log_[slice.vnode];
        log.emplace_back(now, add);
        if (config_.retention_us > 0) {
          while (!log.empty() && log.front().first < now - config_.retention_us) {
            modeled()->RemoveBytes(slice.vnode, log.front().second);
            log.pop_front();
          }
        }
        break;
      }
    }
  }
  if (config_.output_selectivity > 0 && batch.bytes > 0) {
    Batch out;
    out.create_time = batch.create_time;
    out.bytes = static_cast<uint64_t>(static_cast<double>(batch.bytes) *
                                      config_.output_selectivity);
    out.count = std::max<uint64_t>(1, out.bytes / config_.output_record_bytes);
    if (out.bytes > 0) Emit(std::move(out));
  }
}

}  // namespace rhino::dataflow
