#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/operator.h"

/// \file sink.h
/// Sink operator instance: consumes results, optionally exposing them to
/// tests via a collector callback.

namespace rhino::dataflow {

/// Terminal operator; stateless.
class SinkInstance : public OperatorInstance {
 public:
  SinkInstance(Engine* engine, std::string op_name, int subtask, int node_id,
               ProcessingProfile profile)
      : OperatorInstance(engine, std::move(op_name), subtask, node_id,
                         profile) {}

  /// Tests install a collector to observe every record (real mode).
  void SetCollector(std::function<void(const Record&)> collector) {
    collector_ = std::move(collector);
  }

  uint64_t records_consumed() const { return records_consumed_; }
  uint64_t bytes_consumed() const { return bytes_consumed_; }

 protected:
  void HandleBatch(int, Batch& batch) override {
    records_consumed_ += batch.count;
    bytes_consumed_ += batch.bytes;
    if (collector_) {
      for (const auto& r : batch.records) collector_(r);
    }
  }

  void HandleAlignedControl(const ControlEvent& ev) override {
    // Sinks are stateless: they only acknowledge handovers.
    if (ev.type == ControlEvent::Type::kHandoverMarker) {
      engine_->OnHandoverInstanceDone(ev.id, this);
    }
  }

 private:
  std::function<void(const Record&)> collector_;
  uint64_t records_consumed_ = 0;
  uint64_t bytes_consumed_ = 0;
};

}  // namespace rhino::dataflow
