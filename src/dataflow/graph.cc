#include "dataflow/graph.h"

#include "common/logging.h"

namespace rhino::dataflow {

QueryDef& QueryDef::AddSource(const std::string& op_name,
                              const std::string& topic, int parallelism,
                              ProcessingProfile profile) {
  OpDef op;
  op.kind = OpDef::Kind::kSource;
  op.name = op_name;
  op.topic = topic;
  op.parallelism = parallelism;
  op.profile = profile;
  ops.push_back(std::move(op));
  return *this;
}

QueryDef& QueryDef::AddStateful(const std::string& op_name, int parallelism,
                                std::vector<std::string> inputs,
                                StatefulFactory factory,
                                ProcessingProfile profile) {
  OpDef op;
  op.kind = OpDef::Kind::kStateful;
  op.name = op_name;
  op.parallelism = parallelism;
  op.inputs = std::move(inputs);
  op.factory = std::move(factory);
  op.profile = profile;
  ops.push_back(std::move(op));
  return *this;
}

QueryDef& QueryDef::AddSink(const std::string& op_name, int parallelism,
                            std::vector<std::string> inputs,
                            ProcessingProfile profile) {
  OpDef op;
  op.kind = OpDef::Kind::kSink;
  op.name = op_name;
  op.parallelism = parallelism;
  op.inputs = std::move(inputs);
  op.profile = profile;
  ops.push_back(std::move(op));
  return *this;
}

std::unique_ptr<ExecutionGraph> ExecutionGraph::Build(
    Engine* engine, const QueryDef& def, const std::vector<int>& worker_nodes) {
  RHINO_CHECK(!worker_nodes.empty());
  auto graph = std::unique_ptr<ExecutionGraph>(new ExecutionGraph());
  graph->engine_ = engine;
  graph->worker_nodes_ = worker_nodes;

  // Pass 1: instantiate operators.
  for (const OpDef& op : def.ops) {
    RHINO_CHECK(!graph->instances_.count(op.name))
        << "duplicate operator " << op.name;
    graph->kinds_[op.name] = op.kind;
    auto& instances = graph->instances_[op.name];
    for (int subtask = 0; subtask < op.parallelism; ++subtask) {
      int node = worker_nodes[static_cast<size_t>(subtask) % worker_nodes.size()];
      switch (op.kind) {
        case OpDef::Kind::kSource: {
          broker::Topic& topic = engine->broker()->topic(op.topic);
          RHINO_CHECK_EQ(op.parallelism, topic.num_partitions())
              << "one source instance per partition (paper §5.1.5)";
          auto source = std::make_unique<SourceInstance>(
              engine, op.name, subtask, node, op.profile,
              &topic.partition(subtask));
          auto* raw = source.get();
          engine->AddInstance(std::move(source));
          engine->RegisterSource(raw);
          graph->sources_[op.name].push_back(raw);
          instances.push_back(raw);
          break;
        }
        case OpDef::Kind::kStateful: {
          engine->GetOrCreateRouting(op.name,
                                     static_cast<uint32_t>(op.parallelism));
          auto stateful = op.factory(engine, subtask, node);
          RHINO_CHECK(stateful != nullptr);
          auto* raw = stateful.get();
          engine->AddInstance(std::move(stateful));
          engine->RegisterStateful(raw);
          raw->InitOwnedVnodes(engine->routing(op.name)->VnodesOfInstance(
              static_cast<uint32_t>(subtask)));
          graph->stateful_[op.name].push_back(raw);
          instances.push_back(raw);
          break;
        }
        case OpDef::Kind::kSink: {
          auto sink = std::make_unique<SinkInstance>(engine, op.name, subtask,
                                                     node, op.profile);
          auto* raw = sink.get();
          engine->AddInstance(std::move(sink));
          engine->RegisterSink(raw);
          graph->sinks_[op.name].push_back(raw);
          instances.push_back(raw);
          break;
        }
      }
    }
  }

  // Pass 2: wire channels upstream -> downstream.
  for (const OpDef& op : def.ops) {
    for (size_t side = 0; side < op.inputs.size(); ++side) {
      const std::string& upstream_name = op.inputs[side];
      auto up_it = graph->instances_.find(upstream_name);
      RHINO_CHECK(up_it != graph->instances_.end())
          << "unknown input " << upstream_name << " of " << op.name;
      auto& downstream = graph->instances_[op.name];

      ExchangeKind kind = op.kind == OpDef::Kind::kStateful
                              ? ExchangeKind::kKeyed
                              : ExchangeKind::kPointwise;
      const hashring::VirtualNodeMap* vmap =
          kind == ExchangeKind::kKeyed ? engine->vnode_map(op.name) : nullptr;

      for (OperatorInstance* up : up_it->second) {
        auto gate = std::make_unique<OutputGate>(kind, op.name, vmap);
        for (OperatorInstance* down : downstream) {
          auto channel = std::make_unique<Channel>(engine, up, down, 0);
          Channel* raw = engine->AddChannel(std::move(channel));
          int idx = down->AddInput(raw);
          raw->set_to_channel_idx(idx);
          if (op.kind == OpDef::Kind::kStateful) {
            static_cast<StatefulInstance*>(down)->SetChannelSide(
                idx, static_cast<int>(side));
          }
          gate->AddChannel(raw);
        }
        if (kind == ExchangeKind::kKeyed) {
          gate->InitRouting(*engine->routing(op.name));
        }
        up->AddOutputGate(std::move(gate));
      }
    }
  }
  return graph;
}

void ExecutionGraph::StartSources() {
  for (auto& [_, sources] : sources_) {
    for (SourceInstance* s : sources) s->Start();
  }
}

const std::vector<SourceInstance*>& ExecutionGraph::sources(
    const std::string& op) const {
  auto it = sources_.find(op);
  RHINO_CHECK(it != sources_.end()) << "no source op " << op;
  return it->second;
}

const std::vector<StatefulInstance*>& ExecutionGraph::stateful(
    const std::string& op) const {
  auto it = stateful_.find(op);
  RHINO_CHECK(it != stateful_.end()) << "no stateful op " << op;
  return it->second;
}

const std::vector<SinkInstance*>& ExecutionGraph::sinks(
    const std::string& op) const {
  auto it = sinks_.find(op);
  RHINO_CHECK(it != sinks_.end()) << "no sink op " << op;
  return it->second;
}

std::vector<StatefulInstance*> ExecutionGraph::all_stateful() const {
  std::vector<StatefulInstance*> out;
  for (const auto& [_, instances] : stateful_) {
    out.insert(out.end(), instances.begin(), instances.end());
  }
  return out;
}

}  // namespace rhino::dataflow
