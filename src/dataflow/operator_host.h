#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dataflow/operator_core.h"
#include "dataflow/record.h"
#include "state/checkpoint.h"
#include "state/state_backend.h"

/// \file operator_host.h
/// The execution-location-agnostic operator-hosting seam.
///
/// `OperatorHost` owns everything a stateful operator needs that is *not*
/// engine- or transport-specific: the state backend, vnode ownership, the
/// per-(vnode, source) replay watermarks, batch application with replay
/// deduplication, checkpoint capture, and vnode image extract/absorb/drop
/// for handover, replication, and recovery. The in-process
/// `StatefulInstance` and the networked `NodeServer` both embed a host, so
/// every protocol above this seam — checkpoints, live handover, ring
/// replication, promote-replica recovery — is one implementation for every
/// operator kind in sim, realtime-thread, and multi-process modes.
///
/// Not thread-safe: the embedding runtime serializes calls (the engine via
/// the instance mutex / executor strand, the node server under its own
/// lock).

namespace rhino::dataflow {

/// A consistent, migratable image of a set of vnodes: the descriptor
/// (sizes + replay watermarks, the currency of Rhino's protocols) plus the
/// per-vnode state blobs. For the join this is the unit of consistency —
/// both side columns of a vnode travel inside one blob, so a migrated
/// vnode can never land with one side's entries missing.
struct OperatorImage {
  state::CheckpointDescriptor descriptor;
  std::map<uint32_t, std::string> blobs;
};

/// Outcome of folding one batch into the host's state.
struct ApplyResult {
  /// Records folded into state (post-dedup).
  uint64_t applied = 0;
  /// Records dropped because their (vnode, source) offset was already
  /// reflected in the state.
  uint64_t deduped = 0;
  /// Vnodes whose replay watermark advanced — exactly the vnodes a
  /// continuous replicator must re-ship.
  std::set<uint32_t> applied_vnodes;
  /// Vnodes fully dropped by dedup (slice-granular feeds; for tracing).
  std::set<uint32_t> dropped_vnodes;
  /// The entire batch was already reflected in the state.
  bool fully_deduped = false;
};

class OperatorHost {
 public:
  /// Per-(vnode, source) replay watermarks: the next source offset this
  /// host expects for that vnode. Batches at lower offsets were already
  /// folded into the state and are dropped — the paper's "operators are
  /// aware of an in-flight handover and ignore seen records" rule,
  /// realized at offset granularity.
  using WatermarkMap = std::map<uint32_t, std::map<int, uint64_t>>;

  /// Builds a host for `spec` over `backend`. `vnode_of` supplies key
  /// routing (engine hashring or `net::VnodeForKey`); `instance_id` is
  /// the hosting identity (subtask / node id) folded into stateful
  /// uniquifiers (join-state consistency rule). Fails with
  /// InvalidArgument on an unknown operator kind.
  static Result<std::unique_ptr<OperatorHost>> Create(
      OperatorSpec spec, std::unique_ptr<state::StateBackend> backend,
      VnodeFn vnode_of, uint32_t instance_id);

  const OperatorSpec& spec() const { return spec_; }
  uint32_t instance_id() const { return instance_id_; }
  state::StateBackend* backend() { return backend_.get(); }
  const state::StateBackend* backend() const { return backend_.get(); }

  /// Swaps in a fresh backend (restart-based recovery restores state by
  /// rebuilding the backend from a checkpoint).
  void ReplaceBackend(std::unique_ptr<state::StateBackend> backend) {
    backend_ = std::move(backend);
  }

  uint32_t VnodeOf(uint64_t key) const { return vnode_of_(key); }

  // ------------------------------------------------------- apply path ----

  /// Deduplicates `batch` against the replay watermarks (in place — seen
  /// slices/records are removed and counts adjusted), folds the remainder
  /// into the state via the operator core, appends outputs to `out`
  /// (never null), and advances the watermarks of the applied vnodes.
  /// With `strict_ownership`, a record or slice routed to a vnode this
  /// host does not own fails the whole batch with FailedPrecondition
  /// *before* any state mutation (the networked runtime's stale-routing
  /// guard); the in-process engine routes by construction and skips it.
  Result<ApplyResult> Apply(int side, Batch& batch, SimTime now, Batch* out,
                            bool strict_ownership);

  /// Kind-specific point query for `key` against the vnode it routes to.
  Result<OperatorQueryResult> Query(uint64_t key);

  // -------------------------------------------------- vnode ownership ----

  void InitOwned(const std::vector<uint32_t>& vnodes) {
    owned_ = std::set<uint32_t>(vnodes.begin(), vnodes.end());
  }
  void Own(const std::vector<uint32_t>& vnodes) {
    owned_.insert(vnodes.begin(), vnodes.end());
  }
  bool Owns(uint32_t vnode) const { return owned_.count(vnode) != 0; }
  const std::set<uint32_t>& owned() const { return owned_; }

  /// Drops state, ownership, and replay watermarks of `vnodes` (origin
  /// side after a successful handover). The watermarks go with the state:
  /// if a later handover moves these vnodes back, stale entries would
  /// dedup replayed records the restored copy has never applied.
  Status Drop(const std::vector<uint32_t>& vnodes);

  // ------------------------------------------------- replay watermarks ----

  /// Watermarks of the given vnodes (for transfer alongside state).
  WatermarkMap GetWatermarks(const std::vector<uint32_t>& vnodes) const;
  /// Merges transferred watermarks (taking the max per entry).
  void MergeWatermarks(const WatermarkMap& marks);
  /// Replaces all watermarks (restart-based recovery rolls state *and*
  /// dedup positions back to the checkpoint; merging would wrongly keep
  /// post-checkpoint positions and drop the replay).
  void ResetWatermarks(WatermarkMap marks) { watermarks_ = std::move(marks); }

  // ------------------------------------- checkpoints and vnode images ----

  /// Takes an incremental checkpoint of the backend and stamps the
  /// descriptor with the replay watermarks of the owned vnodes, so a
  /// restored copy deduplicates correctly.
  Result<state::CheckpointDescriptor> CaptureCheckpoint(uint64_t checkpoint_id);

  /// Serializes `vnodes` into a consistent image: per-vnode state blobs
  /// plus a descriptor carrying sizes and replay watermarks. Used by
  /// handover extract, replication snapshots, and checkpoint images.
  Result<OperatorImage> ExtractImage(const std::vector<uint32_t>& vnodes,
                                     uint64_t checkpoint_id);

  /// Ingests an image produced by ExtractImage on a peer host: state
  /// blobs into the backend, ownership, and replay watermarks (assigned,
  /// not merged — the image is authoritative for its vnodes). `vnodes`
  /// restricts absorption to a subset (empty = everything in the image);
  /// `already_durable` marks bytes restored from a persisted checkpoint
  /// (they must not surface in the next incremental delta). Returns the
  /// vnodes actually absorbed.
  Result<std::vector<uint32_t>> Absorb(const OperatorImage& image,
                                       const std::vector<uint32_t>& vnodes,
                                       bool already_durable);

 private:
  OperatorHost(OperatorSpec spec, std::unique_ptr<state::StateBackend> backend,
               std::unique_ptr<StatefulOperatorCore> core, VnodeFn vnode_of,
               uint32_t instance_id)
      : spec_(std::move(spec)),
        backend_(std::move(backend)),
        core_(std::move(core)),
        vnode_of_(std::move(vnode_of)),
        instance_id_(instance_id) {}

  OperatorSpec spec_;
  std::unique_ptr<state::StateBackend> backend_;
  std::unique_ptr<StatefulOperatorCore> core_;
  VnodeFn vnode_of_;
  uint32_t instance_id_ = 0;
  std::set<uint32_t> owned_;
  WatermarkMap watermarks_;
};

}  // namespace rhino::dataflow
