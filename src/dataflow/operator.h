#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/units.h"
#include "dataflow/record.h"
#include "hashring/key_groups.h"

/// \file operator.h
/// Physical operator instances, channels, and output gates.
///
/// An instance polls its inbound channels round-robin, paying modeled CPU
/// time per item. Channels are FIFO, durable, and bounded in the sense of
/// the paper §2.1: order is preserved per channel, control events ride in
/// band with records, and marker alignment (paper §4.1.1) is implemented
/// by *not polling* a channel that already delivered the active marker.
///
/// Thread safety (RealtimeExecutor): an instance's processing state is
/// guarded by a per-instance recursive mutex taken at every public entry
/// point (Deliver, the processing-completion callback, Halt/Resume,
/// alignment maintenance). Processing callbacks are pinned to the
/// instance's node strand, so intra-node callback order matches the
/// simulator; the mutex covers the cross-strand entries (coordinator
/// fan-out, transfers completing on another node's strand). Instances may
/// call up into the engine while holding their own lock — the engine never
/// calls down while holding its lock, so instance -> engine is the only
/// cross-component order. `halted_` is an atomic read lock-free by peers
/// (AlignmentComplete checks sender liveness) and the coordinator.

namespace rhino::dataflow {

class Engine;
class OperatorInstance;

/// A FIFO link between two physical instances. Sending models network
/// transfer between the endpoints' nodes (free when co-located).
class Channel {
 public:
  Channel(Engine* engine, OperatorInstance* from, OperatorInstance* to,
          int to_channel_idx)
      : engine_(engine), from_(from), to_(to), to_channel_idx_(to_channel_idx) {}

  /// Ships an item; it is delivered to the destination's input queue after
  /// the modeled transfer completes. FIFO per channel is guaranteed by the
  /// NIC queue discipline.
  void Send(ChannelItem item);

  OperatorInstance* from() const { return from_; }
  OperatorInstance* to() const { return to_; }

  /// Wiring fix-up: the destination's input index is known only after the
  /// channel is registered with it.
  void set_to_channel_idx(int idx) { to_channel_idx_ = idx; }

  /// Bytes currently in flight or queued at the receiver (diagnostics).
  uint64_t in_flight_items() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  friend class OperatorInstance;
  Engine* engine_;
  OperatorInstance* from_;
  OperatorInstance* to_;
  int to_channel_idx_;
  std::atomic<uint64_t> in_flight_{0};
};

/// How an output gate picks destination channels for data batches.
enum class ExchangeKind {
  kKeyed,      ///< by key -> key group -> virtual node -> owner instance
  kPointwise,  ///< subtask i -> downstream subtask i % n (sink-style)
};

/// One downstream edge of an instance: a set of channels to every parallel
/// instance of one downstream operator, plus this sender's *local view* of
/// the virtual-node routing table.
///
/// The view is local on purpose: a handover rewires it exactly when the
/// marker passes through the sender (paper §4.1.2 step 3, "upstream
/// instance rewires the output channels"), so records before the marker go
/// to the origin and records after it to the target — per channel, in FIFO
/// order, without global coordination.
class OutputGate {
 public:
  OutputGate(ExchangeKind kind, std::string downstream_op,
             const hashring::VirtualNodeMap* vnode_map)
      : kind_(kind), downstream_op_(std::move(downstream_op)),
        vnode_map_(vnode_map) {}

  const std::string& downstream_op() const { return downstream_op_; }

  void AddChannel(Channel* ch) { channels_.push_back(ch); }

  /// Copies the initial vnode -> instance assignment.
  void InitRouting(const hashring::RoutingTable& table) {
    owner_.resize(table.map().num_vnodes());
    for (uint32_t v = 0; v < owner_.size(); ++v) {
      owner_[v] = table.InstanceForVnode(v);
    }
  }

  /// Applies a handover: every move's vnodes now route to its target.
  void ApplyHandover(const HandoverSpec& spec) {
    for (const HandoverMove& move : spec.moves) {
      for (uint32_t v : move.vnodes) owner_[v] = move.target_instance;
    }
  }

  /// Routes a batch, splitting it per destination instance. `sender_subtask`
  /// selects the pointwise destination for non-keyed exchanges.
  void Route(Batch&& batch, int sender_subtask);

  /// Sends a control event on every channel (markers reach all instances).
  void Broadcast(const ControlEvent& ev) {
    for (Channel* ch : channels_) ch->Send(ChannelItem::Control(ev));
  }

  size_t num_channels() const { return channels_.size(); }
  uint32_t owner(uint32_t vnode) const { return owner_[vnode]; }

 private:
  ExchangeKind kind_;
  std::string downstream_op_;
  const hashring::VirtualNodeMap* vnode_map_;
  std::vector<Channel*> channels_;  // index = downstream subtask
  std::vector<uint32_t> owner_;     // vnode -> downstream subtask
};

/// Modeled processing speed of an instance.
struct ProcessingProfile {
  /// Records per second one instance can process (per-core service rate).
  double records_per_sec = 500000.0;
  /// Fixed cost per polled item (dispatch, deserialization setup).
  SimTime per_item_overhead_us = 20;
};

/// Base class for every physical operator instance.
class OperatorInstance {
 public:
  OperatorInstance(Engine* engine, std::string op_name, int subtask,
                   int node_id, ProcessingProfile profile);
  virtual ~OperatorInstance() = default;

  const std::string& op_name() const { return op_name_; }
  int subtask() const { return subtask_; }
  int node_id() const { return node_id_.load(std::memory_order_relaxed); }
  void set_node_id(int node) {
    node_id_.store(node, std::memory_order_relaxed);
  }
  Engine* engine() { return engine_; }

  /// Registers an inbound channel; returns its index.
  int AddInput(Channel* ch) {
    inputs_.push_back(ch);
    input_queues_.emplace_back();
    return static_cast<int>(inputs_.size()) - 1;
  }

  void AddOutputGate(std::unique_ptr<OutputGate> gate) {
    outputs_.push_back(std::move(gate));
  }
  OutputGate* output(size_t i) { return outputs_[i].get(); }
  size_t num_outputs() const { return outputs_.size(); }
  size_t num_inputs() const { return inputs_.size(); }

  /// Called by Channel on delivery.
  void Deliver(int channel_idx, ChannelItem item);

  /// Stops processing and drops queued input (fail-stop or restart).
  void Halt();
  bool halted() const { return halted_.load(std::memory_order_acquire); }
  /// Resumes after a restart (queues start empty).
  void Resume();

  /// Records queued across all input channels (backpressure diagnostics).
  uint64_t QueuedItems() const;

  /// Re-evaluates in-flight alignments after a peer failure: markers will
  /// never arrive on channels whose sender is dead, so those channels stop
  /// counting towards alignment. Subclasses may additionally repair
  /// protocol roles broken by the failure (they must end by calling the
  /// base implementation).
  virtual void NotifyPeerFailure();

  /// Discards any in-flight alignment for the given control event (an
  /// aborted checkpoint's barrier): a failure can wipe already-delivered
  /// markers (halted instances drop their queues), so the alignment could
  /// never complete and would block the instance forever.
  void AbortAlignment(ControlEvent::Type type, uint64_t id);

  /// Diagnostics: true while this instance holds its front alignment
  /// (target waiting for state), and the number of queued alignments.
  bool IsHoldingAlignment() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return holding_;
  }
  size_t PendingAlignments() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return alignments_.size();
  }
  /// Diagnostics: describes the front alignment and the live channels it
  /// is still waiting on.
  std::string AlignmentDebugString() const;

 protected:
  /// Data batch hook.
  virtual void HandleBatch(int channel_idx, Batch& batch) = 0;

  /// Called once a control event has been received on *all* inbound
  /// channels (or immediately, for single/zero-input instances), after the
  /// event was forwarded downstream. `ev` is the aligned event.
  virtual void HandleAlignedControl(const ControlEvent& ev) = 0;

  /// Hook consulted before broadcasting an aligned control event; lets a
  /// subclass rewire its gates first (upstream role of a handover).
  virtual void BeforeForwardControl(const ControlEvent& ev);

  /// Emits a data batch to every downstream consumer (each output
  /// gate routes its own copy).
  void Emit(Batch batch);

  /// Forwards `ev` on every output gate.
  void ForwardControl(const ControlEvent& ev);

  /// True while the instance must not consume data (target awaiting
  /// state). Channels stay blocked until ReleaseAlignment().
  void HoldAlignment() { holding_ = true; }
  /// Unblocks channels held past alignment and resumes consumption.
  void ReleaseAlignment();

  Engine* engine_;

  /// Per-instance lock; recursive because protocol roles re-enter (e.g. a
  /// handover target's ReleaseAlignment resumes processing, which may
  /// complete the next alignment synchronously).
  mutable std::recursive_mutex mu_;

 private:
  /// One in-flight aligned control event. Several may overlap (e.g.
  /// reconfigurations of different operators in a multi-query job); FIFO
  /// channels guarantee that the oldest completes first, so only the front
  /// alignment blocks channels.
  struct Alignment {
    ControlEvent ev;
    std::set<int> channels;  // channels that delivered the marker
    uint64_t span = 0;       // open trace span (0 when tracing is off)
  };

  void TryProcessNext();
  void ProcessItem(int channel_idx, ChannelItem item);
  void OnControl(int channel_idx, const ControlEvent& ev);
  /// Completes front alignments as long as they are fully received.
  void MaybeCompleteFront();
  /// True when the alignment received its marker on every channel whose
  /// sender is still alive (dead senders cannot deliver markers).
  bool AlignmentComplete(const Alignment& alignment) const;

  std::string op_name_;
  int subtask_;
  std::atomic<int> node_id_;
  ProcessingProfile profile_;

  std::vector<Channel*> inputs_;
  std::vector<std::deque<ChannelItem>> input_queues_;
  std::vector<std::unique_ptr<OutputGate>> outputs_;

  std::deque<Alignment> alignments_;
  /// Control events whose alignment this instance already completed. Late
  /// duplicate markers (e.g. in flight from a sender that died after the
  /// survivors aligned without it) would otherwise open a ghost alignment
  /// that can never complete.
  std::set<std::pair<int, uint64_t>> completed_controls_;
  bool holding_ = false;

  bool busy_ = false;
  std::atomic<bool> halted_{false};
  int poll_cursor_ = 0;
};

}  // namespace rhino::dataflow
