#include "dataflow/operator_host.h"

#include <algorithm>

namespace rhino::dataflow {

Result<std::unique_ptr<OperatorHost>> OperatorHost::Create(
    OperatorSpec spec, std::unique_ptr<state::StateBackend> backend,
    VnodeFn vnode_of, uint32_t instance_id) {
  if (backend == nullptr) {
    return Status::InvalidArgument("operator host requires a state backend");
  }
  if (!vnode_of) {
    return Status::InvalidArgument("operator host requires a vnode routing fn");
  }
  // Owner tag: instance ids start at 0 but the tag must be non-zero so the
  // join uniquifier ranges of "subtask 0" and "never migrated" differ.
  RHINO_ASSIGN_OR_RETURN(
      auto core, MakeOperatorCore(spec, static_cast<uint64_t>(instance_id) + 1));
  return std::unique_ptr<OperatorHost>(
      new OperatorHost(std::move(spec), std::move(backend), std::move(core),
                       std::move(vnode_of), instance_id));
}

Result<ApplyResult> OperatorHost::Apply(int side, Batch& batch, SimTime now,
                                        Batch* out, bool strict_ownership) {
  ApplyResult result;

  if (strict_ownership) {
    // Reject *before* mutating any state, so a misrouted batch is a clean
    // retryable error instead of a torn half-application.
    for (const Record& r : batch.records) {
      uint32_t vnode = vnode_of_(r.key);
      if (!Owns(vnode)) {
        return Status::FailedPrecondition(
            "instance " + std::to_string(instance_id_) + " does not own vnode " +
            std::to_string(vnode) + " of operator " + spec_.name +
            " (stale routing?)");
      }
    }
    for (const VnodeSlice& slice : batch.slices) {
      if (!Owns(slice.vnode)) {
        return Status::FailedPrecondition(
            "instance " + std::to_string(instance_id_) + " does not own vnode " +
            std::to_string(slice.vnode) + " of operator " + spec_.name +
            " (stale routing?)");
      }
    }
  }

  // Replay deduplication: drop the parts of the batch this host's state
  // already reflects (offset below the per-vnode watermark).
  if (batch.source_id >= 0 && !batch.slices.empty()) {
    // Slice-granular feeds (the sim/modeled path): a vnode appears in at
    // most one slice per batch, so dedup is per slice.
    std::vector<VnodeSlice> fresh;
    for (const VnodeSlice& slice : batch.slices) {
      auto vit = watermarks_.find(slice.vnode);
      uint64_t next = 0;
      if (vit != watermarks_.end()) {
        auto sit = vit->second.find(batch.source_id);
        if (sit != vit->second.end()) next = sit->second;
      }
      if (batch.source_offset < next) {
        result.dropped_vnodes.insert(slice.vnode);
        result.deduped += slice.count;
        batch.count -= std::min(batch.count, slice.count);
        batch.bytes -= std::min(batch.bytes, slice.bytes);
      } else {
        fresh.push_back(slice);
      }
    }
    if (!result.dropped_vnodes.empty()) {
      batch.slices = std::move(fresh);
      if (!batch.records.empty()) {
        std::vector<Record> keep;
        for (auto& r : batch.records) {
          if (!result.dropped_vnodes.count(vnode_of_(r.key))) {
            keep.push_back(std::move(r));
          }
        }
        batch.records = std::move(keep);
      }
      if (batch.slices.empty()) {  // whole batch already seen
        result.fully_deduped = true;
        return result;
      }
    }
  } else if (batch.source_id >= 0 && !batch.records.empty()) {
    // Record-granular feeds (the networked runtime): dedup per record.
    std::vector<Record> keep;
    keep.reserve(batch.records.size());
    for (auto& r : batch.records) {
      uint32_t vnode = vnode_of_(r.key);
      auto vit = watermarks_.find(vnode);
      uint64_t next = 0;
      if (vit != watermarks_.end()) {
        auto sit = vit->second.find(batch.source_id);
        if (sit != vit->second.end()) next = sit->second;
      }
      if (batch.source_offset < next) {
        ++result.deduped;
        batch.count -= std::min<uint64_t>(batch.count, 1);
        batch.bytes -= std::min<uint64_t>(batch.bytes, r.size);
      } else {
        keep.push_back(std::move(r));
      }
    }
    batch.records = std::move(keep);
    if (batch.records.empty()) {  // whole batch already seen
      result.fully_deduped = true;
      return result;
    }
  }

  RHINO_RETURN_NOT_OK(core_->Apply(backend_.get(), side, batch, vnode_of_,
                                   now, out));

  // Post-batch watermark advance: only after the whole surviving batch is
  // folded in do the applied vnodes expect the next offset. (For slice
  // feeds this is equivalent to advancing during the filter — a vnode
  // appears in at most one slice per batch.)
  for (const VnodeSlice& slice : batch.slices) {
    result.applied_vnodes.insert(slice.vnode);
  }
  if (batch.slices.empty()) {
    for (const Record& r : batch.records) {
      result.applied_vnodes.insert(vnode_of_(r.key));
    }
  }
  if (batch.source_id >= 0) {
    for (uint32_t vnode : result.applied_vnodes) {
      uint64_t& mark = watermarks_[vnode][batch.source_id];
      if (batch.source_offset + 1 > mark) mark = batch.source_offset + 1;
    }
  }
  result.applied =
      batch.records.empty() ? batch.count : batch.records.size();
  return result;
}

Result<OperatorQueryResult> OperatorHost::Query(uint64_t key) {
  return core_->Query(backend_.get(), vnode_of_(key), key);
}

Status OperatorHost::Drop(const std::vector<uint32_t>& vnodes) {
  RHINO_RETURN_NOT_OK(backend_->DropVnodes(vnodes));
  for (uint32_t v : vnodes) {
    owned_.erase(v);
    watermarks_.erase(v);
  }
  return Status::OK();
}

OperatorHost::WatermarkMap OperatorHost::GetWatermarks(
    const std::vector<uint32_t>& vnodes) const {
  WatermarkMap out;
  for (uint32_t v : vnodes) {
    auto it = watermarks_.find(v);
    if (it != watermarks_.end()) out[v] = it->second;
  }
  return out;
}

void OperatorHost::MergeWatermarks(const WatermarkMap& marks) {
  for (const auto& [vnode, sources] : marks) {
    for (const auto& [source, next] : sources) {
      uint64_t& mine = watermarks_[vnode][source];
      if (next > mine) mine = next;
    }
  }
}

Result<state::CheckpointDescriptor> OperatorHost::CaptureCheckpoint(
    uint64_t checkpoint_id) {
  RHINO_ASSIGN_OR_RETURN(auto desc, backend_->Checkpoint(checkpoint_id));
  std::vector<uint32_t> owned(owned_.begin(), owned_.end());
  desc.vnode_watermarks = GetWatermarks(owned);
  return desc;
}

Result<OperatorImage> OperatorHost::ExtractImage(
    const std::vector<uint32_t>& vnodes, uint64_t checkpoint_id) {
  OperatorImage image;
  image.descriptor.checkpoint_id = checkpoint_id;
  image.descriptor.operator_name = spec_.name;
  image.descriptor.instance_id = instance_id_;
  for (uint32_t v : vnodes) {
    image.descriptor.vnode_bytes[v] = backend_->VnodeBytes(v);
  }
  image.descriptor.vnode_watermarks = GetWatermarks(vnodes);
  RHINO_ASSIGN_OR_RETURN(image.blobs, backend_->ExtractVnodeBlobs(vnodes));
  return image;
}

Result<std::vector<uint32_t>> OperatorHost::Absorb(
    const OperatorImage& image, const std::vector<uint32_t>& vnodes,
    bool already_durable) {
  std::vector<uint32_t> wanted = vnodes;
  if (wanted.empty()) {
    for (const auto& [v, _] : image.blobs) wanted.push_back(v);
    for (const auto& [v, _] : image.descriptor.vnode_bytes) {
      if (!image.blobs.count(v)) wanted.push_back(v);
    }
  }
  std::vector<uint32_t> absorbed;
  for (uint32_t v : wanted) {
    auto blob = image.blobs.find(v);
    if (blob != image.blobs.end() && !blob->second.empty()) {
      RHINO_RETURN_NOT_OK(
          backend_->IngestVnodes(blob->second, already_durable));
    }
    owned_.insert(v);
    // Assign, not merge: the image is authoritative for its vnodes. A
    // stale local entry (this host owned the vnode before a migration
    // away and back) must not dedup records the image never applied.
    auto marks = image.descriptor.vnode_watermarks.find(v);
    if (marks != image.descriptor.vnode_watermarks.end()) {
      watermarks_[v] = marks->second;
    } else {
      watermarks_.erase(v);
    }
    absorbed.push_back(v);
  }
  return absorbed;
}

}  // namespace rhino::dataflow
