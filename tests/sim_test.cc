#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.h"
#include "sim/resource.h"
#include "runtime/sim_executor.h"
#include "sim/simulation.h"

namespace rhino::sim {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulationTest, TiesBreakInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(5, [&] { order.push_back(1); });
  sim.Schedule(5, [&] { order.push_back(2); });
  sim.Schedule(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Schedule(1, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 2);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulationTest, PastDeadlinesClampToNow) {
  Simulation sim;
  sim.Schedule(10, [] {});
  sim.Run();
  int fired = 0;
  sim.ScheduleAt(5, [&] { ++fired; });  // in the past
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(QueueResourceTest, SerializesRequests) {
  runtime::SimExecutor sim;
  QueueResource q(&sim, "disk", 1e6);  // 1 MB/s
  SimTime end1 = q.Submit(500000);     // 0.5 s
  SimTime end2 = q.Submit(500000);     // queued behind the first
  EXPECT_EQ(end1, kSecond / 2);
  EXPECT_EQ(end2, kSecond);
  EXPECT_EQ(q.busy_us(), kSecond);
  EXPECT_EQ(q.bytes_served(), 1000000u);
}

TEST(QueueResourceTest, CallbackFiresAtCompletion) {
  runtime::SimExecutor sim;
  QueueResource q(&sim, "disk", 1e6);
  SimTime completed = -1;
  q.Submit(1000000, [&] { completed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(completed, kSecond);
}

TEST(QueueResourceTest, IdleGapsDoNotAccumulateBusyTime) {
  runtime::SimExecutor sim;
  QueueResource q(&sim, "disk", 1e6);
  q.Submit(100000);  // 0.1 s busy
  sim.Schedule(kSecond, [] {});
  sim.Run();  // 0.9 s idle
  q.Submit(100000);
  EXPECT_EQ(q.busy_us(), 200 * kMillisecond);
}

TEST(NetworkTransferTest, OccupiesBothEndpoints) {
  runtime::SimExecutor sim;
  QueueResource tx(&sim, "tx", 1e9);
  QueueResource rx(&sim, "rx", 1e9);
  SimTime done = -1;
  NetworkTransfer(&sim, &tx, &rx, 1000000000ull, /*latency=*/100,
                  [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, kSecond + 100);
  EXPECT_EQ(tx.busy_us(), kSecond);
  EXPECT_EQ(rx.busy_us(), kSecond);
}

TEST(NetworkTransferTest, BottleneckIsSlowerSide) {
  runtime::SimExecutor sim;
  QueueResource tx(&sim, "tx", 2e9);
  QueueResource rx(&sim, "rx", 1e9);  // slower receiver
  SimTime end = NetworkTransfer(&sim, &tx, &rx, 1000000000ull, 0);
  EXPECT_EQ(end, kSecond);
}

TEST(NetworkTransferTest, ConcurrentTransfersToDistinctReceiversQueueOnTx) {
  runtime::SimExecutor sim;
  QueueResource tx(&sim, "tx", 1e9);
  QueueResource rx1(&sim, "rx1", 1e9);
  QueueResource rx2(&sim, "rx2", 1e9);
  SimTime end1 = NetworkTransfer(&sim, &tx, &rx1, 500000000ull, 0);
  SimTime end2 = NetworkTransfer(&sim, &tx, &rx2, 500000000ull, 0);
  EXPECT_EQ(end1, kSecond / 2);
  EXPECT_EQ(end2, kSecond);  // serialized on the sender NIC
}

TEST(ClusterTest, NodesHaveSpecResources) {
  runtime::SimExecutor sim;
  NodeSpec spec;
  spec.num_disks = 2;
  Cluster cluster(&sim, 4, spec);
  EXPECT_EQ(cluster.num_nodes(), 4);
  EXPECT_EQ(cluster.node(0).num_disks(), 2);
  EXPECT_TRUE(cluster.node(3).alive());
}

TEST(ClusterTest, LocalTransferIsFree) {
  runtime::SimExecutor sim;
  Cluster cluster(&sim, 2);
  SimTime end = cluster.Transfer(0, 0, kGiB);
  EXPECT_EQ(end, 0);
  EXPECT_EQ(cluster.node(0).tx().busy_us(), 0);
}

TEST(ClusterTest, RemoteTransferUsesNics) {
  runtime::SimExecutor sim;
  NodeSpec spec;
  spec.net_bytes_per_sec = 1e9;
  spec.net_latency = 0;
  Cluster cluster(&sim, 2, spec);
  SimTime end = cluster.Transfer(0, 1, 1000000000ull);
  EXPECT_EQ(end, kSecond);
  EXPECT_GT(cluster.node(0).tx().busy_us(), 0);
  EXPECT_GT(cluster.node(1).rx().busy_us(), 0);
}

TEST(ClusterTest, FailNodeFlipsLiveness) {
  runtime::SimExecutor sim;
  Cluster cluster(&sim, 3);
  cluster.FailNode(1);
  EXPECT_FALSE(cluster.node(1).alive());
  EXPECT_TRUE(cluster.node(0).alive());
}

TEST(ClusterTest, MemoryAccountingEnforcesBudget) {
  runtime::SimExecutor sim;
  NodeSpec spec;
  spec.memory_bytes = 1000;
  Cluster cluster(&sim, 1, spec);
  Node& n = cluster.node(0);
  EXPECT_TRUE(n.AllocateMemory(600));
  EXPECT_FALSE(n.AllocateMemory(600));  // would exceed the 1000-byte budget
  n.FreeMemory(600);
  EXPECT_TRUE(n.AllocateMemory(600));
}

TEST(ClusterTest, DiskReadWriteHaveIndependentQueues) {
  runtime::SimExecutor sim;
  NodeSpec spec;
  spec.disk_read_bytes_per_sec = 2e9;
  spec.disk_write_bytes_per_sec = 1e9;
  Cluster cluster(&sim, 1, spec);
  Disk& d = cluster.node(0).disk(0);
  SimTime r = d.Read(2000000000ull);
  SimTime w = d.Write(1000000000ull);
  EXPECT_EQ(r, kSecond);
  EXPECT_EQ(w, kSecond);  // not queued behind the read
}

}  // namespace
}  // namespace rhino::sim
