#include "lsm/fault_env.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "lsm/env.h"
#include "lsm/write_batch.h"

/// \file fault_env_test.cc
/// The fault-wrapping Env decorator: crash budgets, seeded probabilistic
/// faults, torn appends — including the WAL torn-tail recovery scenario
/// on a real filesystem (PosixEnv), where a crash injected mid
/// group-commit leaves half a commit record on disk and reopen must
/// recover every acknowledged write and drop the torn tail.

namespace rhino::lsm {
namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

Options SmallOptions() {
  Options opts;
  opts.memtable_bytes = 16 * 1024;
  opts.level_base_bytes = 64 * 1024;
  opts.target_file_bytes = 16 * 1024;
  return opts;
}

std::string PosixScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "rhino_fault_env_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(FaultEnvTest, BudgetFailsAfterNWrites) {
  MemEnv base;
  FaultEnv env(&base);
  env.SetWriteBudget(2);
  EXPECT_TRUE(env.WriteFile("/a", "x").ok());
  EXPECT_TRUE(env.WriteFile("/b", "x").ok());
  // Budget exhausted: the machine is down until healed.
  EXPECT_TRUE(env.WriteFile("/c", "x").IsIOError());
  EXPECT_TRUE(env.AppendFile("/a", "x").IsIOError());
  EXPECT_TRUE(env.RenameFile("/a", "/d").IsIOError());
  EXPECT_GE(env.injected_faults(), 3u);
  env.Heal();
  EXPECT_TRUE(env.WriteFile("/c", "x").ok());
  // Reads were never faulted; the base content is intact.
  std::string out;
  EXPECT_TRUE(env.ReadFile("/a", &out).ok());
  EXPECT_EQ(out, "x");
}

TEST(FaultEnvTest, TornAppendLeavesHalfTheBytes) {
  MemEnv base;
  FaultEnv env(&base);
  auto file = env.NewWritableFile("/wal", /*append=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Flush().ok());
  env.SetWriteBudget(0);
  EXPECT_TRUE((*file)->Append("abcdefgh").IsIOError());
  env.Heal();
  // The torn half reached the base file before the failure surfaced.
  std::string out;
  ASSERT_TRUE(base.ReadFile("/wal", &out).ok());
  EXPECT_EQ(out, "0123456789abcd");
}

TEST(FaultEnvTest, CleanFailureModeLeavesNothing) {
  MemEnv base;
  FaultEnv env(&base);
  env.SetTornAppends(false);
  auto file = env.NewWritableFile("/wal", /*append=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Flush().ok());
  env.SetWriteBudget(0);
  EXPECT_TRUE((*file)->Append("abcdefgh").IsIOError());
  env.Heal();
  std::string out;
  ASSERT_TRUE(base.ReadFile("/wal", &out).ok());
  EXPECT_EQ(out, "0123456789");
}

TEST(FaultEnvTest, ProbabilisticFaultsAreSeedReproducible) {
  auto sequence = [](uint64_t seed) {
    MemEnv base;
    FaultEnv env(&base, seed);
    env.SetWriteFailProbability(0.3);
    env.SetTornAppends(false);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(env.WriteFile("/f" + std::to_string(i), "x").ok());
    }
    return outcomes;
  };
  EXPECT_EQ(sequence(7), sequence(7));
  EXPECT_NE(sequence(7), sequence(8));
  // The fault rate is in the right ballpark, not 0 and not 1.
  auto outcomes = sequence(7);
  int failures = 0;
  for (bool ok : outcomes) failures += ok ? 0 : 1;
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 64);
}

TEST(FaultEnvTest, ReadFaultsAreIndependentOfWrites) {
  MemEnv base;
  ASSERT_TRUE(base.WriteFile("/a", "payload").ok());
  FaultEnv env(&base, 11);
  env.SetReadFailProbability(1.0);
  std::string out;
  EXPECT_TRUE(env.ReadFile("/a", &out).IsIOError());
  EXPECT_TRUE(env.ReadFileRange("/a", 0, 3, &out).IsIOError());
  EXPECT_FALSE(env.NewRandomAccessFile("/a").ok());
  // Writes still pass.
  EXPECT_TRUE(env.WriteFile("/b", "x").ok());
  env.Heal();
  EXPECT_TRUE(env.ReadFile("/a", &out).ok());
}

TEST(FaultEnvTest, InjectedLatencyDelaysOperations) {
  MemEnv base;
  FaultEnv env(&base);
  env.SetLatencyUs(2000);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(env.WriteFile("/f", "x").ok());
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            10000);
}

/// The crash sweep of lsm_test, re-based on the reusable decorator and a
/// real filesystem: for several budgets the Nth write-class operation
/// fails (tearing a record), the DB is abandoned, and a reopen on the
/// healed PosixEnv must surface every acknowledged mutation.
TEST(FaultEnvTest, PosixCrashSweepRecoversAckedWrites) {
  for (int n : {3, 10, 25, 60, 120}) {
    std::string dir = PosixScratchDir("sweep_" + std::to_string(n));
    PosixEnv base;
    FaultEnv env(&base);
    Options opts = SmallOptions();
    std::vector<int> acked;
    {
      env.SetWriteBudget(n);
      auto db = DB::Open(&env, dir, opts);
      if (!db.ok()) continue;  // crashed inside Open: nothing acked
      for (int i = 0; i < 80; ++i) {
        if (!(*db)
                 ->Put(Key(i),
                       std::string(100, static_cast<char>('a' + i % 26)))
                 .ok()) {
          break;  // crash point: abandon the DB without a clean close
        }
        acked.push_back(i);
      }
    }
    env.Heal();
    auto db = DB::Open(&env, dir, opts);
    ASSERT_TRUE(db.ok()) << "budget=" << n << ": " << db.status().ToString();
    std::string v;
    for (int i : acked) {
      ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << "budget=" << n << " i=" << i;
      EXPECT_EQ(v, std::string(100, static_cast<char>('a' + i % 26)));
    }
    std::filesystem::remove_all(dir);
  }
}

/// WAL torn tail on the real filesystem: a group commit (WriteBatch) is
/// torn mid-append — half of the commit record reaches the log file
/// before the crash. Reopen must recover every previously acknowledged
/// write, detect the torn tail via the WAL framing, and must NOT surface
/// any key of the unacknowledged batch.
TEST(FaultEnvTest, WalTornTailMidGroupCommitRecoversOnPosix) {
  std::string dir = PosixScratchDir("torn_tail");
  Options opts = SmallOptions();
  opts.memtable_bytes = 1 << 20;  // keep everything in the WAL: no flush
  std::vector<int> acked;
  {
    PosixEnv base;
    FaultEnv env(&base);
    auto db = DB::Open(&env, dir, opts);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*db)->Put(Key(i), "acked-" + std::to_string(i)).ok());
      acked.push_back(i);
    }
    // The machine dies during the next WAL append: the group commit's
    // record is half-written and flushed, then the error surfaces.
    env.SetWriteBudget(0);
    WriteBatch batch;
    for (int i = 100; i < 140; ++i) {
      batch.Put(Key(i), "unacked-" + std::to_string(i));
    }
    EXPECT_FALSE((*db)->Write(batch).ok());
    EXPECT_GT(env.injected_faults(), 0u);
    // Abandon without a clean close, exactly like a crash.
  }
  PosixEnv healed;
  auto db = DB::Open(&healed, dir, SmallOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string v;
  for (int i : acked) {
    ASSERT_TRUE((*db)->Get(Key(i), &v).ok()) << "i=" << i;
    EXPECT_EQ(v, "acked-" + std::to_string(i));
  }
  // The torn batch was never acknowledged; none of it may reappear.
  for (int i = 100; i < 140; ++i) {
    EXPECT_TRUE((*db)->Get(Key(i), &v).IsNotFound()) << "i=" << i;
  }
  EXPECT_EQ((*db)->wal_entries_recovered(), acked.size());
  std::filesystem::remove_all(dir);
}

/// FaultEnv is shared across threads (as realtime nodes share an Env):
/// concurrent write-class operations against one budget must be safe and
/// the budget must be consumed exactly once per operation.
TEST(FaultEnvTest, ConcurrentBudgetConsumptionIsSafe) {
  MemEnv base;
  FaultEnv env(&base);
  env.SetTornAppends(false);
  env.SetWriteBudget(64);
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&env, &ok_count, t] {
      for (int i = 0; i < 32; ++i) {
        std::string path = "/t" + std::to_string(t) + "_" + std::to_string(i);
        if (env.WriteFile(path, "x").ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exactly the budgeted number of operations succeeded.
  EXPECT_EQ(ok_count.load(), 64);
}

}  // namespace
}  // namespace rhino::lsm
