#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "lsm/env.h"
#include "net/driver.h"
#include "net/node_server.h"
#include "net/transport.h"
#include "net/wire.h"

/// \file dist_cluster_test.cc
/// The distributed protocol on an in-process cluster: three `NodeServer`s
/// behind a `LoopbackTransport` (same request bytes as TCP, zero sockets),
/// a shared `MemEnv` standing in for node disks + the shared checkpoint
/// directory, and the real `ClusterDriver` sequencing everything.
///
/// This is where protocol *semantics* are pinned down — exactly-once
/// through replay, live handover moving state and dedup watermarks,
/// replica promotion after a fail-stop, and the durable-image fallback
/// when the replica holder died too. The multi-process test
/// (`multiprocess_e2e_test.cc`) re-runs the same story over real sockets
/// and SIGKILL.

namespace rhino::net {
namespace {

constexpr uint32_t kNumVnodes = 16;
constexpr uint64_t kNumKeys = 40;
const char* const kOp = "counter";

/// Three nodes + driver wired over loopback.
struct Cluster {
  lsm::MemEnv env;  // shared: node dirs are disjoint, ckpt dir is common
  LoopbackTransport transport;
  std::vector<std::unique_ptr<NodeServer>> nodes;
  std::unique_ptr<ClusterDriver> driver;
  broker::Partition partition{0};

  explicit Cluster(uint32_t n = 3) {
    std::vector<std::string> endpoints;
    for (uint32_t i = 0; i < n; ++i) {
      std::string endpoint = "node" + std::to_string(i);
      nodes.push_back(std::make_unique<NodeServer>(
          &env, &transport,
          NodeServerOptions{"/data/n" + std::to_string(i), "/ckpt"}));
      transport.Register(endpoint, nodes.back()->AsHandler());
      endpoints.push_back(endpoint);
    }
    driver = std::make_unique<ClusterDriver>(&transport, endpoints);
  }

  ~Cluster() {
    // Stop every replicator before ANY node dies: over loopback a
    // replicator calls straight into its successor's handler, so nodes
    // must not be destroyed while a peer's stream is still running.
    for (auto& node : nodes) node->StopReplication();
  }

  /// Polls until `node`'s replication stream is idle (everything shipped
  /// and acked). Returns false on timeout.
  bool WaitReplIdle(uint32_t node, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; waited += 5) {
      auto stats = driver->NodeStats(node);
      if (stats.ok() && stats->repl_dirty == 0 && stats->repl_inflight == 0) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void Bootstrap() {
    ASSERT_TRUE(driver->ConnectAll().ok());
    ASSERT_TRUE(driver->AddOperator(kOp, kNumVnodes).ok());
    driver->AddPartition(&partition);
    ASSERT_TRUE(driver->ConnectPartition(kOp, 0).ok());
  }

  /// Appends one wave: every key once, as one batch at the next offset.
  void AppendWave() {
    dataflow::Batch batch;
    for (uint64_t key = 0; key < kNumKeys; ++key) {
      dataflow::Record rec;
      rec.key = key;
      rec.event_time = 1000;
      rec.size = 32;
      batch.records.push_back(rec);
      batch.count += 1;
      batch.bytes += rec.size;
    }
    partition.Append(std::move(batch));
  }

  /// Asserts every key counts exactly `waves` (exactly-once invariant).
  void ExpectAllCounts(uint64_t waves) {
    for (uint64_t key = 0; key < kNumKeys; ++key) {
      auto count = driver->QueryCount(kOp, key);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      EXPECT_EQ(*count, waves) << "key " << key;
    }
  }
};

TEST(DistClusterTest, PumpAppliesAndCheckpointReplicates) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  cluster.AppendWave();

  auto pumped = cluster.driver->Pump();
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  EXPECT_EQ(pumped->records_sent, 2 * kNumKeys);
  EXPECT_EQ(pumped->applied, 2 * kNumKeys);
  EXPECT_EQ(pumped->deduped, 0u);
  cluster.ExpectAllCounts(2);

  // Re-pumping with no new data is a no-op.
  auto again = cluster.driver->Pump();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records_sent, 0u);

  auto ckpt = cluster.driver->Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->checkpoint_id, 1u);
  EXPECT_EQ(ckpt->nodes, 3u);
  // Ring replication: every node shipped its image to its successor.
  EXPECT_EQ(ckpt->replicated_nodes, 3u);
  EXPECT_GT(ckpt->bytes, 0u);
  for (uint32_t node = 0; node < 3; ++node) {
    auto stats = cluster.driver->NodeStats(node);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->replicas_held, 1u) << "node " << node;
  }
}

TEST(DistClusterTest, DedupMakesBatchReplayIdempotent) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());

  // Replay the same offsets by hand: every record is below the watermark.
  ProcessBatchRequest request;
  request.op = kOp;
  const broker::LogEntry* entry = cluster.partition.Fetch(0);
  ASSERT_NE(entry, nullptr);
  request.batch = entry->batch;
  request.batch.source_id = 0;
  request.batch.source_offset = entry->offset;
  uint64_t total_deduped = 0;
  for (uint32_t node = 0; node < 3; ++node) {
    // Keep only this node's records so ownership checks pass.
    ProcessBatchRequest routed = request;
    routed.batch.records.clear();
    for (const auto& rec : request.batch.records) {
      auto owner = cluster.driver->RouteKey(kOp, rec.key);
      ASSERT_TRUE(owner.ok());
      if (*owner == node) routed.batch.records.push_back(rec);
    }
    if (routed.batch.records.empty()) continue;
    std::string body, reply_body;
    routed.EncodeTo(&body);
    ASSERT_TRUE(cluster.transport
                    .Call("node" + std::to_string(node),
                          MessageType::kProcessBatch, body, &reply_body)
                    .ok());
    auto reply = ProcessBatchReply::Decode(reply_body);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->applied, 0u);
    total_deduped += reply->deduped;
  }
  EXPECT_EQ(total_deduped, kNumKeys);
  cluster.ExpectAllCounts(1);
}

TEST(DistClusterTest, StaleRoutingIsRejectedNotApplied) {
  Cluster cluster;
  cluster.Bootstrap();

  // Find a key owned by node 0 and send it to node 1: the ownership check
  // must reject the whole batch (strict routing, no partial application).
  uint64_t misrouted_key = 0;
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    auto owner = cluster.driver->RouteKey(kOp, key);
    ASSERT_TRUE(owner.ok());
    if (*owner == 0) {
      misrouted_key = key;
      break;
    }
  }
  ProcessBatchRequest request;
  request.op = kOp;
  dataflow::Record rec;
  rec.key = misrouted_key;
  request.batch.records.push_back(rec);
  request.batch.source_id = 0;
  request.batch.source_offset = 0;
  std::string body, reply_body;
  request.EncodeTo(&body);
  Status st = cluster.transport.Call("node1", MessageType::kProcessBatch, body,
                                     &reply_body);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
  EXPECT_NE(st.message().find("does not own vnode"), std::string::npos);
}

TEST(DistClusterTest, LiveHandoverMovesStateAndWatermarks) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());

  std::vector<uint32_t> moved = cluster.driver->VnodesOwnedBy(kOp, 0);
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(cluster.driver->TriggerHandover(kOp, 0, 1, moved).ok());
  EXPECT_TRUE(cluster.driver->VnodesOwnedBy(kOp, 0).empty());

  // Counts survived the move (state traveled)...
  cluster.ExpectAllCounts(2);
  // ...and the next wave is NOT deduplicated on the target (watermarks
  // traveled too, so replay bookkeeping stays exact).
  cluster.AppendWave();
  auto pumped = cluster.driver->Pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(pumped->applied, kNumKeys);
  EXPECT_EQ(pumped->deduped, 0u);
  cluster.ExpectAllCounts(3);

  auto stats0 = cluster.driver->NodeStats(0);
  ASSERT_TRUE(stats0.ok());
  EXPECT_EQ(stats0->owned_vnodes, 0u);
}

TEST(DistClusterTest, FailStopRecoveryPromotesReplicaExactlyOnce) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());

  // Wave 3 lands AFTER the checkpoint: the failed node's share of it
  // exists only in its live state and must come back via replay.
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());

  cluster.transport.Kill("node2");
  EXPECT_EQ(cluster.driver->ProbeFailures(), (std::vector<uint32_t>{2}));
  std::vector<uint32_t> lost = cluster.driver->VnodesOwnedBy(kOp, 2);
  ASSERT_FALSE(lost.empty());

  ASSERT_TRUE(cluster.driver->RecoverNode(2).ok());
  EXPECT_FALSE(cluster.driver->IsAlive(2));
  EXPECT_TRUE(cluster.driver->VnodesOwnedBy(kOp, 2).empty());
  if (!NetPipelineEnabled()) {
    // Blocking mode: the promoted replica is frozen at the checkpoint, so
    // the cursor rewound and wave 3 must replay. (In continuous mode the
    // replica may already be CURRENT — the stream ships between
    // checkpoints — so there may be nothing to rewind; exactness below is
    // the invariant that holds in both modes.)
    EXPECT_LT(cluster.driver->cursor(0), cluster.partition.end_offset());
  }

  auto replayed = cluster.driver->Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  if (!NetPipelineEnabled()) {
    // Surviving vnodes already hold wave 3: their replayed records dedup.
    // The recovered vnodes (rolled back to the checkpoint) apply them.
    EXPECT_GT(replayed->deduped, 0u);
    EXPECT_GT(replayed->applied, 0u);
  }
  cluster.ExpectAllCounts(3);

  // Steady state continues on the survivors.
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  cluster.ExpectAllCounts(4);
}

TEST(DistClusterTest, RecoveryFallsBackToDurableImageWhenReplicaDiedToo) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());
  cluster.AppendWave();  // post-checkpoint tail, must replay
  ASSERT_TRUE(cluster.driver->Pump().ok());

  // Nodes 1 and 2 fail together (a correlated failure, declared as one).
  // Node 2's replica lives on node 0 (ring 0 -> 1 -> 2 -> 0): promote.
  // Node 1's replica lived on node 2, which died too — so node 1 must
  // fall back to its durable image in the shared /ckpt dir.
  cluster.transport.Kill("node1");
  cluster.transport.Kill("node2");

  ASSERT_TRUE(cluster.driver->RecoverNodes({1, 2}).ok());
  EXPECT_EQ(cluster.driver->VnodesOwnedBy(kOp, 0).size(), kNumVnodes);

  auto replayed = cluster.driver->Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  cluster.ExpectAllCounts(3);

  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  cluster.ExpectAllCounts(4);

  auto stats0 = cluster.driver->NodeStats(0);
  ASSERT_TRUE(stats0.ok());
  EXPECT_EQ(stats0->owned_vnodes, kNumVnodes);
  EXPECT_GT(stats0->state_bytes, 0u);
}

TEST(DistClusterTest, ContinuousReplicationRecoversWithoutAnyCheckpoint) {
  if (!NetPipelineEnabled()) {
    GTEST_SKIP() << "continuous replication is off (RHINO_NET_PIPELINE=0)";
  }
  // The stream makes replicas current WITHOUT any checkpoint barrier:
  // pump, wait for the stream to drain, kill a node — its successor's
  // replica alone must carry recovery (no durable image exists).
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.WaitReplIdle(2));

  auto stats = cluster.driver->NodeStats(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->replicas_held, 1u);  // node 2's stream lands on node 0
  EXPECT_GT(stats->repl_shipped, 0u);

  cluster.transport.Kill("node2");
  ASSERT_TRUE(cluster.driver->RecoverNode(2).ok());
  auto replayed = cluster.driver->Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  cluster.ExpectAllCounts(2);

  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  cluster.ExpectAllCounts(3);
}

TEST(DistClusterTest, CheckpointFailsCleanlyWhenANodeIsDownUndeclared) {
  Cluster cluster;
  cluster.Bootstrap();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());

  // A node died but nobody told the driver yet: the barrier must surface
  // an error (no silent partial checkpoint) — node 0's chain hop to its
  // dead successor fails, and the failure propagates.
  cluster.transport.Kill("node1");
  auto broken = cluster.driver->Checkpoint();
  EXPECT_FALSE(broken.ok());

  // RecoverNode re-forms the ring around the hole (0 <-> 2), so the next
  // barrier both succeeds and replicates on the survivors.
  ASSERT_TRUE(cluster.driver->RecoverNode(1).ok());
  ASSERT_TRUE(cluster.driver->Pump().ok());
  auto ckpt = cluster.driver->Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->nodes, 2u);
  EXPECT_EQ(ckpt->replicated_nodes, 2u);
  cluster.ExpectAllCounts(1);
}

/// Appends one wave of tagged records to `part` (payload "<tag><key>").
void AppendTagged(broker::Partition* part, const std::string& tag) {
  dataflow::Batch batch;
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    dataflow::Record rec;
    rec.key = key;
    rec.event_time = 1000;
    rec.size = 32;
    rec.payload = tag + std::to_string(key);
    batch.records.push_back(rec);
    batch.count += 1;
    batch.bytes += rec.size;
  }
  part->Append(std::move(batch));
}

TEST(DistClusterTest, SymmetricHashJoinHandoverAndKillExactlyOnce) {
  // The full Rhino story for a two-input operator: a symmetric hash join
  // sharded across 3 nodes, checkpointed, live-migrated mid-stream, then
  // one node killed and recovered — with an exactly-once audit of the
  // JOIN OUTPUTS (no result lost, none duplicated), not just the state.
  Cluster cluster;
  broker::Partition left{0};
  broker::Partition right{1};
  ASSERT_TRUE(cluster.driver->ConnectAll().ok());
  dataflow::OperatorSpec spec;
  spec.kind = dataflow::OperatorKind::kSymmetricHashJoin;
  spec.name = "join";
  spec.num_vnodes = kNumVnodes;
  spec.input_arity = 2;
  ASSERT_TRUE(cluster.driver->AddOperator(spec).ok());
  cluster.driver->AddPartition(&left);
  cluster.driver->AddPartition(&right);
  ASSERT_TRUE(cluster.driver->ConnectPartition("join", 0, /*side=*/0).ok());
  ASSERT_TRUE(cluster.driver->ConnectPartition("join", 1, /*side=*/1).ok());
  ASSERT_TRUE(cluster.driver->CollectOutputs("join").ok());

  // Wave 1 on both sides: the right wave probes the stored left wave, so
  // every key joins exactly once.
  AppendTagged(&left, "L1-");
  AppendTagged(&right, "R1-");
  auto pumped = cluster.driver->Pump();
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  EXPECT_EQ(cluster.driver->OutputRecords("join").size(), kNumKeys);
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());

  // Live handover mid-stream: node 0's share of the join state (BOTH side
  // columns, one consistent image per vnode) moves to node 1.
  std::vector<uint32_t> moved = cluster.driver->VnodesOwnedBy("join", 0);
  ASSERT_FALSE(moved.empty());
  ASSERT_TRUE(cluster.driver->TriggerHandover("join", 0, 1, moved).ok());

  // Wave 2 on the left lands after checkpoint AND handover: each record
  // probes the (possibly migrated) right column.
  AppendTagged(&left, "L2-");
  ASSERT_TRUE(cluster.driver->Pump().ok());

  // SIGKILL-equivalent: node 2 vanishes; recovery promotes its replica
  // (or falls back to the durable image) and replays the tail.
  cluster.transport.Kill("node2");
  EXPECT_EQ(cluster.driver->ProbeFailures(), (std::vector<uint32_t>{2}));
  ASSERT_TRUE(cluster.driver->RecoverNode(2).ok());
  auto replayed = cluster.driver->Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

  // Exactly-once audit over the actual join RESULTS: every expected
  // match present exactly once — records.lost == 0, no duplicates.
  auto outputs = cluster.driver->OutputRecords("join");
  EXPECT_EQ(outputs.size(), 2 * kNumKeys);
  std::map<std::string, int> seen;
  for (const auto& rec : outputs) seen[rec.payload] += 1;
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    const std::string k = std::to_string(key);
    EXPECT_EQ(seen["L1-" + k + "|R1-" + k], 1) << "key " << key;
    EXPECT_EQ(seen["L2-" + k + "|R1-" + k], 1) << "key " << key;
  }
  // Per-side state survived migration + recovery exactly once too.
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    auto state = cluster.driver->QueryState("join", key);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    EXPECT_EQ(state->left, 2u) << "key " << key;
    EXPECT_EQ(state->right, 1u) << "key " << key;
  }

  // Steady state on the survivors: a right wave joins both left waves.
  AppendTagged(&right, "R2-");
  ASSERT_TRUE(cluster.driver->Pump().ok());
  EXPECT_EQ(cluster.driver->OutputRecords("join").size(), 4 * kNumKeys);
}

TEST(DistClusterTest, OperatorEdgeFeedsDownstreamExactlyOnceThroughRecovery) {
  // counter -> counter through the driver-resident edge log: stage2's
  // input is stage1's OUTPUT stream, with its own source id, cursor, and
  // replay watermarks. Recovery of a node rewinds both the partition
  // input of stage1 and the edge input of stage2; the edge log replays
  // retained outputs, and dedup keeps both stages exact.
  Cluster cluster;
  ASSERT_TRUE(cluster.driver->ConnectAll().ok());
  ASSERT_TRUE(cluster.driver->AddOperator("stage1", kNumVnodes).ok());
  ASSERT_TRUE(cluster.driver->AddOperator("stage2", kNumVnodes).ok());
  cluster.driver->AddPartition(&cluster.partition);
  ASSERT_TRUE(cluster.driver->ConnectPartition("stage1", 0).ok());
  ASSERT_TRUE(cluster.driver->ConnectOperators("stage1", "stage2").ok());

  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());
  cluster.AppendWave();  // post-checkpoint tail, must replay through BOTH
  ASSERT_TRUE(cluster.driver->Pump().ok());

  // stage1 emits one output record per applied input record, so stage2's
  // per-key count equals stage1's wave count.
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    auto s1 = cluster.driver->QueryCount("stage1", key);
    auto s2 = cluster.driver->QueryCount("stage2", key);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(*s1, 3u);
    EXPECT_EQ(*s2, 3u);
  }

  cluster.transport.Kill("node1");
  ASSERT_TRUE(cluster.driver->RecoverNode(1).ok());
  auto replayed = cluster.driver->Pump();
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    auto s1 = cluster.driver->QueryCount("stage1", key);
    auto s2 = cluster.driver->QueryCount("stage2", key);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(*s1, 4u) << "key " << key;
    EXPECT_EQ(*s2, 4u) << "key " << key;
  }
}

TEST(DistClusterTest, ModeledOperatorRunsDistributedWithRecovery) {
  // The modeled state pattern runs under rhino_node unmodified: byte
  // accounting per vnode instead of materialized values, same checkpoint
  // / replication / recovery protocols above the backend seam.
  Cluster cluster;
  ASSERT_TRUE(cluster.driver->ConnectAll().ok());
  dataflow::OperatorSpec spec;
  spec.kind = dataflow::OperatorKind::kModeledState;
  spec.name = "modeled";
  spec.num_vnodes = kNumVnodes;
  spec.model.pattern = dataflow::StateModelConfig::Pattern::kAppend;
  spec.model.state_bytes_per_input_byte = 1.0;
  ASSERT_TRUE(cluster.driver->AddOperator(spec).ok());
  cluster.driver->AddPartition(&cluster.partition);
  ASSERT_TRUE(cluster.driver->ConnectPartition("modeled", 0).ok());

  cluster.AppendWave();
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());
  ASSERT_TRUE(cluster.driver->Checkpoint().ok());
  cluster.AppendWave();
  ASSERT_TRUE(cluster.driver->Pump().ok());

  cluster.transport.Kill("node2");
  ASSERT_TRUE(cluster.driver->RecoverNode(2).ok());
  ASSERT_TRUE(cluster.driver->Pump().ok());

  // Exactness audit at byte granularity: each vnode holds exactly
  // (records routed to it) * 32 bytes * waves — replay must not double-
  // account the recovered vnodes.
  std::map<uint32_t, uint64_t> keys_per_vnode;
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    keys_per_vnode[VnodeForKey(key, kNumVnodes)] += 1;
  }
  for (uint64_t key = 0; key < kNumKeys; ++key) {
    auto state = cluster.driver->QueryState("modeled", key);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    EXPECT_EQ(state->count,
              keys_per_vnode[VnodeForKey(key, kNumVnodes)] * 32 * 3)
        << "key " << key;
  }
}

}  // namespace
}  // namespace rhino::net
