#include <gtest/gtest.h>

#include "broker/broker.h"
#include "nexmark/nexmark.h"
#include "runtime/sim_executor.h"

namespace rhino::nexmark {
namespace {

TEST(GeneratorTest, ProducesAtConfiguredRate) {
  runtime::SimExecutor sim;
  broker::Broker broker({0});
  broker::Topic& topic = broker.CreateTopic("bids", 4);
  GeneratorOptions options;
  options.tick = kSecond;
  options.bytes_per_sec = 1e6;
  options.record_bytes = kBidBytes;
  NexmarkGenerator gen(&sim, &topic, options);
  gen.Start();
  sim.RunUntil(10 * kSecond);
  gen.Stop();
  sim.Run();

  // 10 ticks x 4 partitions x 1 MB.
  EXPECT_EQ(gen.bytes_generated(), 40u * 1000000u);
  EXPECT_EQ(topic.partition(0).end_offset(), 10u);
  const broker::LogEntry* entry = topic.partition(0).Fetch(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->batch.bytes, 1000000u);
  EXPECT_EQ(entry->batch.count, 1000000u / kBidBytes);
}

TEST(GeneratorTest, RateFactorModulatesOutput) {
  runtime::SimExecutor sim;
  broker::Broker broker({0});
  broker::Topic& topic = broker.CreateTopic("bids", 1);
  GeneratorOptions options;
  options.tick = kSecond;
  options.bytes_per_sec = 1e6;
  options.rate_factor = [](SimTime t) { return t <= 5 * kSecond ? 1.0 : 0.5; };
  NexmarkGenerator gen(&sim, &topic, options);
  gen.Start();
  sim.RunUntil(10 * kSecond);
  gen.Stop();
  sim.Run();
  // 5 full-rate ticks + 5 half-rate ticks.
  EXPECT_EQ(gen.bytes_generated(), 5u * 1000000u + 5u * 500000u);
}

TEST(GeneratorTest, RealRecordsCarryKeysAndSizes) {
  runtime::SimExecutor sim;
  broker::Broker broker({0});
  broker::Topic& topic = broker.CreateTopic("bids", 1);
  GeneratorOptions options;
  options.tick = kSecond;
  options.bytes_per_sec = 3200;  // 100 records/tick
  options.record_bytes = kBidBytes;
  options.real_records = true;
  options.key_space = 50;
  NexmarkGenerator gen(&sim, &topic, options);
  gen.Start();
  sim.RunUntil(kSecond);
  gen.Stop();
  sim.Run();
  const broker::LogEntry* entry = topic.partition(0).Fetch(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->batch.records.size(), entry->batch.count);
  for (const auto& r : entry->batch.records) {
    EXPECT_LT(r.key, 50u);
    EXPECT_EQ(r.size, kBidBytes);
  }
}

TEST(QueryBuilderTest, NBQ5Shape) {
  QueryConfig config;
  auto def = BuildNBQ5(config);
  EXPECT_EQ(def.name, "NBQ5");
  ASSERT_EQ(def.ops.size(), 3u);
  EXPECT_EQ(def.ops[0].topic, "bids");
  EXPECT_EQ(def.ops[1].name, "nbq5-agg");
  EXPECT_EQ(def.ops[1].parallelism, config.stateful_parallelism);
  EXPECT_EQ(def.ops[1].inputs, std::vector<std::string>{"bids-src"});
}

TEST(QueryBuilderTest, NBQ8JoinsTwoStreams) {
  QueryConfig config;
  auto def = BuildNBQ8(config);
  ASSERT_EQ(def.ops.size(), 4u);
  EXPECT_EQ(def.ops[2].name, "nbq8-join");
  EXPECT_EQ(def.ops[2].inputs,
            (std::vector<std::string>{"auctions-src", "persons-src"}));
}

TEST(QueryBuilderTest, NBQXHasFiveStatefulSubQueries) {
  QueryConfig config;
  auto def = BuildNBQX(config);
  int stateful = 0;
  for (const auto& op : def.ops) {
    if (op.kind == dataflow::OpDef::Kind::kStateful) ++stateful;
  }
  EXPECT_EQ(stateful, 5);
  EXPECT_EQ(StatefulOpsOf("NBQX").size(), 5u);
}

TEST(QueryBuilderTest, StatefulOpsAreConsistentWithBuilders) {
  EXPECT_EQ(StatefulOpsOf("NBQ5"), std::vector<std::string>{"nbq5-agg"});
  EXPECT_EQ(StatefulOpsOf("NBQ8"), std::vector<std::string>{"nbq8-join"});
}

TEST(RecordSizesTest, MatchPaper) {
  EXPECT_EQ(kPersonBytes, 206u);
  EXPECT_EQ(kAuctionBytes, 269u);
  EXPECT_EQ(kBidBytes, 32u);
}

}  // namespace
}  // namespace rhino::nexmark
