#include <gtest/gtest.h>

#include "broker/broker.h"

namespace rhino::broker {
namespace {

dataflow::Batch MakeBatch(uint64_t count, uint64_t bytes) {
  dataflow::Batch b;
  b.count = count;
  b.bytes = bytes;
  return b;
}

TEST(PartitionTest, AppendAssignsMonotonicOffsets) {
  Partition p(0);
  EXPECT_EQ(p.Append(MakeBatch(1, 10)), 0u);
  EXPECT_EQ(p.Append(MakeBatch(1, 10)), 1u);
  EXPECT_EQ(p.end_offset(), 2u);
}

TEST(PartitionTest, FetchReturnsStoredEntries) {
  Partition p(3);
  p.Append(MakeBatch(5, 100));
  p.Append(MakeBatch(7, 200));
  const LogEntry* e = p.Fetch(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->offset, 1u);
  EXPECT_EQ(e->batch.count, 7u);
  EXPECT_EQ(p.Fetch(2), nullptr) << "past the end";
}

TEST(PartitionTest, ReplayIsPossibleAfterConsumption) {
  // The log retains entries: rewinding a consumer offset re-reads them
  // (upstream backup, paper §2.2.1).
  Partition p(0);
  for (int i = 0; i < 10; ++i) p.Append(MakeBatch(static_cast<uint64_t>(i), 1));
  for (uint64_t off = 0; off < 10; ++off) {
    const LogEntry* e = p.Fetch(off);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->batch.count, off);
  }
  // Second pass (replay) sees identical data.
  EXPECT_EQ(p.Fetch(3)->batch.count, 3u);
}

TEST(PartitionTest, ListenerFiresOnAppend) {
  Partition p(0);
  int notified = 0;
  p.SetDataListener([&] { ++notified; });
  p.Append(MakeBatch(1, 1));
  p.Append(MakeBatch(1, 1));
  EXPECT_EQ(notified, 2);
}

TEST(TopicTest, PartitionsSpreadOverBrokerNodes) {
  Topic topic("bids", 8, {10, 11});
  EXPECT_EQ(topic.num_partitions(), 8);
  EXPECT_EQ(topic.partition(0).home_node(), 10);
  EXPECT_EQ(topic.partition(1).home_node(), 11);
  EXPECT_EQ(topic.partition(2).home_node(), 10);
}

TEST(BrokerTest, CreateAndLookupTopics) {
  Broker broker({0});
  broker.CreateTopic("bids", 4);
  broker.CreateTopic("auctions", 2);
  EXPECT_TRUE(broker.HasTopic("bids"));
  EXPECT_FALSE(broker.HasTopic("persons"));
  EXPECT_EQ(broker.topic("auctions").num_partitions(), 2);
}

}  // namespace
}  // namespace rhino::broker
