// Whole-system integration tests over the experiment harness: each one is
// a miniature paper scenario, asserting the *relationships* the
// evaluation depends on (who is faster, what scales with what, and that
// the simulation is deterministic).

#include <gtest/gtest.h>

#include "harness.h"

namespace rhino::bench {
namespace {

Testbed::RecoveryBreakdown RunRecovery(Sut sut, uint64_t state_bytes) {
  TestbedOptions opts;
  opts.sut = sut;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  Testbed tb(opts);
  tb.SeedState(state_bytes);
  tb.Start();
  tb.Run(5 * kSecond);
  if (sut != Sut::kMegaphone) {
    tb.engine.TriggerCheckpoint();
    tb.Run(20 * kSecond);
  }
  tb.StopGenerators();
  tb.FailWorker(0);
  return tb.Recover(0);
}

TEST(IntegrationTest, RhinoRecoveryIsFlatInStateSize) {
  auto small = RunRecovery(Sut::kRhino, 64 * kGiB);
  auto large = RunRecovery(Sut::kRhino, 512 * kGiB);
  EXPECT_LT(small.total_us, 10 * kSecond);
  // Local fetch: size-independent within a small tolerance.
  EXPECT_NEAR(ToSeconds(large.total_us), ToSeconds(small.total_us), 1.0);
}

TEST(IntegrationTest, FlinkRecoveryGrowsLinearlyWithState) {
  auto small = RunRecovery(Sut::kFlink, 128 * kGiB);
  auto large = RunRecovery(Sut::kFlink, 256 * kGiB);
  double ratio = static_cast<double>(large.state_fetch_us) /
                 static_cast<double>(small.state_fetch_us);
  EXPECT_NEAR(ratio, 2.0, 0.5) << "fetch should scale ~linearly";
}

TEST(IntegrationTest, OrderingFlinkSlowerThanRhinoDfsSlowerThanRhino) {
  auto flink = RunRecovery(Sut::kFlink, 128 * kGiB);
  auto rhino_dfs = RunRecovery(Sut::kRhinoDfs, 128 * kGiB);
  auto rhino = RunRecovery(Sut::kRhino, 128 * kGiB);
  EXPECT_GT(flink.total_us, rhino_dfs.total_us);
  EXPECT_GT(rhino_dfs.total_us, rhino.total_us);
}

TEST(IntegrationTest, MegaphoneOomBoundaryMatchesClusterMemory) {
  // 8 workers x 64 GiB = 512 GiB; just below fits, 750 GB does not.
  auto fits = RunRecovery(Sut::kMegaphone, 500 * kGiB);
  EXPECT_FALSE(fits.oom);
  EXPECT_GT(fits.total_us, 0);
  auto oom = RunRecovery(Sut::kMegaphone, 750 * kGiB);
  EXPECT_TRUE(oom.oom);
}

TEST(IntegrationTest, SimulationIsDeterministic) {
  auto run = [] {
    TestbedOptions opts;
    opts.sut = Sut::kRhino;
    opts.query = "NBQ8";
    opts.checkpoint_interval = kMinute;
    Testbed tb(opts);
    tb.SeedState(32 * kGiB);
    tb.Start();
    tb.Run(90 * kSecond);
    tb.FailWorker(1);
    auto breakdown = tb.Recover(1);
    tb.Run(30 * kSecond);
    return std::make_pair(breakdown.total_us, tb.TotalStateBytes());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(IntegrationTest, RecoveryHandoversAllComplete) {
  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQX";  // five stateful operators -> five handovers
  opts.checkpoint_interval = kMinute;
  Testbed tb(opts);
  tb.SeedState(64 * kGiB);
  tb.Start();
  tb.Run(70 * kSecond);
  tb.FailWorker(2);
  tb.Recover(2);
  tb.Run(30 * kSecond);
  ASSERT_EQ(tb.engine.handovers().size(), 5u);
  for (const auto& record : tb.engine.handovers()) {
    EXPECT_TRUE(record.completed);
  }
  // The failed node owns nothing afterwards.
  for (auto* inst : tb.engine.stateful()) {
    if (inst->node_id() == 2) {
      EXPECT_TRUE(inst->halted());
    }
  }
}

TEST(IntegrationTest, LoadBalanceMovesOnlyTailBytes) {
  TestbedOptions opts;
  opts.sut = Sut::kRhino;
  opts.query = "NBQ8";
  opts.checkpoint_interval = kMinute;
  Testbed tb(opts);
  tb.SeedState(64 * kGiB);
  tb.Start();
  tb.Run(70 * kSecond);  // one checkpoint -> replicas up to date
  tb.TriggerLoadBalance(opts.num_workers, 0.5);
  tb.Run(60 * kSecond);

  ASSERT_FALSE(tb.engine.handovers().empty());
  const auto& record = tb.engine.handovers().back();
  EXPECT_TRUE(record.completed);
  const rhino::HandoverStats* stats = tb.hm->StatsFor(record.spec->id);
  ASSERT_NE(stats, nullptr);
  // Rhino ships at most the incremental tail, a tiny fraction of the
  // ~8 GiB that changed hands logically.
  EXPECT_LT(stats->bytes_transferred, 2 * kGiB);
}

}  // namespace
}  // namespace rhino::bench
