#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "runtime/realtime_executor.h"
#include "runtime/sim_executor.h"

/// Conformance suite for the Executor contract (executor.h), run against
/// both backends. Everything asserted here is backend-independent: FIFO
/// within one queue at equal deadlines, past-deadline clamping, re-entrant
/// scheduling, and Drain covering future timers and nested work. Ordering
/// ACROSS queues at equal deadlines is deliberately not asserted — the
/// contract leaves it unspecified under RealtimeExecutor.

namespace rhino::runtime {
namespace {

enum class Backend { kSim, kRealtime };

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Realtime";
}

class ExecutorConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  ExecutorConformanceTest() {
    if (GetParam() == Backend::kSim) {
      executor_ = std::make_unique<SimExecutor>();
    } else {
      executor_ = std::make_unique<RealtimeExecutor>(4);
    }
  }

  Executor& exec() { return *executor_; }

  std::unique_ptr<Executor> executor_;
};

TEST_P(ExecutorConformanceTest, NowStartsAtZeroAndIsMonotonic) {
  SimTime first = exec().Now();
  EXPECT_GE(first, 0);
  exec().Schedule(1000, [] {});
  exec().Drain();
  EXPECT_GE(exec().Now(), first);
}

TEST_P(ExecutorConformanceTest, SameDeadlineTasksOnOneQueueRunFifo) {
  TaskQueue* q = exec().CreateQueue("strand");
  std::vector<int> order;
  SimTime when = exec().Now() + 2000;
  for (int i = 1; i <= 5; ++i) {
    q->PostAt(when, [&order, i] { order.push_back(i); });
  }
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(ExecutorConformanceTest, DefaultQueueSerializesSchedules) {
  // Schedule/ScheduleAt target one serial queue, so equal delays keep
  // submission order even on the multi-threaded backend.
  std::vector<int> order;
  for (int i = 1; i <= 5; ++i) {
    exec().Schedule(1000, [&order, i] { order.push_back(i); });
  }
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(ExecutorConformanceTest, EarlierDeadlineRunsFirstOnOneQueue) {
  TaskQueue* q = exec().CreateQueue("strand");
  std::vector<int> order;
  SimTime base = exec().Now();
  q->PostAt(base + 20000, [&order] { order.push_back(2); });
  q->PostAt(base + 10000, [&order] { order.push_back(1); });
  exec().Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(ExecutorConformanceTest, PastDeadlineClampsToNowAndCounts) {
  // Advance the clock off zero first so a "past" deadline exists.
  exec().Schedule(2000, [] {});
  exec().Drain();
  EXPECT_EQ(exec().clamped_schedules(), 0u);

  bool ran = false;
  exec().ScheduleAt(exec().Now() - 1000, [&ran] { ran = true; });
  exec().Drain();
  EXPECT_TRUE(ran) << "clamped tasks still run";
  EXPECT_GE(exec().clamped_schedules(), 1u);
}

TEST_P(ExecutorConformanceTest, CallbacksMayReenterSchedule) {
  std::atomic<int> fired{0};
  Executor* e = &exec();
  TaskQueue* q = e->CreateQueue("strand");
  e->Schedule(0, [&fired, e, q] {
    ++fired;
    e->Schedule(0, [&fired] { ++fired; });  // own queue, re-entrant
    q->Post([&fired] { ++fired; });         // another queue
  });
  exec().Drain();
  EXPECT_EQ(fired.load(), 3);
}

TEST_P(ExecutorConformanceTest, DrainWaitsForFutureTimers) {
  bool ran = false;
  exec().Schedule(20000, [&ran] { ran = true; });  // 20 ms out
  exec().Drain();
  EXPECT_TRUE(ran) << "Drain must include timers scheduled in the future";
}

TEST_P(ExecutorConformanceTest, DrainWaitsForNestedChains) {
  // A chain of tasks, each scheduling the next: Drain must follow the
  // whole chain, not just the tasks queued when it was called.
  std::atomic<int> depth{0};
  Executor* e = &exec();
  std::function<void()> step = [&depth, e, &step] {
    if (++depth < 10) e->Schedule(100, step);
  };
  e->Schedule(0, step);
  exec().Drain();
  EXPECT_EQ(depth.load(), 10);
}

TEST_P(ExecutorConformanceTest, QueuesDoNotStarveEachOther) {
  TaskQueue* a = exec().CreateQueue("a");
  TaskQueue* b = exec().CreateQueue("b");
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    a->Post([&ran] { ++ran; });
    b->Post([&ran] { ++ran; });
  }
  exec().Drain();
  EXPECT_EQ(ran.load(), 200);
}

TEST_P(ExecutorConformanceTest, RunUntilAdvancesTheClock) {
  std::atomic<bool> ran{false};
  exec().Schedule(1000, [&ran] { ran = true; });
  exec().RunUntil(exec().Now() + 5000);
  exec().Drain();  // realtime RunUntil does not imply quiescence
  EXPECT_TRUE(ran.load());
  EXPECT_GE(exec().Now(), 5000);
}

INSTANTIATE_TEST_SUITE_P(Backends, ExecutorConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kRealtime),
                         BackendName);

// ---- Backend-specific guarantees -----------------------------------------

TEST(SimExecutorTest, CrossQueueOrderIsGlobalSubmissionOrder) {
  // The sim backend refines the contract: equal-deadline tasks interleave
  // in exact submission order even across queues (one kernel, one
  // sequence counter) — this is what keeps ported experiments bit-exact.
  SimExecutor exec;
  TaskQueue* a = exec.CreateQueue("a");
  TaskQueue* b = exec.CreateQueue("b");
  std::vector<int> order;
  a->PostAt(10, [&order] { order.push_back(1); });
  b->PostAt(10, [&order] { order.push_back(2); });
  a->PostAt(10, [&order] { order.push_back(3); });
  exec.Drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealtimeExecutorTest, DistinctQueuesRunConcurrently) {
  // Two tasks that each wait for the other to start can only both finish
  // if their queues genuinely run on different threads.
  RealtimeExecutor exec(4);
  TaskQueue* a = exec.CreateQueue("a");
  TaskQueue* b = exec.CreateQueue("b");
  std::atomic<int> started{0};
  auto rendezvous = [&started] {
    started.fetch_add(1);
    while (started.load() < 2) {
    }
  };
  a->Post(rendezvous);
  b->Post(rendezvous);
  exec.Drain();
  EXPECT_EQ(started.load(), 2);
}

TEST(RealtimeExecutorTest, ShutdownDropsQueuedWorkAndJoins) {
  auto exec = std::make_unique<RealtimeExecutor>(2);
  std::atomic<bool> ran{false};
  exec->Schedule(60 * kSecond, [&ran] { ran = true; });  // far future
  exec->Shutdown();
  exec.reset();
  EXPECT_FALSE(ran.load()) << "undelivered tasks are dropped, not run";
}

TEST(RealtimeExecutorTest, RealtimeFlagDistinguishesBackends) {
  RealtimeExecutor rt(1);
  SimExecutor sim;
  EXPECT_TRUE(rt.realtime());
  EXPECT_FALSE(sim.realtime());
}

}  // namespace
}  // namespace rhino::runtime
